// Figure 4 -- the concave-upward effect of MaxClients on response time and
// the polynomial regression used by the policy initializer to predict
// unvisited configurations: sample the curve coarsely (as Algorithm 2's
// data collection does), fit the polynomial, and compare predictions with
// the full fine-grid truth.
#include <cmath>
#include <iostream>

#include "config/space.hpp"
#include "harness.hpp"
#include "util/regression.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 4",
                "concave upward effect of MaxClients and regression fit");

  auto env = bench::make_env({workload::MixType::kShopping, env::VmLevel::kLevel1},
                             42, /*noise=*/0.05);
  auto truth = bench::make_env({workload::MixType::kShopping, env::VmLevel::kLevel1},
                               42, /*noise=*/0.0);

  // Coarse samples (every 4th grid point), as offline data collection would
  // gather; noisy, like real measurements.
  const auto grid = config::ConfigSpace::fine_grid(config::ParamId::kMaxClients);
  std::vector<double> xs;
  std::vector<double> ys_log;
  for (std::size_t i = 0; i < grid.size(); i += 4) {
    config::Configuration c;
    c.set(config::ParamId::kMaxClients, grid[i]);
    xs.push_back(grid[i]);
    ys_log.push_back(std::log(env->measure(c).response_ms));
  }
  const auto poly = util::Poly1D::fit(xs, ys_log, 3);

  util::TextTable table({"MaxClients", "measured (ms)", "regression (ms)",
                         "rel. error"});
  util::AsciiChart chart(78, 18);
  chart.set_title("Figure 4: MaxClients concavity, truth vs regression");
  chart.set_x_label("MaxClients");
  chart.set_y_label("log10 response time (ms)");
  util::Series s_truth{"measured", '*', {}, {}};
  util::Series s_fit{"regression", '-', {}, {}};
  std::vector<double> observed;
  std::vector<double> predicted;
  for (int k : grid) {
    config::Configuration c;
    c.set(config::ParamId::kMaxClients, k);
    const double rt = truth->evaluate(c).response_ms;
    const double pred = std::exp(poly.predict(k));
    table.add_row({std::to_string(k), util::fmt(rt, 1), util::fmt(pred, 1),
                   util::fmt(std::abs(pred - rt) / rt, 3)});
    s_truth.xs.push_back(k);
    s_truth.ys.push_back(std::log10(rt));
    s_fit.xs.push_back(k);
    s_fit.ys.push_back(std::log10(pred));
    observed.push_back(std::log(rt));
    predicted.push_back(poly.predict(k));
  }
  chart.add_series(s_truth);
  chart.add_series(s_fit);

  std::cout << table.str() << "\nCSV:\n" << table.csv() << "\n" << chart.str();
  std::cout << "\nfit R^2 (log space, full grid) : "
            << util::fmt(util::r_squared(observed, predicted), 4) << "\n"
            << "regression argmin              : "
            << util::fmt(poly.argmin(grid.front(), grid.back()), 0)
            << " (truth argmin near the curve minimum above)\n";

  bench::paper_note(
      "all parameters have a concave upward effect on the performance; a "
      "polynomial regression over sparse samples predicts the performance "
      "of unvisited configurations for policy initialization",
      "cubic log-space fit tracks the full curve (R^2 above) and places "
      "its minimum inside the grid, enabling Algorithm 2's predictions");
  return 0;
}
