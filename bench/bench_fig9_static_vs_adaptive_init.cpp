// Figure 9 -- static vs adaptive policy initialization: an agent that
// keeps the (randomly chosen) context-2 initial policy everywhere vs one
// that switches to the context-matched policy, evaluated in (a) context-5
// and (b) context-6.
//
// Expected shape: the static-policy agent needs more iterations to
// converge (< 27) but online batch retraining calibrates it to within
// ~10% of the adaptive agent's stable performance.
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

namespace {

void run_panel(const char* label, int context_number, std::uint64_t seed) {
  using namespace rac;
  const auto target_ctx = env::table2_context(context_number);
  // The adaptive agent owns policies for the target contexts; the static
  // agent is pinned to the context-2 policy (as in the paper).
  const auto adaptive_library =
      bench::build_offline_library({target_ctx, env::table2_context(2)});
  const auto static_library =
      bench::build_offline_library({env::table2_context(2)});

  // Both panel runs are independent; fan them out on the shared pool.
  core::RacOptions adaptive_opt;
  adaptive_opt.seed = seed;
  core::RacAgent adaptive(adaptive_opt, adaptive_library, 0);
  auto adaptive_env = bench::make_env(target_ctx, seed);
  core::RacOptions pinned_opt;
  pinned_opt.seed = seed;
  pinned_opt.adaptive_policy_switching = false;
  core::RacAgent pinned(pinned_opt, static_library, 0);
  auto pinned_env = bench::make_env(target_ctx, seed);
  std::vector<core::AgentTrace> traces = bench::run_parallel({
      [&] { return core::run_agent(*adaptive_env, adaptive, {}, 40); },
      [&] { return core::run_agent(*pinned_env, pinned, {}, 40); },
  });
  traces[0].agent = "adaptive init policy";
  traces[1].agent = "static init policy (ctx-2)";

  bench::report_traces(std::string("Figure 9") + label + ": context-" +
                           std::to_string(context_number) + " (" +
                           target_ctx.name() + ")",
                       "iteration", traces);

  util::TextTable summary({"agent", "last-10 mean (ms)", "settled at"});
  for (const auto& trace : traces) {
    summary.add_row({trace.agent, util::fmt(trace.mean_response_ms(30, 40), 1),
                     std::to_string(trace.settled_iteration(0, -1, 5, 0.5))});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();
  std::cout << "static-vs-adaptive stable-state loss: "
            << util::fmt((traces[1].mean_response_ms(30, 40) /
                              traces[0].mean_response_ms(30, 40) -
                          1.0) *
                             100.0,
                         1)
            << "%\n";
}

}  // namespace

int main() {
  using namespace rac;
  bench::banner("Figure 9",
                "performance with static and adaptive policy initialization");
  run_panel("(a)", 5, 500);
  run_panel("(b)", 6, 501);

  bench::paper_note(
      "agents pinned to a foreign initial policy still reach stable states "
      "in < 27 iterations; online learning gradually refines them to "
      "performance similar to the adaptive agent's (within ~10%)",
      "see per-panel summaries: the pinned agent settles later but its "
      "stable-state loss vs the adaptive agent stays small");
  return 0;
}
