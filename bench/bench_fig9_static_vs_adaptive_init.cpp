// Figure 9 -- static vs adaptive policy initialization: an agent that
// keeps the (randomly chosen) context-2 initial policy everywhere vs one
// that switches to the context-matched policy, evaluated in (a) context-5
// and (b) context-6.
//
// Expected shape: the static-policy agent needs more iterations to
// converge (< 27) but online batch retraining calibrates it to within
// ~10% of the adaptive agent's stable performance.
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

namespace {

void run_panel(const char* label, int context_number, std::uint64_t seed) {
  using namespace rac;
  const auto target_ctx = env::table2_context(context_number);
  // The adaptive agent owns policies for the target contexts; the static
  // agent is pinned to the context-2 policy (as in the paper).
  const auto adaptive_library =
      bench::build_offline_library({target_ctx, env::table2_context(2)});
  const auto static_library =
      bench::build_offline_library({env::table2_context(2)});

  std::vector<core::AgentTrace> traces;
  {
    core::RacOptions opt;
    opt.seed = seed;
    core::RacAgent adaptive(opt, adaptive_library, 0);
    auto env = bench::make_env(target_ctx, seed);
    traces.push_back(core::run_agent(*env, adaptive, {}, 40));
    traces.back().agent = "adaptive init policy";
  }
  {
    core::RacOptions opt;
    opt.seed = seed;
    opt.adaptive_policy_switching = false;
    core::RacAgent pinned(opt, static_library, 0);
    auto env = bench::make_env(target_ctx, seed);
    traces.push_back(core::run_agent(*env, pinned, {}, 40));
    traces.back().agent = "static init policy (ctx-2)";
  }

  bench::report_traces(std::string("Figure 9") + label + ": context-" +
                           std::to_string(context_number) + " (" +
                           target_ctx.name() + ")",
                       "iteration", traces);

  util::TextTable summary({"agent", "last-10 mean (ms)", "settled at"});
  for (const auto& trace : traces) {
    summary.add_row({trace.agent, util::fmt(trace.mean_response_ms(30, 40), 1),
                     std::to_string(trace.settled_iteration(0, -1, 5, 0.5))});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();
  std::cout << "static-vs-adaptive stable-state loss: "
            << util::fmt((traces[1].mean_response_ms(30, 40) /
                              traces[0].mean_response_ms(30, 40) -
                          1.0) *
                             100.0,
                         1)
            << "%\n";
}

}  // namespace

int main() {
  using namespace rac;
  bench::banner("Figure 9",
                "performance with static and adaptive policy initialization");
  run_panel("(a)", 5, 500);
  run_panel("(b)", 6, 501);

  bench::paper_note(
      "agents pinned to a foreign initial policy still reach stable states "
      "in < 27 iterations; online learning gradually refines them to "
      "performance similar to the adaptive agent's (within ~10%)",
      "see per-panel summaries: the pinned agent settles later but its "
      "stable-state loss vs the adaptive agent stays small");
  return 0;
}
