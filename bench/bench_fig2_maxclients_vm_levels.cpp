// Figure 2 -- effect of MaxClients on performance under the three VM
// resource levels, at a constant (ordering) workload. Every other
// parameter stays at its Table-1 default.
//
// Expected shape: each level has its own preferred MaxClients; the optimum
// *decreases* as the VM grows more powerful (the paper's counter-intuitive
// finding), and the curves are vertically ordered Level-3 worst.
#include <cmath>
#include <iostream>

#include "config/space.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 2", "effect of MaxClients under different VM levels");

  const auto mix = workload::MixType::kOrdering;
  const auto grid = config::ConfigSpace::fine_grid(config::ParamId::kMaxClients);

  std::vector<std::string> headers = {"MaxClients"};
  for (auto level : env::kAllLevels) headers.push_back(env::level_name(level) + " (ms)");
  util::TextTable table(headers);

  util::AsciiChart chart(78, 20);
  chart.set_title("Figure 2: response time vs MaxClients per VM level");
  chart.set_x_label("MaxClients");
  chart.set_y_label("mean response time (ms)");

  std::vector<std::vector<double>> curves(env::kAllLevels.size());
  for (std::size_t l = 0; l < env::kAllLevels.size(); ++l) {
    auto env = bench::make_env({mix, env::kAllLevels[l]}, 42, /*noise=*/0.0);
    for (int k : grid) {
      config::Configuration c;
      c.set(config::ParamId::kMaxClients, k);
      curves[l].push_back(env->evaluate(c).response_ms);
    }
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row = {std::to_string(grid[i])};
    for (const auto& curve : curves) row.push_back(util::fmt(curve[i], 1));
    table.add_row(std::move(row));
  }
  const std::string symbols = "123";
  std::vector<int> best(env::kAllLevels.size());
  for (std::size_t l = 0; l < curves.size(); ++l) {
    util::Series s;
    s.name = env::level_name(env::kAllLevels[l]);
    s.symbol = symbols[l];
    double best_rt = 1e300;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      s.xs.push_back(grid[i]);
      // Log-scale the chart so the starved cliff does not flatten the
      // interesting region (the table carries the raw numbers).
      s.ys.push_back(std::log10(curves[l][i]));
      if (curves[l][i] < best_rt) {
        best_rt = curves[l][i];
        best[l] = grid[i];
      }
    }
    chart.add_series(std::move(s));
  }
  chart.set_y_label("log10 response time (ms)");

  std::cout << table.str() << "\nCSV:\n" << table.csv() << "\n" << chart.str();

  std::cout << "\npreferred MaxClients per level:";
  for (std::size_t l = 0; l < best.size(); ++l) {
    std::cout << "  " << env::level_name(env::kAllLevels[l]) << "=" << best[l];
  }
  std::cout << "\n";

  bench::paper_note(
      "each platform has its own preferred MaxClients; as machine capacity "
      "increases the optimal MaxClients goes DOWN (more powerful VMs finish "
      "requests faster, so fewer concurrent requests are outstanding)",
      "U-shaped curves with interior minima; optimum ordering Level-1 <= "
      "Level-2 < Level-3 as printed above; Level-3 curve highest");
  return 0;
}
