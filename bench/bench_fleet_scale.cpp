// Fleet-scale control plane: throughput and determinism at thousands of
// tenants.
//
// Shards a fleet of independent tenant agents (each its own environment +
// RAC agent + seed stream, some behind an injected-fault profile) over the
// deterministic pool, drives everyone through a mid-run context switch
// with two cross-tenant retraining rounds, and reports SLA attainment,
// mean response, wall-clock, and tenant-intervals/sec/core. The same
// fleet is run twice -- on a 1-thread pool (the exact serial path) and on
// a 4-thread pool -- and the order-insensitive decision digests plus the
// serialized whole-fleet checkpoints must compare IDENTICAL: sharding
// reschedules the work, it never changes a decision. Exits non-zero
// otherwise, so the binary doubles as an acceptance check.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy_init.hpp"
#include "core/policy_library.hpp"
#include "env/context.hpp"
#include "fleet/fleet.hpp"
#include "harness.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

std::vector<rac::fleet::TenantSpec> make_specs(int tenants, int switch_at) {
  using rac::env::table2_context;
  std::vector<rac::fleet::TenantSpec> specs(static_cast<std::size_t>(tenants));
  for (int i = 0; i < tenants; ++i) {
    rac::fleet::TenantSpec& spec = specs[static_cast<std::size_t>(i)];
    spec.id = i;
    // Half the fleet starts in each context and everyone switches mid-run,
    // so the cross-tenant retraining rounds pool experience for both
    // library policies.
    const int first = 1 + (i % 2);
    spec.schedule = {{0, table2_context(first)},
                     {switch_at, table2_context(3 - first)}};
    if (i % 16 == 5) {
      rac::fault::FaultProfile profile;
      profile.drop_prob = 0.05;
      profile.spike_prob = 0.05;
      spec.fault_profile = profile;
    }
  }
  return specs;
}

// Streams the whole-fleet checkpoint through an FNV-1a hash instead of
// holding it in memory: at 10k tenants the serialized fleet runs to
// gigabytes, and the bench only needs to compare the two runs bitwise.
class HashingBuf final : public std::streambuf {
 public:
  std::uint64_t hash() const noexcept { return hash_; }
  std::size_t bytes() const noexcept { return bytes_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) absorb(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      absorb(static_cast<unsigned char>(s[i]));
    }
    return n;
  }

 private:
  void absorb(unsigned char c) noexcept {
    hash_ = (hash_ ^ c) * 1099511628211ULL;
    ++bytes_;
  }
  std::uint64_t hash_ = 1469598103934665603ULL;
  std::size_t bytes_ = 0;
};

std::string checkpoint_digest(const rac::fleet::FleetManager& fleet) {
  HashingBuf buf;
  std::ostream os(&buf);
  fleet.save_checkpoint(os);
  std::ostringstream formatted;
  formatted << std::hex << buf.hash() << std::dec << "-" << buf.bytes() << "B";
  return formatted.str();
}

}  // namespace

int main() {
  using namespace rac;
  bench::banner("Fleet scale",
                "sharded multi-tenant control plane: throughput and "
                "bitwise determinism across thread counts");

  const int tenants = bench::scaled(10240, 256);
  const int iterations = 8;
  const int switch_at = iterations / 2;
  const std::uint64_t run_seed = 101;
  bench::set_report_seed(run_seed);

  // Fleet-scale tenants run a lighter system than the paper's single
  // agent: fewer emulated browsers and fixed-point iterations per
  // measurement, and an SLA tight enough that the mid-run context switch
  // actually produces violations (and hence policy switches).
  env::AnalyticEnvOptions fleet_env;
  fleet_env.num_clients = 150;
  fleet_env.fixed_point_iterations = 3;

  // A deliberately compact library trained on the noiseless twin of the
  // fleet environment: at 10k tenants every agent carries a private copy
  // of its active Q-table, so the coarse grid and offline TD budget
  // directly set the fleet's memory footprint.
  core::PolicyInitOptions init;
  init.coarse_levels = 3;
  init.offline_td.trajectory_limit = 6;
  init.offline_td.max_sweeps = bench::scaled(40, 20);
  const core::InitialPolicyLibrary library = core::build_library(
      {env::table2_context(1), env::table2_context(2)},
      [&](const env::SystemContext& ctx) {
        env::AnalyticEnvOptions offline = fleet_env;
        offline.noise_sigma = 0.0;
        offline.seed = run_seed;
        return std::make_unique<env::AnalyticEnv>(ctx, offline);
      },
      init);

  struct RunResult {
    std::string digest;
    std::string checkpoint;
    fleet::FleetReport report;
    double seconds = 0.0;
  };
  // Per-run digest for the serial-vs-parallel comparison, teed into the
  // harness sink so the rac-bench-report digest (the trajectory gate)
  // covers the fleet's actual decisions.
  struct Tee final : obs::TraceSink {
    obs::DigestTraceSink digest;
    void emit(const obs::TraceEvent& event) override {
      digest.emit(event);
      bench::trace_sink().emit(event);
    }
    void flush() override { bench::trace_sink().flush(); }
  };
  const auto drive = [&](util::ThreadPool& pool) {
    Tee sink;
    fleet::FleetOptions options;
    options.shard_count = 64;
    options.seed = run_seed;
    options.retrain_every = switch_at;
    options.env = fleet_env;
    // Smaller per-interval TD refresh than the single-agent default.
    // Identical for both runs, so the determinism comparison is
    // unaffected.
    options.agent.online_td.trajectory_limit = 4;
    options.agent.online_td.max_sweeps = 6;
    options.agent.sla.reference_response_ms = 250.0;
    // Only `iterations - switch_at` intervals follow the context switch,
    // so the detector must declare a change faster than the single-agent
    // default of 5 consecutive violations.
    options.agent.violation.consecutive_limit = 2;
    options.agent.violation.threshold = 0.15;
    options.pool = &pool;
    options.sink = &sink;
    options.registry = &obs::default_registry();
    const auto start = std::chrono::steady_clock::now();
    fleet::FleetManager manager(make_specs(tenants, switch_at), options,
                                library);
    manager.run(iterations);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return RunResult{sink.digest.digest(), checkpoint_digest(manager),
                     manager.report(), seconds};
  };

  util::ThreadPool serial_pool(1);
  util::ThreadPool wide_pool(4, obs::pool_telemetry(obs::default_registry()));
  std::cout << "driving " << tenants << " tenants x " << iterations
            << " intervals (context switch + retrain at " << switch_at
            << ") at 1 thread, then at " << wide_pool.size()
            << " threads ...\n";
  const RunResult serial = drive(serial_pool);
  const RunResult wide = drive(wide_pool);

  const bool identical = serial.digest == wide.digest &&
                         serial.checkpoint == wide.checkpoint;
  const auto per_core = [&](const RunResult& r, std::size_t cores) {
    const double total =
        static_cast<double>(r.report.iterations) / static_cast<double>(cores);
    return r.seconds > 0.0 ? total / r.seconds : 0.0;
  };

  util::TextTable table({"threads", "wall-clock (s)", "tenant-intervals/s/core",
                         "SLA attainment", "mean response (ms)"});
  table.add_row({"1", util::fmt(serial.seconds, 2),
                 util::fmt(per_core(serial, 1), 0),
                 util::fmt(serial.report.sla_attainment, 3),
                 util::fmt(serial.report.mean_response_ms, 1)});
  table.add_row({std::to_string(wide_pool.size()), util::fmt(wide.seconds, 2),
                 util::fmt(per_core(wide, wide_pool.size()), 0),
                 util::fmt(wide.report.sla_attainment, 3),
                 util::fmt(wide.report.mean_response_ms, 1)});
  std::cout << table.str() << "\nCSV:\n" << table.csv();
  std::cout << "\nfleet decisions across thread counts: "
            << (identical ? "IDENTICAL (bitwise)" : "DIFFERENT -- BUG")
            << "\n  trace digest " << serial.digest << " vs " << wide.digest
            << "\n  checkpoint digest " << serial.checkpoint << " vs "
            << wide.checkpoint << "\n";
  std::cout << "retrain rounds per run: " << serial.report.retrain_rounds
            << ", policy switches: " << serial.report.policy_switches << "\n";
  bench::report_metrics({"fleet.", "util.pool."});

  bench::paper_note(
      "the paper runs one agent per web system; a cloud operator runs "
      "thousands of such systems, so the control plane must shard tenants "
      "across cores without perturbing any tenant's decision sequence",
      "SLA/throughput table above and a bitwise-identical decision digest "
      "and fleet checkpoint at 1 and 4 threads");

  if (!identical) return 1;
  return 0;
}
