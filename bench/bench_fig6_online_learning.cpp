// Figure 6 -- effect of online learning: the RAC agent with online
// retraining enabled vs the same agent frozen to its offline-trained
// policy, in a static context (context-1).
//
// Expected shape: the frozen agent reaches a stable configuration a little
// sooner (no exploratory wobble), but the online learner's refined policy
// ends at a better stable response time (paper: ~5% better).
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 6", "effect of online training");

  const auto ctx = env::table2_context(1);
  // The offline traces come from a staging replica that saw a lighter
  // client population than the live site (360 vs 400 emulated browsers):
  // the initial policy's shape is right but its operating point is not,
  // which is precisely the gap online learning is meant to close.
  core::InitialPolicyLibrary library;
  {
    env::AnalyticEnvOptions staging = bench::default_env_options(7);
    staging.num_clients = 360;
    env::AnalyticEnv offline_env(ctx, staging);
    core::PolicyInitOptions init;
    init.offline_td.max_sweeps = bench::scaled(150, 40);
    library.add(core::learn_initial_policy(offline_env, init));
  }
  const std::uint64_t run_seed = 200;
  bench::set_report_seed(run_seed);
  // RAC_BENCH_QUICK shrinks the runs 40 -> 16 iterations; the summary
  // windows follow (first/last quarter instead of first/last 10).
  const int iterations = bench::scaled(40, 16);
  const int window = iterations / 4;

  std::vector<core::AgentTrace> traces;
  {
    core::RacOptions opt;
    opt.seed = run_seed;
    core::RacAgent with_online(opt, library, 0);
    auto env = bench::make_env(ctx, run_seed);
    traces.push_back(bench::run_traced(*env, with_online, {}, iterations));
    traces.back().agent = "w/ online learning";
  }
  {
    core::RacOptions opt;
    opt.seed = run_seed;
    opt.online_learning = false;
    core::RacAgent without_online(opt, library, 0);
    auto env = bench::make_env(ctx, run_seed);
    traces.push_back(bench::run_traced(*env, without_online, {}, iterations));
    traces.back().agent = "w/o online learning";
  }

  bench::report_traces("Figure 6: online vs offline-only policy", "iteration",
                       traces);

  util::TextTable summary(
      {"agent", "first-window mean", "last-window mean", "settled at"});
  for (const auto& trace : traces) {
    summary.add_row({trace.agent,
                     util::fmt(trace.mean_response_ms(0, window), 1),
                     util::fmt(trace.mean_response_ms(iterations - window,
                                                      iterations), 1),
                     std::to_string(trace.settled_iteration(0, -1, 5, 0.5))});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();

  const double gain =
      1.0 - traces[0].mean_response_ms(iterations - window, iterations) /
                traces[1].mean_response_ms(iterations - window, iterations);
  std::cout << "\nstable-state improvement from online refinement: "
            << util::fmt(gain * 100.0, 1) << "%\n";
  bench::report_metrics({"rl.td.", "core.rac."});

  bench::paper_note(
      "the offline-only agent stabilizes ~12 iterations sooner, but online "
      "refinement reaches ~5% better stable performance (at the cost of "
      "early exploration fluctuations)",
      "see the last-10-iterations means and settling iterations above");
  return 0;
}
