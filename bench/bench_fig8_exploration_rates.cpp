// Figure 8 -- effect of the online exploration rate: RAC with epsilon in
// {0.05, 0.1, 0.3} in a static context.
//
// Expected shape: all rates reach roughly the same stable level, but the
// higher rates suffer more (and larger) response-time spikes from
// suboptimal exploratory actions; 0.05 performs best.
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 8", "effect of online exploration rates");

  const auto ctx = env::table2_context(1);
  const auto library = bench::build_offline_library({ctx});
  const std::vector<double> rates = {0.05, 0.1, 0.3};
  const std::vector<std::uint64_t> seeds = {400, 401, 402};

  // Exploration effects are bursty: keep every seed's run so the spike
  // census is not one lucky (or unlucky) trajectory. The chart and the
  // iteration table show the first seed's runs.
  //
  // The 9 (rate, seed) runs are independent; build every agent/environment
  // pair up front, fan the runs out on the shared pool, then regroup the
  // in-order results by rate.
  struct RunSpec {
    std::size_t rate_index;
    std::uint64_t seed;
  };
  std::vector<RunSpec> specs;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    for (std::uint64_t seed : seeds) specs.push_back({r, seed});
  }
  std::vector<std::unique_ptr<core::RacAgent>> agents;
  std::vector<std::unique_ptr<env::AnalyticEnv>> envs;
  std::vector<std::function<core::AgentTrace()>> thunks;
  for (const RunSpec& spec : specs) {
    core::RacOptions opt;
    opt.seed = spec.seed;
    opt.online_epsilon = rates[spec.rate_index];
    agents.push_back(std::make_unique<core::RacAgent>(opt, library, 0));
    envs.push_back(bench::make_env(ctx, spec.seed));
    thunks.push_back([agent = agents.back().get(), env = envs.back().get()] {
      return core::run_agent(*env, *agent, {}, 60);
    });
  }
  std::vector<core::AgentTrace> results = bench::run_parallel(thunks);

  std::vector<std::vector<core::AgentTrace>> runs(rates.size());
  std::vector<core::AgentTrace> traces;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].agent = "rate " + util::fmt(rates[specs[i].rate_index], 2);
    runs[specs[i].rate_index].push_back(std::move(results[i]));
  }
  for (std::size_t r = 0; r < rates.size(); ++r) {
    traces.push_back(runs[r].front());
  }

  bench::report_traces("Figure 8: online exploration rates", "iteration",
                       traces);

  // Spike census over the post-convergence window: a spike is an iteration
  // at least 2x the trace's median response time.
  util::TextTable summary({"exploration rate", "overall mean (ms)",
                           "stable mean (ms)", "spikes (>2x median, 3 runs)",
                           "worst spike (x median)"});
  for (std::size_t t = 0; t < rates.size(); ++t) {
    int spikes = 0;
    double worst = 0.0;
    double overall = 0.0;
    double stable = 0.0;
    for (const auto& run : runs[t]) {
      std::vector<double> rts;
      for (const auto& r : run.records) rts.push_back(r.response_ms);
      const double median = util::percentile(rts, 50.0);
      for (std::size_t i = 15; i < rts.size(); ++i) {
        if (rts[i] > 2.0 * median) ++spikes;
        worst = std::max(worst, rts[i] / median);
      }
      overall += run.mean_response_ms();
      stable += run.mean_response_ms(40, 60);
    }
    const auto n = static_cast<double>(runs[t].size());
    summary.add_row({util::fmt(rates[t], 2), util::fmt(overall / n, 1),
                     util::fmt(stable / n, 1), std::to_string(spikes),
                     util::fmt(worst, 1)});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();

  bench::paper_note(
      "stable-state performance is nearly identical across rates, but "
      "higher rates produce more suboptimal-exploration spikes (2 spikes at "
      "0.1, 4 at 0.3, response times jumping >= 4x); rate 0.05 performs best",
      "see spike census: spike count grows with the exploration rate while "
      "the stable means stay close; 0.05 has the best overall mean");
  return 0;
}
