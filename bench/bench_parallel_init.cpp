// Parallel policy-initialization: wall-clock speedup and determinism proof.
//
// Builds the same 4-context initial-policy library twice -- on a 1-thread
// pool (the exact serial path) and on a 4-thread pool -- and reports the
// wall-clock speedup plus a bitwise comparison of every trained policy
// (Q-table contents, regression predictions, coarse-sample optimum). The
// comparison must say IDENTICAL: parallelism only reschedules the work, it
// never changes a single bit of the result. Exits non-zero otherwise, so
// the binary doubles as an acceptance check.
#include <chrono>
#include <iostream>
#include <utility>

#include "core/policy_library.hpp"
#include "harness.hpp"
#include "obs/pool.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace rac;
  bench::banner("Parallel init",
                "wall-clock and determinism of the parallel library build");

  // RAC_BENCH_QUICK shrinks the build: 2 contexts instead of 4 and fewer
  // TD sweeps. The determinism proof (bitwise identity across thread
  // counts) is unaffected; only the wall-clock comparison loses fidelity.
  std::vector<env::SystemContext> contexts = {
      env::table2_context(1), env::table2_context(2), env::table2_context(3),
      env::table2_context(4)};
  contexts.resize(static_cast<std::size_t>(bench::scaled(4, 2)));
  const std::uint64_t run_seed = 7;
  bench::set_report_seed(run_seed);
  const auto make = [&](const env::SystemContext& ctx) {
    return bench::make_env(ctx, run_seed);
  };

  const auto timed_build = [&](util::ThreadPool& pool) {
    core::PolicyInitOptions options;
    options.offline_td.max_sweeps = bench::scaled(150, 40);
    options.pool = &pool;
    const auto start = std::chrono::steady_clock::now();
    auto library = core::build_library(contexts, make, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::make_pair(std::move(library), seconds);
  };

  util::ThreadPool serial_pool(1);
  util::ThreadPool wide_pool(4, obs::pool_telemetry(obs::default_registry()));
  std::cout << "building " << contexts.size()
            << "-context library at 1 thread, then at " << wide_pool.size()
            << " threads ...\n";
  auto [serial_library, serial_s] = timed_build(serial_pool);
  auto [parallel_library, parallel_s] = timed_build(wide_pool);

  bool identical = serial_library.size() == parallel_library.size();
  for (std::size_t i = 0; identical && i < serial_library.size(); ++i) {
    identical =
        core::exactly_equal(serial_library.at(i), parallel_library.at(i));
  }
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  util::TextTable table({"threads", "wall-clock (s)", "speedup"});
  table.add_row({"1", util::fmt(serial_s, 2), "1.00x"});
  table.add_row({std::to_string(wide_pool.size()), util::fmt(parallel_s, 2),
                 util::fmt(speedup, 2) + "x"});
  std::cout << table.str() << "\nCSV:\n" << table.csv();
  std::cout << "\nlibraries across thread counts: "
            << (identical ? "IDENTICAL (bitwise)" : "DIFFERENT -- BUG") << "\n";
  bench::report_metrics({"util.pool.", "core.policy_init."});

  bench::paper_note(
      "offline policy initialization is the expensive phase the paper "
      "amortizes per context; contexts are independent, so the library "
      "build should scale with cores without changing any learned policy",
      "speedup table above (expect >= 2x at 4 threads on a 4-core host) and "
      "a bitwise-identical library at every thread count");

  if (!identical) return 1;
  return 0;
}
