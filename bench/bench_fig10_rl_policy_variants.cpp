// Figure 10 -- online adaptation of three RL policy variants under the
// dynamic schedule (context-1 -> 2 -> 3): adaptive policy initialization,
// static (pinned) policy initialization, and no initialization at all.
//
// Expected shape: adaptive best; static detects the variations and refines
// within ~25 iterations to within ~10% of adaptive; no-init never reaches
// a stable state and is much worse throughout.
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 10", "performance due to different RL policies");

  const auto schedule = bench::paper_schedule();
  const std::vector<env::SystemContext> contexts = {
      schedule[0].context, schedule[1].context, schedule[2].context};
  const auto library = bench::build_offline_library(contexts);
  const std::uint64_t run_seed = 600;

  std::vector<core::AgentTrace> traces;
  {
    core::RacOptions opt;
    opt.seed = run_seed;
    core::RacAgent adaptive(opt, library, 0);
    auto env = bench::make_env(contexts[0], run_seed);
    traces.push_back(core::run_agent(*env, adaptive, schedule, 90));
    traces.back().agent = "adaptive init";
  }
  {
    core::RacOptions opt;
    opt.seed = run_seed;
    opt.adaptive_policy_switching = false;
    core::RacAgent pinned(opt, library, 0);  // stays on the context-1 policy
    auto env = bench::make_env(contexts[0], run_seed);
    traces.push_back(core::run_agent(*env, pinned, schedule, 90));
    traces.back().agent = "static init";
  }
  {
    core::RacOptions opt;
    opt.seed = run_seed;
    core::RacAgent cold(opt, core::InitialPolicyLibrary{});
    auto env = bench::make_env(contexts[0], run_seed);
    traces.push_back(core::run_agent(*env, cold, schedule, 90));
    traces.back().agent = "w/o init";
  }

  bench::report_traces("Figure 10: RL policy variants under context changes",
                       "iteration", traces);

  util::TextTable summary({"agent", "ctx-1 mean", "ctx-2 mean", "ctx-3 mean",
                           "overall", "stable tail (last 10 of ctx-3)"});
  for (const auto& trace : traces) {
    summary.add_row({trace.agent, util::fmt(trace.mean_response_ms(0, 30), 1),
                     util::fmt(trace.mean_response_ms(30, 60), 1),
                     util::fmt(trace.mean_response_ms(60, 90), 1),
                     util::fmt(trace.mean_response_ms(), 1),
                     util::fmt(trace.mean_response_ms(80, 90), 1)});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();

  const double static_loss = traces[1].mean_response_ms(80, 90) /
                                 traces[0].mean_response_ms(80, 90) -
                             1.0;
  std::cout << "\nstatic-init final-segment loss vs adaptive: "
            << util::fmt(static_loss * 100.0, 1) << "%\n";

  bench::paper_note(
      "adaptive init performs best; static init detects the workload change "
      "(iteration 30) and the VM reallocation (iteration 60) and refines "
      "within ~25 iterations to < 10% loss; the agent without any initial "
      "policy cannot drive the system to a stable state and is much worse",
      "see summary: the ordering adaptive <= static << no-init holds per "
      "segment, and the static-init final-segment loss is printed above");
  return 0;
}
