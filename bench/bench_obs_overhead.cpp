// Observability overhead -- proves the telemetry subsystem is cheap enough
// to leave on in production: the full management loop (RAC agent + analytic
// environment, online retraining every interval) is timed with no trace
// sink, with a null sink, with an in-memory sink, and with a JSONL file
// sink, plus profiling timers on/off. The headline check: instrumentation
// overhead stays under 5% of loop time, and the disabled paths cost
// nanoseconds per operation.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>

#include "core/rac_agent.hpp"
#include "harness.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "util/table.hpp"

namespace {

using namespace rac;

constexpr int kIterations = 40;  // management-loop intervals per run
constexpr int kRepetitions = 7;  // per arm; min taken (robust to jitter)

double run_once(const core::InitialPolicyLibrary& library,
                obs::TraceSink* sink) {
  // Fresh agent and environment per run, identical seeds: every arm does
  // exactly the same learning work, so timing differences isolate the
  // instrumentation.
  core::RacOptions options;
  options.seed = 42;
  core::RacAgent agent(options, library, 0);
  auto env = bench::make_env(env::table2_context(1), 42);

  core::RunOptions run_options;
  run_options.sink = sink;
  const auto start = std::chrono::steady_clock::now();
  core::run_agent(*env, agent, {}, kIterations, run_options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

double ns_per_op(std::uint64_t ops, void (*body)(std::uint64_t)) {
  const auto start = std::chrono::steady_clock::now();
  body(ops);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         static_cast<double>(ops);
}

}  // namespace

int main() {
  bench::banner("obs overhead",
                "cost of metrics, decision tracing, and profiling timers");

  std::cout << "training one initial policy offline ...\n";
  core::InitialPolicyLibrary library =
      bench::build_offline_library({env::table2_context(1)});

  obs::NullTraceSink null_sink;
  obs::MemoryTraceSink memory_sink;
  const std::string jsonl_path = "/tmp/rac_obs_overhead.jsonl";
  obs::JsonlTraceSink jsonl_sink(jsonl_path);

  struct Arm {
    const char* name;
    obs::TraceSink* sink;
    bool profiling;
    double best_ms = std::numeric_limits<double>::infinity();
  };
  // "profiling on" enables both the ScopedTimer histograms and the
  // hierarchical phase profiler (obs::ProfileScope) wired through the
  // management loop -- the <5% check covers the whole instrumentation set.
  Arm arms[] = {
      {"no sink, profiling off", nullptr, false},
      {"null sink, profiling on", &null_sink, true},
      {"memory sink, profiling on", &memory_sink, true},
      {"JSONL sink, profiling on", &jsonl_sink, true},
  };

  // Warm-up run (allocators, caches), then interleaved repetitions so CPU
  // frequency drift hits every arm equally.
  run_once(library, nullptr);
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (Arm& arm : arms) {
      obs::set_profiling(arm.profiling);
      const double ms = run_once(library, arm.sink);
      arm.best_ms = std::min(arm.best_ms, ms);
      if (arm.sink == &memory_sink) memory_sink.clear();
    }
  }
  obs::set_profiling(true);

  const double baseline_ms = arms[0].best_ms;
  util::TextTable table({"configuration", "best of 7 (ms)", "overhead"});
  double worst_overhead = 0.0;
  for (const Arm& arm : arms) {
    const double overhead = arm.best_ms / baseline_ms - 1.0;
    worst_overhead = std::max(worst_overhead, overhead);
    table.add_row({arm.name, util::fmt(arm.best_ms, 2),
                   util::fmt(overhead * 100.0, 2) + "%"});
  }
  std::cout << "\n" << kIterations << "-interval management loop ("
            << kRepetitions << " repetitions, min):\n"
            << table.str();

  // Primitive costs: what one metric update / disabled instrument costs.
  static obs::Counter& counter =
      obs::default_registry().counter("bench.obs_overhead.counter");
  static obs::Histogram& histogram = obs::default_registry().histogram(
      "bench.obs_overhead.histogram", obs::latency_us_bounds());
  const double counter_ns = ns_per_op(10'000'000, [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) counter.add(1);
  });
  const double histogram_ns = ns_per_op(10'000'000, [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      histogram.observe(static_cast<double>(i & 1023));
    }
  });
  obs::set_profiling(false);
  const double timer_off_ns = ns_per_op(10'000'000, [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      obs::ScopedTimer t(&histogram);
    }
  });
  const double scope_off_ns = ns_per_op(10'000'000, [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      obs::ProfileScope s("bench.obs_overhead.off");
    }
  });
  obs::set_profiling(true);
  // The enabled ProfileScope is the cost ceiling for one phase boundary
  // (two clock reads + a child lookup); the instrumented code pays it per
  // management-loop phase, never per simulated event.
  const double scope_on_ns = ns_per_op(1'000'000, [](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      obs::ProfileScope s("bench.obs_overhead.on");
    }
  });

  util::TextTable prims({"primitive", "ns/op"});
  prims.add_row({"Counter::add", util::fmt(counter_ns, 1)});
  prims.add_row({"Histogram::observe", util::fmt(histogram_ns, 1)});
  prims.add_row({"ScopedTimer (profiling off)", util::fmt(timer_off_ns, 1)});
  prims.add_row({"ProfileScope (profiling off)", util::fmt(scope_off_ns, 1)});
  prims.add_row({"ProfileScope (profiling on)", util::fmt(scope_on_ns, 1)});
  std::cout << "\n" << prims.str();

  const bool pass = worst_overhead < 0.05;
  std::cout << "\nCHECK: worst instrumentation overhead "
            << util::fmt(worst_overhead * 100.0, 2) << "% vs <5% budget -- "
            << (pass ? "PASS" : "FAIL") << "\n";
  std::remove(jsonl_path.c_str());

  bench::paper_note(
      "(beyond the paper) telemetry must not perturb the control loop it "
      "observes: <5% overhead with every sink enabled, ~0 when disabled",
      pass ? "within budget; disabled primitives cost nanoseconds"
           : "OVER BUDGET -- see table");
  return pass ? 0 : 1;
}
