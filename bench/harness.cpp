#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <optional>

#include "core/library_io.hpp"
#include "obs/bench_report.hpp"
#include "obs/pool.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace rac::bench {

namespace {

// State of the per-process report session started by banner(). The digest
// sink lives here (not in the session) because trace_sink() may be touched
// before banner() runs.
struct ReportSession {
  bool active = false;
  std::string dir;
  std::string bench;
  std::uint64_t seed = 0;
  std::chrono::steady_clock::time_point start{};
};

ReportSession& report_session() {
  static ReportSession session;
  return session;
}

obs::DigestTraceSink& digest_sink() {
  static obs::DigestTraceSink sink;
  return sink;
}

bool report_env_set() {
  const char* dir = std::getenv("RAC_BENCH_REPORT");
  return dir != nullptr && *dir != '\0';
}

// The bench name keys the report file and run ID; argv[0] is not
// available here, so resolve the executable basename from the OS.
std::string executable_name() {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.filename().string();
  return "bench_unknown";
}

void write_report_at_exit() {
  ReportSession& session = report_session();
  if (!session.active) return;
  obs::BenchReport report;
  report.bench = session.bench;
  report.seed = session.seed;
  report.threads = obs::shared_pool().size();
  report.quick = quick();
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - session.start)
                       .count();
  report.trace_digest = digest_sink().digest();
  report.phases = obs::Profiler::default_profiler().snapshot();
  report.metrics = obs::default_registry().snapshot();
  obs::fill_host_metadata(report);
  try {
    obs::write_bench_report(session.dir, report);
    std::cout << "bench report -> " << session.dir << "/" << report.bench
              << ".json (" << obs::run_id(report) << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "bench report: write failed: " << e.what() << "\n";
  }
}

}  // namespace

bool quick() {
  static const bool value = [] {
    const char* v = std::getenv("RAC_BENCH_QUICK");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return value;
}

int scaled(int full, int quick_value) { return quick() ? quick_value : full; }

void set_report_seed(std::uint64_t seed) { report_session().seed = seed; }

env::AnalyticEnvOptions default_env_options(std::uint64_t seed,
                                            double noise_sigma) {
  env::AnalyticEnvOptions opt;
  opt.seed = seed;
  opt.noise_sigma = noise_sigma;
  return opt;
}

std::unique_ptr<env::AnalyticEnv> make_env(const env::SystemContext& context,
                                           std::uint64_t seed,
                                           double noise_sigma) {
  return std::make_unique<env::AnalyticEnv>(
      context, default_env_options(seed, noise_sigma));
}

namespace {

// Cache filename for a library build: the context list plus the seed fully
// determine the (deterministic) training result. Context tokens contain
// '/', which cannot appear in a filename; the mix name plus level digit is
// unique and filesystem-safe.
std::string library_cache_name(const std::vector<env::SystemContext>& contexts,
                               std::uint64_t seed) {
  std::string name = "lib";
  for (const auto& context : contexts) {
    name += "-";
    name += workload::mix_name(context.mix);
    name += std::to_string(static_cast<int>(context.level));
  }
  name += "-s" + std::to_string(seed);
  // Quick-mode builds train with fewer sweeps; never let them satisfy (or
  // be satisfied by) a full-mode cache entry.
  if (quick()) name += "-q";
  name += ".rac";
  return name;
}

// Load a cached library if it exists and matches the requested contexts;
// nullopt means "rebuild". A stale or corrupt cache file is reported and
// ignored, never trusted.
std::optional<core::InitialPolicyLibrary> try_load_cached_library(
    const std::string& path,
    const std::vector<env::SystemContext>& contexts) {
  std::optional<core::InitialPolicyLibrary> loaded;
  try {
    loaded = core::load_library_file(path);
  } catch (const std::ios_base::failure&) {
    return std::nullopt;  // no cache file yet
  } catch (const std::exception& e) {
    std::cerr << "library cache: ignoring unreadable " << path << ": "
              << e.what() << "\n";
    return std::nullopt;
  }
  if (loaded->size() != contexts.size()) {
    std::cerr << "library cache: ignoring stale " << path << "\n";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (!(loaded->at(i).context == contexts[i])) {
      std::cerr << "library cache: ignoring stale " << path << "\n";
      return std::nullopt;
    }
  }
  return loaded;
}

}  // namespace

core::InitialPolicyLibrary build_offline_library(
    const std::vector<env::SystemContext>& contexts, std::uint64_t seed) {
  // RAC_LIBRARY_CACHE=<dir> caches the offline build on disk: training is
  // the dominant cost of every bench binary and is bit-deterministic, so
  // a second run with the same contexts and seed can just reload it.
  const char* cache_dir = std::getenv("RAC_LIBRARY_CACHE");
  std::string cache_path;
  if (cache_dir != nullptr && *cache_dir != '\0') {
    cache_path =
        std::string(cache_dir) + "/" + library_cache_name(contexts, seed);
    if (auto cached = try_load_cached_library(cache_path, contexts)) {
      std::cout << "library cache: loaded " << cache_path << "\n";
      return std::move(*cached);
    }
  }

  core::PolicyInitOptions init;
  init.offline_td.max_sweeps = scaled(150, 40);
  core::InitialPolicyLibrary library = core::build_library(
      contexts,
      [&](const env::SystemContext& ctx) { return make_env(ctx, seed); },
      init);

  if (!cache_path.empty()) {
    try {
      core::save_library_file(cache_path, library);
      std::cout << "library cache: saved " << cache_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "library cache: could not save " << cache_path << ": "
                << e.what() << "\n";
    }
  }
  return library;
}

core::ContextSchedule paper_schedule() {
  return {
      {0, env::table2_context(1)},
      {30, env::table2_context(2)},
      {60, env::table2_context(3)},
  };
}

void report_traces(const std::string& title, const std::string& x_label,
                   const std::vector<core::AgentTrace>& traces) {
  if (traces.empty()) return;

  std::vector<std::string> headers = {x_label, "context"};
  for (const auto& trace : traces) headers.push_back(trace.agent + " (ms)");
  util::TextTable table(headers);
  const std::size_t n = traces.front().records.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(traces.front().records[i].iteration));
    row.push_back(traces.front().records[i].context.name());
    for (const auto& trace : traces) {
      row.push_back(util::fmt(trace.records[i].response_ms, 1));
    }
    table.add_row(std::move(row));
  }

  std::cout << "\n" << title << "\n" << table.str() << "\n";
  std::cout << "CSV:\n" << table.csv() << "\n";

  util::AsciiChart chart(78, 20);
  chart.set_title(title);
  chart.set_x_label(x_label);
  chart.set_y_label("mean response time (ms)");
  const std::string symbols = "*o+x#@";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    util::Series series;
    series.name = traces[t].agent;
    series.symbol = symbols[t % symbols.size()];
    for (const auto& record : traces[t].records) {
      series.xs.push_back(static_cast<double>(record.iteration));
      series.ys.push_back(record.response_ms);
    }
    chart.add_series(std::move(series));
  }
  std::cout << chart.str() << "\n";
}

void banner(const std::string& artifact, const std::string& description) {
  ReportSession& session = report_session();
  if (session.start == std::chrono::steady_clock::time_point{}) {
    session.start = std::chrono::steady_clock::now();
    session.bench = executable_name();
    if (report_env_set()) {
      session.dir = std::getenv("RAC_BENCH_REPORT");
      session.active = true;
      // Construct every static the atexit writer touches BEFORE registering
      // it: atexit handlers and static destructors share one LIFO, so
      // anything first constructed after this registration is destroyed
      // before the writer runs. That covers the sinks, the default metrics
      // registry (a destructible function-local static), and the shared
      // pool -- which must not be first-constructed during exit either,
      // since that would spawn worker threads mid-teardown.
      digest_sink();
      trace_sink();
      obs::default_registry();
      obs::Profiler::default_profiler();
      obs::shared_pool();
      std::atexit(write_report_at_exit);
      std::cout << "bench report session: " << session.dir << "/"
                << session.bench << ".json at exit\n";
    }
  }
  std::cout << "==================================================================\n"
            << artifact << " -- " << description << "\n"
            << "==================================================================\n";
}

void paper_note(const std::string& expectation, const std::string& measured) {
  std::cout << "\nPAPER:    " << expectation << "\nMEASURED: " << measured
            << "\n\n";
}

obs::TraceSink& trace_sink() {
  // Composition with the report digest: RAC_TRACE and RAC_BENCH_REPORT are
  // independent. RAC_TRACE alone -> JSONL sink; RAC_BENCH_REPORT alone ->
  // digest sink; both -> a tee feeding both, so the report's digest covers
  // exactly the events the trace file received; neither -> null sink.
  static std::unique_ptr<obs::TraceSink> sink = [] {
    std::unique_ptr<obs::TraceSink> from_env;
    try {
      from_env = obs::sink_from_env();
    } catch (const std::exception& e) {
      std::cerr << "RAC_TRACE disabled: " << e.what() << "\n";
    }
    if (from_env != nullptr) {
      std::cout << "decision trace -> "
                << static_cast<obs::JsonlTraceSink*>(from_env.get())->path()
                << " (JSONL, one record per iteration per agent)\n";
      if (report_env_set()) {
        struct DigestTee final : obs::TraceSink {
          explicit DigestTee(std::unique_ptr<obs::TraceSink> inner)
              : inner_(std::move(inner)) {}
          void emit(const obs::TraceEvent& event) override {
            digest_sink().emit(event);
            inner_->emit(event);
          }
          void flush() override { inner_->flush(); }
          std::unique_ptr<obs::TraceSink> inner_;
        };
        return std::unique_ptr<obs::TraceSink>(
            new DigestTee(std::move(from_env)));
      }
      return from_env;
    }
    if (report_env_set()) {
      struct DigestOnly final : obs::TraceSink {
        void emit(const obs::TraceEvent& event) override {
          digest_sink().emit(event);
        }
      };
      return std::unique_ptr<obs::TraceSink>(new DigestOnly);
    }
    return std::unique_ptr<obs::TraceSink>(new obs::NullTraceSink);
  }();
  return *sink;
}

core::AgentTrace run_traced(env::Environment& environment,
                            core::ConfigAgent& agent,
                            const core::ContextSchedule& schedule,
                            int iterations) {
  core::RunOptions options;
  options.sink = &trace_sink();
  return core::run_agent(environment, agent, schedule, iterations, options);
}

std::vector<core::AgentTrace> run_parallel(
    const std::vector<std::function<core::AgentTrace()>>& runs) {
  // Touch the sink before fanning out so its one-time construction (which
  // prints a banner) happens on the calling thread, not mid-run.
  trace_sink();
  return obs::shared_pool().parallel_map(runs.size(),
                                         [&](std::size_t i) { return runs[i](); });
}

void report_metrics(const std::vector<std::string>& prefixes) {
  obs::MetricsSnapshot snap = obs::default_registry().snapshot();
  if (!prefixes.empty()) {
    const auto matches = [&](const std::string& name) {
      return std::any_of(prefixes.begin(), prefixes.end(),
                         [&](const std::string& p) {
                           return name.compare(0, p.size(), p) == 0;
                         });
    };
    std::erase_if(snap.counters,
                  [&](const auto& c) { return !matches(c.name); });
    std::erase_if(snap.gauges, [&](const auto& g) { return !matches(g.name); });
    std::erase_if(snap.histograms,
                  [&](const auto& h) { return !matches(h.name); });
  }
  std::cout << "\ntelemetry (obs::default_registry):\n" << snap.to_text();
}

}  // namespace rac::bench
