// Table 1 -- the tunable performance-critical parameters: name, tier,
// range, default, plus this implementation's fine-grid step and parameter
// group. Verified against the live configuration space.
#include <iostream>

#include "config/space.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Table 1", "tunable performance-critical parameters");

  util::TextTable table({"Parameter", "Tier", "Range", "Default", "Fine step",
                         "Grid size", "Group"});
  for (const auto& spec : config::catalog()) {
    const auto grid = config::ConfigSpace::fine_grid(spec.id);
    table.add_row({std::string(spec.name), std::string(config::tier_name(spec.tier)),
                   "[" + std::to_string(spec.min) + ", " +
                       std::to_string(spec.max) + "]",
                   std::to_string(spec.default_value),
                   std::to_string(spec.fine_step),
                   std::to_string(grid.size()),
                   std::string(config::group_name(spec.group))});
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv();

  // Derived state-space sizes the paper discusses (Section 4).
  double fine_states = 1.0;
  for (config::ParamId id : config::kAllParams) {
    fine_states *= static_cast<double>(config::ConfigSpace::fine_grid(id).size());
  }
  const config::ConfigSpace space(4);
  std::cout << "\nfine-grid joint state space : " << fine_states << " states\n"
            << "grouped coarse sample set   : " << space.coarse_grid().size()
            << " configurations (4 levels ^ 4 groups)\n"
            << "actions per state           : " << config::kNumActions
            << " (keep + inc/dec per parameter)\n";

  bench::paper_note(
      "eight runtime-tunable parameters across the web and application "
      "tiers; web: MaxClients [50,600]=150, KeepAlive [1,21]=15, "
      "MinSpare [5,85]=5, MaxSpare [15,95]=15; app: MaxThreads "
      "[50,600]=200, Session timeout [1,35]=30, minSpare [5,85]=5, "
      "maxSpare [15,95]=50",
      "catalog above matches; exponential joint space motivates the "
      "grouped coarse sampling of Algorithm 2");
  return 0;
}
