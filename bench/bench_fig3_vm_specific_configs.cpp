// Figure 3 -- performance under configurations tuned for different VM
// levels: tune the full 8-parameter configuration for each level (constant
// ordering workload), then cross-evaluate every level under every
// level-tuned configuration.
//
// Expected shape: no single configuration is best for all platforms.
#include <iostream>

#include "core/search.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 3",
                "performance under configurations tuned for different VM levels");

  const auto mix = workload::MixType::kOrdering;
  std::vector<config::Configuration> tuned;
  for (auto level : env::kAllLevels) {
    auto env = bench::make_env({mix, level}, 42, /*noise=*/0.0);
    core::SearchOptions search;
    search.coarse_levels = 4;
    const auto result = core::find_best_configuration(*env, search);
    tuned.push_back(result.best);
    std::cout << "best config for " << env::level_name(level) << ": "
              << result.best.to_string() << "  ("
              << util::fmt(result.best_response_ms, 1) << " ms)\n";
  }

  util::TextTable table({"Platform under test", "L1-best (ms)", "L2-best (ms)",
                         "L3-best (ms)", "own-best is column min?"});
  for (std::size_t l = 0; l < env::kAllLevels.size(); ++l) {
    auto env = bench::make_env({mix, env::kAllLevels[l]}, 43, /*noise=*/0.0);
    std::vector<double> rts;
    for (const auto& c : tuned) rts.push_back(env->evaluate(c).response_ms);
    const bool own_is_best =
        rts[l] <= *std::min_element(rts.begin(), rts.end()) + 1e-9;
    table.add_row({env::level_name(env::kAllLevels[l]), util::fmt(rts[0], 1),
                   util::fmt(rts[1], 1), util::fmt(rts[2], 1),
                   own_is_best ? "yes" : "no"});
  }
  std::cout << "\n" << table.str() << "\nCSV:\n" << table.csv();

  bench::paper_note(
      "no single configuration is best for all platforms; configurations "
      "tuned for one resource level misbehave on another (sometimes "
      "counter-intuitively)",
      "each platform row is minimized by (or ties with) its own tuned "
      "configuration; cross entries are measurably worse");
  return 0;
}
