// Micro-benchmarks (google-benchmark) for the building blocks whose cost
// bounds the management loop: MVA solves, the analytic environment
// evaluation, DES simulation throughput, Q-table operations, batch TD
// retraining, and the regression fit. Also carries the ablation benches
// for the design decisions called out in DESIGN.md section 5 (two model
// fidelities; sparse Q-table).
#include <benchmark/benchmark.h>

#include "config/space.hpp"
#include "harness.hpp"
#include "core/policy_init.hpp"
#include "env/analytic_env.hpp"
#include "env/sim_env.hpp"
#include "queueing/mva.hpp"
#include "rl/td_learner.hpp"
#include "util/regression.hpp"
#include "util/rng.hpp"

namespace {

using namespace rac;

void BM_MvaSolve(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  queueing::ClosedNetwork net(10.0);
  net.add_station(queueing::make_multiserver_station("web", 2, 100.0, population));
  net.add_station(queueing::make_multiserver_station("app", 4, 15.0, population));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.solve(population));
  }
}
BENCHMARK(BM_MvaSolve)->Arg(100)->Arg(400)->Arg(1000);

void BM_MvaThroughputCurve(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  queueing::ClosedNetwork net(0.0);
  net.add_station(queueing::make_multiserver_station("web", 2, 100.0, population));
  net.add_station(queueing::make_multiserver_station("app", 4, 15.0, population));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.throughput_curve(population));
  }
}
BENCHMARK(BM_MvaThroughputCurve)->Arg(400);

// Design ablation: one analytic evaluation (the fast model twin) ...
void BM_AnalyticEvaluate(benchmark::State& state) {
  env::AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  env::AnalyticEnv e({workload::MixType::kShopping, env::VmLevel::kLevel1}, opt);
  const config::Configuration c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluate(c));
  }
}
BENCHMARK(BM_AnalyticEvaluate);

// ... vs one DES measurement interval (the ground-truth substrate). The
// ratio justifies running the RL sweeps on the analytic twin.
void BM_DesMeasurementInterval(benchmark::State& state) {
  tiersim::SystemParams params;
  tiersim::SimSetup setup;
  setup.num_clients = 200;
  setup.seed = 3;
  for (auto _ : state) {
    state.PauseTiming();
    tiersim::ThreeTierSystem sys(params, setup);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sys.run(10.0, 60.0));
  }
}
BENCHMARK(BM_DesMeasurementInterval)->Unit(benchmark::kMillisecond);

void BM_QTableLookup(benchmark::State& state) {
  rl::QTable table;
  util::Rng rng(1);
  std::vector<config::Configuration> configs;
  for (int i = 0; i < 10000; ++i) {
    configs.push_back(config::ConfigSpace::random_fine(rng));
    table.set_q(configs.back(), config::Action::keep(), rng.uniform());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.q(configs[i % configs.size()], config::Action::keep()));
    ++i;
  }
}
BENCHMARK(BM_QTableLookup);

void BM_BatchRetrain(benchmark::State& state) {
  const int experienced = static_cast<int>(state.range(0));
  util::Rng rng(2);
  std::vector<config::Configuration> states_list;
  config::Configuration c;
  for (int i = 0; i < experienced; ++i) {
    states_list.push_back(c);
    c = config::ConfigSpace::apply(
        c, config::Action(rng.uniform_int(0, config::kNumActions - 1)));
  }
  const rl::RewardFn reward = [](const config::Configuration& s) {
    return -static_cast<double>(s.value(config::ParamId::kMaxClients)) / 600.0;
  };
  rl::TdParams params;
  params.max_sweeps = 40;
  params.trajectory_limit = 8;
  for (auto _ : state) {
    rl::QTable table;
    benchmark::DoNotOptimize(
        rl::batch_train(table, states_list, reward, params, rng));
  }
}
BENCHMARK(BM_BatchRetrain)->Arg(30)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_QuadraticSurfaceFit(benchmark::State& state) {
  util::Rng rng(3);
  const std::size_t n = 257;
  std::vector<double> points;
  std::vector<double> ys;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = config::ConfigSpace::random_fine(rng);
    const auto z = c.normalized_values();
    points.insert(points.end(), z.begin(), z.end());
    ys.push_back(rng.uniform(4.0, 9.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::QuadraticSurface::fit(
        points, config::kNumParams, ys, 1e-4, 3));
  }
}
BENCHMARK(BM_QuadraticSurfaceFit)->Unit(benchmark::kMillisecond);

void BM_PolicyInitialization(benchmark::State& state) {
  env::AnalyticEnvOptions opt;
  opt.seed = 7;
  for (auto _ : state) {
    env::AnalyticEnv env({workload::MixType::kShopping, env::VmLevel::kLevel1},
                         opt);
    core::PolicyInitOptions init;
    init.coarse_levels = 3;  // smaller budget for the micro-bench
    init.offline_td.max_sweeps = 60;
    benchmark::DoNotOptimize(core::learn_initial_policy(env, init));
  }
}
BENCHMARK(BM_PolicyInitialization)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

// Expanded BENCHMARK_MAIN with the harness banner first: banner() starts
// the report session, so RAC_BENCH_REPORT captures this binary's phase
// tree and process stats like every other bench target.
int main(int argc, char** argv) {
  rac::bench::banner("Micro-benchmarks",
                     "google-benchmark suite for the management-loop "
                     "building blocks");
  // RAC_BENCH_QUICK=1 shortens every benchmark's measurement window; an
  // explicit --benchmark_min_time on the command line still wins because
  // later flags override earlier ones.
  std::vector<char*> args(argv, argv + argc);
  static char quick_min_time[] = "--benchmark_min_time=0.01";
  if (rac::bench::quick()) args.insert(args.begin() + 1, quick_min_time);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
