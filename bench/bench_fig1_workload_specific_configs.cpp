// Figure 1 -- performance under configurations tuned for different
// workloads: for each TPC-W mix, find its best configuration (grid scan +
// hill descent, like the paper's "best out of our test cases"), then run
// EVERY mix under EVERY mix-tuned configuration on the Level-1 platform.
//
// Expected shape: the diagonal wins its column; the ordering column blows
// up under browse-tuned configurations (no universal best configuration).
#include <iostream>

#include "core/search.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 1",
                "performance under configurations tuned for different workloads");

  const auto level = env::VmLevel::kLevel1;
  std::vector<config::Configuration> tuned;
  std::vector<double> tuned_rt;
  for (workload::MixType mix : workload::kAllMixes) {
    auto env = bench::make_env({mix, level}, 42, /*noise_sigma=*/0.0);
    core::SearchOptions search;
    search.coarse_levels = 4;
    const auto result = core::find_best_configuration(*env, search);
    tuned.push_back(result.best);
    tuned_rt.push_back(result.best_response_ms);
    std::cout << "best config for " << workload::mix_name(mix) << ": "
              << result.best.to_string() << "  ("
              << util::fmt(result.best_response_ms, 1) << " ms)\n";
  }

  util::TextTable table({"Workload under test", "browsing-best (ms)",
                         "shopping-best (ms)", "ordering-best (ms)",
                         "own-best / cross-best"});
  util::AsciiChart chart(78, 16);
  chart.set_title("Figure 1: response time by (workload, tuned-for) pair");
  chart.set_x_label("0=browsing 1=shopping 2=ordering workload");
  const std::string symbols = "bso";
  for (std::size_t w = 0; w < workload::kAllMixes.size(); ++w) {
    const auto mix = workload::kAllMixes[w];
    auto env = bench::make_env({mix, level}, 43, /*noise_sigma=*/0.0);
    std::vector<std::string> row = {std::string(workload::mix_name(mix))};
    double own = 0.0;
    double worst_cross = 0.0;
    for (std::size_t t = 0; t < tuned.size(); ++t) {
      const double rt = env->evaluate(tuned[t]).response_ms;
      row.push_back(util::fmt(rt, 1));
      if (t == w) {
        own = rt;
      } else {
        worst_cross = std::max(worst_cross, rt);
      }
    }
    row.push_back(util::fmt(own / worst_cross, 3));
    table.add_row(std::move(row));
  }
  // Chart: one series per tuned-for configuration across workloads.
  for (std::size_t t = 0; t < tuned.size(); ++t) {
    util::Series s;
    s.name = std::string(workload::mix_name(workload::kAllMixes[t])) + "-best";
    s.symbol = symbols[t];
    for (std::size_t w = 0; w < workload::kAllMixes.size(); ++w) {
      auto env = bench::make_env({workload::kAllMixes[w], level}, 43, 0.0);
      s.xs.push_back(static_cast<double>(w));
      s.ys.push_back(env->evaluate(tuned[t]).response_ms);
    }
    chart.add_series(std::move(s));
  }

  std::cout << "\n" << table.str() << "\nCSV:\n" << table.csv() << "\n"
            << chart.str();

  bench::paper_note(
      "no single configuration is good for all workloads; the best "
      "configuration for shopping or browsing yields extremely poor "
      "performance under the ordering workload",
      "diagonal entries win each row; browse-tuned configurations are "
      "several times slower under ordering (see the ordering row)");
  return 0;
}
