// Figure 7 -- effect of policy initialization: RAC with an offline-trained
// initial policy vs RAC learning from a cold (empty) Q-table, under (a)
// context-2 and (b) context-4.
//
// Expected shape: the initialized agent stabilizes within ~12 iterations;
// the cold agent wanders, with response times several times higher.
#include <iostream>

#include "core/rac_agent.hpp"
#include "harness.hpp"

namespace {

void run_panel(const char* label, int context_number, std::uint64_t seed) {
  using namespace rac;
  const auto ctx = env::table2_context(context_number);
  const auto library = bench::build_offline_library({ctx});

  std::vector<core::AgentTrace> traces;
  {
    core::RacOptions opt;
    opt.seed = seed;
    core::RacAgent with_init(opt, library, 0);
    auto env = bench::make_env(ctx, seed);
    traces.push_back(core::run_agent(*env, with_init, {}, 40));
    traces.back().agent = "w/ init policy";
  }
  {
    core::RacOptions opt;
    opt.seed = seed;
    core::RacAgent without_init(opt, core::InitialPolicyLibrary{});
    auto env = bench::make_env(ctx, seed);
    traces.push_back(core::run_agent(*env, without_init, {}, 40));
    traces.back().agent = "w/o init policy";
  }

  bench::report_traces(std::string("Figure 7") + label + ": context-" +
                           std::to_string(context_number) + " (" + ctx.name() +
                           ")",
                       "iteration", traces);

  util::TextTable summary({"agent", "last-15 mean (ms)", "settled at"});
  for (const auto& trace : traces) {
    summary.add_row({trace.agent, util::fmt(trace.mean_response_ms(25, 40), 1),
                     std::to_string(trace.settled_iteration(0, -1, 5, 0.5))});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();
  std::cout << "w/o-init vs w/-init stable-state ratio: "
            << util::fmt(traces[1].mean_response_ms(25, 40) /
                             traces[0].mean_response_ms(25, 40),
                         2)
            << "x\n";
}

}  // namespace

int main() {
  using namespace rac;
  bench::banner("Figure 7", "performance with and without policy initialization");
  run_panel("(a)", 2, 300);
  run_panel("(b)", 4, 301);

  bench::paper_note(
      "agents with policy initialization drive the system to a stable "
      "state in < 12 iterations; without initialization the agent fails to "
      "stabilize and can run >6x slower (context-4 panel)",
      "see per-panel summaries: the initialized agent settles quickly, the "
      "cold agent's stable-state ratio is several-fold worse");
  return 0;
}
