// Table 2 -- example system contexts (workload mix x VM resources), plus a
// measured column: the default configuration's response time in each
// context (motivating why reconfiguration is needed at all).
#include <iostream>

#include "core/search.hpp"
#include "harness.hpp"
#include "obs/pool.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace rac;
  bench::banner("Table 2", "contexts with different workloads and VM resources");

  util::TextTable table({"Context", "Workload mix", "VM resources",
                         "vCPUs", "Memory (MB)", "Default-config RT (ms)",
                         "Tuned-best RT (ms)"});
  // Each context's tuned-best search runs on its own environment; fan the
  // six searches out on the shared pool and add the rows in context order.
  const auto rows = obs::shared_pool().parallel_map(
      6, [&](std::size_t i) -> std::vector<std::string> {
        const int number = static_cast<int>(i) + 1;
        const auto ctx = env::table2_context(number);
        const auto vm = env::vm_spec(ctx.level);
        auto env = bench::make_env(ctx, 42, /*noise_sigma=*/0.0);
        const double default_rt =
            env->evaluate(config::Configuration::defaults()).response_ms;
        core::SearchOptions search;
        search.coarse_levels = 3;
        const auto best = core::find_best_configuration(*env, search);
        return {"Context-" + std::to_string(number),
                std::string(workload::mix_name(ctx.mix)),
                env::level_name(ctx.level), std::to_string(vm.vcpus),
                util::fmt(vm.mem_mb, 0), util::fmt(default_rt, 1),
                util::fmt(best.best_response_ms, 1)};
      });
  for (auto row : rows) table.add_row(std::move(row));
  std::cout << table.str() << "\nCSV:\n" << table.csv();

  bench::paper_note(
      "six contexts: shopping/L1, ordering/L1, ordering/L3, shopping/L2, "
      "ordering/L2, browsing/L1; no single configuration suits them all",
      "same six contexts; the default-vs-tuned column shows a 2-10x "
      "response-time spread that an auto-configuration agent can recover");
  return 0;
}
