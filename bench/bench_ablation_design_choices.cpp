// Ablations for the design choices DESIGN.md section 5 calls out, plus the
// beyond-paper parameter-selection tool (the paper's stated future work).
//
//   A. Offline sampling budget: coarse levels 3/4/5 -> initial-policy
//      quality (where does the greedy walk from the defaults land?).
//   B. Regression degree: quadratic vs cubic per-dimension terms on the
//      same samples -> prediction quality on the full MaxClients sweep.
//   C. Model fidelity: the agent trained offline on the analytic twin,
//      deployed against the discrete-event ground truth vs against the
//      twin itself.
//   D. Sensitivity-based automatic parameter selection (core/sensitivity).
#include <cmath>
#include <iostream>

#include "config/space.hpp"
#include "core/rac_agent.hpp"
#include "core/sensitivity.hpp"
#include "env/sim_env.hpp"
#include "harness.hpp"
#include "util/regression.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {
using namespace rac;

void ablation_sampling_budget() {
  bench::banner("Ablation A", "offline sampling budget (coarse levels)");
  const auto ctx = env::table2_context(1);
  auto truth = bench::make_env(ctx, 42, 0.0);
  const double default_rt =
      truth->evaluate(config::Configuration::defaults()).response_ms;

  util::TextTable table({"coarse levels", "samples", "greedy-walk RT (ms)",
                         "vs default", "regression R^2"});
  for (int levels : {3, 4, 5}) {
    auto offline = bench::make_env(ctx, 7);
    core::PolicyInitOptions init;
    init.coarse_levels = levels;
    init.offline_td.max_sweeps = 150;
    const auto policy = core::learn_initial_policy(*offline, init);

    config::Configuration s;
    for (int i = 0; i < 25; ++i) {
      const auto a = policy.table.best_action(s);
      if (a.is_keep()) break;
      s = config::ConfigSpace::apply(s, a);
    }
    const double walked_rt = truth->evaluate(s).response_ms;
    const config::ConfigSpace space(levels);
    table.add_row({std::to_string(levels),
                   std::to_string(space.coarse_grid().size() + 1),
                   util::fmt(walked_rt, 1),
                   util::fmt(walked_rt / default_rt, 2) + "x",
                   util::fmt(policy.regression_r2, 3)});
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv() << "\n";
}

void ablation_regression_degree() {
  bench::banner("Ablation B", "regression degree (quadratic vs cubic)");
  const auto ctx = env::table2_context(1);
  auto env = bench::make_env(ctx, 7, 0.05);
  auto truth = bench::make_env(ctx, 42, 0.0);

  const config::ConfigSpace space(4);
  std::vector<double> features;
  std::vector<double> log_rt;
  for (const auto& sample : space.coarse_grid()) {
    const auto z = sample.normalized_values();
    features.insert(features.end(), z.begin(), z.end());
    log_rt.push_back(std::log(env->measure(sample).response_ms));
  }

  // Held-out evaluation set: random grouped configurations at fractions
  // the coarse grid never sampled (the surface is used to predict exactly
  // such states during offline RL and online retraining).
  util::Rng rng(99);
  std::vector<config::Configuration> held_out;
  for (int i = 0; i < 300; ++i) {
    config::GroupFractions f{};
    for (auto& fraction : f) fraction = rng.uniform();
    held_out.push_back(config::ConfigSpace::expand(f));
  }

  util::TextTable table(
      {"per-dim degree", "features", "R^2 on held-out grouped configs"});
  for (int degree : {2, 3}) {
    const auto surface = util::QuadraticSurface::fit(
        features, config::kNumParams, log_rt, 1e-4, degree);
    std::vector<double> observed;
    std::vector<double> predicted;
    for (const auto& c : held_out) {
      observed.push_back(std::log(truth->evaluate(c).response_ms));
      predicted.push_back(surface.predict(c.normalized_values()));
    }
    const std::size_t width =
        1 + static_cast<std::size_t>(degree) * config::kNumParams +
        config::kNumParams * (config::kNumParams - 1) / 2;
    table.add_row({std::to_string(degree), std::to_string(width),
                   util::fmt(util::r_squared(observed, predicted), 3)});
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv() << "\n";
}

void ablation_model_fidelity() {
  bench::banner("Ablation C", "deploying the agent on the DES ground truth");
  const auto ctx = env::table2_context(1);
  core::PolicyInitOptions init;
  init.offline_td.max_sweeps = 150;
  env::AnalyticEnvOptions offline_opt = bench::default_env_options(7);
  offline_opt.num_clients = 400;
  env::AnalyticEnv offline(ctx, offline_opt);
  core::InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(offline, init));

  util::TextTable table({"substrate", "iter-0 RT (ms)", "last-5 mean (ms)",
                         "improvement"});
  {
    core::RacOptions opt;
    opt.seed = 5;
    core::RacAgent agent(opt, library, 0);
    env::AnalyticEnvOptions live = bench::default_env_options(900);
    live.num_clients = 400;
    env::AnalyticEnv env(ctx, live);
    const auto trace = core::run_agent(env, agent, {}, 25);
    table.add_row({"analytic twin", util::fmt(trace.records[0].response_ms, 1),
                   util::fmt(trace.mean_response_ms(20, 25), 1),
                   util::fmt(trace.records[0].response_ms /
                                 trace.mean_response_ms(20, 25),
                             2) +
                       "x"});
  }
  {
    core::RacOptions opt;
    opt.seed = 5;
    core::RacAgent agent(opt, library, 0);
    env::SimEnvOptions sim;
    sim.num_clients = 400;
    sim.warmup_s = 30.0;
    sim.measure_s = 120.0;
    sim.seed = 900;
    env::SimEnv env(ctx, sim);
    const auto trace = core::run_agent(env, agent, {}, 25);
    table.add_row({"discrete-event sim",
                   util::fmt(trace.records[0].response_ms, 1),
                   util::fmt(trace.mean_response_ms(20, 25), 1),
                   util::fmt(trace.records[0].response_ms /
                                 trace.mean_response_ms(20, 25),
                             2) +
                       "x"});
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv() << "\n";
}

void extension_parameter_selection() {
  bench::banner("Extension D",
                "automatic parameter selection by sensitivity analysis");
  auto env = bench::make_env(env::table2_context(2), 42, 0.0);
  core::SensitivityOptions options;
  options.stride = 2;
  const auto report = core::analyze_sensitivity(*env, options);

  util::TextTable table({"rank", "parameter", "impact (max-min)/min",
                         "best value", "sweep min (ms)", "sweep max (ms)"});
  int rank = 1;
  for (const auto& entry : report.ranked) {
    table.add_row({std::to_string(rank++), std::string(config::name(entry.id)),
                   util::fmt(entry.impact(), 3),
                   std::to_string(entry.best_value),
                   util::fmt(entry.min_response_ms, 1),
                   util::fmt(entry.max_response_ms, 1)});
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv();
  const auto selected = report.selected(0.10);
  std::cout << "\nparameters with >= 10% impact (would be auto-selected): ";
  for (const auto id : selected) std::cout << config::name(id) << "  ";
  std::cout << "\n(" << report.evaluations
            << " measurement intervals spent on the analysis)\n\n";
}

}  // namespace

int main() {
  ablation_sampling_budget();
  ablation_regression_degree();
  ablation_model_fidelity();
  extension_parameter_selection();
  return 0;
}
