// Figure 5 -- online performance of the RAC agent vs the static default
// configuration and the trial-and-error agent, across three consecutive
// system contexts (context-1 -> context-2 -> context-3, 30 iterations
// each). The hill-climb agent (an extra baseline beyond the paper) is
// reported alongside.
#include <iostream>

#include "baselines/hill_climb.hpp"
#include "baselines/static_agent.hpp"
#include "baselines/trial_and_error.hpp"
#include "core/rac_agent.hpp"
#include "harness.hpp"

int main() {
  using namespace rac;
  bench::banner("Figure 5", "performance due to different auto-configuration policies");

  // RAC_BENCH_QUICK shrinks each context segment 30 -> 10 iterations (the
  // regression suite needs determinism, not figure fidelity).
  const int seg = bench::scaled(30, 10);
  core::ContextSchedule schedule = bench::paper_schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule[i].start_iteration = static_cast<int>(i) * seg;
  }
  const int iterations = 3 * seg;
  const std::vector<env::SystemContext> contexts = {
      schedule[0].context, schedule[1].context, schedule[2].context};
  std::cout << "training initial policies offline (Algorithm 2) ...\n";
  const auto library = bench::build_offline_library(contexts);

  const std::uint64_t run_seed = 100;
  bench::set_report_seed(run_seed);

  // The four scenarios are independent (own agent, own environment); run
  // them concurrently on the shared pool. Slot order == construction order.
  core::RacOptions rac_options;
  rac_options.seed = run_seed;
  core::RacAgent rac(rac_options, library, 0);
  auto env1 = bench::make_env(contexts[0], run_seed);
  baselines::StaticDefaultAgent static_agent;
  auto env2 = bench::make_env(contexts[0], run_seed);
  baselines::TrialAndErrorAgent tae;
  auto env3 = bench::make_env(contexts[0], run_seed);
  baselines::HillClimbAgent hill;
  auto env4 = bench::make_env(contexts[0], run_seed);
  const std::vector<core::AgentTrace> traces = bench::run_parallel({
      [&] { return bench::run_traced(*env1, rac, schedule, iterations); },
      [&] { return bench::run_traced(*env2, static_agent, schedule, iterations); },
      [&] { return bench::run_traced(*env3, tae, schedule, iterations); },
      [&] { return bench::run_traced(*env4, hill, schedule, iterations); },
  });

  bench::report_traces("Figure 5: response time per iteration", "iteration",
                       traces);

  util::TextTable summary({"agent", "ctx-1 mean", "ctx-2 mean", "ctx-3 mean",
                           "overall mean", "vs RAC"});
  const double rac_overall = traces[0].mean_response_ms();
  for (const auto& trace : traces) {
    const double overall = trace.mean_response_ms();
    summary.add_row({trace.agent, util::fmt(trace.mean_response_ms(0, seg), 1),
                     util::fmt(trace.mean_response_ms(seg, 2 * seg), 1),
                     util::fmt(trace.mean_response_ms(2 * seg, 3 * seg), 1),
                     util::fmt(overall, 1),
                     util::fmt(overall / rac_overall, 2) + "x"});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();
  std::cout << "\nRAC policy switches: " << rac.policy_switches() << "\n";
  bench::report_metrics({"core.rac.", "core.violation.", "core.runner.",
                         "rl.td.", "env.analytic."});
  for (int segment = 0; segment < 3; ++segment) {
    const int start = segment * seg;
    std::cout << "RAC settled in context-" << segment + 1 << " after "
              << traces[0].settled_iteration(start, start + seg, 5, 0.6) - start
              << " iterations\n";
  }

  bench::paper_note(
      "RAC performs best: stable state in < 25 interactions, overall ~30% "
      "better than trial-and-error and ~60% better than the static default; "
      "it detects both context switches and recovers via policy switching",
      "see summary table: RAC's overall mean beats static by the expected "
      "factor and trial-and-error clearly; both context switches detected "
      "(policy switches above); per-segment settling under 25 iterations");
  return 0;
}
