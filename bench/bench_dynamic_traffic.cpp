// Dynamic traffic day -- the RL agent vs the best static configuration
// through a diurnal concurrency cycle with one flash crowd and a gradual
// shopping->ordering mix drift (workload/dynamic.hpp). The paper's premise
// is adapting to workload change; the figure-5 scenario changes context in
// three steps, this one changes traffic every interval.
//
// Beyond the comparison, the binary gates the traffic layer's determinism
// contract and exits nonzero on any failure:
//   * the day's target stream is bitwise identical computed serially and
//     on a 4-thread pool;
//   * the RL day is digest-identical whether the offline library was
//     trained on 1 or 4 threads;
//   * a run checkpointed mid-day and resumed into a fresh environment
//     (model re-installed, cursor sought) reproduces the uninterrupted
//     decision trace byte for byte.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/static_agent.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "core/search.hpp"
#include "core/snapshot.hpp"
#include "harness.hpp"
#include "util/thread_pool.hpp"
#include "workload/dynamic.hpp"

namespace {

using namespace rac;

constexpr env::SystemContext kBaseContext{workload::MixType::kShopping,
                                          env::VmLevel::kLevel1};
// An interactive 600 ms SLA. The nominal-tuned static configuration serves
// shopping@700 at ~90 ms but saturates just past the nominal envelope
// (shopping@1000 ~ 750 ms, ordering@700 ~ 640 ms), so the flash plateau and
// the ordering afternoon both push it over this line while per-regime
// configurations stay comfortably under it.
constexpr double kSlaMs = 600.0;
// The steady daytime workload the operator tunes against, and the two load
// levels the RL library is trained at: the shopping policy at the
// provisioned flash peak, the ordering policy at the afternoon level.
constexpr int kNominalClients = 700;
constexpr int kPeakClients = 1050;
// Management intervals of steady nominal traffic the RL agent sees before
// the measured day starts (the paper's runs likewise measure after the
// agent has walked from the default configuration into its policy's
// operating region -- one Q-greedy action reconfigures one knob, so the
// walk from the default to the capacity region takes tens of intervals).
constexpr int kWarmupIntervals = 32;

struct DayModel {
  std::shared_ptr<const workload::TrafficModel> model;
  std::int64_t onset = -1;  // the single flash-crowd onset interval
  int flash_duration = 0;
  int drift_start = 0;
};

// The day: a full diurnal cycle starting at the night trough, one flash
// crowd (seed-scanned below so exactly one fires, riding the midday dome
// where the diurnal factor is flat), and an afternoon drift from shopping
// into ordering traffic whose full-ordering plateau lands near the nominal
// concurrency.
DayModel build_day(int day) {
  workload::DiurnalParams diurnal;
  diurnal.period_intervals = static_cast<double>(day);
  diurnal.amplitude = 0.22;
  diurnal.phase_intervals = 0.75 * day;  // sin starts at -1: trough at dawn

  workload::MixDriftParams drift;
  drift.from = workload::MixType::kShopping;
  drift.to = workload::MixType::kOrdering;
  // Pin the first full-ordering interval to 0.8*day (diurnal factor 0.93,
  // ~650 ordering clients): safely inside every configuration's ordering
  // envelope. The stress sits in the mixed climb before it -- the drift
  // ramps the ordering share up while the diurnal factor is still above
  // 1.0, which the nominal-tuned static configuration serves near its
  // saturation knee.
  drift.duration_intervals = std::max(2, (29 * day) / 200);
  drift.start_interval = (4 * day) / 5 - drift.duration_intervals;

  workload::FlashCrowdParams flash;
  flash.onset_prob = 0.04;
  flash.ramp_intervals = 2;
  flash.hold_intervals = std::max(3, day / 16);
  flash.decay_intervals = std::max(4, day / 24);
  flash.peak_scale = 1.19;
  const int duration = workload::flash_crowd_duration(flash);
  // Scan for a seed whose day contains exactly one onset, with every hold
  // interval's concurrency inside the [990, 1022]-client band: above the
  // static configuration's saturation knee, below the capacity
  // configuration's. The scan evaluates the real composed diurnal+flash
  // model (flash_onset_at and target_at are pure), so the chosen seed is a
  // constant of (day, parameters).
  std::int64_t onset = -1;
  for (std::uint64_t seed = 0; seed < 100000 && onset < 0; ++seed) {
    flash.seed = seed;
    std::int64_t found = -1;
    int count = 0;
    for (std::int64_t i = 0; i < day; ++i) {
      if (workload::flash_onset_at(flash, i)) {
        ++count;
        found = i;
      }
    }
    if (count != 1 || found < day / 4 ||
        found + duration > drift.start_interval + duration / 2) {
      continue;
    }
    workload::TrafficModel probe;
    probe.add_diurnal(diurnal).add_flash_crowd(flash);
    bool hold_in_band = true;
    const std::int64_t hold_begin = found + flash.ramp_intervals;
    for (std::int64_t i = hold_begin;
         i < hold_begin + flash.hold_intervals && i < day; ++i) {
      const double clients =
          kNominalClients *
          probe.target_at(i, kBaseContext.mix).concurrency_scale;
      hold_in_band = hold_in_band && clients >= 990.0 && clients <= 1022.0;
    }
    if (hold_in_band) onset = found;
  }

  workload::ThinkNoiseParams think;
  think.seed = 11;
  think.sigma = 0.08;

  auto model = std::make_shared<workload::TrafficModel>();
  model->add_diurnal(diurnal)
      .add_flash_crowd(flash)
      .add_mix_drift(drift)
      .add_think_noise(think);
  return {std::move(model), onset, duration,
          static_cast<int>(drift.start_interval)};
}

// The measured day's environment: nominal concurrency with the harness'
// standard sigma-0.10 measurement noise.
std::unique_ptr<env::AnalyticEnv> make_day_env(std::uint64_t seed) {
  env::AnalyticEnvOptions options = bench::default_env_options(seed);
  options.num_clients = kNominalClients;
  return std::make_unique<env::AnalyticEnv>(kBaseContext, options);
}

// The best static configuration an operator can actually find: tuned
// offline against the steady nominal workload (paper Figures 1/3 pick the
// best configuration for the measured workload the same way). A
// clairvoyant configuration tuned against the full future day is not an
// operating point any tuning procedure reaches online.
core::SearchResult tune_nominal_static() {
  env::AnalyticEnvOptions options;
  options.noise_sigma = 0.0;
  options.num_clients = kNominalClients;
  env::AnalyticEnv nominal(kBaseContext, options);
  core::SearchOptions search;
  search.coarse_levels = 4;
  return core::find_best_configuration(nominal, search);
}

// Per-regime initial policies (Algorithm 2): the shopping policy is
// trained at the provisioned peak concurrency it must survive, the
// ordering policy at the afternoon's nominal level. best_match() later
// recognises the drift from measurements alone -- the agent is never told
// the mix changed.
core::InitialPolicyLibrary train_library(util::ThreadPool* pool) {
  core::PolicyInitOptions init;
  init.pool = pool;
  core::InitialPolicyLibrary library;
  const struct {
    workload::MixType mix;
    int clients;
  } regimes[] = {{workload::MixType::kShopping, kPeakClients},
                 {workload::MixType::kOrdering, kNominalClients}};
  for (const auto& regime : regimes) {
    env::AnalyticEnvOptions offline;
    offline.noise_sigma = 0.0;
    offline.num_clients = regime.clients;
    env::AnalyticEnv environment({regime.mix, kBaseContext.level}, offline);
    library.add(core::learn_initial_policy(environment, init));
  }
  return library;
}

// Walk the agent from the default configuration into its policy's
// operating region on steady nominal traffic before the measured day.
void warm_up(core::ConfigAgent& agent, std::uint64_t seed) {
  env::AnalyticEnvOptions options = bench::default_env_options(seed);
  options.num_clients = kNominalClients;
  env::AnalyticEnv steady(kBaseContext, options);
  const core::ContextSchedule schedule = {{0, kBaseContext}};
  core::run_agent(steady, agent, schedule, kWarmupIntervals);
}

double sla_attainment(const core::AgentTrace& trace) {
  if (trace.records.empty()) return 0.0;
  int ok = 0;
  for (const auto& record : trace.records) {
    if (record.response_ms <= kSlaMs) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trace.records.size());
}

std::string jsonl(const obs::MemoryTraceSink& sink) {
  std::string out;
  for (const auto& event : sink.events()) {
    out += obs::to_json(event);
    out += '\n';
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Dynamic traffic",
                "RL vs best static configuration through a diurnal day with "
                "a flash crowd and a mix drift");

  const int day = bench::scaled(96, 32);
  const std::uint64_t run_seed = 404;
  bench::set_report_seed(run_seed);
  int failures = 0;
  const auto gate = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS" : "FAIL") << ": " << what << "\n";
    if (!ok) ++failures;
  };

  const DayModel built = build_day(day);
  const auto& model = built.model;
  const std::int64_t onset = built.onset;
  gate(onset >= 0, "flash-crowd seed scan found a single-onset day");
  std::cout << "day " << day << " intervals, flash crowd onset at interval "
            << onset << "\n";

  // --- target stream is thread-count invariant ----------------------------
  std::vector<workload::TrafficTarget> serial_targets(
      static_cast<std::size_t>(day));
  for (std::int64_t i = 0; i < day; ++i) {
    serial_targets[static_cast<std::size_t>(i)] =
        model->target_at(i, kBaseContext.mix);
  }
  std::vector<workload::TrafficTarget> pooled_targets(
      static_cast<std::size_t>(day));
  {
    util::ThreadPool pool(4);
    pool.parallel_for(static_cast<std::size_t>(day), [&](std::size_t i) {
      pooled_targets[i] =
          model->target_at(static_cast<std::int64_t>(i), kBaseContext.mix);
    });
  }
  bool streams_match = true;
  for (int i = 0; i < day; ++i) {
    streams_match =
        streams_match && workload::same_target(
                             serial_targets[static_cast<std::size_t>(i)],
                             pooled_targets[static_cast<std::size_t>(i)]);
  }
  gate(streams_match, "target stream bitwise identical serial vs 4 threads");

  // --- best static configuration for the nominal workload -----------------
  std::cout << "tuning the static configuration on the steady nominal "
               "workload (noiseless) ...\n";
  const core::SearchResult best = tune_nominal_static();
  std::cout << "best static nominal response "
            << util::fmt(best.best_response_ms, 1) << " ms after "
            << best.evaluations << " evaluations\n";

  // --- the day, measured: RL vs static-optimal vs static-default ----------
  std::cout << "training initial policies offline (Algorithm 2) ...\n";
  const core::InitialPolicyLibrary library = train_library(nullptr);
  const core::ContextSchedule schedule = {{0, kBaseContext}};

  core::RacOptions rac_options;
  rac_options.seed = run_seed;
  rac_options.sla.reference_response_ms = kSlaMs;
  core::RacAgent rac(rac_options, library, 0);
  warm_up(rac, run_seed + 1);
  auto rl_env = make_day_env(run_seed);
  rl_env->set_traffic_model(model);

  baselines::StaticDefaultAgent static_best(best.best);
  auto best_env = make_day_env(run_seed);
  best_env->set_traffic_model(model);

  baselines::StaticDefaultAgent static_default;
  auto default_env = make_day_env(run_seed);
  default_env->set_traffic_model(model);

  const std::vector<core::AgentTrace> traces = bench::run_parallel({
      [&] { return bench::run_traced(*rl_env, rac, schedule, day); },
      [&] { return bench::run_traced(*best_env, static_best, schedule, day); },
      [&] {
        return bench::run_traced(*default_env, static_default, schedule, day);
      },
  });
  core::AgentTrace rl_trace = traces[0];
  rl_trace.agent = "RAC (RL)";
  core::AgentTrace best_trace = traces[1];
  best_trace.agent = "static-optimal";
  core::AgentTrace default_trace = traces[2];
  default_trace.agent = "static-default";

  bench::report_traces("Dynamic traffic day: response time per interval",
                       "interval", {rl_trace, best_trace, default_trace});

  const int flash_end = static_cast<int>(onset) + built.flash_duration;
  util::TextTable summary({"agent", "day mean (ms)", "flash mean (ms)",
                           "drift mean (ms)", "SLA attainment"});
  for (const core::AgentTrace& trace :
       {rl_trace, best_trace, default_trace}) {
    summary.add_row(
        {trace.agent, util::fmt(trace.mean_response_ms(), 1),
         util::fmt(trace.mean_response_ms(static_cast<int>(onset), flash_end),
                   1),
         util::fmt(trace.mean_response_ms(built.drift_start, day), 1),
         util::fmt(sla_attainment(trace), 3)});
  }
  std::cout << summary.str() << "\nCSV:\n" << summary.csv();
  std::cout << "RAC policy switches: " << rac.policy_switches() << "\n";
  bench::report_metrics({"core.traffic.", "core.rac.", "core.violation."});

  gate(sla_attainment(rl_trace) > sla_attainment(best_trace),
       "RL SLA attainment beats the best static configuration");
  gate(sla_attainment(best_trace) >= sla_attainment(default_trace),
       "static-optimal is no worse than the static default");

  // --- thread-count invariance of the whole pipeline ----------------------
  // Train the library serially and on 4 threads, run the identical day from
  // each, and require digest-identical decision traces.
  {
    const auto run_day = [&](util::ThreadPool* pool) {
      const core::InitialPolicyLibrary lib = train_library(pool);
      core::RacAgent agent(rac_options, lib, 0);
      warm_up(agent, run_seed + 1);
      auto environment = make_day_env(run_seed);
      environment->set_traffic_model(model);
      obs::DigestTraceSink sink;
      core::RunOptions run;
      run.sink = &sink;
      core::run_agent(*environment, agent, schedule, day, run);
      return sink.digest();
    };
    util::ThreadPool serial_pool(1);
    util::ThreadPool wide_pool(4);
    const std::string serial_digest = run_day(&serial_pool);
    const std::string wide_digest = run_day(&wide_pool);
    std::cout << "decision-trace digest serial " << serial_digest << ", 4t "
              << wide_digest << "\n";
    gate(serial_digest == wide_digest,
         "decision-trace digest identical with 1- and 4-thread training");
  }

  // --- checkpoint mid-day, resume into a fresh environment ----------------
  {
    const int crash_at = day / 2 - 3;
    const std::string checkpoint_path = "bench_dynamic_traffic_checkpoint.rac";
    env::AnalyticEnvOptions noiseless = bench::default_env_options(run_seed);
    noiseless.noise_sigma = 0.0;  // a fresh env must resume bit-identically
    noiseless.num_clients = kNominalClients;

    env::AnalyticEnv reference_env(kBaseContext, noiseless);
    reference_env.set_traffic_model(model);
    core::RacAgent reference_agent(rac_options, library, 0);
    warm_up(reference_agent, run_seed + 1);
    obs::MemoryTraceSink reference_sink;
    core::RunOptions reference_run;
    reference_run.sink = &reference_sink;
    core::run_agent(reference_env, reference_agent, schedule, day,
                    reference_run);

    env::AnalyticEnv doomed_env(kBaseContext, noiseless);
    doomed_env.set_traffic_model(model);
    core::RacAgent doomed_agent(rac_options, library, 0);
    warm_up(doomed_agent, run_seed + 1);
    obs::MemoryTraceSink first_sink;
    core::RunOptions first_leg;
    first_leg.sink = &first_sink;
    first_leg.checkpoint_every = 5;
    first_leg.checkpoint_path = checkpoint_path;
    core::run_agent(doomed_env, doomed_agent, schedule, crash_at, first_leg);

    const core::RunCheckpoint checkpoint =
        core::load_checkpoint_file(checkpoint_path);
    gate(checkpoint.traffic_interval ==
             static_cast<std::uint64_t>(crash_at),
         "checkpoint carries the mid-day traffic cursor");

    env::AnalyticEnv resumed_env(kBaseContext, noiseless);
    resumed_env.set_traffic_model(model);  // the model is a run input ...
    resumed_env.seek_traffic(checkpoint.traffic_interval);  // ... cursor isn't
    core::RacAgent resumed_agent(rac_options, library, 0);
    std::istringstream state(checkpoint.agent_state);
    resumed_agent.restore(core::load_agent_snapshot(state));
    obs::MemoryTraceSink second_sink;
    core::RunOptions second_leg;
    second_leg.sink = &second_sink;
    second_leg.start_iteration =
        static_cast<int>(checkpoint.completed_iterations);
    core::run_agent(resumed_env, resumed_agent, schedule, day, second_leg);

    gate(jsonl(first_sink) + jsonl(second_sink) == jsonl(reference_sink),
         "checkpoint/resume decision trace byte-identical to uninterrupted");
    std::remove(checkpoint_path.c_str());
  }

  bench::paper_note(
      "an RL agent that reconfigures online should hold the SLA through "
      "traffic it was never scheduled for (diurnal swing, flash crowd, mix "
      "drift) better than any single static configuration",
      failures == 0
          ? "RL SLA attainment beats the best static configuration; all "
            "determinism gates hold (see PASS lines above)"
          : "GATE FAILURES -- see FAIL lines above");
  return failures == 0 ? 0 : 1;
}
