// Fault-robustness acceptance bench: hardened vs unhardened RAC agents
// under each injected fault class.
//
// Both agents run the same management loop over the same fault script
// (identical FaultyEnv seed + profile) and are scored on the GROUND TRUTH
// performance recorded by the injector -- what the system actually did --
// not on the lied-about reported samples. The hardened agent enables the
// PR-5 degradation knobs (measurement retries + hold-last, reward clamp,
// median-of-3 ingestion, freeze detection, safe fallback); the unhardened
// agent is the paper-exact loop. Each class aggregates several independent
// (run seed, fault seed) repeats.
//
// CHECK: for every fault class the hardened agent's mean true reward must
// be >= the unhardened agent's, and with all faults disabled the FaultyEnv
// must be bitwise transparent (decorated run == bare run).
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/rac_agent.hpp"
#include "core/reward.hpp"
#include "fault/fault_env.hpp"
#include "harness.hpp"

namespace {

using namespace rac;

constexpr int kIterations = 70;
// The run replays the paper's adaptation setup (Fig. 10): the context
// switches mid-run, so measurement faults strike while the agent must
// relearn -- a stationary easy run would let the unhardened agent coast on
// its converged configuration and hide the damage.
constexpr int kSwitchIteration = 35;
// Scoring runs over a fixed wall-clock window of TRUE intervals: it starts
// after the initial warm-up transient (both agents descend from the
// Table-1 defaults identically) and is capped so an agent that spends
// extra real intervals on measurement retries is compared over the same
// elapsed system time, not over a longer history.
constexpr std::size_t kScoreFrom = 10;
constexpr std::size_t kScoreTo = kIterations;  // per run
constexpr std::uint64_t kRunSeed = 510;
constexpr std::uint64_t kFaultSeed = 77;

core::RacOptions agent_options(bool hardened, std::uint64_t seed) {
  core::RacOptions opt;
  opt.seed = seed;
  if (hardened) {
    opt.robustness.clamp = true;
    opt.robustness.floor = -5.0;
    opt.robustness.median_of = 3;
    opt.robustness.freeze_detect_after = 2;
    opt.safe_fallback.enabled = true;
    opt.safe_fallback.after_blowouts = 3;
    opt.safe_fallback.blowout_factor = 1.5;
  }
  return opt;
}

core::RunOptions run_options(bool hardened) {
  core::RunOptions options;
  options.robustness.enabled = hardened;
  options.robustness.max_retries = 2;
  options.robustness.hold_last_on_missing = true;
  return options;
}

struct ClassSpec {
  std::string name;
  fault::FaultProfile profile;
  fault::FaultSchedule schedule;
  env::PerfSample timeout_sentinel{};
};

struct ClassResult {
  double mean_true_reward = 0.0;
  double mean_true_rt = 0.0;
  std::size_t intervals = 0;
};

ClassResult run_one(const core::ContextSchedule& schedule,
                    const core::InitialPolicyLibrary& library,
                    const ClassSpec& spec, bool hardened,
                    std::uint64_t run_seed, std::uint64_t fault_seed) {
  fault::FaultyEnvOptions fopt;
  fopt.profile = spec.profile;
  fopt.schedule = spec.schedule;
  fopt.timeout_sentinel = spec.timeout_sentinel;
  fopt.seed = fault_seed;
  fault::FaultyEnv env(bench::make_env(schedule.front().context, run_seed),
                       fopt);

  core::RacAgent agent(agent_options(hardened, run_seed), library, 0);
  core::RunOptions options = run_options(hardened);
  options.sink = &bench::trace_sink();
  core::run_agent(env, agent, schedule, kIterations, options);

  const core::SlaSpec sla{};
  ClassResult result;
  double reward_sum = 0.0;
  double rt_sum = 0.0;
  const std::size_t total =
      std::min(env.true_history().size(), kScoreTo);
  for (std::size_t i = kScoreFrom; i < total; ++i) {
    const env::PerfSample& s = env.true_history()[i];
    reward_sum += core::reward_from_response(sla, s.response_ms);
    rt_sum += s.response_ms;
  }
  result.intervals = total > kScoreFrom ? total - kScoreFrom : 0;
  if (result.intervals > 0) {
    const double n = static_cast<double>(result.intervals);
    result.mean_true_reward = reward_sum / n;
    result.mean_true_rt = rt_sum / n;
  }
  return result;
}

bool traces_identical(const core::AgentTrace& a, const core::AgentTrace& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    if (ra.iteration != rb.iteration ||
        ra.response_ms != rb.response_ms ||
        ra.throughput_rps != rb.throughput_rps ||
        ra.configuration.values() != rb.configuration.values()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace rac;
  bench::banner("Fault robustness",
                "hardened vs unhardened agents per injected fault class");
  bench::set_report_seed(kRunSeed);

  // Per-class scores aggregate over a few independent (run seed, fault
  // seed) pairs so the hardened-vs-unhardened comparison is not hostage to
  // one lucky exploration path. RAC_BENCH_QUICK keeps a single repeat (and
  // trains with fewer sweeps): the run is then a determinism probe, not an
  // acceptance measurement, so quick-mode exit codes are tracked but only
  // gated against the quick-mode baseline.
  const int repeats = bench::scaled(3, 1);

  const auto ctx = env::table2_context(1);
  const auto switched_ctx = env::table2_context(3);
  // Surges flap to the weak post-switch context: the truth of a surge
  // interval is equally bad for both agents (same script), so the class
  // scores only how each agent REACTS to the transient outliers.
  const auto surge_ctx = switched_ctx;
  const core::ContextSchedule schedule = {{0, ctx},
                                          {kSwitchIteration, switched_ctx}};
  core::InitialPolicyLibrary library;
  for (const auto& c : {ctx, switched_ctx}) {
    env::AnalyticEnv offline_env(c, bench::default_env_options(7));
    core::PolicyInitOptions init;
    init.offline_td.max_sweeps = bench::scaled(80, 40);
    library.add(core::learn_initial_policy(offline_env, init));
  }

  // Transparency: a no-fault FaultyEnv must be invisible -- the decorated
  // run reproduces the bare run bit for bit.
  bool transparent = false;
  {
    core::RacAgent bare_agent(agent_options(false, kRunSeed), library, 0);
    auto bare_env = bench::make_env(ctx, kRunSeed);
    const auto bare =
        core::run_agent(*bare_env, bare_agent, {}, kIterations, {});

    core::RacAgent wrapped_agent(agent_options(false, kRunSeed), library, 0);
    fault::FaultyEnv wrapped(bench::make_env(ctx, kRunSeed), {});
    const auto decorated =
        core::run_agent(wrapped, wrapped_agent, {}, kIterations, {});
    transparent = traces_identical(bare, decorated);
  }

  std::vector<ClassSpec> classes;
  classes.push_back({"none", {}, {}});
  {
    ClassSpec c;
    c.name = "drop";
    c.profile.drop_prob = 0.25;
    // A naive monitor reports a lost interval as the timeout it waited
    // for; the unhardened loop ingests it as a 60-second "measurement".
    c.timeout_sentinel = {60000.0, 0.0};
    classes.push_back(c);
  }
  {
    ClassSpec c;
    c.name = "spike";
    c.profile.spike_prob = 0.12;
    c.profile.spike_multiplier = 40.0;
    classes.push_back(c);
  }
  {
    // A stuck sensor stays stuck: one long scheduled outage rather than
    // per-interval coin flips (an isolated one-interval freeze is invisible
    // to any detector -- it is just a repeated sample).
    ClassSpec c;
    c.name = "freeze";
    // The monitor glitches once (a spiked reading) and then wedges on that
    // glitched value: the paper-exact loop ingests 14 copies of a
    // catastrophic stale sample, while the hardened agent clamps the first
    // and freeze-detects the rest after two repeats.
    fault::FaultEpisode glitch;
    glitch.kind = fault::FaultKind::kSpike;
    glitch.start_interval = 11;
    glitch.duration = 1;
    glitch.magnitude = 40.0;
    c.schedule.push_back(glitch);
    fault::FaultEpisode outage;
    outage.kind = fault::FaultKind::kFreeze;
    outage.start_interval = 12;
    outage.duration = 14;
    c.schedule.push_back(outage);
    classes.push_back(c);
  }
  {
    ClassSpec c;
    c.name = "reconfig";
    c.profile.reconfig_fail_prob = 0.20;
    classes.push_back(c);
  }
  {
    ClassSpec c;
    c.name = "surge";
    c.profile.surge_prob = 0.15;
    c.profile.surge_context = surge_ctx;  // transient flaps to the weak VM
    classes.push_back(c);
  }

  util::TextTable table({"fault class", "agent", "mean true reward",
                         "mean true rt (ms)", "intervals"});
  struct Gap {
    std::string name;
    double hardened = 0.0;
    double unhardened = 0.0;
  };
  std::vector<Gap> gaps;
  for (const ClassSpec& spec : classes) {
    ClassResult sum[2];  // [0] unhardened, [1] hardened
    for (int rep = 0; rep < repeats; ++rep) {
      const std::uint64_t run_seed = kRunSeed + static_cast<std::uint64_t>(rep);
      const std::uint64_t fault_seed =
          kFaultSeed + static_cast<std::uint64_t>(rep);
      for (int h = 0; h < 2; ++h) {
        const ClassResult r =
            run_one(schedule, library, spec, h == 1, run_seed, fault_seed);
        sum[h].mean_true_reward += r.mean_true_reward / repeats;
        sum[h].mean_true_rt += r.mean_true_rt / repeats;
        sum[h].intervals += r.intervals;
      }
    }
    for (int h = 0; h < 2; ++h) {
      table.add_row({spec.name, h == 1 ? "hardened" : "unhardened",
                     util::fmt(sum[h].mean_true_reward, 4),
                     util::fmt(sum[h].mean_true_rt, 1),
                     std::to_string(sum[h].intervals)});
    }
    if (spec.name != "none") {
      gaps.push_back(
          {spec.name, sum[1].mean_true_reward, sum[0].mean_true_reward});
    }
  }
  std::cout << table.str() << "\nCSV:\n" << table.csv();

  bench::report_metrics({"core.fault.", "core.rac.", "core.violation."});

  bool pass = transparent;
  std::cout << "\nCHECK: no-fault FaultyEnv transparent (bitwise) : "
            << (transparent ? "PASS" : "FAIL") << "\n";
  for (const Gap& g : gaps) {
    const bool ok = g.hardened >= g.unhardened;
    // Quick mode runs one repeat over shortened horizons -- far too few
    // samples for the hardened-vs-unhardened comparison to be a gate.
    // Quick runs probe determinism (trace digest) and transparency only;
    // the statistical claim is gated by the full-size run.
    if (!bench::quick()) pass = pass && ok;
    std::cout << "CHECK: hardened >= unhardened mean true reward ["
              << g.name << "] : " << util::fmt(g.hardened, 4) << " vs "
              << util::fmt(g.unhardened, 4) << " : "
              << (ok ? "PASS" : bench::quick() ? "FAIL (ungated: quick)"
                                               : "FAIL")
              << "\n";
  }

  bench::paper_note(
      "a hardened agent keeps tuning through monitoring/actuation faults "
      "that poison the paper-exact loop (Section 4.3's premise taken to "
      "its production conclusion)",
      pass ? "all fault classes: hardened mean true reward >= unhardened"
           : "REGRESSION: see FAIL lines above");
  return pass ? 0 : 1;
}
