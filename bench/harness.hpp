// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench binary is standalone: it builds whatever offline policies it
// needs, replays the paper's scenario, prints the series as an aligned
// table AND as CSV, renders an ASCII chart of the figure, and ends with a
// PAPER-vs-MEASURED note (EXPERIMENTS.md aggregates these).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_init.hpp"
#include "core/policy_library.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ascii_chart.hpp"
#include "util/table.hpp"

namespace rac::bench {

/// Environment options used across all harnesses (sigma 0.10 measurement
/// noise, 400 emulated browsers).
env::AnalyticEnvOptions default_env_options(std::uint64_t seed,
                                            double noise_sigma = 0.10);

std::unique_ptr<env::AnalyticEnv> make_env(const env::SystemContext& context,
                                           std::uint64_t seed,
                                           double noise_sigma = 0.10);

/// Offline-train one initial policy per context (Algorithm 2 on offline
/// traces of that context). When $RAC_LIBRARY_CACHE names a directory, the
/// built library is cached there (keyed by contexts + seed) and reloaded
/// on later runs instead of re-training; stale or corrupt cache files are
/// ignored and rebuilt.
core::InitialPolicyLibrary build_offline_library(
    const std::vector<env::SystemContext>& contexts, std::uint64_t seed = 7);

/// The Figure-5/10 scenario: context-1 for 30 iterations, then context-2,
/// then context-3.
core::ContextSchedule paper_schedule();

/// Print an iteration-by-iteration table + CSV + chart for a set of traces
/// over the same schedule.
void report_traces(const std::string& title, const std::string& x_label,
                   const std::vector<core::AgentTrace>& traces);

/// Print a banner line for the artifact being reproduced.
///
/// The first call also starts the bench's observability session: when
/// $RAC_BENCH_REPORT names a directory, a `rac-bench-report v1` JSON
/// (profiler phase tree, metrics snapshot, process stats, decision-trace
/// digest; see obs/bench_report.hpp) is written to
/// `<dir>/<binary name>.json` at process exit. RAC_BENCH_REPORT and
/// RAC_TRACE are independent: setting both produces both the JSONL trace
/// and the report, and the report's digest covers the same events the
/// trace file received.
void banner(const std::string& artifact, const std::string& description);

/// True when $RAC_BENCH_QUICK=1: gated benches shrink iteration and sweep
/// counts so the regression-check suite runs in seconds, deterministically.
bool quick();

/// `full` normally, `quick_value` under RAC_BENCH_QUICK=1.
int scaled(int full, int quick_value);

/// Seed recorded in this bench's report run ID (default 0); call with the
/// scenario's primary seed before exit.
void set_report_seed(std::uint64_t seed);

/// Print the paper-vs-measured summary note.
void paper_note(const std::string& expectation, const std::string& measured);

/// The process-wide decision-trace sink shared by every `run_traced` call:
/// a JSONL sink at $RAC_TRACE when that variable is set, a null sink
/// otherwise. Lets any bench binary produce machine-diffable traces with
/// `RAC_TRACE=out.jsonl ./bench_...`.
obs::TraceSink& trace_sink();

/// `core::run_agent` with the shared trace sink attached.
core::AgentTrace run_traced(env::Environment& environment,
                            core::ConfigAgent& agent,
                            const core::ContextSchedule& schedule,
                            int iterations);

/// Run independent scenario thunks concurrently on the process-wide worker
/// pool (RAC_THREADS); thunk i's trace lands in slot i, so report order
/// matches construction order at any thread count. Each thunk must own or
/// exclusively reference its agent and environment -- construct them
/// before building the thunks, never inside a shared object.
std::vector<core::AgentTrace> run_parallel(
    const std::vector<std::function<core::AgentTrace()>>& runs);

/// Print the default registry's metrics whose names start with one of
/// `prefixes` (all metrics when empty) -- the benches' window into what the
/// pipeline actually did (TD sweeps, evaluations, violations, switches).
void report_metrics(const std::vector<std::string>& prefixes = {});

}  // namespace rac::bench
