// Deterministic fault injection for the monitoring/actuation pipeline.
//
// FaultyEnv decorates any env::Environment with the realistic failure
// modes of a production measurement loop (paper Section 4.3 exists
// because such measurements misbehave):
//
//   * drop          -- the interval's measurement times out / is lost;
//   * spike         -- the reported latency is multiplied by an outlier
//                      factor (the system itself was fine);
//   * freeze        -- the sensor is stuck and repeats the previously
//                      reported sample;
//   * reconfig-fail -- the actuation is lost: the system keeps running
//                      the previously applied configuration;
//   * surge         -- a short workload surge / VM flap: the interval is
//                      measured under a different SystemContext, which is
//                      restored afterwards (the scheduled context is not
//                      disturbed).
//
// Faults come from two sources that compose: a scripted schedule of
// episodes (like the runner's context schedule) and a stochastic profile
// of per-interval probabilities. The stochastic draws are a pure function
// of (seed, interval, fault kind) -- no shared stream -- so the fault
// script is bitwise-reproducible across runs, across clone_with_seed, and
// across a checkpoint/restore boundary regardless of how the inner
// environment consumes randomness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "env/context.hpp"
#include "env/environment.hpp"

namespace rac::obs {
class Counter;
class Registry;
}  // namespace rac::obs

namespace rac::fault {

enum class FaultKind : int {
  kDrop = 0,
  kSpike = 1,
  kFreeze = 2,
  kReconfigFail = 3,
  kSurge = 4,
};

inline constexpr int kNumFaultKinds = 5;

std::string fault_kind_name(FaultKind kind);

/// One scripted fault episode: `kind` is active on intervals
/// [start_interval, start_interval + duration).
struct FaultEpisode {
  FaultKind kind = FaultKind::kDrop;
  int start_interval = 0;
  int duration = 1;
  /// Spike episodes: reported-latency multiplier (0 = use the profile's).
  double magnitude = 0.0;
  /// Surge episodes: context measured under (unset = use the profile's).
  std::optional<env::SystemContext> surge_context;
};

using FaultSchedule = std::vector<FaultEpisode>;

/// Stochastic per-interval fault probabilities (all default 0 = off).
struct FaultProfile {
  double drop_prob = 0.0;
  double spike_prob = 0.0;
  double freeze_prob = 0.0;
  double reconfig_fail_prob = 0.0;
  double surge_prob = 0.0;
  /// Reported-latency multiplier of a spike interval.
  double spike_multiplier = 25.0;
  /// Context a surge interval is measured under.
  std::optional<env::SystemContext> surge_context;
};

struct FaultyEnvOptions {
  FaultSchedule schedule;
  FaultProfile profile;
  /// Seed of the stochastic fault script (independent of the inner
  /// environment's measurement noise).
  std::uint64_t seed = 17;
  /// What the infallible measure() reports for a dropped interval (a
  /// naive monitor typically reports zeros on timeout); try_measure
  /// returns std::nullopt instead.
  env::PerfSample timeout_sentinel{};
  /// Registry receiving the injector's counters (core.fault.*); nullptr
  /// means obs::default_registry().
  obs::Registry* registry = nullptr;
};

/// The faults affecting one interval, fully resolved.
struct FaultDecision {
  bool drop = false;
  bool spike = false;
  bool freeze = false;
  bool reconfig_fail = false;
  bool surge = false;
  double spike_multiplier = 0.0;
  std::optional<env::SystemContext> surge_context;

  bool any() const noexcept {
    return drop || spike || freeze || reconfig_fail || surge;
  }
  /// Compact "+"-joined description ("drop+spike"); "" when clean.
  std::string note() const;
};

/// Serializable mutable state (for checkpoint/restore of a run with an
/// injected-fault environment). The true-performance history is
/// observability, not state, and is not part of it.
struct FaultyEnvState {
  int interval = 0;
  bool has_last_reported = false;
  env::PerfSample last_reported{};
  bool has_applied = false;
  config::Configuration applied_configuration{};
};

/// Serialize / parse a FaultyEnvState as labeled text tokens in the
/// snapshot idiom (locale-immune, hex-float doubles, bit-exact
/// round-trip). Both leave the stream just past the state's last token, so
/// the pair embeds cleanly inside a larger stream (the fleet checkpoint
/// does). load throws std::runtime_error on malformed input.
void save_faulty_env_state(std::ostream& os, const FaultyEnvState& state);
FaultyEnvState load_faulty_env_state(std::istream& is);

class FaultyEnv final : public env::Environment {
 public:
  /// Throws std::invalid_argument for a null inner environment,
  /// probabilities outside [0, 1], non-positive spike multipliers or
  /// episode durations, negative episode starts, or a surge source
  /// (episode or profile probability) with no surge context to draw on.
  FaultyEnv(std::unique_ptr<env::Environment> inner,
            FaultyEnvOptions options);

  env::PerfSample measure(const config::Configuration& configuration) override;
  std::optional<env::PerfSample> try_measure(
      const config::Configuration& configuration) override;
  std::string last_fault_note() const override { return last_note_; }

  void set_context(const env::SystemContext& context) override;
  env::SystemContext context() const override;

  // Dynamic-traffic hooks forward to the inner environment: the traffic
  // model shapes the true workload, the fault layer only distorts how it
  // is observed. (measure_under keeps the base-class behaviour, routing
  // the overlay measurement through the fault pipeline.)
  void set_traffic_model(
      std::shared_ptr<const workload::TrafficModel> model) override;
  std::shared_ptr<const workload::TrafficModel> traffic_model() const override;
  std::uint64_t traffic_interval() const override;
  void seek_traffic(std::uint64_t interval) override;

  /// The decorator serializes measurement through its fault state, so it
  /// never advertises concurrent use even over a thread-safe inner
  /// environment.
  bool thread_safe() const override { return false; }

  /// Clone: the inner environment is cloned with `seed` (fresh noise
  /// stream), the fault layer keeps its own seed, options, and position --
  /// the clone experiences the identical fault script.
  std::unique_ptr<env::Environment> clone_with_seed(
      std::uint64_t seed) const override;

  /// Pure function of (options, interval): the faults injected into that
  /// interval. This is what the determinism contract rests on.
  FaultDecision faults_at(int interval) const;

  /// Ground-truth samples per interval (what the system actually did,
  /// before reporting faults) -- the robustness bench scores agents on
  /// these, not on the lied-about reported values.
  const std::vector<env::PerfSample>& true_history() const noexcept {
    return true_history_;
  }

  int interval() const noexcept { return state_.interval; }
  FaultyEnvState state() const { return state_; }
  /// Throws std::invalid_argument for a negative interval.
  void restore(const FaultyEnvState& state);

  env::Environment& inner() noexcept { return *inner_; }

 private:
  /// Advance one interval: decide faults, actuate (or fail to), measure
  /// the truth, derive the reported sample. Sets `dropped`.
  env::PerfSample step(const config::Configuration& requested, bool& dropped);

  std::unique_ptr<env::Environment> inner_;
  FaultyEnvOptions options_;
  FaultyEnvState state_{};
  std::string last_note_;
  std::vector<env::PerfSample> true_history_;
  obs::Counter* intervals_ = nullptr;
  obs::Counter* drops_ = nullptr;
  obs::Counter* spikes_ = nullptr;
  obs::Counter* freezes_ = nullptr;
  obs::Counter* reconfig_failures_ = nullptr;
  obs::Counter* surges_ = nullptr;
};

}  // namespace rac::fault
