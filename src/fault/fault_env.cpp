#include "fault/fault_env.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/lineio.hpp"
#include "util/rng.hpp"
#include "workload/dynamic.hpp"

namespace rac::fault {

namespace {

void validate(const env::Environment* inner, const FaultyEnvOptions& o) {
  if (inner == nullptr) {
    throw std::invalid_argument("FaultyEnv: null inner environment");
  }
  const auto check_prob = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(std::string("FaultyEnv: ") + what +
                                  " outside [0, 1]");
    }
  };
  check_prob(o.profile.drop_prob, "drop_prob");
  check_prob(o.profile.spike_prob, "spike_prob");
  check_prob(o.profile.freeze_prob, "freeze_prob");
  check_prob(o.profile.reconfig_fail_prob, "reconfig_fail_prob");
  check_prob(o.profile.surge_prob, "surge_prob");
  if (o.profile.spike_multiplier <= 0.0) {
    throw std::invalid_argument("FaultyEnv: non-positive spike_multiplier");
  }
  if (o.profile.surge_prob > 0.0 && !o.profile.surge_context.has_value()) {
    throw std::invalid_argument(
        "FaultyEnv: surge_prob set without a profile surge_context");
  }
  for (const FaultEpisode& e : o.schedule) {
    if (e.start_interval < 0) {
      throw std::invalid_argument("FaultyEnv: negative episode start");
    }
    if (e.duration < 1) {
      throw std::invalid_argument("FaultyEnv: non-positive episode duration");
    }
    if (e.kind == FaultKind::kSpike && e.magnitude < 0.0) {
      throw std::invalid_argument("FaultyEnv: negative spike magnitude");
    }
    if (e.kind == FaultKind::kSurge && !e.surge_context.has_value() &&
        !o.profile.surge_context.has_value()) {
      throw std::invalid_argument(
          "FaultyEnv: surge episode with no surge context anywhere");
    }
  }
}

}  // namespace

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kSpike: return "spike";
    case FaultKind::kFreeze: return "freeze";
    case FaultKind::kReconfigFail: return "reconfig-fail";
    case FaultKind::kSurge: return "surge";
  }
  throw std::invalid_argument("fault_kind_name: unknown kind");
}

std::string FaultDecision::note() const {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (drop) append("drop");
  if (spike) append("spike");
  if (freeze) append("freeze");
  if (reconfig_fail) append("reconfig-fail");
  if (surge) append("surge");
  return out;
}

FaultyEnv::FaultyEnv(std::unique_ptr<env::Environment> inner,
                     FaultyEnvOptions options)
    : inner_(std::move(inner)), options_(std::move(options)) {
  validate(inner_.get(), options_);
  obs::Registry& registry = obs::registry_or_default(options_.registry);
  intervals_ = &registry.counter("core.fault.intervals");
  drops_ = &registry.counter("core.fault.drops");
  spikes_ = &registry.counter("core.fault.spikes");
  freezes_ = &registry.counter("core.fault.freezes");
  reconfig_failures_ = &registry.counter("core.fault.reconfig_failures");
  surges_ = &registry.counter("core.fault.surges");
}

FaultDecision FaultyEnv::faults_at(int interval) const {
  FaultDecision d;
  d.spike_multiplier = options_.profile.spike_multiplier;
  d.surge_context = options_.profile.surge_context;
  for (const FaultEpisode& e : options_.schedule) {
    if (interval < e.start_interval ||
        interval >= e.start_interval + e.duration) {
      continue;
    }
    switch (e.kind) {
      case FaultKind::kDrop: d.drop = true; break;
      case FaultKind::kSpike:
        d.spike = true;
        if (e.magnitude > 0.0) d.spike_multiplier = e.magnitude;
        break;
      case FaultKind::kFreeze: d.freeze = true; break;
      case FaultKind::kReconfigFail: d.reconfig_fail = true; break;
      case FaultKind::kSurge:
        d.surge = true;
        if (e.surge_context.has_value()) d.surge_context = e.surge_context;
        break;
    }
  }
  // One throwaway generator per (interval, kind): the draw depends only on
  // the fault seed and those two indices, never on how many draws anything
  // else made -- this is what makes the fault script reproducible across
  // clones and checkpoint boundaries.
  const auto draw = [&](FaultKind kind, double p) {
    if (p <= 0.0) return false;
    util::Rng rng(util::derive_seed(
        util::derive_seed(options_.seed, static_cast<std::uint64_t>(interval)),
        static_cast<std::uint64_t>(kind)));
    return rng.bernoulli(p);
  };
  d.drop = d.drop || draw(FaultKind::kDrop, options_.profile.drop_prob);
  d.spike = d.spike || draw(FaultKind::kSpike, options_.profile.spike_prob);
  d.freeze = d.freeze || draw(FaultKind::kFreeze, options_.profile.freeze_prob);
  d.reconfig_fail =
      d.reconfig_fail ||
      draw(FaultKind::kReconfigFail, options_.profile.reconfig_fail_prob);
  d.surge = d.surge || draw(FaultKind::kSurge, options_.profile.surge_prob);
  return d;
}

env::PerfSample FaultyEnv::step(const config::Configuration& requested,
                                bool& dropped) {
  const int interval = state_.interval;
  ++state_.interval;
  const FaultDecision d = faults_at(interval);
  intervals_->add(1);
  last_note_ = d.note();

  // Transient reconfiguration failure: the actuation is lost and the
  // system keeps running whatever was applied last. On the very first
  // interval there is nothing "previous", so the request goes through.
  config::Configuration effective = requested;
  if (d.reconfig_fail && state_.has_applied) {
    effective = state_.applied_configuration;
    reconfig_failures_->add(1);
  } else {
    state_.has_applied = true;
    state_.applied_configuration = requested;
  }

  // The system always actually runs the interval -- the truth is recorded
  // even when the monitor then drops or distorts the report. A surge
  // interval rides on the traffic layer: it is measured under a one-hot
  // TrafficTarget of the surge mix (env::Environment::measure_under), with
  // the VM level flipped around the measurement when the surge context
  // moves it. The scheduled context is restored immediately after.
  env::PerfSample truth;
  if (d.surge && d.surge_context.has_value()) {
    const env::SystemContext scheduled = inner_->context();
    const bool level_changed = d.surge_context->level != scheduled.level;
    if (level_changed) {
      inner_->set_context({scheduled.mix, d.surge_context->level});
    }
    truth = inner_->measure_under(
        workload::one_hot_target(d.surge_context->mix), effective);
    if (level_changed) inner_->set_context(scheduled);
    surges_->add(1);
  } else {
    truth = inner_->measure(effective);
  }
  true_history_.push_back(truth);

  dropped = d.drop;
  if (d.drop) {
    // The report never arrives; last_reported is deliberately untouched
    // (a later freeze repeats the last value that WAS reported).
    drops_->add(1);
    return options_.timeout_sentinel;
  }

  env::PerfSample reported = truth;
  if (d.freeze && state_.has_last_reported) {
    reported = state_.last_reported;
    freezes_->add(1);
  } else if (d.spike) {
    reported.response_ms *= d.spike_multiplier;
    spikes_->add(1);
  }
  state_.has_last_reported = true;
  state_.last_reported = reported;
  return reported;
}

env::PerfSample FaultyEnv::measure(const config::Configuration& configuration) {
  bool dropped = false;
  return step(configuration, dropped);
}

std::optional<env::PerfSample> FaultyEnv::try_measure(
    const config::Configuration& configuration) {
  bool dropped = false;
  const env::PerfSample reported = step(configuration, dropped);
  if (dropped) return std::nullopt;
  return reported;
}

void FaultyEnv::set_context(const env::SystemContext& context) {
  inner_->set_context(context);
}

env::SystemContext FaultyEnv::context() const { return inner_->context(); }

void FaultyEnv::set_traffic_model(
    std::shared_ptr<const workload::TrafficModel> model) {
  inner_->set_traffic_model(std::move(model));
}

std::shared_ptr<const workload::TrafficModel> FaultyEnv::traffic_model()
    const {
  return inner_->traffic_model();
}

std::uint64_t FaultyEnv::traffic_interval() const {
  return inner_->traffic_interval();
}

void FaultyEnv::seek_traffic(std::uint64_t interval) {
  inner_->seek_traffic(interval);
}

std::unique_ptr<env::Environment> FaultyEnv::clone_with_seed(
    std::uint64_t seed) const {
  std::unique_ptr<env::Environment> inner_clone =
      inner_->clone_with_seed(seed);
  if (inner_clone == nullptr) return nullptr;
  auto clone =
      std::make_unique<FaultyEnv>(std::move(inner_clone), options_);
  clone->state_ = state_;
  clone->last_note_ = last_note_;
  clone->true_history_ = true_history_;
  return clone;
}

void FaultyEnv::restore(const FaultyEnvState& state) {
  if (state.interval < 0) {
    throw std::invalid_argument("FaultyEnv::restore: negative interval");
  }
  state_ = state;
}

void save_faulty_env_state(std::ostream& os, const FaultyEnvState& state) {
  os << "interval " << util::format_i64(state.interval) << "\n";
  os << "has_last_reported " << (state.has_last_reported ? 1 : 0) << "\n";
  os << "last_reported " << util::format_double(state.last_reported.response_ms)
     << " " << util::format_double(state.last_reported.throughput_rps) << "\n";
  os << "has_applied " << (state.has_applied ? 1 : 0) << "\n";
  os << "applied";
  for (const int v : state.applied_configuration.values()) {
    os << " " << util::format_i64(v);
  }
  os << "\n";
}

FaultyEnvState load_faulty_env_state(std::istream& is) {
  FaultyEnvState state;
  util::expect_token(is, "interval", "faulty-env state");
  state.interval =
      util::parse_int(util::read_token(is, "interval"), "interval");
  if (state.interval < 0) {
    throw std::runtime_error("faulty-env state: negative interval");
  }
  const auto read_bool = [&is](const char* label) {
    util::expect_token(is, label, "faulty-env state");
    const std::string token = util::read_token(is, label);
    if (token == "1") return true;
    if (token == "0") return false;
    throw std::runtime_error(std::string("faulty-env state: ") + label +
                             " must be 0 or 1");
  };
  state.has_last_reported = read_bool("has_last_reported");
  util::expect_token(is, "last_reported", "faulty-env state");
  state.last_reported.response_ms = util::parse_double(
      util::read_token(is, "last_reported"), "last_reported response");
  state.last_reported.throughput_rps = util::parse_double(
      util::read_token(is, "last_reported"), "last_reported throughput");
  state.has_applied = read_bool("has_applied");
  util::expect_token(is, "applied", "faulty-env state");
  std::array<int, config::kNumParams> values{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = util::parse_int(util::read_token(is, "applied"), "applied");
  }
  // Reconstructing through the clamping constructor validates the ranges;
  // a clamped (i.e. out-of-range) value is corrupt data, not a tolerable
  // approximation of the run's actual state.
  const config::Configuration reconstructed(values);
  if (reconstructed.values() != values) {
    throw std::runtime_error(
        "faulty-env state: applied configuration value out of range");
  }
  state.applied_configuration = reconstructed;
  return state;
}

}  // namespace rac::fault
