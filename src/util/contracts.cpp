#include "util/contracts.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/log.hpp"

namespace rac::util {

namespace {
std::atomic<ContractMode> g_mode{ContractMode::kThrow};
}  // namespace

void set_contract_mode(ContractMode mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
}

ContractMode contract_mode() noexcept {
  return g_mode.load(std::memory_order_relaxed);
}

namespace detail {

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const char* message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (message != nullptr && *message != '\0') os << ": " << message;
  const std::string what = os.str();
  switch (contract_mode()) {
    case ContractMode::kThrow:
      throw ContractViolation(what);
    case ContractMode::kAbort:
      log_error(what);
      std::abort();
    case ContractMode::kLog:
      log_error(what);
      return;
  }
}

}  // namespace detail

}  // namespace rac::util
