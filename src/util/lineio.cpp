#include "util/lineio.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace rac::util {

namespace {

[[noreturn]] void bad_token(std::string_view token, std::string_view what) {
  throw std::runtime_error(std::string(what) + ": bad numeric token '" +
                           std::string(token) + "'");
}

template <typename T>
T parse_integer(std::string_view token, std::string_view what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad_token(token, what);
  }
  return value;
}

bool parse_with_format(std::string_view token, std::chars_format fmt,
                       double& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out, fmt);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::hex);
  if (ec != std::errc{}) {
    throw std::runtime_error("format_double: to_chars failed");
  }
  return std::string(buf, ptr);
}

std::string format_double_decimal(double v) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general);
  if (ec != std::errc{}) {
    throw std::runtime_error("format_double_decimal: to_chars failed");
  }
  return std::string(buf, ptr);
}

std::string format_i64(std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 10);
  if (ec != std::errc{}) {
    throw std::runtime_error("format_i64: to_chars failed");
  }
  return std::string(buf, ptr);
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 10);
  if (ec != std::errc{}) {
    throw std::runtime_error("format_u64: to_chars failed");
  }
  return std::string(buf, ptr);
}

double parse_double(std::string_view token, std::string_view what) {
  if (token.empty()) bad_token(token, what);
  // from_chars never accepts an explicit '+', but legacy strtod-written
  // files can carry one; strip a single leading plus (and nothing more).
  std::string_view body = token;
  if (body[0] == '+') {
    body.remove_prefix(1);
    if (body.empty() || body[0] == '+' || body[0] == '-') {
      bad_token(token, what);
    }
  }
  double value = 0.0;
  // Hex floats always carry a binary exponent marker ('p'); decimal and
  // special forms ("inf", "nan", "1.5e3") never do, so the marker decides
  // the format unambiguously.
  const bool hex = body.find('p') != std::string_view::npos ||
                   body.find('P') != std::string_view::npos;
  if (!hex) {
    if (!parse_with_format(body, std::chars_format::general, value)) {
      bad_token(token, what);
    }
    return value;
  }
  // from_chars hex format takes no 0x prefix; strip the legacy printf
  // "%a" prefix (after an optional sign) so old files still load.
  std::string stripped;
  std::size_t sign = 0;
  if (!body.empty() && body[0] == '-') sign = 1;
  if (body.size() >= sign + 2 && body[sign] == '0' &&
      (body[sign + 1] == 'x' || body[sign + 1] == 'X')) {
    stripped.assign(body.substr(0, sign));
    stripped.append(body.substr(sign + 2));
    body = stripped;
  }
  if (!parse_with_format(body, std::chars_format::hex, value)) {
    bad_token(token, what);
  }
  return value;
}

std::int64_t parse_i64(std::string_view token, std::string_view what) {
  return parse_integer<std::int64_t>(token, what);
}

std::uint64_t parse_u64(std::string_view token, std::string_view what) {
  return parse_integer<std::uint64_t>(token, what);
}

int parse_int(std::string_view token, std::string_view what) {
  const std::int64_t wide = parse_i64(token, what);
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    bad_token(token, what);
  }
  return static_cast<int>(wide);
}

std::string read_token(std::istream& is, std::string_view what) {
  std::string token;
  if (!(is >> token)) {
    throw std::runtime_error(std::string(what) + ": unexpected end of input");
  }
  return token;
}

void expect_token(std::istream& is, std::string_view expected,
                  std::string_view what) {
  const std::string token = read_token(is, what);
  if (token != expected) {
    throw std::runtime_error(std::string(what) + ": expected '" +
                             std::string(expected) + "', got '" + token + "'");
  }
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::ios_base::failure("atomic_write_file: cannot open " + tmp);
    }
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
    os.flush();
    if (!os) {
      throw std::ios_base::failure("atomic_write_file: write failed for " +
                                   tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::ios_base::failure("atomic_write_file: rename to " + path +
                                 " failed");
  }
}

}  // namespace rac::util
