// Streaming and windowed statistics used by the performance monitor, the
// violation detector, and the experiment harnesses.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace rac::util {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest sample. Throws
  /// std::invalid_argument outside that range.
  explicit Ewma(double alpha);

  /// Throws std::invalid_argument for a non-finite sample: a single NaN
  /// would silently poison the running average forever (and then survive
  /// a checkpoint/restore round trip).
  void add(double x);
  bool empty() const noexcept { return !initialized_; }
  double alpha() const noexcept { return alpha_; }
  double value() const noexcept { return value_; }
  void reset() noexcept;

  /// Resume from serialized state: `value` is adopted as the running
  /// average when `initialized`, ignored otherwise. Throws
  /// std::invalid_argument for a non-finite initialized value.
  void restore(double value, bool initialized);

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-capacity sliding window over the most recent samples.
/// This backs the paper's violation detector, which compares the current
/// response time against the mean of the last n measurements.
class SlidingWindow {
 public:
  /// Throws std::invalid_argument for a zero capacity (such a window
  /// would silently drop every sample).
  explicit SlidingWindow(std::size_t capacity);

  /// Throws std::invalid_argument for a non-finite sample (a NaN in the
  /// window corrupts mean() until the sample ages out -- or forever, via
  /// restore()).
  void add(double x);
  void reset() noexcept { data_.clear(); }

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return data_.size() == capacity_; }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Most recent sample; window must be non-empty.
  double back() const noexcept { return data_.back(); }

  /// Contents oldest-first (for serialization).
  std::vector<double> values() const;

  /// Resume from serialized contents (oldest-first). Throws
  /// std::invalid_argument when `samples` exceeds the capacity or
  /// contains a non-finite value.
  void restore(std::span<const double> samples);

 private:
  std::size_t capacity_;
  std::deque<double> data_;
};

/// Percentile of a sample set (linear interpolation between order
/// statistics). `p` in [0, 100]. The input span is copied and sorted.
/// Throws std::invalid_argument for an empty span or out-of-range `p`.
double percentile(std::span<const double> samples, double p);

/// Arithmetic mean of a span; 0 for an empty span.
double mean_of(std::span<const double> samples) noexcept;

/// Coefficient of determination of predictions vs observations. Throws
/// std::invalid_argument when the spans are empty or differ in length.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

}  // namespace rac::util
