#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace rac::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// One mutex guards the sink pointer and the write itself: a sink swap
// cannot race a log call, and concurrent log lines cannot interleave.
std::mutex g_mutex;
LogSink g_sink;  // empty = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::string line = "[";
  line += utc_timestamp();
  line += "] [";
  line += level_name(level);
  line += "] ";
  line += message;

  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::cerr << line << '\n';
  }
}

}  // namespace rac::util
