#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace rac::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("Ewma: alpha outside (0, 1]");
  }
}

void Ewma::add(double x) {
  if (!std::isfinite(x)) {
    throw std::invalid_argument("Ewma::add: non-finite sample");
  }
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
}

void Ewma::reset() noexcept {
  value_ = 0.0;
  initialized_ = false;
}

void Ewma::restore(double value, bool initialized) {
  if (initialized && !std::isfinite(value)) {
    throw std::invalid_argument("Ewma::restore: non-finite value");
  }
  value_ = initialized ? value : 0.0;
  initialized_ = initialized;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SlidingWindow: zero capacity");
  }
}

void SlidingWindow::add(double x) {
  if (!std::isfinite(x)) {
    throw std::invalid_argument("SlidingWindow::add: non-finite sample");
  }
  data_.push_back(x);
  if (data_.size() > capacity_) data_.pop_front();
}

std::vector<double> SlidingWindow::values() const {
  return std::vector<double>(data_.begin(), data_.end());
}

void SlidingWindow::restore(std::span<const double> samples) {
  if (samples.size() > capacity_) {
    throw std::invalid_argument("SlidingWindow::restore: more samples than "
                                "capacity");
  }
  for (const double s : samples) {
    if (!std::isfinite(s)) {
      throw std::invalid_argument("SlidingWindow::restore: non-finite sample");
    }
  }
  data_.assign(samples.begin(), samples.end());
}

double SlidingWindow::mean() const noexcept {
  if (data_.empty()) return 0.0;
  return std::accumulate(data_.begin(), data_.end(), 0.0) /
         static_cast<double>(data_.size());
}

double SlidingWindow::min() const noexcept {
  if (data_.empty()) return 0.0;
  return *std::min_element(data_.begin(), data_.end());
}

double SlidingWindow::max() const noexcept {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  if (observed.size() != predicted.size()) {
    throw std::invalid_argument("r_squared: size mismatch");
  }
  if (observed.empty()) {
    throw std::invalid_argument("r_squared: empty sample set");
  }
  const double obs_mean = mean_of(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double res = observed[i] - predicted[i];
    const double dev = observed[i] - obs_mean;
    ss_res += res * res;
    ss_tot += dev * dev;
  }
  // Exact-zero checks are the point here: a constant observed series has
  // no variance to explain, and only a bitwise-perfect prediction of it
  // deserves R^2 = 1.
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;  // rac-lint: allow(float-eq)
  return 1.0 - ss_res / ss_tot;
}

}  // namespace rac::util
