// Deterministic, fast pseudo-random number generation.
//
// Everything in this repository that needs randomness takes an explicit
// `Rng&` so that experiments are reproducible from a single seed. The
// engine is xoshiro256** (Blackman & Vigna), seeded via SplitMix64 so that
// small, human-chosen seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace rac::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic per-task seed: mixes `base` with `index` so parallel work
/// can draw from independent, reproducible streams. Results depend only on
/// the two inputs -- never on thread count or execution order -- which is
/// what makes the pool's fan-out bit-identical to a serial run.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

/// Complete serializable engine state: the four xoshiro words plus the
/// Box-Muller cache (`normal` computes values in pairs; dropping the
/// cached half on restore would shift every later draw). Checkpoint code
/// round-trips this so a restored agent continues the exact stream.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi
  /// (contract; RAC_EXPECT).
  int uniform_int(int lo, int hi);

  /// Exponentially distributed sample with the given mean (> 0; contract).
  double exponential(double mean);

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal multiplier with E[X] == 1 and the given sigma of log X.
  /// Useful for multiplicative measurement noise.
  double lognormal_unit(double sigma) noexcept;

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

  /// Number of bernoulli(p) trials up to and including the first success
  /// (>= 1), sampled by inversion from a single uniform draw. p in (0, 1]
  /// (contract).
  int geometric(double p);

  /// Sample an index from a discrete distribution given by non-negative
  /// weights (need not be normalized; at least one must be positive --
  /// contract).
  std::size_t categorical(std::span<const double> weights);

  /// Fork an independent stream (seeded from this one).
  Rng split() noexcept;

  /// Snapshot of the full engine state (stream position included).
  RngState state() const noexcept;

  /// Resume from a snapshot. Throws std::invalid_argument for an all-zero
  /// word state (the one configuration xoshiro cannot leave).
  void restore(const RngState& state);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rac::util
