// Aligned text tables and CSV output for the benchmark harnesses.
//
// Every figure/table reproduction binary prints its series both as an
// aligned human-readable table and as machine-readable CSV, so results can
// be re-plotted without re-running.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace rac::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a pre-formatted row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(std::initializer_list<double> values, int precision = 2);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Render as an aligned table with a header separator.
  std::string str() const;

  /// Render as CSV (RFC-4180-style quoting for cells containing
  /// commas/quotes/newlines).
  std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for building rows).
std::string fmt(double value, int precision = 2);

}  // namespace rac::util
