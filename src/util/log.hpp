// Minimal leveled logger.
//
// Libraries in this repo report through return values and exceptions; the
// logger exists for the agents' trace output (reconfiguration decisions,
// policy switches) which operators of the real RAC system would read.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace rac::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Receives each formatted line ("[<UTC timestamp>] [LEVEL] message", no
/// trailing newline) that passes the level filter.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the destination of log lines (default: stderr). Pass nullptr to
/// restore the default. Tests install a capturing sink to assert on agent
/// commentary without scraping stderr.
void set_log_sink(LogSink sink);

/// Emit one line as "[2009-06-22T12:00:00Z] [LEVEL] message". Thread-safe:
/// formatting, the sink call, and the stderr write happen under one mutex,
/// so concurrent agents cannot interleave lines.
void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace rac::util
