// Fixed-size worker pool for embarrassingly-parallel fan-out.
//
// The expensive phases of the reproduction -- Algorithm-2 policy
// initialization per context and the bench harnesses' multi-agent
// comparisons -- are independent tasks over independent environments, so a
// plain fork-join pool (no work stealing) is enough. Determinism is the
// design constraint: `parallel_for` decomposes work by index, results are
// written to per-index slots, and callers derive any randomness from
// (base_seed, task_index) via `derive_seed`, so output is bit-identical at
// every thread count.
//
// Nested-submit safety: a task running on a pool worker may itself call
// `parallel_for` / `parallel_map`; the nested region runs inline on that
// worker (same index order) instead of deadlocking on a full pool. A pool
// of size 1 spawns no threads at all and always runs inline -- the exact
// serial path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rac::util {

/// Parse a RAC_THREADS-style worker-count override. Returns nullopt for
/// nullptr, an empty string, trailing garbage ("4x"), non-numeric input,
/// zero, negative values, or anything that overflows -- every rejection
/// means "fall back to hardware concurrency". Exposed separately from
/// default_thread_count so the accept/reject table is unit-testable
/// without mutating the process environment.
std::optional<std::size_t> parse_thread_count(const char* text) noexcept;

/// Worker count requested via the RAC_THREADS environment variable;
/// hardware_concurrency when unset (minimum 1). A set-but-invalid value
/// (garbage, 0, negative) also falls back, with a logged warning -- a typo
/// in a job script must not silently serialize or wedge the run.
std::size_t default_thread_count();

/// Optional telemetry callbacks (wired to the metrics registry by
/// obs::pool_telemetry). Both may be empty; they are invoked from worker
/// threads and must be thread-safe.
struct PoolTelemetry {
  /// Queue depth after every enqueue batch / dequeue.
  std::function<void(std::size_t)> queue_depth;
  /// Wall-clock latency of every completed task, in microseconds.
  std::function<void(double)> task_us;
};

class ThreadPool {
 public:
  /// `threads` == 0 means default_thread_count(). A pool of size 1 spawns
  /// no worker threads.
  explicit ThreadPool(std::size_t threads = 0, PoolTelemetry telemetry = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return threads_; }

  /// Invoke `body(i)` for every i in [0, n) and block until all complete.
  /// Every task runs exactly once even if another throws; the exception of
  /// the lowest-index failing task is rethrown (deterministically) after
  /// the region drains. Runs inline (index order, no handoff) when the
  /// pool has one thread, n <= 1, or the caller is itself a pool worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for that collects `body(i)` into slot i of the result (the
  /// result type must be default-constructible). Output order == input
  /// order regardless of scheduling.
  template <typename F>
  auto parallel_map(std::size_t n, F&& body)
      -> std::vector<std::invoke_result_t<F&, std::size_t>> {
    std::vector<std::invoke_result_t<F&, std::size_t>> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = body(i); });
    return out;
  }

  /// True when the calling thread is a worker of any ThreadPool (used for
  /// the nested-submit inline fallback).
  static bool on_worker_thread() noexcept;

 private:
  // Shared bookkeeping of one parallel_for call.
  struct Region {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t remaining = 0;             // guarded by mutex
    std::vector<std::exception_ptr> errors;  // one slot per task index
    std::mutex mutex;
    std::condition_variable done;
  };

  void worker_loop();
  void run_task(Region& region, std::size_t index);
  void run_inline(std::size_t n, const std::function<void(std::size_t)>& body);
  static void rethrow_first(const std::vector<std::exception_ptr>& errors);

  std::size_t threads_;
  PoolTelemetry telemetry_;
  std::mutex mutex_;
  std::condition_variable work_;
  std::deque<std::pair<Region*, std::size_t>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace rac::util
