#include "util/regression.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::util {

double LinearModel::predict(std::span<const double> features) const {
  if (features.size() != weights_.size()) {
    throw std::invalid_argument("LinearModel::predict: feature width mismatch");
  }
  double y = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) y += weights_[i] * features[i];
  return y;
}

LinearModel fit_least_squares(std::span<const double> rows, std::size_t width,
                              std::span<const double> y, double ridge) {
  if (width == 0) throw std::invalid_argument("fit_least_squares: width == 0");
  if (rows.size() % width != 0) {
    throw std::invalid_argument("fit_least_squares: ragged feature matrix");
  }
  const std::size_t n = rows.size() / width;
  if (n != y.size()) {
    throw std::invalid_argument("fit_least_squares: |X| != |y|");
  }
  if (n < width) {
    throw std::invalid_argument(
        "fit_least_squares: fewer samples than features");
  }

  // Normal matrix A = X^T X + ridge I (symmetric positive definite), and
  // right-hand side b = X^T y.
  std::vector<double> a(width * width, 0.0);
  std::vector<double> b(width, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = rows.data() + r * width;
    for (std::size_t i = 0; i < width; ++i) {
      b[i] += row[i] * y[r];
      for (std::size_t j = i; j < width; ++j) a[i * width + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < width; ++i) {
    a[i * width + i] += ridge;
    for (std::size_t j = 0; j < i; ++j) a[i * width + j] = a[j * width + i];
  }

  // Cholesky decomposition A = L L^T.
  std::vector<double> l(width * width, 0.0);
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * width + j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i * width + k] * l[j * width + k];
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error(
              "fit_least_squares: normal matrix not positive definite");
        }
        l[i * width + i] = std::sqrt(sum);
      } else {
        l[i * width + j] = sum / l[j * width + j];
      }
    }
  }

  // Solve L z = b, then L^T w = z.
  std::vector<double> z(width, 0.0);
  for (std::size_t i = 0; i < width; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * width + k] * z[k];
    z[i] = sum / l[i * width + i];
  }
  std::vector<double> w(width, 0.0);
  for (std::size_t ii = width; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < width; ++k) sum -= l[k * width + ii] * w[k];
    w[ii] = sum / l[ii * width + ii];
  }
  return LinearModel(std::move(w));
}

std::vector<double> Poly1D::features(double x) const {
  const double zx = (x - x_mean_) / x_scale_;
  std::vector<double> phi(static_cast<std::size_t>(degree_) + 1);
  double pow = 1.0;
  for (auto& f : phi) {
    f = pow;
    pow *= zx;
  }
  return phi;
}

Poly1D Poly1D::fit(std::span<const double> xs, std::span<const double> ys,
                   int degree, double ridge) {
  if (degree < 0) throw std::invalid_argument("Poly1D::fit: negative degree");
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("Poly1D::fit: |x| != |y|");
  }
  if (xs.size() < static_cast<std::size_t>(degree) + 1) {
    throw std::invalid_argument("Poly1D::fit: not enough points");
  }
  Poly1D p;
  p.degree_ = degree;
  double lo = xs[0];
  double hi = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  p.x_mean_ = sum / static_cast<double>(xs.size());
  p.x_scale_ = (hi > lo) ? (hi - lo) / 2.0 : 1.0;

  const auto width = static_cast<std::size_t>(degree) + 1;
  std::vector<double> rows;
  rows.reserve(xs.size() * width);
  for (double x : xs) {
    const auto phi = p.features(x);
    rows.insert(rows.end(), phi.begin(), phi.end());
  }
  p.model_ = fit_least_squares(rows, width, ys, ridge);
  return p;
}

double Poly1D::predict(double x) const {
  RAC_EXPECT(fitted(), "Poly1D::predict: model not fitted");
  return model_.predict(features(x));
}

double Poly1D::argmin(double lo, double hi, int samples) const {
  RAC_EXPECT(fitted(), "Poly1D::argmin: model not fitted");
  RAC_EXPECT(samples >= 2, "Poly1D::argmin: need at least 2 samples");
  double best_x = lo;
  double best_y = std::numeric_limits<double>::infinity();
  for (int i = 0; i < samples; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(samples - 1);
    const double y = predict(x);
    if (y < best_y) {
      best_y = y;
      best_x = x;
    }
  }
  return best_x;
}

std::vector<double> QuadraticSurface::features(std::span<const double> x) const {
  RAC_EXPECT(x.size() == dim_, "QuadraticSurface::features: dim mismatch");
  std::vector<double> z(dim_);
  for (std::size_t i = 0; i < dim_; ++i) z[i] = (x[i] - means_[i]) / scales_[i];
  std::vector<double> phi;
  phi.reserve(1 + static_cast<std::size_t>(degree_) * dim_ +
              dim_ * (dim_ - 1) / 2);
  phi.push_back(1.0);
  for (int p = 1; p <= degree_; ++p) {
    for (std::size_t i = 0; i < dim_; ++i) {
      phi.push_back(std::pow(z[i], static_cast<double>(p)));
    }
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = i + 1; j < dim_; ++j) phi.push_back(z[i] * z[j]);
  }
  return phi;
}

QuadraticSurface QuadraticSurface::fit(std::span<const double> points,
                                       std::size_t dim,
                                       std::span<const double> ys,
                                       double ridge, int per_dim_degree) {
  if (dim == 0) throw std::invalid_argument("QuadraticSurface::fit: dim == 0");
  if (per_dim_degree < 2 || per_dim_degree > 3) {
    throw std::invalid_argument("QuadraticSurface::fit: degree must be 2 or 3");
  }
  if (points.size() % dim != 0) {
    throw std::invalid_argument("QuadraticSurface::fit: ragged points");
  }
  const std::size_t n = points.size() / dim;
  if (n != ys.size()) {
    throw std::invalid_argument("QuadraticSurface::fit: |X| != |y|");
  }

  QuadraticSurface q;
  q.dim_ = dim;
  q.degree_ = per_dim_degree;
  q.means_.assign(dim, 0.0);
  q.scales_.assign(dim, 1.0);
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double v = points[r * dim + i];
      q.means_[i] += v;
      lo[i] = std::min(lo[i], v);
      hi[i] = std::max(hi[i], v);
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    q.means_[i] /= static_cast<double>(n);
    q.scales_[i] = (hi[i] > lo[i]) ? (hi[i] - lo[i]) / 2.0 : 1.0;
  }

  const std::size_t width = 1 + static_cast<std::size_t>(per_dim_degree) * dim +
                            dim * (dim - 1) / 2;
  std::vector<double> rows;
  rows.reserve(n * width);
  for (std::size_t r = 0; r < n; ++r) {
    const auto phi = q.features(points.subspan(r * dim, dim));
    rows.insert(rows.end(), phi.begin(), phi.end());
  }
  q.model_ = fit_least_squares(rows, width, ys, ridge);
  return q;
}

QuadraticSurface QuadraticSurface::from_parts(LinearModel model,
                                              std::size_t dim,
                                              int per_dim_degree,
                                              std::vector<double> means,
                                              std::vector<double> scales) {
  if (dim == 0) {
    throw std::invalid_argument("QuadraticSurface::from_parts: dim == 0");
  }
  if (per_dim_degree < 2 || per_dim_degree > 3) {
    throw std::invalid_argument(
        "QuadraticSurface::from_parts: degree must be 2 or 3");
  }
  if (means.size() != dim || scales.size() != dim) {
    throw std::invalid_argument(
        "QuadraticSurface::from_parts: means/scales size != dim");
  }
  for (double s : scales) {
    if (!(s > 0.0)) {
      throw std::invalid_argument(
          "QuadraticSurface::from_parts: non-positive scale");
    }
  }
  const std::size_t width = 1 +
                            static_cast<std::size_t>(per_dim_degree) * dim +
                            dim * (dim - 1) / 2;
  if (model.num_features() != width) {
    throw std::invalid_argument(
        "QuadraticSurface::from_parts: weight count does not match feature "
        "map");
  }
  QuadraticSurface q;
  q.model_ = std::move(model);
  q.dim_ = dim;
  q.degree_ = per_dim_degree;
  q.means_ = std::move(means);
  q.scales_ = std::move(scales);
  return q;
}

double QuadraticSurface::predict(std::span<const double> x) const {
  RAC_EXPECT(fitted(), "QuadraticSurface::predict: model not fitted");
  if (x.size() != dim_) {
    throw std::invalid_argument("QuadraticSurface::predict: dim mismatch");
  }
  return model_.predict(features(x));
}

}  // namespace rac::util
