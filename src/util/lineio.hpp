// Locale-immune primitives for the line-oriented persistence formats.
//
// Everything the checkpoint/restore subsystem writes to disk -- Q-tables,
// agent snapshots, policy libraries -- must round-trip bit-exactly on any
// host, under any process locale. printf "%a" / std::stod / stream
// numeric inserters all honor the locale (LC_NUMERIC decimal point, num_get
// thousands grouping), so a file written under de_DE is corrupt under "C"
// and vice versa (the PR-4 serialization bug class; rac-lint rule
// `locale-io`). These helpers route every number through
// std::to_chars/std::from_chars, which are locale-independent by
// specification; callers write the returned tokens as plain strings and
// read whitespace-separated tokens back.
//
// Doubles are formatted as hex floats ("1.91eb851eb851fp+1"): exact
// round-trip, no shortest-decimal ambiguity, still diffable text. The
// parser also accepts the legacy 0x-prefixed "%a" spelling and plain
// decimal/scientific forms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace rac::util {

/// Exact hex-float rendering ("-1.8p+3"; "inf"/"nan" pass through).
std::string format_double(double v);

/// Shortest decimal rendering that parses back to exactly `v`
/// (std::to_chars general form, e.g. "0.1", "1e+25"). Locale-independent
/// and a valid JSON number for finite inputs; "inf"/"nan" pass through,
/// so JSON writers must guard non-finite values themselves.
std::string format_double_decimal(double v);

/// Locale-independent integer renderings.
std::string format_i64(std::int64_t v);
std::string format_u64(std::uint64_t v);

/// Strict parsers: the whole token must be consumed. Throw
/// std::runtime_error naming `what` on malformed input. parse_double
/// accepts hex floats (with or without 0x prefix) and decimal forms.
double parse_double(std::string_view token, std::string_view what);
std::int64_t parse_i64(std::string_view token, std::string_view what);
std::uint64_t parse_u64(std::string_view token, std::string_view what);
/// parse_i64 range-checked into int.
int parse_int(std::string_view token, std::string_view what);

/// Next whitespace-separated token; throws std::runtime_error naming
/// `what` on end of stream.
std::string read_token(std::istream& is, std::string_view what);

/// read_token that must equal `expected`; throws otherwise.
void expect_token(std::istream& is, std::string_view expected,
                  std::string_view what);

/// Durable file replace: write `contents` to `path + ".tmp"`, flush, then
/// rename over `path` (atomic on POSIX filesystems -- readers see either
/// the old file or the complete new one, never a torn write). Throws
/// std::ios_base::failure on any I/O error.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace rac::util
