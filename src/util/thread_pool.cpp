#include "util/thread_pool.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "util/log.hpp"

namespace rac::util {

namespace {

thread_local bool t_on_pool_worker = false;

// Raw clock reads are justified here: the timings feed PoolTelemetry
// (which obs wires into its registry), and util cannot depend on obs.
double elapsed_us(std::chrono::steady_clock::time_point start) {
  const auto end =
      std::chrono::steady_clock::now();  // rac-lint: allow(untracked-timer)
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

std::optional<std::size_t> parse_thread_count(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || parsed < 1) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  const char* env = std::getenv("RAC_THREADS");
  if (env == nullptr) return fallback;
  if (const auto parsed = parse_thread_count(env)) return *parsed;
  log_warn("RAC_THREADS='", env,
           "' is not a positive integer; falling back to hardware "
           "concurrency (", fallback, ")");
  return fallback;
}

ThreadPool::ThreadPool(std::size_t threads, PoolTelemetry telemetry)
    : threads_(threads == 0 ? default_thread_count() : threads),
      telemetry_(std::move(telemetry)) {
  if (threads_ < 2) return;  // size-1 pools run everything inline
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::pair<Region*, std::size_t> item;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      item = queue_.front();
      queue_.pop_front();
      depth = queue_.size();
    }
    if (telemetry_.queue_depth) telemetry_.queue_depth(depth);
    run_task(*item.first, item.second);
  }
}

void ThreadPool::run_task(Region& region, std::size_t index) {
  const auto start =
      std::chrono::steady_clock::now();  // rac-lint: allow(untracked-timer)
  try {
    (*region.body)(index);
  } catch (...) {
    region.errors[index] = std::current_exception();
  }
  if (telemetry_.task_us) telemetry_.task_us(elapsed_us(start));
  {
    const std::lock_guard<std::mutex> lock(region.mutex);
    if (--region.remaining == 0) region.done.notify_all();
  }
}

void ThreadPool::run_inline(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  // Same decomposition and completion semantics as the pooled path: every
  // task runs, the lowest-index exception wins.
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto start =
        std::chrono::steady_clock::now();  // rac-lint: allow(untracked-timer)
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (telemetry_.task_us) telemetry_.task_us(elapsed_us(start));
  }
  rethrow_first(errors);
}

void ThreadPool::rethrow_first(const std::vector<std::exception_ptr>& errors) {
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ < 2 || n == 1 || on_worker_thread()) {
    run_inline(n, body);
    return;
  }

  Region region;
  region.body = &body;
  region.remaining = n;
  region.errors.resize(n);

  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) queue_.emplace_back(&region, i);
    depth = queue_.size();
  }
  work_.notify_all();
  if (telemetry_.queue_depth) telemetry_.queue_depth(depth);

  {
    std::unique_lock<std::mutex> lock(region.mutex);
    region.done.wait(lock, [&region] { return region.remaining == 0; });
  }
  rethrow_first(region.errors);
}

}  // namespace rac::util
