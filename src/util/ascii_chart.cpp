#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rac::util {

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
  if (width < 16 || height < 4) {
    throw std::invalid_argument("AsciiChart: plot area too small");
  }
}

void AsciiChart::add_series(Series series) {
  if (series.xs.size() != series.ys.size() || series.xs.empty()) {
    throw std::invalid_argument("AsciiChart: bad series shape");
  }
  series_.push_back(std::move(series));
}

std::string AsciiChart::str() const {
  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  if (series_.empty()) {
    os << "(no data)\n";
    return os.str();
  }

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series_) {
    for (double x : s.xs) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (double y : s.ys) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  // Pad the y range slightly so extreme points are visible.
  const double y_pad = 0.02 * (y_max - y_min);
  y_min -= y_pad;
  y_max += y_pad;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto plot = [&](double x, double y, char sym) {
    const int col = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) *
                                                 (width_ - 1)));
    const int row = static_cast<int>(std::lround((y - y_min) / (y_max - y_min) *
                                                 (height_ - 1)));
    const int r = height_ - 1 - row;  // invert: top row is y_max
    if (r >= 0 && r < height_ && col >= 0 && col < width_) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] = sym;
    }
  };

  for (const auto& s : series_) {
    // Connect consecutive points with linear interpolation for readability.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const int steps = width_;
      for (int t = 0; t <= steps; ++t) {
        const double f = static_cast<double>(t) / steps;
        plot(s.xs[i] + f * (s.xs[i + 1] - s.xs[i]),
             s.ys[i] + f * (s.ys[i + 1] - s.ys[i]), s.symbol);
      }
    }
    if (s.xs.size() == 1) plot(s.xs[0], s.ys[0], s.symbol);
  }

  const int label_width = 10;
  for (int r = 0; r < height_; ++r) {
    std::ostringstream lab;
    if (r == 0 || r == height_ - 1 || r == height_ / 2) {
      const double y =
          y_max - (y_max - y_min) * static_cast<double>(r) / (height_ - 1);
      lab.setf(std::ios::fixed);
      lab.precision(1);
      lab << y;
    }
    std::string label = lab.str();
    if (static_cast<int>(label.size()) < label_width) {
      label = std::string(label_width - label.size(), ' ') + label;
    }
    os << label << " |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(label_width + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(width_), '-') << "\n";

  {
    std::ostringstream xrow;
    xrow.setf(std::ios::fixed);
    xrow.precision(1);
    xrow << x_min;
    std::string left = xrow.str();
    std::ostringstream xro2;
    xro2.setf(std::ios::fixed);
    xro2.precision(1);
    xro2 << x_max;
    std::string right = xro2.str();
    std::string row(static_cast<std::size_t>(label_width + 2 + width_), ' ');
    std::copy(left.begin(), left.end(), row.begin() + label_width + 2);
    if (right.size() <= static_cast<std::size_t>(width_)) {
      std::copy(right.begin(), right.end(), row.end() - right.size());
    }
    os << row << "\n";
  }

  if (!x_label_.empty() || !y_label_.empty()) {
    os << std::string(label_width + 2, ' ') << x_label_;
    if (!y_label_.empty()) os << "   (y: " << y_label_ << ")";
    os << "\n";
  }
  os << "legend:";
  for (const auto& s : series_) os << "  '" << s.symbol << "' = " << s.name;
  os << "\n";
  return os.str();
}

}  // namespace rac::util
