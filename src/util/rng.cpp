#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // Two mixing rounds so adjacent indices land far apart even for small
  // human-chosen base seeds.
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  splitmix64(state);
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not be seeded with all zeros; splitmix64 cannot produce
  // four consecutive zero outputs, so the state is always valid.
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  RAC_EXPECT(lo <= hi, "uniform_int: inverted range");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>((*this)() % span);
}

double Rng::exponential(double mean) {
  RAC_EXPECT(mean > 0.0, "exponential: non-positive mean");
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_unit(double sigma) noexcept {
  // exp(N(-sigma^2/2, sigma)) has mean exactly 1.
  return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

int Rng::geometric(double p) {
  RAC_EXPECT(p > 0.0 && p <= 1.0, "geometric: p outside (0, 1]");
  if (p >= 1.0) return 1;
  // Inversion: one uniform replaces the expected 1/p bernoulli draws of
  // trial-by-trial sampling. uniform() < 1, so log1p(-u) is finite; the
  // quotient is bounded by ~log(2^53) / -log1p(-p), far below INT_MAX for
  // any p this codebase uses.
  const double u = uniform();
  return 1 + static_cast<int>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  RAC_EXPECT(total > 0.0, "categorical: weights sum to zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return the last bucket
}

Rng Rng::split() noexcept { return Rng((*this)()); }

RngState Rng::state() const noexcept {
  RngState out;
  out.words = s_;
  out.cached_normal = cached_normal_;
  out.has_cached_normal = has_cached_normal_;
  return out;
}

void Rng::restore(const RngState& state) {
  if (state.words[0] == 0 && state.words[1] == 0 && state.words[2] == 0 &&
      state.words[3] == 0) {
    throw std::invalid_argument("Rng::restore: all-zero state");
  }
  s_ = state.words;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace rac::util
