// Terminal line charts for the figure-reproduction harnesses.
//
// Each bench binary renders the paper figure it reproduces as a multi-series
// ASCII chart so the shape (who wins, where the minima fall, where the
// spikes are) is visible directly in the captured output.
#pragma once

#include <string>
#include <vector>

namespace rac::util {

struct Series {
  std::string name;
  char symbol = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

class AsciiChart {
 public:
  AsciiChart(int width = 78, int height = 20);

  void set_title(std::string title) { title_ = std::move(title); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// Add a series; x and y must have equal, non-zero length.
  void add_series(Series series);

  /// Render the chart (plot area, axes, tick labels, legend).
  std::string str() const;

 private:
  int width_;
  int height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace rac::util
