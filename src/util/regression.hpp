// Least-squares regression.
//
// The paper's policy-initialization step (Algorithm 2) fits a polynomial
// regression over coarse configuration samples and uses it to predict the
// response time of configurations that were never measured. All parameters
// have a concave-upward effect on response time, so a low-order polynomial
// surface captures the shape well.
//
// Two layers are provided:
//   * LinearModel / fit_least_squares: generic ridge-regularized linear
//     least squares over arbitrary feature vectors (normal equations +
//     Cholesky).
//   * Poly1D: convenience wrapper for single-variable polynomial fits
//     (used for the Figure 4 regression overlay).
//   * QuadraticSurface: multi-variate quadratic feature map
//     [1, x_i, x_i^2, x_i*x_j] used by the policy initializer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rac::util {

/// Coefficients of a fitted linear-in-features model: y ~ w . phi(x).
class LinearModel {
 public:
  LinearModel() = default;
  explicit LinearModel(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  bool fitted() const noexcept { return !weights_.empty(); }
  std::size_t num_features() const noexcept { return weights_.size(); }
  std::span<const double> weights() const noexcept { return weights_; }

  /// Dot product with a feature vector of matching dimension.
  double predict(std::span<const double> features) const;

 private:
  std::vector<double> weights_;
};

/// Solve min_w ||X w - y||^2 + ridge * ||w||^2.
/// `rows` holds the feature matrix row-major, each row of width `width`.
/// Throws std::invalid_argument on dimension mismatch and
/// std::runtime_error if the (regularized) normal matrix is singular.
LinearModel fit_least_squares(std::span<const double> rows, std::size_t width,
                              std::span<const double> y, double ridge = 1e-9);

/// Single-variable polynomial y = c0 + c1 x + ... + cd x^d.
/// Inputs are internally standardized for conditioning.
class Poly1D {
 public:
  Poly1D() = default;

  /// Fit a degree-`degree` polynomial. Requires xs.size() == ys.size() and
  /// at least degree+1 points.
  static Poly1D fit(std::span<const double> xs, std::span<const double> ys,
                    int degree, double ridge = 1e-9);

  bool fitted() const noexcept { return model_.fitted(); }
  int degree() const noexcept { return degree_; }
  double predict(double x) const;

  /// Location of the minimum of the fitted polynomial over [lo, hi]
  /// (dense scan; the polynomials here are low degree and cheap).
  double argmin(double lo, double hi, int samples = 512) const;

 private:
  LinearModel model_;
  int degree_ = 0;
  double x_mean_ = 0.0;
  double x_scale_ = 1.0;

  std::vector<double> features(double x) const;
};

/// Multi-variate polynomial surface with pairwise interactions:
///   y = w0 + sum_i sum_{p=1..d} b_ip z_i^p + sum_{i<j} c_ij z_i z_j,
/// where z is the standardized input and d is the per-dimension degree
/// (2 or 3). Feature count is 1 + d*n + n(n-1)/2 -- 45 (quadratic) or 53
/// (cubic) for the paper's 8 parameters.
class QuadraticSurface {
 public:
  QuadraticSurface() = default;

  /// `points` is row-major, `dim` values per sample. `per_dim_degree`
  /// in {2, 3}: cubic terms let the fit follow the sharp descent into the
  /// valley that a pure quadratic smooths away.
  static QuadraticSurface fit(std::span<const double> points, std::size_t dim,
                              std::span<const double> ys, double ridge = 1e-6,
                              int per_dim_degree = 2);

  /// Rebuild a surface from serialized parts. Validates the invariants
  /// `fit` guarantees -- degree in {2, 3}, means/scales sized to `dim`,
  /// strictly positive scales, weight count matching the feature map --
  /// and throws std::invalid_argument otherwise.
  static QuadraticSurface from_parts(LinearModel model, std::size_t dim,
                                     int per_dim_degree,
                                     std::vector<double> means,
                                     std::vector<double> scales);

  bool fitted() const noexcept { return model_.fitted(); }
  std::size_t dim() const noexcept { return dim_; }
  int per_dim_degree() const noexcept { return degree_; }
  const LinearModel& model() const noexcept { return model_; }
  std::span<const double> means() const noexcept { return means_; }
  std::span<const double> scales() const noexcept { return scales_; }
  double predict(std::span<const double> x) const;

 private:
  LinearModel model_;
  std::size_t dim_ = 0;
  int degree_ = 2;
  std::vector<double> means_;
  std::vector<double> scales_;

  std::vector<double> features(std::span<const double> x) const;
};

}  // namespace rac::util
