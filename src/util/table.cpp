#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rac::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: empty header row");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(std::initializer_list<double> values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace rac::util
