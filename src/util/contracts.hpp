// Contract macros: the project's one way to state runtime invariants.
//
// Library code must not use raw `assert` (compiled out under NDEBUG, so
// release builds drift silently) or ad-hoc prints; `rac-lint` enforces
// this. Instead:
//
//   RAC_EXPECT(cond, "msg")     -- precondition on the caller
//   RAC_ENSURE(cond, "msg")     -- postcondition on the callee
//   RAC_INVARIANT(cond, "msg")  -- internal consistency
//   RAC_AUDIT(cond, "msg")      -- heavyweight check, compiled out (the
//                                  condition is NOT evaluated) unless the
//                                  build sets -DRAC_AUDIT=ON
//
// The first three always evaluate their condition (they are cheap: one
// compare and a never-taken branch on the hot path). What happens on
// failure is a process-wide runtime choice:
//
//   ContractMode::kThrow  (default) -- throw ContractViolation
//   ContractMode::kAbort            -- log the failure, std::abort()
//   ContractMode::kLog              -- log the failure, continue
//
// kThrow keeps failures testable and recoverable; kAbort is what a
// production deployment running under a supervisor wants (a core dump at
// the first bad state beats a poisoned Q-table); kLog exists for
// best-effort data-gathering runs. Note that a kThrow failure inside a
// `noexcept` function still terminates -- by design, such contracts are
// "fail loudly" either way.
//
// Heavyweight audit *blocks* (e.g. scanning a whole Q-table for NaNs)
// should be gated on `if constexpr (rac::util::kAuditEnabled)` so the
// audit build pays the cost and the default build compiles it away.
#pragma once

#include <stdexcept>
#include <string>

namespace rac::util {

#if defined(RAC_AUDIT_ENABLED)
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

enum class ContractMode { kThrow, kAbort, kLog };

/// Thrown on contract failure in ContractMode::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Process-wide failure mode (atomic; safe to flip from tests).
void set_contract_mode(ContractMode mode) noexcept;
ContractMode contract_mode() noexcept;

/// RAII helper for tests: swap the mode, restore on scope exit.
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode) noexcept
      : previous_(contract_mode()) {
    set_contract_mode(mode);
  }
  ~ScopedContractMode() { set_contract_mode(previous_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode previous_;
};

namespace detail {
/// Slow path, shared by every macro. Returns only in ContractMode::kLog.
void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const char* message);
}  // namespace detail

}  // namespace rac::util

#define RAC_CONTRACT_IMPL_(kind, cond, msg)                              \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      ::rac::util::detail::contract_fail(kind, #cond, __FILE__,          \
                                         __LINE__, msg);                 \
    }                                                                    \
  } while (false)

#define RAC_EXPECT(cond, msg) RAC_CONTRACT_IMPL_("EXPECT", cond, msg)
#define RAC_ENSURE(cond, msg) RAC_CONTRACT_IMPL_("ENSURE", cond, msg)
#define RAC_INVARIANT(cond, msg) RAC_CONTRACT_IMPL_("INVARIANT", cond, msg)

#if defined(RAC_AUDIT_ENABLED)
#define RAC_AUDIT(cond, msg) RAC_CONTRACT_IMPL_("AUDIT", cond, msg)
#else
// Compiled out entirely: the condition is not evaluated (audits may be
// arbitrarily expensive), but it still parses, so it cannot rot.
#define RAC_AUDIT(cond, msg)                       \
  do {                                             \
    if constexpr (false) {                         \
      static_cast<void>(cond);                     \
      static_cast<void>(msg);                      \
    }                                              \
  } while (false)
#endif
