#include "baselines/static_agent.hpp"

// Header-only agent; this translation unit anchors the library target.
