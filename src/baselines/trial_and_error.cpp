#include "baselines/trial_and_error.hpp"

#include <stdexcept>

#include "config/space.hpp"

namespace rac::baselines {

namespace {
std::vector<int> spread_values(config::ParamId id, int count) {
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double t = count == 1 ? 0.0
                                : static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    config::Configuration c;
    c.set_normalized(id, t);
    const int v = config::ConfigSpace::snap_to_fine(c).value(id);
    if (values.empty() || values.back() != v) values.push_back(v);
  }
  return values;
}
}  // namespace

TrialAndErrorAgent::TrialAndErrorAgent(const TrialAndErrorOptions& options)
    : opt_(options), detector_(options.violation) {
  if (options.values_per_parameter < 2) {
    throw std::invalid_argument("TrialAndErrorAgent: need >= 2 values");
  }
  start_parameter(0);
}

void TrialAndErrorAgent::start_parameter(std::size_t index) {
  param_index_ = index;
  candidates_ =
      spread_values(config::kAllParams[index], opt_.values_per_parameter);
  candidate_index_ = 0;
  have_best_ = false;
  done_ = false;
}

config::Configuration TrialAndErrorAgent::decide() {
  if (done_) return base_;
  config::Configuration trial = base_;
  trial.set(config::kAllParams[param_index_], candidates_[candidate_index_]);
  return trial;
}

void TrialAndErrorAgent::observe(const config::Configuration& applied,
                                 const env::PerfSample& sample) {
  if (done_) {
    if (detector_.observe(sample.response_ms)) {
      ++restarts_;
      start_parameter(0);
    }
    return;
  }
  detector_.reset();  // experimenting: jumps are self-inflicted

  const int value = applied.value(config::kAllParams[param_index_]);
  if (!have_best_ || sample.response_ms < best_response_) {
    best_response_ = sample.response_ms;
    best_value_ = value;
    have_best_ = true;
  }
  ++candidate_index_;
  if (candidate_index_ >= candidates_.size()) {
    base_.set(config::kAllParams[param_index_], best_value_);
    if (param_index_ + 1 < config::kNumParams) {
      start_parameter(param_index_ + 1);
    } else {
      done_ = true;
    }
  }
}

}  // namespace rac::baselines
