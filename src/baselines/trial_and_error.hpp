// Baseline 2 (paper Section 5.2): the trial-and-error method that mimics
// the way an administrator tunes the system manually. Quoting the paper:
// it "tunes the system starting from an arbitrary parameter and fixes the
// remaining parameters. The parameter setting that produces the best
// performance is selected as the optimal value for this parameter. Then
// the agent goes to the next parameter. Once all the parameters are
// processed, the resulted parameter settings are considered as the best
// configuration."
//
// Each parameter is swept over a handful of candidate values spanning its
// range (the admin tries low / middle / high); the sweep granularity is
// deliberately coarse -- trying every fine-grid value for eight parameters
// would take hundreds of intervals. Because parameters are tuned
// independently and coarsely, the method is prone to being trapped in
// local optimal settings (paper Section 5.2), and each probe of a
// pathological value costs a full measurement interval of bad service.
//
// Context changes are detected with the same violation detector the RAC
// agent uses, but only while holding a finished configuration (during a
// sweep the response time is expected to jump around); a detection
// restarts the sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "core/agent.hpp"
#include "core/violation.hpp"

namespace rac::baselines {

struct TrialAndErrorOptions {
  /// Candidate values tried per parameter, spread evenly over its range.
  int values_per_parameter = 3;
  core::ViolationOptions violation{};
};

class TrialAndErrorAgent : public core::ConfigAgent {
 public:
  explicit TrialAndErrorAgent(const TrialAndErrorOptions& options = {});

  config::Configuration decide() override;
  void observe(const config::Configuration& applied,
               const env::PerfSample& sample) override;
  std::string name() const override { return "trial-and-error"; }

  bool finished_sweep() const noexcept { return done_; }
  int restarts() const noexcept { return restarts_; }
  const config::Configuration& base() const noexcept { return base_; }

 private:
  TrialAndErrorOptions opt_;
  core::ViolationDetector detector_;
  config::Configuration base_;      // settings locked in so far
  std::size_t param_index_ = 0;
  std::vector<int> candidates_;     // values to try for the current param
  std::size_t candidate_index_ = 0;
  double best_response_ = 0.0;
  int best_value_ = 0;
  bool have_best_ = false;
  bool done_ = false;
  int restarts_ = 0;

  void start_parameter(std::size_t index);
};

}  // namespace rac::baselines
