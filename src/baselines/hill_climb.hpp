// Extra baseline (beyond the paper): a per-parameter greedy line search in
// the spirit of the smart hill-climbing tuners the paper cites ([18],
// [19]). Starting from the current setting of one parameter it probes one
// fine-grid step up, then (if that did not help) one step down, keeps
// walking in the improving direction until the measured response time
// stops improving, locks the parameter, and moves on to the next one.
//
// Compared with the paper's coarse trial-and-error sweep this is a much
// stronger local optimizer (it exploits the fine grid and never visits the
// pathological extremes), which makes it a useful upper baseline for the
// comparison benches -- see EXPERIMENTS.md for how it fares against RAC.
// It still tunes parameters independently and cannot escape local optima
// created by parameter interactions. A violation detector (active only
// while holding, not while the admin is knowingly experimenting) restarts
// the pass when the system context visibly changes.
#pragma once

#include <cstddef>

#include "core/agent.hpp"
#include "core/violation.hpp"

namespace rac::baselines {

struct HillClimbOptions {
  /// Fine-grid steps taken per probe (1 = the online learning step).
  int probe_step = 1;
  /// Extra passes over all parameters after the first (the admin usually
  /// stops after one; more passes approximate coordinate descent).
  int passes = 1;
  core::ViolationOptions violation{};
};

class HillClimbAgent : public core::ConfigAgent {
 public:
  explicit HillClimbAgent(const HillClimbOptions& options = {});

  config::Configuration decide() override;
  void observe(const config::Configuration& applied,
               const env::PerfSample& sample) override;
  std::string name() const override { return "hill-climb"; }

  bool finished_sweep() const noexcept { return phase_ == Phase::kHold; }
  int restarts() const noexcept { return restarts_; }
  const config::Configuration& base() const noexcept { return base_; }

 private:
  enum class Phase {
    kBaseline,  // measure the current base before touching anything
    kProbeUp,   // trying base + step
    kProbeDown, // trying base - step
    kWalk,      // moving in the improving direction
    kHold,      // pass complete, hold the result
  };

  HillClimbOptions opt_;
  core::ViolationDetector detector_;
  config::Configuration base_;   // settings locked in so far
  double base_response_ = 0.0;   // response time of `base_`
  std::size_t param_index_ = 0;
  int pass_ = 0;
  int direction_ = +1;
  Phase phase_ = Phase::kBaseline;
  int restarts_ = 0;
  config::Configuration pending_;  // configuration proposed by decide()

  config::ParamId param() const { return config::kAllParams[param_index_]; }
  void advance_parameter();
  void begin_pass();
};

}  // namespace rac::baselines
