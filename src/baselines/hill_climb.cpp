#include "baselines/hill_climb.hpp"

#include <stdexcept>

#include "config/space.hpp"

namespace rac::baselines {

HillClimbAgent::HillClimbAgent(const HillClimbOptions& options)
    : opt_(options), detector_(options.violation) {
  if (options.probe_step < 1 || options.passes < 1) {
    throw std::invalid_argument("HillClimbAgent: bad options");
  }
  begin_pass();
}

void HillClimbAgent::begin_pass() {
  param_index_ = 0;
  phase_ = Phase::kBaseline;
}

void HillClimbAgent::advance_parameter() {
  if (param_index_ + 1 < config::kNumParams) {
    ++param_index_;
    phase_ = Phase::kProbeUp;
  } else if (pass_ + 1 < opt_.passes) {
    ++pass_;
    param_index_ = 0;
    phase_ = Phase::kProbeUp;
  } else {
    phase_ = Phase::kHold;
  }
}

config::Configuration HillClimbAgent::decide() {
  pending_ = base_;
  switch (phase_) {
    case Phase::kBaseline:
    case Phase::kHold:
      break;
    case Phase::kProbeUp:
      pending_.step(param(), opt_.probe_step);
      break;
    case Phase::kProbeDown:
      pending_.step(param(), -opt_.probe_step);
      break;
    case Phase::kWalk:
      pending_.step(param(), direction_ * opt_.probe_step);
      break;
  }
  return pending_;
}

void HillClimbAgent::observe(const config::Configuration& applied,
                                 const env::PerfSample& sample) {
  // The admin only trusts "something changed behind my back" while
  // holding a supposedly-good configuration; during experiments the
  // response time is expected to move.
  if (phase_ == Phase::kHold) {
    if (detector_.observe(sample.response_ms)) {
      ++restarts_;
      begin_pass();
      base_response_ = sample.response_ms;
      return;
    }
  } else {
    detector_.reset();
  }

  const bool improved = sample.response_ms < base_response_;
  const bool moved = !(applied == base_);

  switch (phase_) {
    case Phase::kBaseline:
      base_response_ = sample.response_ms;
      phase_ = Phase::kProbeUp;
      break;
    case Phase::kProbeUp:
      if (moved && improved) {
        base_ = applied;
        base_response_ = sample.response_ms;
        direction_ = +1;
        phase_ = Phase::kWalk;
      } else {
        phase_ = Phase::kProbeDown;
      }
      break;
    case Phase::kProbeDown:
      if (moved && improved) {
        base_ = applied;
        base_response_ = sample.response_ms;
        direction_ = -1;
        phase_ = Phase::kWalk;
      } else {
        advance_parameter();  // neither direction helps: parameter is done
      }
      break;
    case Phase::kWalk:
      if (moved && improved) {
        base_ = applied;
        base_response_ = sample.response_ms;
        // keep walking the same direction
      } else {
        advance_parameter();
      }
      break;
    case Phase::kHold:
      // Slowly track drift so noise does not freeze an outdated baseline.
      base_response_ += 0.2 * (sample.response_ms - base_response_);
      break;
  }
}

}  // namespace rac::baselines
