// Baseline 1 (paper Section 5.2): the static default configuration. The
// operator never touches the Table-1 defaults, whatever the workload or VM
// resources do.
#pragma once

#include "core/agent.hpp"

namespace rac::baselines {

class StaticDefaultAgent : public core::ConfigAgent {
 public:
  StaticDefaultAgent() = default;
  explicit StaticDefaultAgent(config::Configuration fixed)
      : fixed_(fixed) {}

  config::Configuration decide() override { return fixed_; }
  void observe(const config::Configuration&, const env::PerfSample&) override {}
  std::string name() const override { return "static-default"; }

 private:
  config::Configuration fixed_ = config::Configuration::defaults();
};

}  // namespace rac::baselines
