// Persistence for the initial-policy library.
//
// Offline policy initialization is the expensive step of RAC (the paper
// reports over ten hours of data collection per context on the real
// testbed); the library -- one trained policy per anticipated context --
// is what a deployment actually ships. Saving stores each policy's
// context, regression surface (coefficients, standardization means and
// scales), coarse-sample optimum, fit quality, and Q-table; a loaded
// library is `exactly_equal` to the one saved, so benches and deployments
// can reuse a cached build instead of re-training.
//
// Same line-oriented token format as the rest of the persistence layer
// (util/lineio hex doubles, embedded rac-qtable v2 blocks, "end" trailers).
#pragma once

#include <iosfwd>
#include <string>

#include "core/policy_library.hpp"

namespace rac::core {

/// Serialize a library. Throws std::ios_base::failure on stream errors.
void save_library(std::ostream& os, const InitialPolicyLibrary& library);

/// Parse a library produced by save_library. Throws std::runtime_error on
/// malformed input. Leaves the stream just past the trailing "end".
InitialPolicyLibrary load_library(std::istream& is);

/// File-path convenience wrappers. Saving writes atomically (temp file +
/// rename); loading additionally rejects trailing garbage.
void save_library_file(const std::string& path,
                       const InitialPolicyLibrary& library);
InitialPolicyLibrary load_library_file(const std::string& path);

}  // namespace rac::core
