// Context-change detection (paper Section 4.3).
//
// The agent compares each interval's response time with the mean of the
// last n measurements:
//
//     pvar = |rt_cur - rt_avg| / rt_avg,    violation <=> pvar >= v_thr
//
// After s_thr consecutive violations the agent concludes the system context
// (traffic mix or VM resources) has changed. Paper constants: n = 10,
// v_thr = 0.3, s_thr = 5.
#pragma once

#include <cstddef>

#include "util/stats.hpp"

namespace rac::core {

struct ViolationOptions {
  std::size_t window = 10;     // n: history length for the running average
  double threshold = 0.3;      // v_thr: relative deviation for a violation
  int consecutive_limit = 5;   // s_thr: violations in a row => context change
  std::size_t min_history = 3; // observations needed before judging
};

class ViolationDetector {
 public:
  explicit ViolationDetector(const ViolationOptions& options = {});

  /// Feed one measurement. Returns true when a context change is declared
  /// (at which point the internal history resets for the new context).
  bool observe(double response_ms);

  /// Whether the most recent observation was a violation.
  bool last_was_violation() const noexcept { return last_violation_; }
  int consecutive_violations() const noexcept { return consecutive_; }
  const ViolationOptions& options() const noexcept { return opt_; }

  void reset();

 private:
  ViolationOptions opt_;
  util::SlidingWindow history_;
  int consecutive_ = 0;
  bool last_violation_ = false;
};

}  // namespace rac::core
