// Context-change detection (paper Section 4.3).
//
// The agent compares each interval's response time with the mean of the
// last n measurements:
//
//     pvar = |rt_cur - rt_avg| / rt_avg,    violation <=> pvar >= v_thr
//
// After s_thr consecutive violations the agent concludes the system context
// (traffic mix or VM resources) has changed. Paper constants: n = 10,
// v_thr = 0.3, s_thr = 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/stats.hpp"

namespace rac::obs {
class Counter;
class Gauge;
class Registry;
}  // namespace rac::obs

namespace rac::core {

struct ViolationOptions {
  std::size_t window = 10;     // n: history length for the running average
  double threshold = 0.3;      // v_thr: relative deviation for a violation
  int consecutive_limit = 5;   // s_thr: violations in a row => context change
  std::size_t min_history = 3; // observations needed before judging
  /// Registry receiving the detector's counters (core.violation.*);
  /// nullptr means obs::default_registry().
  obs::Registry* registry = nullptr;
};

class ViolationDetector {
 public:
  /// Throws std::invalid_argument for a zero window, non-positive
  /// threshold or consecutive limit, or min_history > window (the sliding
  /// window caps at `window` entries, so a larger requirement could never
  /// be met and detection would silently never fire).
  explicit ViolationDetector(const ViolationOptions& options = {});

  /// Feed one measurement. Returns true when a context change is declared
  /// (at which point the internal history resets for the new context).
  /// Non-finite or negative samples are counted-and-dropped (the
  /// `core.violation.rejected` counter) without touching the window or the
  /// streak: a single NaN would otherwise poison the window mean so
  /// detection never fires again.
  bool observe(double response_ms);

  /// Whether the most recent observation was a violation.
  bool last_was_violation() const noexcept { return last_violation_; }
  int consecutive_violations() const noexcept { return consecutive_; }
  const ViolationOptions& options() const noexcept { return opt_; }

  /// Window contents oldest-first (for serialization).
  std::vector<double> history() const { return history_.values(); }

  /// Resume from serialized state. Throws std::invalid_argument when the
  /// history exceeds the window, the consecutive count is outside
  /// [0, consecutive_limit) (reaching the limit resets the detector, so a
  /// live detector never holds it), or a violation flag is claimed with a
  /// zero consecutive count.
  void restore(std::span<const double> history, int consecutive,
               bool last_violation);

  void reset();

 private:
  ViolationOptions opt_;
  util::SlidingWindow history_;
  int consecutive_ = 0;
  bool last_violation_ = false;
  // Telemetry handles resolved against opt_.registry at construction (the
  // registration lookup is mutex-guarded; updates are relaxed atomics, so
  // detectors owned by concurrent pool tasks are safe).
  obs::Counter* checks_ = nullptr;
  obs::Counter* violations_ = nullptr;
  obs::Counter* context_changes_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Gauge* consecutive_gauge_ = nullptr;
};

}  // namespace rac::core
