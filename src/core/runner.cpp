#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/timer.hpp"

namespace rac::core {

double AgentTrace::mean_response_ms(int from, int to) const {
  if (to < 0) to = static_cast<int>(records.size());
  from = std::max(0, from);
  to = std::min(to, static_cast<int>(records.size()));
  if (from >= to) return 0.0;
  double total = 0.0;
  for (int i = from; i < to; ++i) {
    total += records[static_cast<std::size_t>(i)].response_ms;
  }
  return total / static_cast<double>(to - from);
}

int AgentTrace::settled_iteration(int from, int to, int window,
                                  double tolerance) const {
  const int n = to < 0 ? static_cast<int>(records.size())
                       : std::min(to, static_cast<int>(records.size()));
  for (int candidate = std::max(from, 0); candidate + window <= n;
       ++candidate) {
    // Trailing-mean stability from `candidate` to the end of the range.
    bool stable = true;
    for (int i = candidate; i < n; ++i) {
      const int lo = std::max(candidate, i - window + 1);
      double mean = 0.0;
      for (int j = lo; j <= i; ++j) {
        mean += records[static_cast<std::size_t>(j)].response_ms;
      }
      mean /= static_cast<double>(i - lo + 1);
      const double rt = records[static_cast<std::size_t>(i)].response_ms;
      if (mean > 0.0 && std::abs(rt - mean) / mean > tolerance) {
        stable = false;
        break;
      }
    }
    if (stable) return candidate;
  }
  return -1;
}

AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations,
                     const RunOptions& options) {
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].start_iteration <= schedule[i - 1].start_iteration) {
      throw std::invalid_argument("run_agent: schedule not sorted");
    }
  }

  obs::Registry& registry = obs::registry_or_default(options.registry);
  obs::Counter& c_iterations = registry.counter("core.runner.iterations");
  obs::Counter& c_traced = registry.counter("core.runner.trace_events");
  obs::Histogram& h_iteration =
      registry.histogram("core.runner.iteration_us", obs::latency_us_bounds());

  AgentTrace trace;
  trace.agent = agent.name();
  trace.records.reserve(static_cast<std::size_t>(iterations));

  std::size_t next_switch = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    while (next_switch < schedule.size() &&
           schedule[next_switch].start_iteration == iter) {
      environment.set_context(schedule[next_switch].context);
      ++next_switch;
    }
    config::Configuration applied;
    env::PerfSample sample;
    {
      const obs::ScopedTimer timer(&h_iteration);
      applied = agent.decide();
      sample = environment.measure(applied);
      agent.observe(applied, sample);
    }
    c_iterations.add(1);

    IterationRecord record;
    record.iteration = iter;
    record.response_ms = sample.response_ms;
    record.throughput_rps = sample.throughput_rps;
    record.configuration = applied;
    record.context = environment.context();
    trace.records.push_back(record);

    if (options.sink != nullptr) {
      obs::TraceEvent event;
      event.iteration = iter;
      event.agent = trace.agent;
      const auto& values = applied.values();
      event.state.assign(values.begin(), values.end());
      event.response_ms = sample.response_ms;
      event.throughput_rps = sample.throughput_rps;
      event.context = record.context.name();
      agent.annotate(event);
      options.sink->emit(event);
      c_traced.add(1);
    }
  }
  if (options.sink != nullptr) options.sink->flush();
  return trace;
}

AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations) {
  return run_agent(environment, agent, schedule, iterations, RunOptions{});
}

}  // namespace rac::core
