#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/snapshot.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"

namespace rac::core {

double AgentTrace::mean_response_ms(int from, int to) const {
  if (to < 0) to = static_cast<int>(records.size());
  from = std::max(0, from);
  to = std::min(to, static_cast<int>(records.size()));
  // No records in range: there is no mean. NaN (not 0) so that a caller
  // averaging per-segment means cannot silently dilute its aggregate with
  // fabricated perfect-latency intervals.
  if (from >= to) return std::numeric_limits<double>::quiet_NaN();
  double total = 0.0;
  for (int i = from; i < to; ++i) {
    total += records[static_cast<std::size_t>(i)].response_ms;
  }
  return total / static_cast<double>(to - from);
}

int AgentTrace::settled_iteration(int from, int to, int window,
                                  double tolerance) const {
  const int n = to < 0 ? static_cast<int>(records.size())
                       : std::min(to, static_cast<int>(records.size()));
  const int first = std::max(from, 0);
  if (window < 1 || first + window > n) return -1;

  // A candidate is stable iff |rt_i - mean| / mean <= tolerance for every
  // i in [candidate, n), where the mean runs over the trailing window
  // clipped at `candidate`. Only the first window-1 positions clip, so the
  // check splits into a per-candidate part over those positions and a
  // candidate-independent part over full windows -- O(n * window) overall
  // instead of the naive O((n - from)^2 * window).
  // A non-finite response time must fail its windows, not poison them: a
  // NaN folded into the prefix sums would make every later range's mean
  // NaN, and `!(mean > 0.0 && ...)` would then count those positions as
  // stable. Track non-finite entries in a parallel prefix count and
  // substitute 0 into the sum so ranges beyond the bad entry stay exact.
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> nonfinite(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    const double rt = records[static_cast<std::size_t>(i)].response_ms;
    const bool finite = std::isfinite(rt);
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + (finite ? rt : 0.0);
    nonfinite[static_cast<std::size_t>(i) + 1] =
        nonfinite[static_cast<std::size_t>(i)] + (finite ? 0 : 1);
  }
  const auto range_mean = [&](int lo, int hi) {  // over [lo, hi]
    return (prefix[static_cast<std::size_t>(hi) + 1] -
            prefix[static_cast<std::size_t>(lo)]) /
           static_cast<double>(hi - lo + 1);
  };
  const auto within = [&](int i, int lo, int hi) {  // window [lo, hi] ∋ i
    if (nonfinite[static_cast<std::size_t>(hi) + 1] -
            nonfinite[static_cast<std::size_t>(lo)] >
        0) {
      return false;
    }
    const double mean = range_mean(lo, hi);
    const double rt = records[static_cast<std::size_t>(i)].response_ms;
    return !(mean > 0.0 && std::abs(rt - mean) / mean > tolerance);
  };

  // all_full_from[i]: every full-window position j >= i passes the check.
  std::vector<char> all_full_from(static_cast<std::size_t>(n) + 1, 1);
  for (int i = n - 1; i >= window - 1; --i) {
    all_full_from[static_cast<std::size_t>(i)] =
        all_full_from[static_cast<std::size_t>(i) + 1] &&
        within(i, i - window + 1, i);
  }

  for (int candidate = first; candidate + window <= n; ++candidate) {
    bool stable = all_full_from[static_cast<std::size_t>(candidate) +
                                static_cast<std::size_t>(window) - 1] != 0;
    for (int i = candidate; stable && i < candidate + window - 1; ++i) {
      stable = within(i, candidate, i);
    }
    if (stable) return candidate;
  }
  return -1;
}

AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations,
                     const RunOptions& options) {
  if (!schedule.empty() && schedule.front().start_iteration < 0) {
    throw std::invalid_argument("run_agent: negative schedule start_iteration");
  }
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].start_iteration <= schedule[i - 1].start_iteration) {
      throw std::invalid_argument("run_agent: schedule not sorted");
    }
  }
  if (options.start_iteration < 0 || options.start_iteration > iterations) {
    throw std::invalid_argument(
        "run_agent: start_iteration outside [0, iterations]");
  }
  if (options.checkpoint_every < 0) {
    throw std::invalid_argument("run_agent: negative checkpoint_every");
  }
  const bool checkpointing = options.checkpoint_every > 0;
  if (checkpointing && options.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_agent: checkpoint_every set without a checkpoint_path");
  }
  if (options.robustness.enabled && options.robustness.max_retries < 0) {
    throw std::invalid_argument("run_agent: negative max_retries");
  }

  obs::Registry& registry = obs::registry_or_default(options.registry);
  obs::Counter& c_iterations = registry.counter("core.runner.iterations");
  obs::Counter& c_traced = registry.counter("core.runner.trace_events");
  obs::Histogram& h_iteration =
      registry.histogram("core.runner.iteration_us", obs::latency_us_bounds());
  obs::Counter& c_checkpoint_writes =
      registry.counter("core.checkpoint.writes");
  obs::Counter& c_checkpoint_bytes = registry.counter("core.checkpoint.bytes");
  obs::Histogram& h_checkpoint = registry.histogram(
      "core.checkpoint.write_us", obs::latency_us_bounds());
  obs::Counter& c_measure_retries =
      registry.counter("core.fault.measure_retries");
  obs::Counter& c_missing = registry.counter("core.fault.missing_intervals");
  obs::Counter& c_backoff = registry.counter("core.fault.backoff_units");
  obs::Counter& c_held = registry.counter("core.fault.held_samples");

  const auto write_checkpoint = [&](int completed) {
    std::ostringstream state;
    if (!agent.save_state(state)) {
      throw std::invalid_argument(
          "run_agent: checkpointing requested but the agent does not "
          "support save_state");
    }
    RunCheckpoint checkpoint;
    checkpoint.completed_iterations = static_cast<std::uint64_t>(completed);
    checkpoint.traffic_interval = environment.traffic_interval();
    checkpoint.agent_state = state.str();
    {
      const obs::ScopedTimer timer(&h_checkpoint);
      write_checkpoint_file(options.checkpoint_path, checkpoint);
    }
    c_checkpoint_writes.add(1);
    c_checkpoint_bytes.add(checkpoint.agent_state.size());
  };

  AgentTrace trace;
  trace.agent = agent.name();
  trace.records.reserve(
      static_cast<std::size_t>(iterations - options.start_iteration));

  // Fast-forward the schedule to the resume point: apply the context in
  // effect at start_iteration (only the last shadowing entry -- replaying
  // intermediate contexts would needlessly perturb a surviving
  // environment; set_context is a no-op when the context is unchanged).
  std::size_t next_switch = 0;
  std::size_t last_past = schedule.size();  // sentinel: none
  while (next_switch < schedule.size() &&
         schedule[next_switch].start_iteration < options.start_iteration) {
    last_past = next_switch;
    ++next_switch;
  }
  if (last_past != schedule.size()) {
    environment.set_context(schedule[last_past].context);
  }

  for (int iter = options.start_iteration; iter < iterations; ++iter) {
    while (next_switch < schedule.size() &&
           schedule[next_switch].start_iteration == iter) {
      environment.set_context(schedule[next_switch].context);
      ++next_switch;
    }
    config::Configuration applied;
    env::PerfSample sample;
    int attempts = 1;
    bool missing = false;
    {
      const obs::ScopedTimer timer(&h_iteration);
      const obs::ProfileScope iteration_profile("runner.iteration");
      {
        const obs::ProfileScope decide_profile("runner.decide");
        applied = agent.decide();
      }
      const obs::ProfileScope measure_profile("runner.measure");
      if (!options.robustness.enabled) {
        // Paper-exact path: the monitor cannot fail, every interval lands.
        sample = environment.measure(applied);  // rac-lint: allow(unchecked-measure)
        agent.observe(applied, sample);
      } else {
        std::optional<env::PerfSample> measured =
            environment.try_measure(applied);
        // Exponential backoff in simulated time: each retry is accounted
        // as 1, 2, 4, ... backoff units (this layer never sleeps --
        // wall-clock is banned here and the environments advance their
        // own clocks).
        std::uint64_t backoff = 1;
        while (!measured.has_value() &&
               attempts <= options.robustness.max_retries) {
          ++attempts;
          c_measure_retries.add(1);
          c_backoff.add(backoff);
          backoff *= 2;
          measured = environment.try_measure(applied);
        }
        if (measured.has_value()) {
          sample = *measured;
          agent.observe(applied, sample);
        } else {
          // Interval lost for good: hold the last decision. The agent is
          // not told anything -- a fabricated observation would teach it
          // about an interval that never happened.
          missing = true;
          c_missing.add(1);
          if (options.robustness.hold_last_on_missing &&
              !trace.records.empty()) {
            sample.response_ms = trace.records.back().response_ms;
            sample.throughput_rps = trace.records.back().throughput_rps;
            c_held.add(1);
          }
        }
      }
    }
    c_iterations.add(1);

    IterationRecord record;
    record.iteration = iter;
    record.response_ms = sample.response_ms;
    record.throughput_rps = sample.throughput_rps;
    record.configuration = applied;
    record.context = environment.context();
    trace.records.push_back(record);

    if (options.sink != nullptr) {
      obs::TraceEvent event;
      event.iteration = iter;
      event.agent = trace.agent;
      const auto& values = applied.values();
      event.state.assign(values.begin(), values.end());
      event.response_ms = sample.response_ms;
      event.throughput_rps = sample.throughput_rps;
      event.measure_attempts = attempts;
      event.measurement_missing = missing;
      event.fault_note = environment.last_fault_note();
      event.context = record.context.name();
      agent.annotate(event);
      options.sink->emit(event);
      c_traced.add(1);
    }

    if (checkpointing && ((iter + 1) % options.checkpoint_every == 0 ||
                          iter + 1 == iterations)) {
      write_checkpoint(iter + 1);
    }
  }
  if (options.sink != nullptr) options.sink->flush();
  return trace;
}

AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations) {
  return run_agent(environment, agent, schedule, iterations, RunOptions{});
}

}  // namespace rac::core
