#include "core/violation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace rac::core {

namespace {

const ViolationOptions& validated(const ViolationOptions& options) {
  if (options.window == 0 || options.threshold <= 0.0 ||
      options.consecutive_limit < 1) {
    throw std::invalid_argument("ViolationDetector: bad options");
  }
  if (options.min_history > options.window) {
    // The sliding window never holds more than `window` entries, so a
    // larger minimum could never be reached: every observation would stay
    // in the warm-up branch and context changes would never be declared.
    throw std::invalid_argument(
        "ViolationDetector: min_history exceeds window -- detection would "
        "never fire");
  }
  return options;
}

}  // namespace

ViolationDetector::ViolationDetector(const ViolationOptions& options)
    : opt_(validated(options)), history_(options.window) {
  obs::Registry& registry = obs::registry_or_default(opt_.registry);
  checks_ = &registry.counter("core.violation.pvar_checks");
  violations_ = &registry.counter("core.violation.violations");
  context_changes_ = &registry.counter("core.violation.context_changes");
  rejected_ = &registry.counter("core.violation.rejected");
  consecutive_gauge_ = &registry.gauge("core.violation.consecutive");
}

bool ViolationDetector::observe(double response_ms) {
  if (!std::isfinite(response_ms) || response_ms < 0.0) {
    // Count-and-drop: the sample is monitoring garbage, not evidence of a
    // context change. The window, streak, and last-violation flag are left
    // exactly as they were.
    rejected_->add(1);
    return false;
  }
  if (history_.size() < opt_.min_history) {
    // Not enough history to call anything a violation yet.
    last_violation_ = false;
    consecutive_ = 0;
    history_.add(response_ms);
    return false;
  }
  // Floor the denominator: a window of (near-)zero response times must not
  // turn pvar into Inf/NaN. 1e-6 ms is far below any real measurement, so
  // the floor only engages on degenerate windows.
  const double avg = history_.mean();
  const double pvar = std::abs(response_ms - avg) / std::max(avg, 1e-6);
  last_violation_ = pvar >= opt_.threshold;
  consecutive_ = last_violation_ ? consecutive_ + 1 : 0;
  history_.add(response_ms);
  checks_->add(1);
  if (last_violation_) violations_->add(1);
  consecutive_gauge_->set(consecutive_);
  if (consecutive_ >= opt_.consecutive_limit) {
    context_changes_->add(1);
    reset();
    return true;
  }
  return false;
}

void ViolationDetector::restore(std::span<const double> history,
                                int consecutive, bool last_violation) {
  if (consecutive < 0 || consecutive >= opt_.consecutive_limit) {
    throw std::invalid_argument(
        "ViolationDetector::restore: consecutive count outside [0, limit)");
  }
  if (last_violation && consecutive == 0) {
    throw std::invalid_argument(
        "ViolationDetector::restore: violation flagged with zero streak");
  }
  history_.restore(history);  // throws if history exceeds the window
  consecutive_ = consecutive;
  last_violation_ = last_violation;
  consecutive_gauge_->set(consecutive_);
}

void ViolationDetector::reset() {
  history_.reset();
  consecutive_ = 0;
  last_violation_ = false;
}

}  // namespace rac::core
