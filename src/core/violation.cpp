#include "core/violation.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace rac::core {

namespace {

struct ViolationMetrics {
  obs::Counter& checks;
  obs::Counter& violations;
  obs::Counter& context_changes;
  obs::Gauge& consecutive;

  static ViolationMetrics& get() {
    auto& r = obs::default_registry();
    static ViolationMetrics m{r.counter("core.violation.pvar_checks"),
                              r.counter("core.violation.violations"),
                              r.counter("core.violation.context_changes"),
                              r.gauge("core.violation.consecutive")};
    return m;
  }
};

}  // namespace

ViolationDetector::ViolationDetector(const ViolationOptions& options)
    : opt_(options), history_(options.window) {
  if (options.window == 0 || options.threshold <= 0.0 ||
      options.consecutive_limit < 1) {
    throw std::invalid_argument("ViolationDetector: bad options");
  }
}

bool ViolationDetector::observe(double response_ms) {
  if (history_.size() < opt_.min_history) {
    // Not enough history to call anything a violation yet.
    last_violation_ = false;
    consecutive_ = 0;
    history_.add(response_ms);
    return false;
  }
  const double avg = history_.mean();
  const double pvar = avg > 0.0 ? std::abs(response_ms - avg) / avg : 0.0;
  last_violation_ = pvar >= opt_.threshold;
  consecutive_ = last_violation_ ? consecutive_ + 1 : 0;
  history_.add(response_ms);
  auto& metrics = ViolationMetrics::get();
  metrics.checks.add(1);
  if (last_violation_) metrics.violations.add(1);
  metrics.consecutive.set(consecutive_);
  if (consecutive_ >= opt_.consecutive_limit) {
    metrics.context_changes.add(1);
    reset();
    return true;
  }
  return false;
}

void ViolationDetector::reset() {
  history_.reset();
  consecutive_ = 0;
  last_violation_ = false;
}

}  // namespace rac::core
