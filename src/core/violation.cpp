#include "core/violation.hpp"

#include <cmath>
#include <stdexcept>

namespace rac::core {

ViolationDetector::ViolationDetector(const ViolationOptions& options)
    : opt_(options), history_(options.window) {
  if (options.window == 0 || options.threshold <= 0.0 ||
      options.consecutive_limit < 1) {
    throw std::invalid_argument("ViolationDetector: bad options");
  }
}

bool ViolationDetector::observe(double response_ms) {
  if (history_.size() < opt_.min_history) {
    // Not enough history to call anything a violation yet.
    last_violation_ = false;
    consecutive_ = 0;
    history_.add(response_ms);
    return false;
  }
  const double avg = history_.mean();
  const double pvar = avg > 0.0 ? std::abs(response_ms - avg) / avg : 0.0;
  last_violation_ = pvar >= opt_.threshold;
  consecutive_ = last_violation_ ? consecutive_ + 1 : 0;
  history_.add(response_ms);
  if (consecutive_ >= opt_.consecutive_limit) {
    reset();
    return true;
  }
  return false;
}

void ViolationDetector::reset() {
  history_.reset();
  consecutive_ = 0;
  last_violation_ = false;
}

}  // namespace rac::core
