#include "core/policy_init.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace rac::core {

double InitialPolicy::predict_response_ms(const config::Configuration& c) const {
  if (!surface.fitted()) return sla.reference_response_ms;
  const auto z = c.normalized_values();
  // The surface predicts log(ms); clamp the exponent so a wild
  // extrapolation cannot overflow. The guard is symmetric: an earlier
  // lower bound of 0 pinned every prediction at >= 1 ms, collapsing all
  // sub-millisecond surfaces to the same value (the same bug the library's
  // best_match scoring had).
  return std::exp(std::clamp(surface.predict(z), -12.0, 12.0));
}

double InitialPolicy::predict_reward(const config::Configuration& c) const {
  return reward_from_response(sla, predict_response_ms(c));
}

InitialPolicy learn_initial_policy(env::Environment& environment,
                                   const PolicyInitOptions& options) {
  if (options.samples_per_config < 1) {
    throw std::invalid_argument("learn_initial_policy: bad sample count");
  }

  obs::Registry& registry = obs::registry_or_default(options.registry);
  obs::Counter& c_policies = registry.counter("core.policy_init.policies");
  obs::Counter& c_samples =
      registry.counter("core.policy_init.offline_samples");
  obs::Histogram& h_train = registry.histogram("core.policy_init.train_us",
                                               obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_train);
  const obs::ProfileScope profile("core.policy_init");

  InitialPolicy policy;
  policy.context = environment.context();
  policy.sla = options.sla;

  // --- steps 1-2: grouped coarse data collection --------------------------
  const config::ConfigSpace space(options.coarse_levels);
  std::vector<config::Configuration> samples = space.coarse_grid();
  // The running system's defaults are measured anyway before any tuning;
  // include them so the initial policy knows the online starting state.
  samples.push_back(config::Configuration::defaults());

  std::vector<double> responses(samples.size(), 0.0);
  if (environment.thread_safe()) {
    // Fan the grid out over the pool, one private clone per sample. The
    // clone is reseeded from (environment seed, sample index), so every
    // sample owns a fixed noise stream: the responses -- and everything
    // trained from them -- are bit-identical at any thread count,
    // independent of how many measurements `environment` served before.
    util::ThreadPool& pool =
        options.pool != nullptr ? *options.pool : obs::shared_pool();
    // Workers re-anchor at the submitting thread's open phases so the
    // profile tree has the same shape at any thread count.
    const std::vector<std::string> profile_path =
        obs::Profiler::default_profiler().capture_path();
    pool.parallel_for(samples.size(), [&](std::size_t i) {
      const obs::ProfileAnchor anchor(profile_path);
      const obs::ProfileScope sample_profile("policy_init.coarse_sample");
      const auto clone = environment.clone_with_seed(i);
      if (clone == nullptr) {
        throw std::logic_error(
            "learn_initial_policy: thread_safe environment returned a null "
            "clone");
      }
      double total = 0.0;
      for (int rep = 0; rep < options.samples_per_config; ++rep) {
        total += clone->measure(samples[i])  // rac-lint: allow(unchecked-measure) offline probe
                     .response_ms;
      }
      responses[i] = total / options.samples_per_config;
    });
  } else {
    // Shared mutable environment: measure serially in sample order.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const obs::ProfileScope sample_profile("policy_init.coarse_sample");
      double total = 0.0;
      for (int rep = 0; rep < options.samples_per_config; ++rep) {
        total += environment.measure(samples[i])  // rac-lint: allow(unchecked-measure) offline probe
                     .response_ms;
      }
      responses[i] = total / options.samples_per_config;
    }
  }

  std::vector<double> features;  // normalized configs, row-major
  features.reserve(samples.size() * config::kNumParams);
  policy.best_sampled_response_ms = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto z = samples[i].normalized_values();
    features.insert(features.end(), z.begin(), z.end());
    if (responses[i] < policy.best_sampled_response_ms) {
      policy.best_sampled_response_ms = responses[i];
      policy.best_sampled = samples[i];
    }
  }

  // --- step 3: polynomial regression over the samples ---------------------
  std::vector<double> log_responses;
  log_responses.reserve(responses.size());
  for (double r : responses) log_responses.push_back(std::log(std::max(r, 1.0)));
  // Cubic per-dimension terms need at least 4 distinct positions per group
  // to be identified; with coarser sampling fall back to quadratic.
  const int surface_degree = options.coarse_levels >= 4 ? 3 : 2;
  const std::size_t surface_width =
      1 + static_cast<std::size_t>(surface_degree) * config::kNumParams +
      config::kNumParams * (config::kNumParams - 1) / 2;
  if (samples.size() < surface_width) {
    throw std::invalid_argument(
        "learn_initial_policy: coarse_levels too small -- " +
        std::to_string(samples.size()) + " samples cannot identify the " +
        std::to_string(surface_width) + "-feature regression surface");
  }
  {
    const obs::ProfileScope fit_profile("policy_init.fit");
    policy.surface = util::QuadraticSurface::fit(features, config::kNumParams,
                                                 log_responses, 1e-4,
                                                 surface_degree);
    std::vector<double> predicted;
    predicted.reserve(samples.size());
    for (const auto& sample : samples) {
      predicted.push_back(policy.predict_response_ms(sample));
    }
    policy.regression_r2 = util::r_squared(responses, predicted);
  }

  // --- step 4: offline RL over the predicted reward model -----------------
  // Rewards blend the measured samples (exact where we have them) with the
  // regression's predictions elsewhere; trajectories starting from every
  // coarse configuration wander into the fine grid, seeding Q-values in
  // the neighbourhoods the online agent will traverse.
  std::unordered_map<config::Configuration, double, config::ConfigurationHash>
      measured;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    measured.emplace(samples[i], responses[i]);
  }
  const rl::RewardFn reward = [&](const config::Configuration& c) {
    const auto it = measured.find(c);
    const double response =
        it != measured.end() ? it->second : policy.predict_response_ms(c);
    return reward_from_response(options.sla, response);
  };

  util::Rng rng(options.seed);
  {
    const obs::ProfileScope td_profile("policy_init.offline_td");
    rl::batch_train(policy.table, samples, reward, options.offline_td, rng,
                    options.registry);
  }
  c_policies.add(1);
  c_samples.add(samples.size() *
                static_cast<std::size_t>(options.samples_per_config));
  return policy;
}

namespace {

bool spans_equal(std::span<const double> a, std::span<const double> b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

// Bitwise identity of the fitted surfaces: same shape and identical
// coefficients, standardization means, and scales.
bool surfaces_equal(const util::QuadraticSurface& a,
                    const util::QuadraticSurface& b) {
  if (a.fitted() != b.fitted()) return false;
  if (!a.fitted()) return true;
  if (a.dim() != b.dim() || a.per_dim_degree() != b.per_dim_degree()) {
    return false;
  }
  return spans_equal(a.model().weights(), b.model().weights()) &&
         spans_equal(a.means(), b.means()) && spans_equal(a.scales(), b.scales());
}

bool tables_equal(const rl::QTable& a, const rl::QTable& b) {
  if (a.size() != b.size() || a.default_q() != b.default_q()) return false;
  const auto actions = config::ConfigSpace::all_actions();
  for (const auto& state : a.states()) {
    if (!b.contains(state)) return false;
    for (const config::Action action : actions) {
      if (a.q(state, action) != b.q(state, action)) return false;
    }
  }
  return true;
}

}  // namespace

bool exactly_equal(const InitialPolicy& a, const InitialPolicy& b) {
  if (!(a.context == b.context)) return false;
  if (!(a.best_sampled == b.best_sampled)) return false;
  if (a.best_sampled_response_ms != b.best_sampled_response_ms) return false;
  if (a.regression_r2 != b.regression_r2) return false;
  if (!tables_equal(a.table, b.table)) return false;
  return surfaces_equal(a.surface, b.surface);
}

}  // namespace rac::core
