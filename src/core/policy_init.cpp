#include "core/policy_init.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/stats.hpp"
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace rac::core {

double InitialPolicy::predict_response_ms(const config::Configuration& c) const {
  if (!surface.fitted()) return sla.reference_response_ms;
  const auto z = c.normalized_values();
  // The surface predicts log(ms); clamp the exponent so a wild
  // extrapolation cannot overflow.
  return std::exp(std::clamp(surface.predict(z), 0.0, 12.0));
}

double InitialPolicy::predict_reward(const config::Configuration& c) const {
  return reward_from_response(sla, predict_response_ms(c));
}

InitialPolicy learn_initial_policy(env::Environment& environment,
                                   const PolicyInitOptions& options) {
  if (options.samples_per_config < 1) {
    throw std::invalid_argument("learn_initial_policy: bad sample count");
  }

  auto& registry = obs::default_registry();
  static obs::Counter& c_policies =
      registry.counter("core.policy_init.policies");
  static obs::Counter& c_samples =
      registry.counter("core.policy_init.offline_samples");
  static obs::Histogram& h_train = registry.histogram(
      "core.policy_init.train_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_train);

  InitialPolicy policy;
  policy.context = environment.context();
  policy.sla = options.sla;

  // --- steps 1-2: grouped coarse data collection --------------------------
  const config::ConfigSpace space(options.coarse_levels);
  std::vector<config::Configuration> samples = space.coarse_grid();
  // The running system's defaults are measured anyway before any tuning;
  // include them so the initial policy knows the online starting state.
  samples.push_back(config::Configuration::defaults());

  std::vector<double> features;  // normalized configs, row-major
  std::vector<double> responses;
  features.reserve(samples.size() * config::kNumParams);
  responses.reserve(samples.size());

  policy.best_sampled_response_ms = std::numeric_limits<double>::infinity();
  for (const auto& sample : samples) {
    double total = 0.0;
    for (int rep = 0; rep < options.samples_per_config; ++rep) {
      total += environment.measure(sample).response_ms;
    }
    const double response = total / options.samples_per_config;
    const auto z = sample.normalized_values();
    features.insert(features.end(), z.begin(), z.end());
    responses.push_back(response);
    if (response < policy.best_sampled_response_ms) {
      policy.best_sampled_response_ms = response;
      policy.best_sampled = sample;
    }
  }

  // --- step 3: polynomial regression over the samples ---------------------
  std::vector<double> log_responses;
  log_responses.reserve(responses.size());
  for (double r : responses) log_responses.push_back(std::log(std::max(r, 1.0)));
  // Cubic per-dimension terms need at least 4 distinct positions per group
  // to be identified; with coarser sampling fall back to quadratic.
  const int surface_degree = options.coarse_levels >= 4 ? 3 : 2;
  const std::size_t surface_width =
      1 + static_cast<std::size_t>(surface_degree) * config::kNumParams +
      config::kNumParams * (config::kNumParams - 1) / 2;
  if (samples.size() < surface_width) {
    throw std::invalid_argument(
        "learn_initial_policy: coarse_levels too small -- " +
        std::to_string(samples.size()) + " samples cannot identify the " +
        std::to_string(surface_width) + "-feature regression surface");
  }
  policy.surface = util::QuadraticSurface::fit(features, config::kNumParams,
                                               log_responses, 1e-4,
                                               surface_degree);
  {
    std::vector<double> predicted;
    predicted.reserve(samples.size());
    for (const auto& sample : samples) {
      predicted.push_back(policy.predict_response_ms(sample));
    }
    policy.regression_r2 = util::r_squared(responses, predicted);
  }

  // --- step 4: offline RL over the predicted reward model -----------------
  // Rewards blend the measured samples (exact where we have them) with the
  // regression's predictions elsewhere; trajectories starting from every
  // coarse configuration wander into the fine grid, seeding Q-values in
  // the neighbourhoods the online agent will traverse.
  std::unordered_map<config::Configuration, double, config::ConfigurationHash>
      measured;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    measured.emplace(samples[i], responses[i]);
  }
  const rl::RewardFn reward = [&](const config::Configuration& c) {
    const auto it = measured.find(c);
    const double response =
        it != measured.end() ? it->second : policy.predict_response_ms(c);
    return reward_from_response(options.sla, response);
  };

  util::Rng rng(options.seed);
  rl::batch_train(policy.table, samples, reward, options.offline_td, rng);
  c_policies.add(1);
  c_samples.add(samples.size() *
                static_cast<std::size_t>(options.samples_per_config));
  return policy;
}

}  // namespace rac::core
