#include "core/policy_library.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/pool.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace rac::core {

void InitialPolicyLibrary::add(InitialPolicy policy) {
  if (policies_ == nullptr) {
    policies_ = std::make_shared<std::vector<InitialPolicy>>();
  } else if (policies_.use_count() > 1) {
    // Someone else shares this storage: clone before mutating so their
    // view stays frozen (and stays safe to read concurrently).
    policies_ = std::make_shared<std::vector<InitialPolicy>>(*policies_);
  }
  policies_->push_back(std::move(policy));
}

const InitialPolicy& InitialPolicyLibrary::at(std::size_t i) const {
  if (policies_ == nullptr) {
    throw std::out_of_range("InitialPolicyLibrary::at: empty library");
  }
  return policies_->at(i);
}

std::optional<std::size_t> InitialPolicyLibrary::find_context(
    const env::SystemContext& context) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if ((*policies_)[i].context == context) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> InitialPolicyLibrary::best_match(
    const config::Configuration& configuration,
    double measured_response_ms) const {
  if (empty()) return std::nullopt;
  // Guard log() against zero/negative inputs only. An earlier version
  // clamped to 1.0 ms, which collapsed every sub-millisecond surface to
  // the same score and silently resolved those "ties" to policy 0; the
  // tiny floor keeps sub-ms predictions distinguishable.
  constexpr double kFloorMs = 1e-9;
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size(); ++i) {
    const double predicted =
        (*policies_)[i].predict_response_ms(configuration);
    // Relative mismatch in log space: symmetric between over- and
    // under-prediction.
    const double score =
        std::abs(std::log(std::max(predicted, kFloorMs)) -
                 std::log(std::max(measured_response_ms, kFloorMs)));
    // Strict '<' makes exact ties resolve to the lowest policy index --
    // deterministic, and stable across library reorderings of non-tied
    // entries.
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

InitialPolicyLibrary build_library(
    const std::vector<env::SystemContext>& contexts,
    const std::function<std::unique_ptr<env::Environment>(
        const env::SystemContext&)>& make_env,
    const PolicyInitOptions& options) {
  // One task per context, each with a freshly-constructed environment, so
  // tasks share nothing; results land in per-index slots and are merged in
  // input order, making the parallel build bit-identical to a serial one.
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : obs::shared_pool();
  std::vector<InitialPolicy> policies(contexts.size());
  const obs::ProfileScope profile("core.build_library");
  // Workers re-anchor at the submitting thread's open phases (including
  // the scope above) so the profile tree is thread-count invariant.
  const std::vector<std::string> profile_path =
      obs::Profiler::default_profiler().capture_path();
  pool.parallel_for(contexts.size(), [&](std::size_t i) {
    const obs::ProfileAnchor anchor(profile_path);
    auto environment = make_env(contexts[i]);
    policies[i] = learn_initial_policy(*environment, options);
  });
  InitialPolicyLibrary library;
  for (auto& policy : policies) {
    library.add(std::move(policy));
  }
  return library;
}

}  // namespace rac::core
