#include "core/policy_library.hpp"

#include <cmath>
#include <limits>

namespace rac::core {

void InitialPolicyLibrary::add(InitialPolicy policy) {
  policies_.push_back(std::move(policy));
}

std::optional<std::size_t> InitialPolicyLibrary::find_context(
    const env::SystemContext& context) const {
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    if (policies_[i].context == context) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> InitialPolicyLibrary::best_match(
    const config::Configuration& configuration,
    double measured_response_ms) const {
  if (policies_.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const double predicted =
        policies_[i].predict_response_ms(configuration);
    // Relative mismatch in log space: symmetric between over- and
    // under-prediction.
    const double score = std::abs(std::log(std::max(predicted, 1.0)) -
                                  std::log(std::max(measured_response_ms, 1.0)));
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

InitialPolicyLibrary build_library(
    const std::vector<env::SystemContext>& contexts,
    const std::function<std::unique_ptr<env::Environment>(
        const env::SystemContext&)>& make_env,
    const PolicyInitOptions& options) {
  InitialPolicyLibrary library;
  for (const auto& context : contexts) {
    auto environment = make_env(context);
    library.add(learn_initial_policy(*environment, options));
  }
  return library;
}

}  // namespace rac::core
