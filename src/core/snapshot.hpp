// Checkpoint/restore for the online agent.
//
// A crash (or planned restart) of the management station must not cost the
// agent its accumulated learning: the paper's whole premise is that online
// refinement keeps improving the policy, so the learner state is persisted
// periodically and a restarted agent resumes from the last checkpoint.
//
// `AgentSnapshot` captures the complete mutable state of a RacAgent -- the
// Q-table, experience store, violation-detector window, RNG stream
// position, and every piece of per-interval bookkeeping -- plus the
// hyperparameters it was running with. Restoring validates that the live
// agent was constructed with the same hyperparameters (resuming a stream
// under different constants would silently produce a hybrid run) and then
// adopts the state wholesale; a restored agent continues bit-identically
// to one that never stopped.
//
// The serialization is the same locale-immune, line-oriented token format
// as rl/serialization (hex doubles via util/lineio, explicit "end"
// trailers so blocks can be embedded in larger streams).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "rl/experience.hpp"
#include "rl/qtable.hpp"
#include "rl/td_learner.hpp"
#include "util/rng.hpp"

namespace rac::core {

/// Complete serializable state of a RacAgent. Produced by
/// RacAgent::snapshot(), consumed by RacAgent::restore().
struct AgentSnapshot {
  // -- hyperparameters (validated, not adopted, on restore) ---------------
  double sla_reference_response_ms = 1000.0;
  double online_epsilon = 0.05;
  rl::TdParams online_td{};
  std::uint64_t violation_window = 10;
  double violation_threshold = 0.3;
  int violation_consecutive_limit = 5;
  std::uint64_t violation_min_history = 3;
  bool online_learning = true;
  bool adaptive_policy_switching = true;
  // Robustness hyperparameters (v2; v1 snapshots imply the defaults, i.e.
  // all hardening off -- exactly what every pre-v2 agent ran with).
  bool robustness_clamp = false;
  double robustness_floor = -5.0;
  int robustness_median_of = 1;
  int robustness_freeze_after = 0;
  bool safe_fallback_enabled = false;
  int safe_fallback_after = 3;
  double safe_fallback_factor = 2.0;
  std::uint64_t seed = 11;
  std::uint64_t library_size = 0;
  double experience_blend = 0.6;

  // -- mutable learner state ----------------------------------------------
  bool has_active_policy = false;
  std::uint64_t active_policy = 0;
  /// Context token of the active policy ("shopping/Level-1"); restore
  /// checks it against the live library so an index cannot silently point
  /// at a different context after a library rebuild.
  std::string active_policy_context;
  rl::QTable qtable;
  std::vector<rl::ExperienceEntry> experience;
  std::vector<double> detector_history;
  int detector_consecutive = 0;
  bool detector_last_violation = false;
  util::RngState rng;
  config::Configuration current;
  bool first_decide = true;
  int policy_switches = 0;
  int last_action_id = 0;
  bool last_explored = false;
  double last_q_value = 0.0;
  bool last_policy_switched = false;
  double last_reward = 0.0;
  bool calibration_initialized = false;
  double calibration_value = 0.0;
  // Robustness state (v2; empty/zero in v1 snapshots).
  std::vector<double> recent_responses;  // median-filter window, oldest first
  int blowout_streak = 0;
  bool last_safe_fallback = false;
  int safe_fallbacks = 0;
  bool freeze_has_last = false;
  double freeze_last_raw = 0.0;
  int freeze_repeats = 0;
};

/// Serialize a snapshot (versioned, ends with an "end" trailer). Throws
/// std::ios_base::failure on stream errors.
void save_agent_snapshot(std::ostream& os, const AgentSnapshot& snapshot);

/// Parse a snapshot produced by save_agent_snapshot. Throws
/// std::runtime_error on malformed input. Leaves the stream positioned
/// just past the snapshot's "end" trailer.
AgentSnapshot load_agent_snapshot(std::istream& is);

/// A run checkpoint: how far the management loop got plus the agent's
/// serialized state (opaque text produced by ConfigAgent::save_state).
///
/// `traffic_interval` is the environment's dynamic-traffic cursor
/// (env::Environment::traffic_interval()) at checkpoint time -- it counts
/// measurements, not loop iterations, so under measurement retries it can
/// exceed `completed_iterations`. Resume callers re-install the traffic
/// model themselves (the model is immutable run input, like the context
/// schedule) and then seek_traffic() to this cursor. v1 checkpoints load
/// with the cursor at 0, which is what every pre-v2 run had.
struct RunCheckpoint {
  std::uint64_t completed_iterations = 0;
  std::uint64_t traffic_interval = 0;
  std::string agent_state;
};

/// Atomically write a checkpoint file (temp file + rename, so a crash
/// mid-write never corrupts the previous checkpoint).
void write_checkpoint_file(const std::string& path,
                           const RunCheckpoint& checkpoint);

/// Load a checkpoint file; rejects trailing garbage. Throws
/// std::ios_base::failure if the file cannot be opened and
/// std::runtime_error on malformed contents.
RunCheckpoint load_checkpoint_file(const std::string& path);

}  // namespace rac::core
