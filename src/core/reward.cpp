#include "core/reward.hpp"

// Header-only; this translation unit anchors the library target.
