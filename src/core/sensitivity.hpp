// Automatic parameter selection by sensitivity analysis.
//
// The paper selects its eight parameters by hand and names automating the
// choice as future work ("configurable parameters need to be selected
// automatically in a more efficient way", Section 7). This module
// implements the obvious first tool: sweep each parameter's grid with the
// others held at a base configuration, measure the response-time range it
// commands, and rank. Parameters whose whole sweep moves the response
// time less than a threshold are not worth the online search space they
// would cost (Section 3.1's tradeoff).
#pragma once

#include <vector>

#include "config/space.hpp"
#include "env/environment.hpp"

namespace rac::core {

struct ParameterSensitivity {
  config::ParamId id{};
  double min_response_ms = 0.0;  // best value found in the sweep
  double max_response_ms = 0.0;  // worst value found in the sweep
  int best_value = 0;            // argmin of the sweep
  /// Impact score: (max - min) / min over the parameter's sweep.
  double impact() const noexcept {
    return min_response_ms > 0.0
               ? (max_response_ms - min_response_ms) / min_response_ms
               : 0.0;
  }
};

struct SensitivityOptions {
  /// Base configuration the non-swept parameters hold.
  config::Configuration base{};
  /// Measurements averaged per grid point (noise suppression).
  int samples_per_point = 1;
  /// Sweep every `stride`-th fine-grid value (1 = full grid).
  int stride = 1;
};

struct SensitivityReport {
  /// One entry per parameter, ranked by descending impact.
  std::vector<ParameterSensitivity> ranked;
  int evaluations = 0;

  /// Parameters whose impact exceeds `threshold` (e.g. 0.1 = the sweep
  /// moves the response time by at least 10%).
  std::vector<config::ParamId> selected(double threshold) const;
};

/// Sweep all kNumParams parameters one-at-a-time against `environment`.
SensitivityReport analyze_sensitivity(env::Environment& environment,
                                      const SensitivityOptions& options = {});

}  // namespace rac::core
