#include "core/search.hpp"

#include <limits>
#include <stdexcept>

namespace rac::core {

namespace {
double evaluate(env::Environment& environment,
                const config::Configuration& configuration, int samples,
                int& evaluations) {
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    total += environment.measure(configuration)  // rac-lint: allow(unchecked-measure) offline probe
                 .response_ms;
  }
  ++evaluations;
  return total / samples;
}
}  // namespace

SearchResult find_best_configuration(env::Environment& environment,
                                     const SearchOptions& options) {
  if (options.samples_per_eval < 1) {
    throw std::invalid_argument("find_best_configuration: bad sample count");
  }

  SearchResult result;
  result.best_response_ms = std::numeric_limits<double>::infinity();

  const config::ConfigSpace space(options.coarse_levels);
  for (const auto& candidate : space.coarse_grid()) {
    const double response = evaluate(environment, candidate,
                                     options.samples_per_eval,
                                     result.evaluations);
    if (response < result.best_response_ms) {
      result.best_response_ms = response;
      result.best = candidate;
    }
  }

  // Greedy fine-grid descent from the best coarse point.
  for (int step = 0; step < options.max_local_steps; ++step) {
    config::Configuration improved = result.best;
    double improved_response = result.best_response_ms;
    for (const auto& neighbor : config::ConfigSpace::neighbors(result.best)) {
      if (neighbor == result.best) continue;
      const double response = evaluate(environment, neighbor,
                                       options.samples_per_eval,
                                       result.evaluations);
      if (response < improved_response) {
        improved_response = response;
        improved = neighbor;
      }
    }
    if (improved == result.best) break;  // local optimum
    result.best = improved;
    result.best_response_ms = improved_response;
  }
  return result;
}

}  // namespace rac::core
