// Experiment loop shared by the evaluation harnesses: drive one agent
// against an environment for a number of measurement intervals while a
// context schedule replays workload / VM-resource changes behind the
// agent's back (exactly the paper's Figure-5/10 setup).
#pragma once

#include <string>
#include <vector>

#include "core/agent.hpp"
#include "env/environment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rac::core {

struct ScheduleEntry {
  int start_iteration = 0;  // first iteration run under this context
  env::SystemContext context;
};

/// Entries must be non-negative and strictly increasing in
/// start_iteration (run_agent validates and throws std::invalid_argument
/// otherwise); the first conventionally starts at 0.
using ContextSchedule = std::vector<ScheduleEntry>;

struct IterationRecord {
  int iteration = 0;
  double response_ms = 0.0;
  double throughput_rps = 0.0;
  config::Configuration configuration;
  env::SystemContext context;
};

struct AgentTrace {
  std::string agent;
  std::vector<IterationRecord> records;

  /// Mean response time over records [from, to) (indices into `records`,
  /// clamped to the trace; `to` == -1 means end of trace). An empty or
  /// inverted range -- from >= to after clamping, including any range on
  /// an empty trace -- has no mean and returns quiet NaN; callers
  /// aggregating per-segment means (the fleet layer does, per tenant)
  /// must check std::isnan rather than fold a fabricated 0 into averages.
  double mean_response_ms(int from = 0, int to = -1) const;

  /// First iteration >= `from` after which every response time up to `to`
  /// (exclusive; -1 = end of trace) stays within `tolerance` (relative) of
  /// the mean of the trailing `window` iterations; -1 if the range never
  /// settles. Use a `to` at a context-switch boundary to measure one
  /// segment.
  int settled_iteration(int from, int to = -1, int window = 5,
                        double tolerance = 0.25) const;
};

/// Graceful degradation of the measurement path (PR 5). Disabled by
/// default: the loop then calls Environment::measure() exactly as the
/// paper's management station does, and a lost interval is impossible.
struct MeasureRobustness {
  /// Route measurements through Environment::try_measure with retries.
  bool enabled = false;
  /// Additional try_measure attempts after the first returns nullopt.
  /// Retry cost is accounted (core.fault.backoff_units grows 1, 2, 4, ...
  /// per retry -- exponential backoff in simulated time; the loop never
  /// sleeps, wall-clock is banned in this layer).
  int max_retries = 2;
  /// When every attempt fails: record the previous interval's sample and
  /// skip the agent's observe() ("hold last decision"). When false the
  /// interval is recorded as a zero sample and still skipped.
  bool hold_last_on_missing = true;
};

/// Observability and persistence attachments for a run.
struct RunOptions {
  /// One TraceEvent per iteration (state, action, measurement, reward,
  /// context-adaptation signals) is emitted here; nullptr disables tracing
  /// entirely -- the loop then does no record assembly at all.
  obs::TraceSink* sink = nullptr;
  /// Registry receiving the loop's counters/timers; nullptr means
  /// obs::default_registry().
  obs::Registry* registry = nullptr;
  /// First iteration to run (iteration numbers are absolute, so a resumed
  /// run's records continue the original numbering). The schedule entry in
  /// effect at this iteration is applied before the loop starts; a
  /// checkpoint-restored agent therefore resumes mid-schedule correctly.
  int start_iteration = 0;
  /// Checkpoint the agent every this many completed iterations, plus once
  /// when the run finishes (0 disables). Requires an agent whose
  /// save_state supports persistence and a non-empty checkpoint_path.
  int checkpoint_every = 0;
  /// Destination file for checkpoints; each write is atomic (temp file +
  /// rename), so a crash mid-write preserves the previous checkpoint.
  std::string checkpoint_path;
  /// Fallible-measurement handling; default off (paper-exact loop).
  MeasureRobustness robustness{};
};

/// Run `agent` from `options.start_iteration` (default 0) up to
/// `iterations`. The schedule's context switches are applied to the
/// environment before the matching iteration; the agent is never told.
/// Throws std::invalid_argument for malformed options (unsorted schedule,
/// negative/oversized start_iteration, checkpointing without a path or
/// with an agent that does not support save_state).
AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations,
                     const RunOptions& options);

AgentTrace run_agent(env::Environment& environment, ConfigAgent& agent,
                     const ContextSchedule& schedule, int iterations);

}  // namespace rac::core
