#include "core/library_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "env/context.hpp"
#include "rl/serialization.hpp"
#include "util/lineio.hpp"

namespace rac::core {

namespace {

constexpr const char* kMagic = "rac-policy-library";
constexpr int kVersion = 1;

double read_double(std::istream& is, std::string_view what) {
  return util::parse_double(util::read_token(is, what), what);
}

std::uint64_t read_u64(std::istream& is, std::string_view what) {
  return util::parse_u64(util::read_token(is, what), what);
}

void save_surface(std::ostream& os, const util::QuadraticSurface& surface) {
  if (!surface.fitted()) {
    os << "surface unfitted\n";
    return;
  }
  os << "surface " << util::format_u64(surface.dim()) << ' '
     << util::format_i64(surface.per_dim_degree()) << "\n";
  os << "weights " << util::format_u64(surface.model().num_features());
  for (double w : surface.model().weights()) {
    os << ' ' << util::format_double(w);
  }
  os << "\n";
  os << "means";
  for (double m : surface.means()) os << ' ' << util::format_double(m);
  os << "\n";
  os << "scales";
  for (double s : surface.scales()) os << ' ' << util::format_double(s);
  os << "\n";
}

util::QuadraticSurface load_surface(std::istream& is) {
  constexpr const char* kWhat = "load_library surface";
  util::expect_token(is, "surface", kWhat);
  const std::string first = util::read_token(is, kWhat);
  if (first == "unfitted") return util::QuadraticSurface{};
  const std::uint64_t dim = util::parse_u64(first, kWhat);
  const int degree = util::parse_int(util::read_token(is, kWhat), kWhat);
  util::expect_token(is, "weights", kWhat);
  const std::uint64_t num_weights = read_u64(is, kWhat);
  std::vector<double> weights;
  weights.reserve(num_weights);
  for (std::uint64_t i = 0; i < num_weights; ++i) {
    weights.push_back(read_double(is, kWhat));
  }
  util::expect_token(is, "means", kWhat);
  std::vector<double> means;
  means.reserve(dim);
  for (std::uint64_t i = 0; i < dim; ++i) {
    means.push_back(read_double(is, kWhat));
  }
  util::expect_token(is, "scales", kWhat);
  std::vector<double> scales;
  scales.reserve(dim);
  for (std::uint64_t i = 0; i < dim; ++i) {
    scales.push_back(read_double(is, kWhat));
  }
  try {
    return util::QuadraticSurface::from_parts(
        util::LinearModel(std::move(weights)), dim, degree, std::move(means),
        std::move(scales));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("load_library: bad surface: ") +
                             e.what());
  }
}

}  // namespace

void save_library(std::ostream& os, const InitialPolicyLibrary& library) {
  os << kMagic << " v" << kVersion << "\n";
  os << "policies " << util::format_u64(library.size()) << "\n";
  for (std::size_t i = 0; i < library.size(); ++i) {
    const InitialPolicy& policy = library.at(i);
    os << "policy " << util::format_u64(i) << "\n";
    os << "context " << env::context_token(policy.context) << "\n";
    os << "sla " << util::format_double(policy.sla.reference_response_ms)
       << "\n";
    os << "best_sampled";
    for (int v : policy.best_sampled.values()) {
      os << ' ' << util::format_i64(v);
    }
    os << ' ' << util::format_double(policy.best_sampled_response_ms) << "\n";
    os << "regression_r2 " << util::format_double(policy.regression_r2)
       << "\n";
    save_surface(os, policy.surface);
    rl::save_qtable(os, policy.table);
  }
  os << "end\n";
  if (!os) throw std::ios_base::failure("save_library: write failed");
}

InitialPolicyLibrary load_library(std::istream& is) {
  constexpr const char* kWhat = "load_library";
  const std::string magic = util::read_token(is, kWhat);
  const std::string version = util::read_token(is, kWhat);
  if (magic != kMagic) {
    throw std::runtime_error("load_library: not a rac-policy-library stream");
  }
  if (version != "v1") {
    throw std::runtime_error("load_library: unsupported version " + version);
  }
  util::expect_token(is, "policies", kWhat);
  const std::uint64_t count = read_u64(is, kWhat);
  InitialPolicyLibrary library;
  for (std::uint64_t i = 0; i < count; ++i) {
    util::expect_token(is, "policy", kWhat);
    const std::uint64_t index = read_u64(is, kWhat);
    if (index != i) {
      throw std::runtime_error("load_library: policy index out of order");
    }
    InitialPolicy policy;
    util::expect_token(is, "context", kWhat);
    try {
      policy.context = env::parse_context_token(util::read_token(is, kWhat));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("load_library: ") + e.what());
    }
    util::expect_token(is, "sla", kWhat);
    policy.sla.reference_response_ms = read_double(is, kWhat);
    util::expect_token(is, "best_sampled", kWhat);
    std::array<int, config::kNumParams> values{};
    for (auto& v : values) {
      v = util::parse_int(util::read_token(is, kWhat), kWhat);
    }
    policy.best_sampled = config::Configuration(values);
    if (policy.best_sampled.values() != values) {
      throw std::runtime_error(
          "load_library: best_sampled outside parameter ranges");
    }
    policy.best_sampled_response_ms = read_double(is, kWhat);
    util::expect_token(is, "regression_r2", kWhat);
    policy.regression_r2 = read_double(is, kWhat);
    policy.surface = load_surface(is);
    policy.table = rl::load_qtable(is);
    library.add(std::move(policy));
  }
  util::expect_token(is, "end", kWhat);
  return library;
}

void save_library_file(const std::string& path,
                       const InitialPolicyLibrary& library) {
  std::ostringstream os;
  save_library(os, library);
  util::atomic_write_file(path, os.str());
}

InitialPolicyLibrary load_library_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::ios_base::failure("load_library_file: cannot open " + path);
  }
  InitialPolicyLibrary library = load_library(is);
  std::string extra;
  if (is >> extra) {
    throw std::runtime_error(
        "load_library_file: trailing garbage after library: '" + extra + "'");
  }
  return library;
}

}  // namespace rac::core
