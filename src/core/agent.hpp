// Interface shared by every auto-configuration policy (the RAC agent and
// the paper's two comparison baselines).
//
// The interaction protocol mirrors the paper's management loop: once per
// measurement interval the agent proposes the configuration to run next
// (`decide`), the environment runs it for one interval, and the resulting
// application-level measurement is reported back (`observe`).
#pragma once

#include <string>

#include "config/configuration.hpp"
#include "env/environment.hpp"

namespace rac::core {

class ConfigAgent {
 public:
  virtual ~ConfigAgent() = default;

  /// Configuration to apply for the next measurement interval.
  virtual config::Configuration decide() = 0;

  /// Measurement of the interval that ran with `applied`.
  virtual void observe(const config::Configuration& applied,
                       const env::PerfSample& sample) = 0;

  virtual std::string name() const = 0;
};

}  // namespace rac::core
