// Interface shared by every auto-configuration policy (the RAC agent and
// the paper's two comparison baselines).
//
// The interaction protocol mirrors the paper's management loop: once per
// measurement interval the agent proposes the configuration to run next
// (`decide`), the environment runs it for one interval, and the resulting
// application-level measurement is reported back (`observe`).
#pragma once

#include <iosfwd>
#include <string>

#include "config/configuration.hpp"
#include "env/environment.hpp"
#include "obs/trace.hpp"

namespace rac::core {

class ConfigAgent {
 public:
  virtual ~ConfigAgent() = default;

  /// Configuration to apply for the next measurement interval.
  virtual config::Configuration decide() = 0;

  /// Measurement of the interval that ran with `applied`.
  virtual void observe(const config::Configuration& applied,
                       const env::PerfSample& sample) = 0;

  virtual std::string name() const = 0;

  /// Fill the agent-specific fields of the iteration's decision record
  /// (action, explore flag, Q-value, policy/violation signals). Called by
  /// the management loop after `observe`, with the measurement fields
  /// already set. Agents without internal decision state leave the record
  /// as is.
  virtual void annotate(obs::TraceEvent& event) const { (void)event; }

  /// Serialize the agent's learner state for checkpointing. Returns false
  /// when the agent does not support persistence (the default); the
  /// management loop refuses checkpointing for such agents rather than
  /// silently writing checkpoints that cannot resume anything.
  virtual bool save_state(std::ostream& os) const {
    (void)os;
    return false;
  }
};

}  // namespace rac::core
