// Policy initialization (paper Section 4.1, Algorithm 2).
//
// Online RL from a cold Q-table suffers a long stretch of poor performance.
// RAC therefore pre-learns an initial policy per system context, offline:
//
//   1. Parameter grouping: the eight parameters collapse into four groups
//      (capacity / connection-life / spare-low / spare-high); members of a
//      group always take the same (normalized) value.
//   2. Coarse data collection: sample the performance of the coarse group
//      grid (coarse_levels^4 configurations) on the offline environment.
//   3. Regression: fit a quadratic response surface (all parameters have a
//      concave-upward effect, so a low-order polynomial generalizes) and
//      use it to predict the performance of unvisited configurations.
//   4. Offline RL: run Algorithm 1 over the sampled+predicted reward model
//      to produce the initial Q-table.
#pragma once

#include <cstdint>

#include "config/space.hpp"
#include "core/reward.hpp"
#include "env/environment.hpp"
#include "rl/qtable.hpp"
#include "rl/td_learner.hpp"
#include "util/regression.hpp"

namespace rac::obs {
class Registry;
}  // namespace rac::obs

namespace rac::util {
class ThreadPool;
}  // namespace rac::util

namespace rac::core {

struct PolicyInitOptions {
  int coarse_levels = 4;       // positions per group during data collection
  int samples_per_config = 1;  // measurements averaged per sampled config
  SlaSpec sla{};
  /// Offline Algorithm-1 constants (paper: alpha=.1, gamma=.9, eps=.1).
  rl::TdParams offline_td{0.1, 0.9, 0.1, 1e-3, 10, 300};
  std::uint64_t seed = 7;
  /// Registry receiving core.policy_init.* / rl.td.* telemetry; nullptr
  /// means obs::default_registry().
  obs::Registry* registry = nullptr;
  /// Worker pool for the coarse measurement fan-out (used only when the
  /// environment advertises thread_safe()); nullptr means the process-wide
  /// obs::shared_pool().
  util::ThreadPool* pool = nullptr;
};

/// A context-specific initial policy: the pre-learned Q-table plus the
/// regression surface it was trained from (kept for predicting the
/// performance of states the online agent has not yet visited, and for
/// recognizing which context a live measurement resembles).
///
/// The surface is fitted on log(response time): response times span two to
/// three orders of magnitude between a starved and a tuned configuration,
/// and a low-order polynomial only has a well-placed interior minimum once
/// that range is compressed.
struct InitialPolicy {
  env::SystemContext context;
  rl::QTable table;
  util::QuadraticSurface surface;  // predicts log(response_ms)
  SlaSpec sla;
  config::Configuration best_sampled;  // best coarse sample (reporting)
  double best_sampled_response_ms = 0.0;
  double regression_r2 = 0.0;          // fit quality over the samples

  /// Predicted response time of an arbitrary configuration.
  double predict_response_ms(const config::Configuration& c) const;

  /// Predicted reward of a configuration.
  double predict_reward(const config::Configuration& c) const;
};

/// Run Algorithm 2 against `environment` (assumed already set to the
/// context being trained for).
///
/// Determinism: when `environment.thread_safe()`, every coarse sample is
/// measured on a private clone reseeded from (environment seed, sample
/// index), so the result is bit-identical regardless of the pool's thread
/// count and of any measurements previously drawn from `environment`.
/// Non-thread-safe environments are measured serially in place, exactly as
/// before.
InitialPolicy learn_initial_policy(env::Environment& environment,
                                   const PolicyInitOptions& options = {});

/// Bitwise equality of two trained policies: same context, coarse-sample
/// optimum, fit quality, Q-table contents and regression predictions over
/// the coarse grid. Used by the determinism golden tests and benches to
/// prove parallel training reproduces serial output exactly.
bool exactly_equal(const InitialPolicy& a, const InitialPolicy& b);

}  // namespace rac::core
