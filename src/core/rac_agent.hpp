// The RAC online auto-configuration agent (paper Algorithm 3).
//
// Per measurement interval:
//   1. issue a reconfiguration action epsilon-greedily from the current
//      Q-table (paper: epsilon = 0.05 online);
//   2. measure the system's application-level performance;
//   3. check for context changes (ViolationDetector); after s_thr
//      consecutive violations switch to the best-matching initial policy.
//      The Q-table is re-seeded from that policy even when the best match
//      is the one already active: the online-refined table encodes the
//      pre-change operating point, while the offline prior still knows
//      the regions the change moved the system into;
//   4. fold the measurement into the experience store and retrain the
//      Q-table by batch TD sweeps (Algorithm 1 with the paper's batch
//      exploration rate 0.1) over every remembered state, so all states
//      learn about the new observation;
//   5. move to the next state.
//
// Ablation switches reproduce the paper's study: online learning on/off
// (Fig. 6), policy initialization on/off (Fig. 7), adaptive vs static
// initial policy (Figs. 9, 10), online exploration rate (Fig. 8).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "core/agent.hpp"
#include "core/policy_library.hpp"
#include "core/reward.hpp"
#include "core/snapshot.hpp"
#include "core/violation.hpp"
#include "rl/experience.hpp"
#include "rl/policy.hpp"
#include "rl/qtable.hpp"
#include "rl/td_learner.hpp"

namespace rac::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace rac::obs

namespace rac::core {

/// Outlier-robust reward ingestion (PR 5). Everything defaults OFF: the
/// paper's reward semantics (and the golden fig-5/fig-6 trajectories) are
/// preserved bit-for-bit unless a knob is explicitly turned.
struct RewardRobustness {
  /// Clamp the reward from below at `floor`. The paper's reward
  /// (ref - rt)/ref is unbounded below, so a single fault spike (say
  /// 10^6 ms) writes a catastrophic Q-value that bounded online episodes
  /// can never walk back.
  bool clamp = false;
  double floor = -5.0;
  /// Median-of-k filter on the measured response before it reaches the
  /// reward / experience / calibration paths (1 = off). The violation
  /// detector always sees the raw sample -- context-change detection must
  /// not be damped.
  int median_of = 1;
  /// Declare the sensor stuck after this many bitwise-identical raw
  /// responses in a row and skip ingestion of the stale value (0 = off).
  int freeze_detect_after = 0;
};

/// Safe-fallback step: after `after_blowouts` consecutive measurements
/// worse than `blowout_factor` x the SLA reference, the next decide()
/// reverts to the best configuration in the experience store instead of
/// following the (possibly poisoned) Q-table. Off by default.
struct SafeFallback {
  bool enabled = false;
  int after_blowouts = 3;
  double blowout_factor = 2.0;
};

struct RacOptions {
  SlaSpec sla{};
  /// Online action-selection exploration (paper: 0.05).
  double online_epsilon = 0.05;
  /// Batch-retraining constants (paper: alpha=.1, gamma=.9, eps=.1).
  rl::TdParams online_td{0.1, 0.9, 0.1, 1e-3, 8, 40};
  ViolationOptions violation{};
  /// Fig. 6 ablation: refine the policy from online measurements.
  bool online_learning = true;
  /// Fig. 9/10 ablation: switch initial policies on context change. When
  /// false the agent keeps its starting policy and relies on online
  /// learning alone.
  bool adaptive_policy_switching = true;
  /// Measurement-robustness hardening; all defaults preserve paper
  /// semantics exactly.
  RewardRobustness robustness{};
  SafeFallback safe_fallback{};
  std::uint64_t seed = 11;
  /// Registry receiving the agent's telemetry (core.rac.*, and rl.td.*
  /// from retraining); nullptr means obs::default_registry(). Also
  /// forwarded to the violation detector unless violation.registry is
  /// already set.
  obs::Registry* registry = nullptr;
};

class RacAgent : public ConfigAgent {
 public:
  /// `library` may be empty (the paper's "without policy initialization"
  /// agent). `initial_policy` optionally picks the starting policy index;
  /// by default the first library entry is used.
  RacAgent(const RacOptions& options, InitialPolicyLibrary library,
           std::optional<std::size_t> initial_policy = std::nullopt);

  config::Configuration decide() override;
  void observe(const config::Configuration& applied,
               const env::PerfSample& sample) override;
  std::string name() const override;

  /// Decision-trace enrichment: chosen action, greedy-vs-explore flag and
  /// Q-value from the last `decide`, reward / SLA margin of the last
  /// measurement, active policy and the interval's violation / policy-
  /// switch signals.
  void annotate(obs::TraceEvent& event) const override;

  /// Capture the complete mutable state (plus the hyperparameters, for
  /// validation on restore). A restored agent continues the run
  /// bit-identically to one that never stopped.
  AgentSnapshot snapshot() const;

  /// Adopt a snapshot's state. Throws std::invalid_argument when the
  /// snapshot's hyperparameters differ from this agent's options, when the
  /// library sizes disagree, or when the snapshot's active policy does not
  /// name the same context as the live library entry at that index.
  void restore(const AgentSnapshot& snapshot);

  /// ConfigAgent checkpoint hook: serializes snapshot(). Always true.
  bool save_state(std::ostream& os) const override;

  /// Swap in a refreshed copy of the policy library (fleet cross-tenant
  /// retraining publishes one shared COW library to every agent this way).
  /// The replacement must be shape-compatible: same size, same context per
  /// index -- only the trained content may differ. The live Q-table and
  /// active-policy index are untouched; the new surfaces/tables take
  /// effect at the next policy switch. Throws std::invalid_argument on a
  /// shape mismatch.
  void rebase_library(InitialPolicyLibrary library);

  // -- introspection (tests, harness commentary) ---------------------------
  const InitialPolicyLibrary& library() const noexcept { return library_; }
  const rl::QTable& qtable() const noexcept { return qtable_; }
  const config::Configuration& current() const noexcept { return current_; }
  std::optional<std::size_t> active_policy() const noexcept {
    return active_policy_;
  }
  int policy_switches() const noexcept { return policy_switches_; }
  const rl::ExperienceStore& experience() const noexcept { return experience_; }
  int safe_fallbacks() const noexcept { return safe_fallbacks_; }
  int blowout_streak() const noexcept { return blowout_streak_; }

 private:
  RacOptions opt_;
  InitialPolicyLibrary library_;
  std::optional<std::size_t> active_policy_;
  rl::QTable qtable_;
  rl::ExperienceStore experience_;
  ViolationDetector detector_;
  rl::EpsilonGreedy online_policy_;
  util::Rng rng_;
  config::Configuration current_;  // state the system currently runs
  bool first_decide_ = true;
  int policy_switches_ = 0;
  // Rolling record of the current interval's decision, reported through
  // `annotate` once the measurement lands.
  rl::Selection last_selection_{};
  bool last_policy_switched_ = false;
  double last_reward_ = 0.0;
  // Robustness state (all inert at the default-off options).
  std::deque<double> recent_responses_;  // raw samples for the median filter
  int blowout_streak_ = 0;               // consecutive SLA blowouts seen
  bool last_safe_fallback_ = false;      // last decide() was a fallback
  int safe_fallbacks_ = 0;
  bool freeze_has_last_ = false;         // freeze detector: previous raw
  double freeze_last_raw_ = 0.0;         //   sample and how often it
  int freeze_repeats_ = 0;               //   repeated bitwise
  // Online calibration of the offline surface: the live environment's
  // response-time *level* can differ from the offline traces' (stale
  // staging data, or a pinned policy from a foreign context); a smoothed
  // measured/predicted ratio rescales the surface so unvisited states
  // track the live system's magnitude while keeping the learned shape.
  util::Ewma calibration_log_{0.25};
  // Telemetry handles resolved against opt_.registry at construction
  // (registration is mutex-guarded, updates are relaxed atomics, so agents
  // owned by concurrent pool tasks are safe).
  obs::Counter* decisions_ = nullptr;
  obs::Counter* explorations_ = nullptr;
  obs::Counter* policy_switch_count_ = nullptr;
  obs::Counter* policy_reseed_count_ = nullptr;
  obs::Counter* retrain_count_ = nullptr;
  obs::Counter* nonfinite_samples_ = nullptr;
  obs::Counter* frozen_samples_ = nullptr;
  obs::Counter* safe_fallback_count_ = nullptr;
  obs::Histogram* select_us_ = nullptr;
  obs::Histogram* retrain_us_ = nullptr;

  void load_policy(std::size_t index);
  double lookup_response(const config::Configuration& c) const;
  /// Reward of a measured/blended response under the active robustness
  /// options (clamped from below iff robustness.clamp).
  double reward_of(double response_ms) const;
  void retrain();
};

}  // namespace rac::core
