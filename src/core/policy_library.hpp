// Library of offline-trained initial policies, one per anticipated system
// context (paper Section 4.3).
//
// When the violation detector declares a context change, the agent switches
// to "a most suitable initial policy according to the current performance":
// the library scores each policy by how well its regression surface
// explains the live measurement at the current configuration and returns
// the best match. The agent is NOT told the new context -- matching is
// purely observational.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy_init.hpp"

namespace rac::core {

/// Copies share one immutable policy vector (copy-on-write): a fleet hands
/// the same library to thousands of agents for the cost of a shared_ptr
/// each, and the storage is cloned only when someone add()s to a shared
/// copy. Reads on shared storage are thread-safe; add() on any one copy is
/// not and must be externally serialized with concurrent readers of that
/// same object (readers of *other* copies are unaffected -- they keep the
/// old storage).
class InitialPolicyLibrary {
 public:
  InitialPolicyLibrary() = default;

  void add(InitialPolicy policy);

  std::size_t size() const noexcept {
    return policies_ == nullptr ? 0 : policies_->size();
  }
  bool empty() const noexcept { return size() == 0; }
  const InitialPolicy& at(std::size_t i) const;

  /// True when both objects point at the same underlying storage (so one
  /// held no copy cost). An empty library shares with nothing.
  bool shares_storage_with(const InitialPolicyLibrary& other) const noexcept {
    return policies_ != nullptr && policies_ == other.policies_;
  }

  /// Index of the policy trained for exactly `context`, if any.
  std::optional<std::size_t> find_context(
      const env::SystemContext& context) const;

  /// Index of the policy whose predicted response time at `configuration`
  /// is closest (relatively) to the measured one. Returns nullopt for an
  /// empty library. Exact score ties resolve to the lowest policy index.
  std::optional<std::size_t> best_match(
      const config::Configuration& configuration,
      double measured_response_ms) const;

 private:
  std::shared_ptr<std::vector<InitialPolicy>> policies_;
};

/// Convenience: train one policy per context on freshly-constructed
/// offline environments produced by `make_env`.
///
/// Contexts are trained concurrently on `options.pool` (the process-wide
/// obs::shared_pool() when null), one task per context; `make_env` may
/// therefore be invoked from several threads at once and must not touch
/// shared mutable state. Each task builds its own environment and RNG, so
/// the library is bit-identical to a serial build regardless of thread
/// count, and policies are added in `contexts` order.
InitialPolicyLibrary build_library(
    const std::vector<env::SystemContext>& contexts,
    const std::function<std::unique_ptr<env::Environment>(
        const env::SystemContext&)>& make_env,
    const PolicyInitOptions& options = {});

}  // namespace rac::core
