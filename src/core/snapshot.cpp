#include "core/snapshot.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "config/space.hpp"
#include "rl/serialization.hpp"
#include "util/lineio.hpp"

namespace rac::core {

namespace {

constexpr const char* kSnapshotMagic = "rac-agent-snapshot";
constexpr const char* kCheckpointMagic = "rac-checkpoint";
// Snapshot v2 added the measurement-robustness hyperparameters and state
// (PR 5); v1 snapshots still load, with those fields at their all-off
// defaults.
// Checkpoint v2 added the environment's traffic-model cursor (dynamic
// traffic, workload/dynamic.hpp); v1 checkpoints still load, with the
// cursor at 0 -- exactly what every pre-v2 run (no traffic model) had.
constexpr int kSnapshotVersion = 2;
constexpr int kCheckpointVersion = 2;

std::string bool_token(bool b) { return b ? "1" : "0"; }

bool parse_bool(std::istream& is, std::string_view what) {
  const std::uint64_t v = util::parse_u64(util::read_token(is, what), what);
  if (v > 1) {
    throw std::runtime_error(std::string(what) + ": flag must be 0 or 1");
  }
  return v == 1;
}

double read_double(std::istream& is, std::string_view what) {
  return util::parse_double(util::read_token(is, what), what);
}

std::uint64_t read_u64(std::istream& is, std::string_view what) {
  return util::parse_u64(util::read_token(is, what), what);
}

int read_int(std::istream& is, std::string_view what) {
  return util::parse_int(util::read_token(is, what), what);
}

config::Configuration read_configuration(std::istream& is,
                                         std::string_view what) {
  std::array<int, config::kNumParams> values{};
  for (auto& v : values) v = read_int(is, what);
  const config::Configuration configuration(values);
  if (configuration.values() != values) {
    throw std::runtime_error(std::string(what) +
                             ": configuration outside parameter ranges");
  }
  return configuration;
}

void write_configuration(std::ostream& os, const config::Configuration& c) {
  const auto& values = c.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << util::format_i64(values[i]) << (i + 1 == values.size() ? "" : " ");
  }
}

}  // namespace

void save_agent_snapshot(std::ostream& os, const AgentSnapshot& s) {
  os << kSnapshotMagic << " v" << kSnapshotVersion << "\n";
  os << "sla " << util::format_double(s.sla_reference_response_ms) << "\n";
  os << "online_epsilon " << util::format_double(s.online_epsilon) << "\n";
  os << "online_td " << util::format_double(s.online_td.alpha) << ' '
     << util::format_double(s.online_td.gamma) << ' '
     << util::format_double(s.online_td.epsilon) << ' '
     << util::format_double(s.online_td.theta) << ' '
     << util::format_i64(s.online_td.trajectory_limit) << ' '
     << util::format_i64(s.online_td.max_sweeps) << "\n";
  os << "violation " << util::format_u64(s.violation_window) << ' '
     << util::format_double(s.violation_threshold) << ' '
     << util::format_i64(s.violation_consecutive_limit) << ' '
     << util::format_u64(s.violation_min_history) << "\n";
  os << "online_learning " << bool_token(s.online_learning) << "\n";
  os << "adaptive_policy_switching "
     << bool_token(s.adaptive_policy_switching) << "\n";
  os << "seed " << util::format_u64(s.seed) << "\n";
  os << "library_size " << util::format_u64(s.library_size) << "\n";
  os << "experience_blend " << util::format_double(s.experience_blend) << "\n";
  // "-" marks the no-policy case; context tokens never collide with it.
  os << "active_policy ";
  if (s.has_active_policy) {
    os << util::format_u64(s.active_policy) << ' '
       << (s.active_policy_context.empty() ? "-" : s.active_policy_context);
  } else {
    os << "-1 -";
  }
  os << "\n";
  os << "current ";
  write_configuration(os, s.current);
  os << "\n";
  os << "first_decide " << bool_token(s.first_decide) << "\n";
  os << "policy_switches " << util::format_i64(s.policy_switches) << "\n";
  os << "last_selection " << util::format_i64(s.last_action_id) << ' '
     << bool_token(s.last_explored) << ' '
     << util::format_double(s.last_q_value) << "\n";
  os << "last_policy_switched " << bool_token(s.last_policy_switched) << "\n";
  os << "last_reward " << util::format_double(s.last_reward) << "\n";
  os << "calibration " << bool_token(s.calibration_initialized) << ' '
     << util::format_double(s.calibration_value) << "\n";
  os << "robustness " << bool_token(s.robustness_clamp) << ' '
     << util::format_double(s.robustness_floor) << ' '
     << util::format_i64(s.robustness_median_of) << ' '
     << util::format_i64(s.robustness_freeze_after) << ' '
     << bool_token(s.safe_fallback_enabled) << ' '
     << util::format_i64(s.safe_fallback_after) << ' '
     << util::format_double(s.safe_fallback_factor) << "\n";
  os << "recent " << util::format_u64(s.recent_responses.size());
  for (double v : s.recent_responses) os << ' ' << util::format_double(v);
  os << "\n";
  os << "fallback " << util::format_i64(s.blowout_streak) << ' '
     << bool_token(s.last_safe_fallback) << ' '
     << util::format_i64(s.safe_fallbacks) << "\n";
  os << "freeze " << bool_token(s.freeze_has_last) << ' '
     << util::format_double(s.freeze_last_raw) << ' '
     << util::format_i64(s.freeze_repeats) << "\n";
  os << "rng";
  for (std::uint64_t word : s.rng.words) os << ' ' << util::format_u64(word);
  os << ' ' << bool_token(s.rng.has_cached_normal) << ' '
     << util::format_double(s.rng.cached_normal) << "\n";
  os << "detector " << util::format_i64(s.detector_consecutive) << ' '
     << bool_token(s.detector_last_violation) << ' '
     << util::format_u64(s.detector_history.size());
  for (double v : s.detector_history) os << ' ' << util::format_double(v);
  os << "\n";
  os << "experience " << util::format_u64(s.experience.size()) << "\n";
  for (const auto& entry : s.experience) {
    write_configuration(os, entry.configuration);
    os << ' ' << util::format_double(entry.observation.response_ms) << ' '
       << util::format_u64(entry.observation.count) << "\n";
  }
  rl::save_qtable(os, s.qtable);
  os << "end\n";
  if (!os) throw std::ios_base::failure("save_agent_snapshot: write failed");
}

AgentSnapshot load_agent_snapshot(std::istream& is) {
  constexpr const char* kWhat = "load_agent_snapshot";
  const std::string magic = util::read_token(is, kWhat);
  const std::string version = util::read_token(is, kWhat);
  if (magic != kSnapshotMagic) {
    throw std::runtime_error("load_agent_snapshot: not an agent snapshot");
  }
  if (version != "v1" && version != "v2") {
    throw std::runtime_error("load_agent_snapshot: unsupported version " +
                             version);
  }
  const bool v2 = version == "v2";
  AgentSnapshot s;
  util::expect_token(is, "sla", kWhat);
  s.sla_reference_response_ms = read_double(is, kWhat);
  util::expect_token(is, "online_epsilon", kWhat);
  s.online_epsilon = read_double(is, kWhat);
  util::expect_token(is, "online_td", kWhat);
  s.online_td.alpha = read_double(is, kWhat);
  s.online_td.gamma = read_double(is, kWhat);
  s.online_td.epsilon = read_double(is, kWhat);
  s.online_td.theta = read_double(is, kWhat);
  s.online_td.trajectory_limit = read_int(is, kWhat);
  s.online_td.max_sweeps = read_int(is, kWhat);
  util::expect_token(is, "violation", kWhat);
  s.violation_window = read_u64(is, kWhat);
  s.violation_threshold = read_double(is, kWhat);
  s.violation_consecutive_limit = read_int(is, kWhat);
  s.violation_min_history = read_u64(is, kWhat);
  util::expect_token(is, "online_learning", kWhat);
  s.online_learning = parse_bool(is, kWhat);
  util::expect_token(is, "adaptive_policy_switching", kWhat);
  s.adaptive_policy_switching = parse_bool(is, kWhat);
  util::expect_token(is, "seed", kWhat);
  s.seed = read_u64(is, kWhat);
  util::expect_token(is, "library_size", kWhat);
  s.library_size = read_u64(is, kWhat);
  util::expect_token(is, "experience_blend", kWhat);
  s.experience_blend = read_double(is, kWhat);
  util::expect_token(is, "active_policy", kWhat);
  {
    const std::int64_t index =
        util::parse_i64(util::read_token(is, kWhat), kWhat);
    const std::string token = util::read_token(is, kWhat);
    if (index < -1) {
      throw std::runtime_error("load_agent_snapshot: bad policy index");
    }
    s.has_active_policy = index >= 0;
    s.active_policy = s.has_active_policy ? static_cast<std::uint64_t>(index) : 0;
    s.active_policy_context = (token == "-") ? std::string() : token;
    if (s.has_active_policy && s.active_policy_context.empty()) {
      throw std::runtime_error(
          "load_agent_snapshot: active policy without a context token");
    }
  }
  util::expect_token(is, "current", kWhat);
  s.current = read_configuration(is, kWhat);
  util::expect_token(is, "first_decide", kWhat);
  s.first_decide = parse_bool(is, kWhat);
  util::expect_token(is, "policy_switches", kWhat);
  s.policy_switches = read_int(is, kWhat);
  util::expect_token(is, "last_selection", kWhat);
  s.last_action_id = read_int(is, kWhat);
  if (s.last_action_id < 0 ||
      s.last_action_id >= static_cast<int>(config::kNumActions)) {
    throw std::runtime_error("load_agent_snapshot: action id out of range");
  }
  s.last_explored = parse_bool(is, kWhat);
  s.last_q_value = read_double(is, kWhat);
  util::expect_token(is, "last_policy_switched", kWhat);
  s.last_policy_switched = parse_bool(is, kWhat);
  util::expect_token(is, "last_reward", kWhat);
  s.last_reward = read_double(is, kWhat);
  util::expect_token(is, "calibration", kWhat);
  s.calibration_initialized = parse_bool(is, kWhat);
  s.calibration_value = read_double(is, kWhat);
  if (v2) {
    util::expect_token(is, "robustness", kWhat);
    s.robustness_clamp = parse_bool(is, kWhat);
    s.robustness_floor = read_double(is, kWhat);
    s.robustness_median_of = read_int(is, kWhat);
    s.robustness_freeze_after = read_int(is, kWhat);
    s.safe_fallback_enabled = parse_bool(is, kWhat);
    s.safe_fallback_after = read_int(is, kWhat);
    s.safe_fallback_factor = read_double(is, kWhat);
    if (s.robustness_median_of < 1 || s.robustness_freeze_after < 0) {
      throw std::runtime_error(
          "load_agent_snapshot: bad robustness hyperparameters");
    }
    util::expect_token(is, "recent", kWhat);
    const std::uint64_t n = read_u64(is, kWhat);
    if (n > static_cast<std::uint64_t>(s.robustness_median_of)) {
      throw std::runtime_error(
          "load_agent_snapshot: median window larger than median_of");
    }
    s.recent_responses.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.recent_responses.push_back(read_double(is, kWhat));
    }
    util::expect_token(is, "fallback", kWhat);
    s.blowout_streak = read_int(is, kWhat);
    s.last_safe_fallback = parse_bool(is, kWhat);
    s.safe_fallbacks = read_int(is, kWhat);
    if (s.blowout_streak < 0 || s.safe_fallbacks < 0) {
      throw std::runtime_error("load_agent_snapshot: negative fallback state");
    }
    util::expect_token(is, "freeze", kWhat);
    s.freeze_has_last = parse_bool(is, kWhat);
    s.freeze_last_raw = read_double(is, kWhat);
    s.freeze_repeats = read_int(is, kWhat);
    if (s.freeze_repeats < 0) {
      throw std::runtime_error("load_agent_snapshot: negative freeze repeats");
    }
  }
  util::expect_token(is, "rng", kWhat);
  for (auto& word : s.rng.words) word = read_u64(is, kWhat);
  s.rng.has_cached_normal = parse_bool(is, kWhat);
  s.rng.cached_normal = read_double(is, kWhat);
  util::expect_token(is, "detector", kWhat);
  s.detector_consecutive = read_int(is, kWhat);
  s.detector_last_violation = parse_bool(is, kWhat);
  {
    const std::uint64_t n = read_u64(is, kWhat);
    s.detector_history.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.detector_history.push_back(read_double(is, kWhat));
    }
  }
  util::expect_token(is, "experience", kWhat);
  {
    const std::uint64_t n = read_u64(is, kWhat);
    s.experience.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      rl::ExperienceEntry entry;
      entry.configuration = read_configuration(is, kWhat);
      entry.observation.response_ms = read_double(is, kWhat);
      entry.observation.count = read_u64(is, kWhat);
      s.experience.push_back(std::move(entry));
    }
  }
  s.qtable = rl::load_qtable(is);
  util::expect_token(is, "end", kWhat);
  return s;
}

void write_checkpoint_file(const std::string& path,
                           const RunCheckpoint& checkpoint) {
  std::ostringstream os;
  os << kCheckpointMagic << " v" << kCheckpointVersion << "\n";
  os << "completed " << util::format_u64(checkpoint.completed_iterations)
     << "\n";
  os << "traffic " << util::format_u64(checkpoint.traffic_interval) << "\n";
  // The agent state is opaque text; a byte count delimits it so the
  // checkpoint loader need not understand the agent's own format.
  os << "agent_state " << util::format_u64(checkpoint.agent_state.size())
     << "\n";
  os << checkpoint.agent_state;
  os << "\nend\n";
  util::atomic_write_file(path, os.str());
}

RunCheckpoint load_checkpoint_file(const std::string& path) {
  constexpr const char* kWhat = "load_checkpoint_file";
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::ios_base::failure("load_checkpoint_file: cannot open " + path);
  }
  const std::string magic = util::read_token(is, kWhat);
  const std::string version = util::read_token(is, kWhat);
  if (magic != kCheckpointMagic) {
    throw std::runtime_error("load_checkpoint_file: not a checkpoint file");
  }
  if (version != "v1" && version != "v2") {
    throw std::runtime_error("load_checkpoint_file: unsupported version " +
                             version);
  }
  RunCheckpoint checkpoint;
  util::expect_token(is, "completed", kWhat);
  checkpoint.completed_iterations = read_u64(is, kWhat);
  if (version == "v2") {
    util::expect_token(is, "traffic", kWhat);
    checkpoint.traffic_interval = read_u64(is, kWhat);
  }
  util::expect_token(is, "agent_state", kWhat);
  const std::uint64_t bytes = read_u64(is, kWhat);
  if (is.get() != '\n') {
    throw std::runtime_error(
        "load_checkpoint_file: expected newline after agent_state header");
  }
  checkpoint.agent_state.resize(bytes);
  is.read(checkpoint.agent_state.data(),
          static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(is.gcount()) != bytes) {
    throw std::runtime_error("load_checkpoint_file: truncated agent state");
  }
  util::expect_token(is, "end", kWhat);
  std::string extra;
  if (is >> extra) {
    throw std::runtime_error(
        "load_checkpoint_file: trailing garbage after checkpoint: '" + extra +
        "'");
  }
  return checkpoint;
}

}  // namespace rac::core
