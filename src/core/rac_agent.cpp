#include "core/rac_agent.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/context.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "util/log.hpp"

namespace rac::core {

namespace {

// The detector inherits the agent's registry unless it was given its own.
ViolationOptions with_registry(ViolationOptions violation,
                               obs::Registry* registry) {
  if (violation.registry == nullptr) violation.registry = registry;
  return violation;
}

const RacOptions& validated(const RacOptions& options) {
  if (options.robustness.median_of < 1) {
    throw std::invalid_argument("RacAgent: robustness.median_of < 1");
  }
  if (options.robustness.freeze_detect_after < 0) {
    throw std::invalid_argument(
        "RacAgent: negative robustness.freeze_detect_after");
  }
  if (options.robustness.clamp &&
      !std::isfinite(options.robustness.floor)) {
    throw std::invalid_argument("RacAgent: non-finite robustness.floor");
  }
  if (options.safe_fallback.enabled &&
      (options.safe_fallback.after_blowouts < 1 ||
       options.safe_fallback.blowout_factor <= 0.0)) {
    throw std::invalid_argument("RacAgent: bad safe_fallback options");
  }
  return options;
}

}  // namespace

RacAgent::RacAgent(const RacOptions& options, InitialPolicyLibrary library,
                   std::optional<std::size_t> initial_policy)
    : opt_(validated(options)),
      library_(std::move(library)),
      detector_(with_registry(options.violation, options.registry)),
      online_policy_(options.online_epsilon),
      rng_(options.seed) {
  obs::Registry& reg = obs::registry_or_default(opt_.registry);
  decisions_ = &reg.counter("core.rac.decisions");
  explorations_ = &reg.counter("core.rac.explore_actions");
  policy_switch_count_ = &reg.counter("core.rac.policy_switches");
  policy_reseed_count_ = &reg.counter("core.rac.policy_reseeds");
  retrain_count_ = &reg.counter("core.rac.retrains");
  nonfinite_samples_ = &reg.counter("core.rac.nonfinite_samples");
  frozen_samples_ = &reg.counter("core.rac.frozen_samples");
  safe_fallback_count_ = &reg.counter("core.rac.safe_fallbacks");
  select_us_ = &reg.histogram("core.rac.select_us", obs::latency_us_bounds());
  retrain_us_ = &reg.histogram("core.rac.retrain_us", obs::latency_us_bounds());
  if (!library_.empty()) {
    load_policy(initial_policy.value_or(0));
  }
  // The management loop starts from the running system's configuration,
  // which is the Table-1 default.
  current_ = config::Configuration::defaults();
}

void RacAgent::load_policy(std::size_t index) {
  qtable_ = library_.at(index).table;
  active_policy_ = index;
}

std::string RacAgent::name() const {
  std::string n = "RAC";
  if (library_.empty()) n += "/no-init";
  if (!opt_.online_learning) n += "/offline-only";
  if (!opt_.adaptive_policy_switching && !library_.empty()) n += "/static-init";
  return n;
}

config::Configuration RacAgent::decide() {
  decisions_->add(1);
  last_safe_fallback_ = false;
  if (first_decide_) {
    // Measure the starting configuration before acting (the agent needs a
    // baseline observation).
    first_decide_ = false;
    last_selection_ = {config::Action::keep(), false,
                       qtable_.q(current_, config::Action::keep())};
    return current_;
  }
  if (opt_.safe_fallback.enabled &&
      blowout_streak_ >= opt_.safe_fallback.after_blowouts) {
    // The Q-table steered us into (or failed to escape) sustained SLA
    // blowouts; revert to the best configuration we have actually measured
    // instead of trusting possibly poisoned values. Defaults when nothing
    // was measured yet -- the known-safe Table-1 starting point.
    current_ = experience_.best().value_or(config::Configuration::defaults());
    last_selection_ = {config::Action::keep(), false,
                       qtable_.q(current_, config::Action::keep())};
    blowout_streak_ = 0;
    last_safe_fallback_ = true;
    ++safe_fallbacks_;
    safe_fallback_count_->add(1);
    return current_;
  }
  {
    const obs::ScopedTimer timer(select_us_);
    last_selection_ = online_policy_.select_detailed(qtable_, current_, rng_);
  }
  if (last_selection_.explored) explorations_->add(1);
  current_ = config::ConfigSpace::apply(current_, last_selection_.action);
  return current_;
}

double RacAgent::lookup_response(const config::Configuration& c) const {
  if (const auto measured = experience_.response_ms(c)) return *measured;
  if (active_policy_.has_value()) {
    const double predicted =
        library_.at(*active_policy_).predict_response_ms(c);
    const double calibration =
        calibration_log_.empty() ? 1.0 : std::exp(calibration_log_.value());
    return predicted * calibration;
  }
  // No knowledge at all: assume SLA-level performance (neutral reward).
  return opt_.sla.reference_response_ms;
}

void RacAgent::retrain() {
  retrain_count_->add(1);
  const obs::ScopedTimer timer(retrain_us_);
  const obs::ProfileScope profile("rac.retrain");
  // Batch sweep over every remembered state plus the current one, so the
  // fresh observation propagates through the Q-table (Section 4.2). Sweep
  // in canonical (sorted) state order: the result must not depend on how
  // the experience store happens to iterate, or a restored agent could
  // diverge from the run it resumed. The store maintains that order
  // incrementally, so the sweep borrows its list instead of re-sorting.
  std::span<const config::Configuration> states =
      experience_.sorted_configurations();
  std::vector<config::Configuration> fallback;
  if (states.empty()) {
    fallback.push_back(current_);
    states = fallback;
  }
  const rl::RewardFn reward = [this](const config::Configuration& c) {
    return reward_of(lookup_response(c));
  };
  rl::batch_train(qtable_, states, reward, opt_.online_td, rng_,
                  opt_.registry);
}

double RacAgent::reward_of(double response_ms) const {
  const double r = reward_from_response(opt_.sla, response_ms);
  return opt_.robustness.clamp ? std::max(r, opt_.robustness.floor) : r;
}

void RacAgent::observe(const config::Configuration& applied,
                       const env::PerfSample& sample) {
  current_ = applied;
  last_policy_switched_ = false;

  if (!std::isfinite(sample.response_ms) || sample.response_ms < 0.0) {
    // Monitoring garbage: hold the previous knowledge rather than feed it
    // into the experience store (whose contract rejects it) or the
    // calibration average. The detector counts-and-drops on its own.
    nonfinite_samples_->add(1);
    detector_.observe(sample.response_ms);
    return;
  }

  if (opt_.robustness.freeze_detect_after > 0) {
    // Bitwise comparison on purpose: a live (noisy) sensor essentially
    // never repeats a double exactly, a stuck one repeats it exactly.
    if (freeze_has_last_ &&
        sample.response_ms == freeze_last_raw_) {
      ++freeze_repeats_;
    } else {
      freeze_repeats_ = 0;
    }
    freeze_has_last_ = true;
    freeze_last_raw_ = sample.response_ms;
    if (freeze_repeats_ >= opt_.robustness.freeze_detect_after) {
      // Stuck sensor: the reading repeats old state and carries no new
      // information -- ingesting it would teach the agent that nothing it
      // does changes anything.
      frozen_samples_->add(1);
      return;
    }
  }

  // Outlier-robust effective response: the reward / experience /
  // calibration paths see the median-filtered value, the violation
  // detector always sees the raw sample.
  double effective = sample.response_ms;
  if (opt_.robustness.median_of > 1) {
    recent_responses_.push_back(sample.response_ms);
    while (recent_responses_.size() >
           static_cast<std::size_t>(opt_.robustness.median_of)) {
      recent_responses_.pop_front();
    }
    std::vector<double> sorted(recent_responses_.begin(),
                               recent_responses_.end());
    std::sort(sorted.begin(), sorted.end());
    effective = sorted[sorted.size() / 2];
  }

  if (opt_.safe_fallback.enabled) {
    const double blowout =
        opt_.safe_fallback.blowout_factor * opt_.sla.reference_response_ms;
    blowout_streak_ = effective > blowout ? blowout_streak_ + 1 : 0;
  }

  last_reward_ = reward_of(effective);
  experience_.record(applied, effective);

  // Update the surface calibration from this measurement (log-space ratio
  // so over- and under-prediction are symmetric).
  if (active_policy_.has_value() && effective > 0.0) {
    const double predicted =
        library_.at(*active_policy_).predict_response_ms(applied);
    if (predicted > 0.0) {
      calibration_log_.add(std::log(effective / predicted));
    }
  }

  // Context-change detection and policy switching (Algorithm 3 lines 6-8).
  if (detector_.observe(sample.response_ms)) {
    if (opt_.adaptive_policy_switching && !library_.empty()) {
      const auto match = library_.best_match(applied, effective);
      if (match.has_value()) {
        if (match != active_policy_) {
          util::log_info("RAC: context change detected, switching to policy ",
                         *match, " (", library_.at(*match).context.name(),
                         ")");
          ++policy_switches_;
          last_policy_switched_ = true;
          policy_switch_count_->add(1);
        } else {
          // The detector fired but the best match is the policy already
          // active: the context moved within this policy's regime (a load
          // surge, not a mix change). The online-refined table was refined
          // for the PRE-change conditions, so re-seeding from the offline
          // prior below restores the library's knowledge of the stressed
          // region that online learning at the old operating point eroded.
          util::log_info(
              "RAC: context change detected, re-seeding active policy ",
              *match, " (", library_.at(*match).context.name(), ")");
          policy_reseed_count_->add(1);
        }
        load_policy(*match);
      }
    }
    // Stale measurements (and the old context's calibration) mislead
    // retraining after the environment changed.
    experience_.clear();
    experience_.record(applied, effective);
    calibration_log_.reset();
    if (active_policy_.has_value() && effective > 0.0) {
      const double predicted =
          library_.at(*active_policy_).predict_response_ms(applied);
      if (predicted > 0.0) {
        calibration_log_.add(std::log(effective / predicted));
      }
    }
  }

  if (opt_.online_learning) retrain();
}

AgentSnapshot RacAgent::snapshot() const {
  AgentSnapshot s;
  s.sla_reference_response_ms = opt_.sla.reference_response_ms;
  s.online_epsilon = opt_.online_epsilon;
  s.online_td = opt_.online_td;
  s.violation_window = opt_.violation.window;
  s.violation_threshold = opt_.violation.threshold;
  s.violation_consecutive_limit = opt_.violation.consecutive_limit;
  s.violation_min_history = opt_.violation.min_history;
  s.online_learning = opt_.online_learning;
  s.adaptive_policy_switching = opt_.adaptive_policy_switching;
  s.robustness_clamp = opt_.robustness.clamp;
  s.robustness_floor = opt_.robustness.floor;
  s.robustness_median_of = opt_.robustness.median_of;
  s.robustness_freeze_after = opt_.robustness.freeze_detect_after;
  s.safe_fallback_enabled = opt_.safe_fallback.enabled;
  s.safe_fallback_after = opt_.safe_fallback.after_blowouts;
  s.safe_fallback_factor = opt_.safe_fallback.blowout_factor;
  s.seed = opt_.seed;
  s.library_size = library_.size();
  s.experience_blend = experience_.blend();
  s.has_active_policy = active_policy_.has_value();
  if (s.has_active_policy) {
    s.active_policy = *active_policy_;
    s.active_policy_context =
        env::context_token(library_.at(*active_policy_).context);
  }
  s.qtable = qtable_;
  const auto entries = experience_.entries();
  s.experience.assign(entries.begin(), entries.end());
  s.detector_history = detector_.history();
  s.detector_consecutive = detector_.consecutive_violations();
  s.detector_last_violation = detector_.last_was_violation();
  s.rng = rng_.state();
  s.current = current_;
  s.first_decide = first_decide_;
  s.policy_switches = policy_switches_;
  s.last_action_id = last_selection_.action.id();
  s.last_explored = last_selection_.explored;
  s.last_q_value = last_selection_.q_value;
  s.last_policy_switched = last_policy_switched_;
  s.last_reward = last_reward_;
  s.calibration_initialized = !calibration_log_.empty();
  s.calibration_value = calibration_log_.value();
  s.recent_responses.assign(recent_responses_.begin(),
                            recent_responses_.end());
  s.blowout_streak = blowout_streak_;
  s.last_safe_fallback = last_safe_fallback_;
  s.safe_fallbacks = safe_fallbacks_;
  s.freeze_has_last = freeze_has_last_;
  s.freeze_last_raw = freeze_last_raw_;
  s.freeze_repeats = freeze_repeats_;
  return s;
}

void RacAgent::restore(const AgentSnapshot& s) {
  // Hyperparameter drift would make the resumed run a silent hybrid of two
  // configurations, so every constant must match exactly. (Bitwise double
  // comparison is deliberate: the snapshot stores exact hex values.)
  const bool hyperparams_match =
      s.sla_reference_response_ms == opt_.sla.reference_response_ms &&
      s.online_epsilon == opt_.online_epsilon &&
      s.online_td.alpha == opt_.online_td.alpha &&
      s.online_td.gamma == opt_.online_td.gamma &&
      s.online_td.epsilon == opt_.online_td.epsilon &&
      s.online_td.theta == opt_.online_td.theta &&
      s.online_td.trajectory_limit == opt_.online_td.trajectory_limit &&
      s.online_td.max_sweeps == opt_.online_td.max_sweeps &&
      s.violation_window == opt_.violation.window &&
      s.violation_threshold == opt_.violation.threshold &&
      s.violation_consecutive_limit == opt_.violation.consecutive_limit &&
      s.violation_min_history == opt_.violation.min_history &&
      s.online_learning == opt_.online_learning &&
      s.adaptive_policy_switching == opt_.adaptive_policy_switching &&
      s.robustness_clamp == opt_.robustness.clamp &&
      s.robustness_floor == opt_.robustness.floor &&
      s.robustness_median_of == opt_.robustness.median_of &&
      s.robustness_freeze_after == opt_.robustness.freeze_detect_after &&
      s.safe_fallback_enabled == opt_.safe_fallback.enabled &&
      s.safe_fallback_after == opt_.safe_fallback.after_blowouts &&
      s.safe_fallback_factor == opt_.safe_fallback.blowout_factor &&
      s.seed == opt_.seed && s.experience_blend == experience_.blend();
  if (!hyperparams_match) {
    throw std::invalid_argument(
        "RacAgent::restore: snapshot hyperparameters differ from this "
        "agent's options");
  }
  if (s.library_size != library_.size()) {
    throw std::invalid_argument(
        "RacAgent::restore: snapshot library size differs from this agent's "
        "library");
  }
  if (s.has_active_policy) {
    if (s.active_policy >= library_.size()) {
      throw std::invalid_argument(
          "RacAgent::restore: active policy index outside the library");
    }
    const std::string live_context =
        env::context_token(library_.at(s.active_policy).context);
    if (live_context != s.active_policy_context) {
      throw std::invalid_argument(
          "RacAgent::restore: active policy context mismatch (snapshot '" +
          s.active_policy_context + "' vs library '" + live_context + "')");
    }
  }
  // Validating restores first (they throw) keeps the agent unchanged on
  // failure paths that are reachable from on-disk data.
  rl::ExperienceStore experience(experience_.blend());
  experience.restore(s.experience);
  util::Rng rng = rng_;
  rng.restore(s.rng);
  detector_.restore(s.detector_history, s.detector_consecutive,
                    s.detector_last_violation);
  experience_ = std::move(experience);
  rng_ = rng;
  qtable_ = s.qtable;
  active_policy_ = s.has_active_policy
                       ? std::optional<std::size_t>(s.active_policy)
                       : std::nullopt;
  current_ = s.current;
  first_decide_ = s.first_decide;
  policy_switches_ = s.policy_switches;
  last_selection_ = {config::Action(s.last_action_id), s.last_explored,
                     s.last_q_value};
  last_policy_switched_ = s.last_policy_switched;
  last_reward_ = s.last_reward;
  calibration_log_.restore(s.calibration_value, s.calibration_initialized);
  recent_responses_.assign(s.recent_responses.begin(),
                           s.recent_responses.end());
  blowout_streak_ = s.blowout_streak;
  last_safe_fallback_ = s.last_safe_fallback;
  safe_fallbacks_ = s.safe_fallbacks;
  freeze_has_last_ = s.freeze_has_last;
  freeze_last_raw_ = s.freeze_last_raw;
  freeze_repeats_ = s.freeze_repeats;
}

bool RacAgent::save_state(std::ostream& os) const {
  save_agent_snapshot(os, snapshot());
  return true;
}

void RacAgent::rebase_library(InitialPolicyLibrary library) {
  if (library.size() != library_.size()) {
    throw std::invalid_argument(
        "RacAgent::rebase_library: replacement library size differs");
  }
  for (std::size_t i = 0; i < library_.size(); ++i) {
    if (!(library.at(i).context == library_.at(i).context)) {
      throw std::invalid_argument(
          "RacAgent::rebase_library: context mismatch at policy " +
          std::to_string(i) + " ('" + env::context_token(library.at(i).context) +
          "' vs '" + env::context_token(library_.at(i).context) + "')");
    }
  }
  library_ = std::move(library);
}

void RacAgent::annotate(obs::TraceEvent& event) const {
  event.action = last_selection_.action.to_string();
  event.explored = last_selection_.explored;
  event.q_value = last_selection_.q_value;
  event.reward = last_reward_;
  event.sla_margin_ms = opt_.sla.reference_response_ms - event.response_ms;
  event.active_policy =
      active_policy_.has_value() ? static_cast<int>(*active_policy_) : -1;
  event.policy_switched = last_policy_switched_;
  event.violation = detector_.last_was_violation();
  event.consecutive_violations = detector_.consecutive_violations();
  event.safe_fallback = last_safe_fallback_;
}

}  // namespace rac::core
