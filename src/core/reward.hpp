// The immediate reward (paper Section 3.2): r = SLA - perf.
//
// We normalize by the SLA reference so that rewards are dimensionless and
// Q-values stay well-scaled across contexts: a response time at the SLA
// yields 0, a response time of 0 yields +1, and slower-than-SLA intervals
// yield negative penalties (unbounded below, as in the paper).
#pragma once

namespace rac::core {

struct SlaSpec {
  /// Reference response time from the service-level agreement (ms).
  double reference_response_ms = 1000.0;
};

/// Normalized immediate reward for a measured mean response time.
inline double reward_from_response(const SlaSpec& sla, double response_ms) {
  return (sla.reference_response_ms - response_ms) / sla.reference_response_ms;
}

/// Inverse mapping (used to turn predicted rewards back into predicted
/// response times for reporting).
inline double response_from_reward(const SlaSpec& sla, double reward) {
  return sla.reference_response_ms * (1.0 - reward);
}

}  // namespace rac::core
