#include "core/sensitivity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rac::core {

std::vector<config::ParamId> SensitivityReport::selected(
    double threshold) const {
  std::vector<config::ParamId> out;
  for (const auto& entry : ranked) {
    if (entry.impact() >= threshold) out.push_back(entry.id);
  }
  return out;
}

SensitivityReport analyze_sensitivity(env::Environment& environment,
                                      const SensitivityOptions& options) {
  if (options.samples_per_point < 1 || options.stride < 1) {
    throw std::invalid_argument("analyze_sensitivity: bad options");
  }

  SensitivityReport report;
  for (config::ParamId id : config::kAllParams) {
    ParameterSensitivity entry;
    entry.id = id;
    entry.min_response_ms = std::numeric_limits<double>::infinity();
    entry.max_response_ms = 0.0;

    const auto grid = config::ConfigSpace::fine_grid(id);
    for (std::size_t i = 0; i < grid.size();
         i += static_cast<std::size_t>(options.stride)) {
      config::Configuration c = options.base;
      c.set(id, grid[i]);
      double total = 0.0;
      for (int rep = 0; rep < options.samples_per_point; ++rep) {
        total += environment.measure(c)  // rac-lint: allow(unchecked-measure) offline probe
                     .response_ms;
      }
      const double response = total / options.samples_per_point;
      ++report.evaluations;
      if (response < entry.min_response_ms) {
        entry.min_response_ms = response;
        entry.best_value = grid[i];
      }
      entry.max_response_ms = std::max(entry.max_response_ms, response);
    }
    report.ranked.push_back(entry);
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const ParameterSensitivity& a, const ParameterSensitivity& b) {
              return a.impact() > b.impact();
            });
  return report;
}

}  // namespace rac::core
