// Offline configuration search, used to find the "best configuration (out
// of our test cases)" baselines of the paper's Figures 1 and 3: a coarse
// grid scan followed by greedy hill descent on the fine grid.
#pragma once

#include "config/space.hpp"
#include "env/environment.hpp"

namespace rac::core {

struct SearchOptions {
  int coarse_levels = 4;     // coarse-grid resolution of the initial scan
  int max_local_steps = 200; // fine-grid greedy refinement budget
  int samples_per_eval = 1;  // measurements averaged per configuration
};

struct SearchResult {
  config::Configuration best;
  double best_response_ms = 0.0;
  int evaluations = 0;
};

/// Exhaustive coarse scan + greedy neighbour descent.
SearchResult find_best_configuration(env::Environment& environment,
                                     const SearchOptions& options = {});

}  // namespace rac::core
