// Exact Mean Value Analysis (MVA) for single-class closed queueing
// networks with load-dependent service stations and a delay (think-time)
// center.
//
// This is the analytic substrate under the web-system model: each VM is a
// load-dependent station whose service rate mu(j) encodes its core count,
// its admission limit (jobs beyond the limit receive no service and queue),
// and concurrency overheads (per-job demand inflation at high admitted
// concurrency). The exact MVA recursion with marginal queue-length
// probabilities (Reiser & Lavenberg) solves the network in O(N * S * N)
// time for population N.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rac::obs {
class Registry;
}

namespace rac::queueing {

/// A load-dependent queueing station. `rates[j-1]` is the aggregate service
/// rate (jobs/second) when j jobs are present. Rates must be positive and
/// the vector is implicitly extended with its last value for j beyond its
/// length.
struct Station {
  std::string name;
  double visit_ratio = 1.0;
  std::vector<double> rates;
};

/// Convenience constructors -------------------------------------------------

/// M/M/1-PS-like station: rate mu regardless of population.
Station make_queueing_station(std::string name, double service_rate,
                              double visit_ratio = 1.0);

/// Multi-server station: c servers each of rate `per_server_rate`;
/// mu(j) = min(j, c) * per_server_rate. `max_population` bounds the rate
/// table length.
Station make_multiserver_station(std::string name, int servers,
                                 double per_server_rate, int max_population,
                                 double visit_ratio = 1.0);

struct StationResult {
  std::string name;
  double residence_time = 0.0;   // total time per system-level request
  double queue_length = 0.0;     // mean jobs at station (queued + served)
  double utilization = 0.0;      // P(station non-empty)
};

struct MvaResult {
  int population = 0;
  double throughput = 0.0;       // X(N), jobs/second
  double response_time = 0.0;    // R(N), excludes think time
  double think_time = 0.0;       // Z
  std::vector<StationResult> stations;

  /// Little's-law check value: X * (R + Z); equals N for an exact solve.
  double little_check() const noexcept {
    return throughput * (response_time + think_time);
  }
};

/// A closed interactive network: N clients cycling through a think delay
/// and a sequence of load-dependent stations.
class ClosedNetwork {
 public:
  /// `think_time` is the delay-center service time, in seconds (>= 0).
  explicit ClosedNetwork(double think_time = 0.0);

  void set_think_time(double think_time);
  double think_time() const noexcept { return think_time_; }

  /// Add a station; returns its index.
  std::size_t add_station(Station station);

  std::size_t num_stations() const noexcept { return stations_.size(); }
  const Station& station(std::size_t i) const { return stations_.at(i); }

  /// Exact MVA solve for the given population (>= 0). Throws
  /// std::invalid_argument for a negative population or an empty network
  /// with zero think time.
  MvaResult solve(int population) const;

  /// Throughput X(n) for every population n = 1..max_population, from one
  /// pass of the MVA recursion. `curve[n-1]` is X(n).
  ///
  /// This is the flow-equivalent service center (FESC) construction: a
  /// subnetwork solved with think time 0 yields the rate table mu(j) =
  /// X_sub(j) of a single load-dependent station that is exactly
  /// equivalent to the subnetwork in any enclosing product-form model.
  std::vector<double> throughput_curve(int max_population) const;

  /// Route this network's solve/step counters to `registry` (nullptr means
  /// the process default). Handles are resolved per solve, so the setting
  /// takes effect immediately.
  void set_registry(obs::Registry* registry) noexcept { registry_ = registry; }

 private:
  double think_time_;
  std::vector<Station> stations_;
  obs::Registry* registry_ = nullptr;
};

}  // namespace rac::queueing
