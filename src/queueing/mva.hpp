// Exact Mean Value Analysis (MVA) for single-class closed queueing
// networks with load-dependent service stations and a delay (think-time)
// center.
//
// This is the analytic substrate under the web-system model: each VM is a
// load-dependent station whose service rate mu(j) encodes its core count,
// its admission limit (jobs beyond the limit receive no service and queue),
// and concurrency overheads (per-job demand inflation at high admitted
// concurrency). The exact MVA recursion with marginal queue-length
// probabilities (Reiser & Lavenberg) solves the network in O(N * S * N)
// time for population N.
//
// Incremental solving: the recursion for population n depends only on the
// recursion state at n-1, so the network memoizes the highest population it
// has solved and resumes from there. solve(m) after solve(n >= m) or
// throughput_curve(n >= m) is a cached read; solve(m > n) runs only the
// populations (n, m]. Any structural mutation -- add_station,
// set_station_rates, or a think-time change -- invalidates the cache, and
// the next solve restarts from population 1. Results are bitwise identical
// to a from-scratch solve in every case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rac::obs {
class Registry;
}

namespace rac::queueing {

/// A load-dependent queueing station. `rates[j-1]` is the aggregate service
/// rate (jobs/second) when j jobs are present. Rates must be positive and
/// the vector is implicitly extended with its last value for j beyond its
/// length.
struct Station {
  std::string name;
  double visit_ratio = 1.0;
  std::vector<double> rates;
};

/// Convenience constructors -------------------------------------------------

/// M/M/1-PS-like station: rate mu regardless of population.
Station make_queueing_station(std::string name, double service_rate,
                              double visit_ratio = 1.0);

/// Multi-server station: c servers each of rate `per_server_rate`;
/// mu(j) = min(j, c) * per_server_rate. `max_population` bounds the rate
/// table length.
Station make_multiserver_station(std::string name, int servers,
                                 double per_server_rate, int max_population,
                                 double visit_ratio = 1.0);

struct StationResult {
  std::string name;
  double residence_time = 0.0;   // total time per system-level request
  double queue_length = 0.0;     // mean jobs at station (queued + served)
  double utilization = 0.0;      // P(station non-empty)
};

struct MvaResult {
  int population = 0;
  double throughput = 0.0;       // X(N), jobs/second
  double response_time = 0.0;    // R(N), excludes think time
  double think_time = 0.0;       // Z
  std::vector<StationResult> stations;

  /// Little's-law check value: X * (R + Z); equals N for an exact solve.
  double little_check() const noexcept {
    return throughput * (response_time + think_time);
  }
};

/// A closed interactive network: N clients cycling through a think delay
/// and a sequence of load-dependent stations.
///
/// Not safe for concurrent solves on one instance: solving mutates the
/// internal recursion cache (each pool task should own its network, which
/// is how every caller in this codebase already works).
class ClosedNetwork {
 public:
  /// `think_time` is the delay-center service time, in seconds (>= 0).
  explicit ClosedNetwork(double think_time = 0.0);

  /// Changing the think time invalidates the recursion cache (Z enters
  /// every population step); setting the identical value keeps it.
  void set_think_time(double think_time);
  double think_time() const noexcept { return think_time_; }

  /// Add a station; returns its index. Invalidates the recursion cache.
  std::size_t add_station(Station station);

  /// Replace station `index`'s rate table (same validation as add_station).
  /// Invalidates the recursion cache unless the table is identical.
  void set_station_rates(std::size_t index, std::vector<double> rates);

  std::size_t num_stations() const noexcept { return stations_.size(); }
  const Station& station(std::size_t i) const { return stations_.at(i); }

  /// Exact MVA solve for the given population (>= 0). Throws
  /// std::invalid_argument for a negative population or an empty network
  /// with zero think time. Population 0 is the defined empty system:
  /// zero throughput/response/queues, utilization 0 at every station.
  MvaResult solve(int population) const;

  /// Throughput X(n) for every population n = 1..max_population, from one
  /// pass of the MVA recursion. `curve[n-1]` is X(n).
  ///
  /// This is the flow-equivalent service center (FESC) construction: a
  /// subnetwork solved with think time 0 yields the rate table mu(j) =
  /// X_sub(j) of a single load-dependent station that is exactly
  /// equivalent to the subnetwork in any enclosing product-form model.
  std::vector<double> throughput_curve(int max_population) const;

  /// Highest population the cached recursion has reached since the last
  /// structural mutation (0 when cold). Exposed for tests and diagnostics.
  int solved_population() const noexcept { return cache_.solved; }

  /// Route this network's solve/step counters to `registry` (nullptr means
  /// the process default). Handles are resolved per solve, so the setting
  /// takes effect immediately.
  void set_registry(obs::Registry* registry) noexcept { registry_ = registry; }

 private:
  // Recursion state, resumable at population `solved`. Per station the
  // rate table is pre-extended (rate[j-1] for j = 1..capacity, implicit
  // last-value extension applied once) alongside jr[j-1] = j / rate[j-1],
  // the exact per-job demand term of the residence-time loop. `marginal`
  // holds P(j jobs at the station | population = solved).
  struct StationCache {
    std::vector<double> rate;
    std::vector<double> jr;
    std::vector<double> marginal;
  };
  struct Cache {
    int solved = 0;    // populations 1..solved are computed
    int capacity = 0;  // per-station table length the arrays cover
    std::vector<StationCache> per_station;
    // Per-population history so solve(m <= solved) is a cached read:
    // throughput[n-1] = X(n), response[n-1] = R(n), and the per-station
    // residence times / empty-station probabilities flattened as
    // [(n-1) * num_stations + s].
    std::vector<double> throughput;
    std::vector<double> response;
    std::vector<double> residence;
    std::vector<double> marginal0;
    std::vector<double> residence_scratch;
  };

  void invalidate() noexcept { cache_ = Cache{}; }
  /// Grow per-station tables to cover `population` and run the recursion
  /// for populations (cache_.solved, population]. Returns executed inner
  /// steps per station (0 when fully cached).
  std::uint64_t extend(int population) const;

  double think_time_;
  std::vector<Station> stations_;
  obs::Registry* registry_ = nullptr;
  mutable Cache cache_;
};

}  // namespace rac::queueing
