#include "queueing/mva.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/contracts.hpp"

namespace rac::queueing {

namespace {

void validate_station_rates(const std::vector<double>& rates) {
  if (rates.empty()) {
    throw std::invalid_argument("ClosedNetwork: station has no rates");
  }
  for (double r : rates) {
    if (r <= 0.0) {
      throw std::invalid_argument("ClosedNetwork: non-positive service rate");
    }
  }
}

}  // namespace

Station make_queueing_station(std::string name, double service_rate,
                              double visit_ratio) {
  if (service_rate <= 0.0) {
    throw std::invalid_argument("make_queueing_station: rate must be > 0");
  }
  return Station{std::move(name), visit_ratio, {service_rate}};
}

Station make_multiserver_station(std::string name, int servers,
                                 double per_server_rate, int max_population,
                                 double visit_ratio) {
  if (servers < 1 || per_server_rate <= 0.0 || max_population < 1) {
    throw std::invalid_argument("make_multiserver_station: bad arguments");
  }
  std::vector<double> rates;
  const int table = std::min(servers, max_population);
  rates.reserve(static_cast<std::size_t>(table));
  for (int j = 1; j <= table; ++j) rates.push_back(j * per_server_rate);
  return Station{std::move(name), visit_ratio, std::move(rates)};
}

ClosedNetwork::ClosedNetwork(double think_time) : think_time_(think_time) {
  if (think_time < 0.0) {
    throw std::invalid_argument("ClosedNetwork: negative think time");
  }
}

void ClosedNetwork::set_think_time(double think_time) {
  if (think_time < 0.0) {
    throw std::invalid_argument("ClosedNetwork: negative think time");
  }
  // Exact bitwise compare on purpose: an unchanged setting must not
  // invalidate the memoized solve.
  if (think_time == think_time_) return;
  think_time_ = think_time;
  invalidate();
}

std::size_t ClosedNetwork::add_station(Station station) {
  validate_station_rates(station.rates);
  if (station.visit_ratio <= 0.0) {
    throw std::invalid_argument("ClosedNetwork: non-positive visit ratio");
  }
  stations_.push_back(std::move(station));
  invalidate();
  return stations_.size() - 1;
}

void ClosedNetwork::set_station_rates(std::size_t index,
                                      std::vector<double> rates) {
  if (index >= stations_.size()) {
    throw std::invalid_argument("set_station_rates: no such station");
  }
  validate_station_rates(rates);
  if (rates == stations_[index].rates) return;  // identical table: keep cache
  stations_[index].rates = std::move(rates);
  invalidate();
}

std::uint64_t ClosedNetwork::extend(int population) const {
  Cache& c = cache_;
  if (population <= c.solved) return 0;
  const std::size_t num_s = stations_.size();

  // Build (cold) or grow the per-station tables. The implicit last-value
  // extension of each rate table is applied here, once, so the inner loops
  // index flat arrays. Growing preserves the recursion state: marginal
  // probabilities beyond the solved population are exactly zero.
  if (c.per_station.size() != num_s) c.per_station.resize(num_s);
  if (c.capacity < population) {
    for (std::size_t s = 0; s < num_s; ++s) {
      StationCache& sc = c.per_station[s];
      const std::vector<double>& rates = stations_[s].rates;
      sc.rate.resize(static_cast<std::size_t>(population));
      sc.jr.resize(static_cast<std::size_t>(population));
      for (int j = c.capacity + 1; j <= population; ++j) {
        const std::size_t idx = std::min<std::size_t>(
            static_cast<std::size_t>(j) - 1, rates.size() - 1);
        sc.rate[static_cast<std::size_t>(j) - 1] = rates[idx];
        sc.jr[static_cast<std::size_t>(j) - 1] =
            static_cast<double>(j) / rates[idx];
      }
      sc.marginal.resize(static_cast<std::size_t>(population) + 1, 0.0);
      if (c.solved == 0) sc.marginal[0] = 1.0;
    }
    c.capacity = population;
  }
  const std::size_t pop = static_cast<std::size_t>(population);
  c.throughput.reserve(pop);
  c.response.reserve(pop);
  c.residence.reserve(pop * num_s);
  c.marginal0.reserve(pop * num_s);
  c.residence_scratch.resize(num_s);

  for (int n = c.solved + 1; n <= population; ++n) {
    // Residence times at population n from the marginals at n-1. jr[j-1]
    // is the precomputed j / mu(j) term, so each station's loop is a plain
    // dot product with the same summation order (and bit pattern) as the
    // textbook form. Stations are processed in pairs with independent
    // accumulator chains: the serial FP-add latency of one station's sum
    // hides the other's, roughly doubling throughput on two-station
    // networks, while each per-station sum keeps its exact order.
    double response = 0.0;
    std::size_t s = 0;
    for (; s + 1 < num_s; s += 2) {
      const StationCache& sc0 = c.per_station[s];
      const StationCache& sc1 = c.per_station[s + 1];
      const double* jr0 = sc0.jr.data();
      const double* m0 = sc0.marginal.data();
      const double* jr1 = sc1.jr.data();
      const double* m1 = sc1.marginal.data();
      double r0 = 0.0;
      double r1 = 0.0;
      for (int j = 0; j < n; ++j) {
        r0 += jr0[j] * m0[j];
        r1 += jr1[j] * m1[j];
      }
      const double res0 = stations_[s].visit_ratio * r0;
      const double res1 = stations_[s + 1].visit_ratio * r1;
      c.residence_scratch[s] = res0;
      c.residence_scratch[s + 1] = res1;
      response += res0;
      response += res1;
    }
    if (s < num_s) {
      const StationCache& sc = c.per_station[s];
      const double* jr = sc.jr.data();
      const double* m = sc.marginal.data();
      double r = 0.0;
      for (int j = 0; j < n; ++j) r += jr[j] * m[j];
      const double res = stations_[s].visit_ratio * r;
      c.residence_scratch[s] = res;
      response += res;
    }
    const double throughput =
        static_cast<double>(n) / (think_time_ + response);

    // Update marginal probabilities for population n (in place, from high j
    // to low so that m[j-1] still refers to population n-1). The division
    // stays per step: tv / rate * m matches the original evaluation order
    // bit for bit, a hoisted reciprocal would not. Same pairwise
    // interleaving as above; the per-station divide/add chains stay
    // independent and bit-exact.
    s = 0;
    for (; s + 1 < num_s; s += 2) {
      StationCache& sc0 = c.per_station[s];
      StationCache& sc1 = c.per_station[s + 1];
      const double* rate0 = sc0.rate.data();
      const double* rate1 = sc1.rate.data();
      double* m0 = sc0.marginal.data();
      double* m1 = sc1.marginal.data();
      const double tv0 = throughput * stations_[s].visit_ratio;
      const double tv1 = throughput * stations_[s + 1].visit_ratio;
      double tail0 = 0.0;
      double tail1 = 0.0;
#if defined(__SSE2__)
      // Pack the pair's divisions into one divpd: IEEE division and
      // multiplication are exact per lane, so each lane reproduces the
      // scalar tv / rate * m bit pattern while the divider unit retires
      // two stations' steps per issue. (Intrinsics also pin the mul+add
      // sequence: no FMA contraction can creep in and change bits.)
      {
        const __m128d tv_v = _mm_set_pd(tv1, tv0);
        __m128d tail_v = _mm_setzero_pd();
        for (int j = n; j >= 1; --j) {
          const __m128d rate_v = _mm_set_pd(rate1[j - 1], rate0[j - 1]);
          const __m128d m_v = _mm_set_pd(m1[j - 1], m0[j - 1]);
          const __m128d p = _mm_mul_pd(_mm_div_pd(tv_v, rate_v), m_v);
          _mm_storel_pd(&m0[static_cast<std::size_t>(j)], p);
          _mm_storeh_pd(&m1[static_cast<std::size_t>(j)], p);
          tail_v = _mm_add_pd(tail_v, p);
        }
        _mm_storel_pd(&tail0, tail_v);
        _mm_storeh_pd(&tail1, tail_v);
      }
#else
      for (int j = n; j >= 1; --j) {
        const double p0 = tv0 / rate0[j - 1] * m0[j - 1];
        const double p1 = tv1 / rate1[j - 1] * m1[j - 1];
        m0[static_cast<std::size_t>(j)] = p0;
        m1[static_cast<std::size_t>(j)] = p1;
        tail0 += p0;
        tail1 += p1;
      }
#endif
      m0[0] = std::max(0.0, 1.0 - tail0);
      m1[0] = std::max(0.0, 1.0 - tail1);
    }
    if (s < num_s) {
      StationCache& sc = c.per_station[s];
      const double* rate = sc.rate.data();
      double* m = sc.marginal.data();
      const double tv = throughput * stations_[s].visit_ratio;
      double tail = 0.0;
      for (int j = n; j >= 1; --j) {
        const double p = tv / rate[j - 1] * m[j - 1];
        m[static_cast<std::size_t>(j)] = p;
        tail += p;
      }
      m[0] = std::max(0.0, 1.0 - tail);
    }

    c.throughput.push_back(throughput);
    c.response.push_back(response);
    for (std::size_t s = 0; s < num_s; ++s) {
      c.residence.push_back(c.residence_scratch[s]);
      c.marginal0.push_back(c.per_station[s].marginal[0]);
    }
  }

  const auto from = static_cast<std::uint64_t>(c.solved);
  const auto to = static_cast<std::uint64_t>(population);
  c.solved = population;
  // Inner-loop iterations each station actually executed: the residence
  // and the marginal-update loop both run n steps per newly solved n, so
  // 2 * sum_{n=from+1}^{to} n.
  return to * (to + 1) - from * (from + 1);
}

MvaResult ClosedNetwork::solve(int population) const {
  if (population < 0) {
    throw std::invalid_argument("ClosedNetwork::solve: negative population");
  }
  if (stations_.empty() && think_time_ <= 0.0) {
    throw std::invalid_argument(
        "ClosedNetwork::solve: empty network with zero think time");
  }

  // The MVA recursion is the analytic model's inner loop; count solves and
  // *executed* recursion steps (a resumed or fully cached solve reruns
  // nothing) so perf work can cross-check the profiler against real work.
  const obs::ProfileScope profile("mva.solve");
  obs::Registry& reg = obs::registry_or_default(registry_);
  reg.counter("queueing.mva.solves").add(1);

  const std::size_t num_s = stations_.size();
  MvaResult result;
  result.population = population;
  result.think_time = think_time_;
  result.stations.resize(num_s);
  for (std::size_t s = 0; s < num_s; ++s) {
    result.stations[s].name = stations_[s].name;
  }

  if (population > 0) {
    if (population > cache_.solved) {
      const std::uint64_t per_station = extend(population);
      reg.counter("queueing.mva.recursion_steps")
          .add(per_station * static_cast<std::uint64_t>(num_s));
      for (std::size_t s = 0; s < num_s; ++s) {
        reg.counter("queueing.mva.station_steps." + stations_[s].name)
            .add(per_station);
      }
    } else {
      reg.counter("queueing.mva.cache_hits").add(1);
    }
    const std::size_t at = static_cast<std::size_t>(population) - 1;
    result.throughput = cache_.throughput[at];
    result.response_time = cache_.response[at];
    const std::size_t base = at * num_s;
    for (std::size_t s = 0; s < num_s; ++s) {
      StationResult& sr = result.stations[s];
      sr.residence_time = cache_.residence[base + s];
      sr.queue_length = result.throughput * sr.residence_time;
      sr.utilization = 1.0 - cache_.marginal0[base + s];
    }
  }
  // Population 0 keeps the zero-initialized result: an empty system has
  // zero throughput, zero response time, and idle stations. It flows
  // through the same audit below instead of skipping it.
  if constexpr (util::kAuditEnabled) {
    RAC_AUDIT(std::isfinite(result.throughput) && result.throughput >= 0.0,
              "MVA solve: non-finite or negative throughput");
    RAC_AUDIT(std::isfinite(result.response_time) &&
                  result.response_time >= 0.0,
              "MVA solve: non-finite or negative response time");
    for (const auto& sr : result.stations) {
      RAC_AUDIT(std::isfinite(sr.queue_length) && sr.queue_length >= 0.0,
                "MVA solve: negative station queue length");
      RAC_AUDIT(sr.utilization >= 0.0 && sr.utilization <= 1.0 + 1e-9,
                "MVA solve: utilization outside [0, 1]");
    }
  }
  return result;
}

std::vector<double> ClosedNetwork::throughput_curve(int max_population) const {
  if (max_population < 1) {
    throw std::invalid_argument("throughput_curve: population must be >= 1");
  }
  if (stations_.empty()) {
    throw std::invalid_argument("throughput_curve: no stations");
  }
  const obs::ProfileScope profile("mva.throughput_curve");
  obs::Registry& reg = obs::registry_or_default(registry_);
  reg.counter("queueing.mva.throughput_curves").add(1);
  const std::size_t num_s = stations_.size();
  if (max_population > cache_.solved) {
    const std::uint64_t per_station = extend(max_population);
    reg.counter("queueing.mva.recursion_steps")
        .add(per_station * static_cast<std::uint64_t>(num_s));
    for (std::size_t s = 0; s < num_s; ++s) {
      reg.counter("queueing.mva.station_steps." + stations_[s].name)
          .add(per_station);
    }
  } else {
    reg.counter("queueing.mva.cache_hits").add(1);
  }
  std::vector<double> curve(
      cache_.throughput.begin(),
      cache_.throughput.begin() + static_cast<std::size_t>(max_population));
  if constexpr (util::kAuditEnabled) {
    // X(n) is non-decreasing in n only when every station's service rate
    // is non-decreasing in its local population. The web-system model
    // deliberately violates that (per-job demand inflation at high
    // admitted concurrency models thrashing, so mu(j) drops and X(n) may
    // genuinely decline past saturation) -- audit monotonicity only for
    // networks where it is a theorem. Allow a sliver of float slack so
    // the audit flags model bugs, not roundoff.
    const bool monotone_rates = std::all_of(
        stations_.begin(), stations_.end(), [](const Station& s) {
          return std::is_sorted(s.rates.begin(), s.rates.end());
        });
    if (monotone_rates) {
      for (std::size_t i = 1; i < curve.size(); ++i) {
        RAC_AUDIT(
            curve[i] + 1e-9 * std::max(1.0, curve[i - 1]) >= curve[i - 1],
            "MVA throughput_curve: throughput decreased with population");
      }
    }
    for (double x : curve) {
      RAC_AUDIT(std::isfinite(x) && x >= 0.0,
                "MVA throughput_curve: non-finite or negative throughput");
    }
  }
  return curve;
}

}  // namespace rac::queueing
