#include "queueing/mva.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/contracts.hpp"

namespace rac::queueing {

Station make_queueing_station(std::string name, double service_rate,
                              double visit_ratio) {
  if (service_rate <= 0.0) {
    throw std::invalid_argument("make_queueing_station: rate must be > 0");
  }
  return Station{std::move(name), visit_ratio, {service_rate}};
}

Station make_multiserver_station(std::string name, int servers,
                                 double per_server_rate, int max_population,
                                 double visit_ratio) {
  if (servers < 1 || per_server_rate <= 0.0 || max_population < 1) {
    throw std::invalid_argument("make_multiserver_station: bad arguments");
  }
  std::vector<double> rates;
  const int table = std::min(servers, max_population);
  rates.reserve(static_cast<std::size_t>(table));
  for (int j = 1; j <= table; ++j) rates.push_back(j * per_server_rate);
  return Station{std::move(name), visit_ratio, std::move(rates)};
}

ClosedNetwork::ClosedNetwork(double think_time) : think_time_(think_time) {
  if (think_time < 0.0) {
    throw std::invalid_argument("ClosedNetwork: negative think time");
  }
}

void ClosedNetwork::set_think_time(double think_time) {
  if (think_time < 0.0) {
    throw std::invalid_argument("ClosedNetwork: negative think time");
  }
  think_time_ = think_time;
}

std::size_t ClosedNetwork::add_station(Station station) {
  if (station.rates.empty()) {
    throw std::invalid_argument("ClosedNetwork: station has no rates");
  }
  for (double r : station.rates) {
    if (r <= 0.0) {
      throw std::invalid_argument("ClosedNetwork: non-positive service rate");
    }
  }
  if (station.visit_ratio <= 0.0) {
    throw std::invalid_argument("ClosedNetwork: non-positive visit ratio");
  }
  stations_.push_back(std::move(station));
  return stations_.size() - 1;
}

MvaResult ClosedNetwork::solve(int population) const {
  if (population < 0) {
    throw std::invalid_argument("ClosedNetwork::solve: negative population");
  }
  if (stations_.empty() && think_time_ <= 0.0) {
    throw std::invalid_argument(
        "ClosedNetwork::solve: empty network with zero think time");
  }

  // The MVA recursion is the analytic model's inner loop; count solves and
  // population-recursion steps so perf work can show where the time goes.
  // One registry lookup per solve (the recursion itself is O(N^2 * S)).
  const obs::ProfileScope profile("mva.solve");
  obs::Registry& reg = obs::registry_or_default(registry_);
  reg.counter("queueing.mva.solves").add(1);
  reg.counter("queueing.mva.recursion_steps")
      .add(static_cast<std::uint64_t>(population));

  const std::size_t num_s = stations_.size();
  MvaResult result;
  result.population = population;
  result.think_time = think_time_;
  result.stations.resize(num_s);
  for (std::size_t s = 0; s < num_s; ++s) {
    result.stations[s].name = stations_[s].name;
  }
  if (population == 0) return result;

  auto rate_at = [&](std::size_t s, int j) -> double {
    const auto& rates = stations_[s].rates;
    const auto idx =
        std::min<std::size_t>(static_cast<std::size_t>(j) - 1, rates.size() - 1);
    return rates[idx];
  };

  // marginal[s][j] = P(j jobs at station s | population n), updated per n.
  std::vector<std::vector<double>> marginal(
      num_s, std::vector<double>(static_cast<std::size_t>(population) + 1, 0.0));
  for (auto& m : marginal) m[0] = 1.0;

  std::vector<double> residence(num_s, 0.0);
  double throughput = 0.0;
  double response = 0.0;

  for (int n = 1; n <= population; ++n) {
    response = 0.0;
    for (std::size_t s = 0; s < num_s; ++s) {
      double r = 0.0;
      for (int j = 1; j <= n; ++j) {
        r += static_cast<double>(j) / rate_at(s, j) *
             marginal[s][static_cast<std::size_t>(j - 1)];
      }
      residence[s] = stations_[s].visit_ratio * r;
      response += residence[s];
    }
    throughput = static_cast<double>(n) / (think_time_ + response);

    // Update marginal probabilities for population n (in place, from high j
    // to low so that marginal[s][j-1] still refers to population n-1).
    for (std::size_t s = 0; s < num_s; ++s) {
      double tail = 0.0;
      for (int j = n; j >= 1; --j) {
        const double p = throughput * stations_[s].visit_ratio / rate_at(s, j) *
                         marginal[s][static_cast<std::size_t>(j - 1)];
        marginal[s][static_cast<std::size_t>(j)] = p;
        tail += p;
      }
      marginal[s][0] = std::max(0.0, 1.0 - tail);
    }
  }

  result.throughput = throughput;
  result.response_time = response;
  for (std::size_t s = 0; s < num_s; ++s) {
    auto& sr = result.stations[s];
    sr.residence_time = residence[s];
    sr.queue_length = throughput * residence[s];
    sr.utilization = 1.0 - marginal[s][0];
  }
  if constexpr (util::kAuditEnabled) {
    RAC_AUDIT(std::isfinite(result.throughput) && result.throughput >= 0.0,
              "MVA solve: non-finite or negative throughput");
    RAC_AUDIT(std::isfinite(result.response_time) &&
                  result.response_time >= 0.0,
              "MVA solve: non-finite or negative response time");
    for (const auto& sr : result.stations) {
      RAC_AUDIT(std::isfinite(sr.queue_length) && sr.queue_length >= 0.0,
                "MVA solve: negative station queue length");
      RAC_AUDIT(sr.utilization >= 0.0 && sr.utilization <= 1.0 + 1e-9,
                "MVA solve: utilization outside [0, 1]");
    }
  }
  return result;
}

std::vector<double> ClosedNetwork::throughput_curve(int max_population) const {
  if (max_population < 1) {
    throw std::invalid_argument("throughput_curve: population must be >= 1");
  }
  if (stations_.empty()) {
    throw std::invalid_argument("throughput_curve: no stations");
  }
  const obs::ProfileScope profile("mva.throughput_curve");
  obs::Registry& reg = obs::registry_or_default(registry_);
  reg.counter("queueing.mva.throughput_curves").add(1);
  reg.counter("queueing.mva.recursion_steps")
      .add(static_cast<std::uint64_t>(max_population));
  const std::size_t num_s = stations_.size();
  auto rate_at = [&](std::size_t s, int j) -> double {
    const auto& rates = stations_[s].rates;
    const auto idx =
        std::min<std::size_t>(static_cast<std::size_t>(j) - 1, rates.size() - 1);
    return rates[idx];
  };

  std::vector<std::vector<double>> marginal(
      num_s,
      std::vector<double>(static_cast<std::size_t>(max_population) + 1, 0.0));
  for (auto& m : marginal) m[0] = 1.0;

  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(max_population));
  for (int n = 1; n <= max_population; ++n) {
    double response = 0.0;
    for (std::size_t s = 0; s < num_s; ++s) {
      double r = 0.0;
      for (int j = 1; j <= n; ++j) {
        r += static_cast<double>(j) / rate_at(s, j) *
             marginal[s][static_cast<std::size_t>(j - 1)];
      }
      response += stations_[s].visit_ratio * r;
    }
    const double throughput = static_cast<double>(n) / (think_time_ + response);
    curve.push_back(throughput);
    for (std::size_t s = 0; s < num_s; ++s) {
      double tail = 0.0;
      for (int j = n; j >= 1; --j) {
        const double p = throughput * stations_[s].visit_ratio / rate_at(s, j) *
                         marginal[s][static_cast<std::size_t>(j - 1)];
        marginal[s][static_cast<std::size_t>(j)] = p;
        tail += p;
      }
      marginal[s][0] = std::max(0.0, 1.0 - tail);
    }
  }
  if constexpr (util::kAuditEnabled) {
    // X(n) is non-decreasing in n only when every station's service rate
    // is non-decreasing in its local population. The web-system model
    // deliberately violates that (per-job demand inflation at high
    // admitted concurrency models thrashing, so mu(j) drops and X(n) may
    // genuinely decline past saturation) -- audit monotonicity only for
    // networks where it is a theorem. Allow a sliver of float slack so
    // the audit flags model bugs, not roundoff.
    const bool monotone_rates = std::all_of(
        stations_.begin(), stations_.end(), [](const Station& s) {
          return std::is_sorted(s.rates.begin(), s.rates.end());
        });
    if (monotone_rates) {
      for (std::size_t i = 1; i < curve.size(); ++i) {
        RAC_AUDIT(
            curve[i] + 1e-9 * std::max(1.0, curve[i - 1]) >= curve[i - 1],
            "MVA throughput_curve: throughput decreased with population");
      }
    }
    for (double x : curve) {
      RAC_AUDIT(std::isfinite(x) && x >= 0.0,
                "MVA throughput_curve: non-finite or negative throughput");
    }
  }
  return curve;
}

}  // namespace rac::queueing
