// Analytic performance model of the simulated three-tier testbed.
//
// Solves the closed interactive network with exact MVA (src/queueing) over
// two load-dependent stations -- the web VM and the app+db VM -- whose
// rate tables encode the Table-1 parameters' mechanisms, using the same
// SystemParams constants as the discrete-event simulator:
//
//   * MaxClients caps the concurrency the web station can serve; idle
//     keep-alive connections occupy part of that cap (they hold worker
//     processes), so the effective active cap is MaxClients minus the
//     expected number of parked connections.
//   * KeepAlive timeout trades the connection-setup demand saved by reuse
//     against the worker-slots parked on idle connections.
//   * Spare-server bounds trade fork-wait latency (too few spares) against
//     worker memory and pool churn (too many / inverted bounds).
//   * MaxThreads caps the app+db station's served concurrency; threads
//     consume app-VM memory.
//   * Session timeout trades session-rebuild database work against session
//     memory; both act on the database through its buffer pool.
//   * The database buffer pool is the app VM's leftover memory; a working
//     set larger than the pool inflates every database demand, and
//     concurrent writers add lock contention.
//
// A short fixed-point iteration couples throughput-dependent quantities
// (parked connections, pool sizes, live sessions, writer concurrency) with
// the MVA solution. Measurement noise is multiplicative lognormal.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "env/environment.hpp"
#include "queueing/mva.hpp"
#include "tiersim/system_params.hpp"
#include "util/rng.hpp"
#include "workload/dynamic.hpp"

namespace rac::obs {
class Registry;
}

namespace rac::env {

struct AnalyticEnvOptions {
  int num_clients = 400;
  /// Lognormal sigma of measurement noise; 0 disables noise.
  double noise_sigma = 0.10;
  /// Mechanism constants shared with the DES.
  tiersim::SystemParams system{};
  std::uint64_t seed = 42;
  /// Coupling fixed-point iterations (converges in a handful).
  int fixed_point_iterations = 6;
  /// Fraction of the interval affected by bursts.
  double burst_prob = 0.30;
  /// Metrics destination; nullptr means the process-wide default registry.
  obs::Registry* registry = nullptr;
};

/// Model internals exposed for tests, calibration, and the experiment
/// harnesses' commentary columns.
struct ModelDiagnostics {
  double throughput_rps = 0.0;
  double response_s = 0.0;
  double held_connections = 0.0;   // workers parked on keep-alive
  double active_need = 0.0;        // X * R: in-flight requests
  double effective_web_cap = 0.0;  // MaxClients - held
  double connection_reuse = 0.0;   // probability a request reuses its conn
  double live_sessions = 0.0;
  double db_buffer_mb = 0.0;
  double db_miss_mult = 1.0;
  double write_lock_mult = 1.0;
  double web_workers = 0.0;        // expected worker-pool size
  double app_threads = 0.0;        // expected thread-pool size
  double web_demand_ms = 0.0;      // effective per-request web demand
  double appdb_demand_ms = 0.0;    // effective per-request app+db demand
  double fork_wait_ms = 0.0;       // expected fork-latency penalty
  double burst_penalty_ms = 0.0;   // expected burst-overload penalty
  double app_swap_factor = 1.0;
  double web_swap_factor = 1.0;
};

class AnalyticEnv : public Environment {
 public:
  explicit AnalyticEnv(const SystemContext& context,
                       const AnalyticEnvOptions& options = {});

  PerfSample measure(const config::Configuration& configuration) override;
  void set_context(const SystemContext& context) override { ctx_ = context; }
  SystemContext context() const override { return ctx_; }

  /// The model is pure apart from its noise Rng and reusable MVA scratch
  /// networks, so independent clones are safe to measure concurrently (one
  /// clone per pool task -- which is how the pool already shards work).
  bool thread_safe() const override { return true; }
  std::unique_ptr<Environment> clone_with_seed(
      std::uint64_t seed) const override;

  /// Deterministic model evaluation (no measurement noise, no traffic
  /// target -- the scheduled context's static mix at the configured
  /// population).
  PerfSample evaluate(const config::Configuration& configuration,
                      ModelDiagnostics* diagnostics = nullptr) const;

  /// Deterministic model evaluation under a traffic target: the blended
  /// mix statistics and browser profile, the scaled population, and the
  /// think modulation. A one-hot target with unit scales is bitwise
  /// identical to evaluate(). Benches use this as the noiseless oracle
  /// when scoring static configurations through a dynamic day.
  PerfSample evaluate_under(const config::Configuration& configuration,
                            const workload::TrafficTarget& target,
                            ModelDiagnostics* diagnostics = nullptr) const;

  // -- dynamic traffic (workload/dynamic.hpp) -----------------------------
  // measure() consumes model targets per interval and advances the
  // cursor; measure_under replaces one interval's target (the fault
  // layer's surge promotion rides on it). The model pointer is shared
  // const state and clones carry it along with the cursor.
  PerfSample measure_under(const workload::TrafficTarget& overlay,
                           const config::Configuration& configuration) override;
  void set_traffic_model(
      std::shared_ptr<const workload::TrafficModel> model) override;
  std::shared_ptr<const workload::TrafficModel> traffic_model()
      const override {
    return traffic_;
  }
  std::uint64_t traffic_interval() const override {
    return traffic_interval_;
  }
  void seek_traffic(std::uint64_t interval) override {
    traffic_interval_ = interval;
  }

  const AnalyticEnvOptions& options() const noexcept { return opt_; }

  /// The measurement-noise Rng is the env's only mutable state; exposing
  /// it lets a fleet checkpoint capture a live environment exactly and
  /// resume measure() streams bit-identically.
  util::RngState noise_state() const noexcept { return rng_.state(); }
  void restore_noise_state(const util::RngState& state) { rng_.restore(state); }

 private:
  SystemContext ctx_;
  AnalyticEnvOptions opt_;
  util::Rng rng_;
  std::shared_ptr<const workload::TrafficModel> traffic_;
  std::uint64_t traffic_interval_ = 0;
  /// Transient per-measurement override (measure_under); never outlives
  /// the call that set it.
  std::optional<workload::TrafficTarget> overlay_;

  PerfSample evaluate_target(const config::Configuration& configuration,
                             const workload::TrafficTarget* target,
                             ModelDiagnostics* diagnostics) const;
  // Persistent MVA networks for the fixed-point loop: stations are added
  // once and each iteration swaps in fresh rate tables via
  // set_station_rates, reusing the networks' internal table storage
  // instead of rebuilding three networks per iteration. Mutable because
  // evaluate() is const (the model result does not depend on this state).
  mutable queueing::ClosedNetwork subnet_{0.0};
  mutable queueing::ClosedNetwork outer_{0.0};
};

}  // namespace rac::env
