#include "env/analytic_env.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "queueing/mva.hpp"
#include "workload/tpcw.hpp"

namespace rac::env {

namespace {

using config::Configuration;
using config::ParamId;

constexpr double kMs = 1000.0;

/// Think-gap distribution: exp(t) with probability (1-p), exp(t)+exp(b)
/// with probability p (the mid-session pause model of BrowserProfile).
struct GapDist {
  double t;  // base think mean
  double p;  // pause probability
  double b;  // pause mean

  /// P(gap > x).
  double tail(double x) const {
    const double base = std::exp(-x / t);
    // Tail of exp(t)+exp(b): (b e^{-x/b} - t e^{-x/t}) / (b - t).
    const double sum_tail =
        (b * std::exp(-x / b) - t * std::exp(-x / t)) / (b - t);
    return (1.0 - p) * base + p * sum_tail;
  }

  /// E[min(gap, x)] = integral of the tail from 0 to x.
  double mean_min(double x) const {
    const double base = t * (1.0 - std::exp(-x / t));
    // Integral of the two-exponential-sum tail from 0 to x.
    const double sum_part =
        (b * b * (1.0 - std::exp(-x / b)) - t * t * (1.0 - std::exp(-x / t))) /
        (b - t);
    return (1.0 - p) * base + p * sum_part;
  }
};

double swap_factor(const tiersim::SystemParams& P, double used_mb,
                   double total_mb) {
  const double over = std::max(0.0, used_mb - total_mb) / total_mb;
  return 1.0 + P.swap_slowdown_coeff * over * over;
}

}  // namespace

AnalyticEnv::AnalyticEnv(const SystemContext& context,
                         const AnalyticEnvOptions& options)
    : ctx_(context), opt_(options), rng_(options.seed) {
  // Station structure is fixed for the life of the model; evaluate() swaps
  // rate tables in place each fixed-point iteration. The placeholder rate
  // tables are never solved against.
  subnet_.set_registry(opt_.registry);
  outer_.set_registry(opt_.registry);
  subnet_.add_station(queueing::Station{"web-vm", 1.0, {1.0}});
  subnet_.add_station(queueing::Station{"appdb-vm", 1.0, {1.0}});
  outer_.add_station(queueing::Station{"website", 1.0, {1.0}});
}

std::unique_ptr<Environment> AnalyticEnv::clone_with_seed(
    std::uint64_t seed) const {
  AnalyticEnvOptions options = opt_;
  // Mix in this environment's own seed so two base environments that get
  // the same task seed still draw distinct noise.
  options.seed = util::derive_seed(opt_.seed, seed);
  auto clone = std::make_unique<AnalyticEnv>(ctx_, options);
  // The model is immutable shared state and the cursor is part of the
  // trajectory: a clone measuring interval k must see the same target the
  // original would have.
  clone->traffic_ = traffic_;
  clone->traffic_interval_ = traffic_interval_;
  return clone;
}

PerfSample AnalyticEnv::measure(const Configuration& configuration) {
  // Resolved per call against the injected registry; function-local
  // statics here would pin the counters to the first caller's registry.
  obs::Registry& reg = obs::registry_or_default(opt_.registry);
  reg.counter("env.analytic.measurements").add(1);

  // Resolve this interval's traffic target: a measure_under overlay wins,
  // else the installed model's emission at the cursor. The cursor counts
  // model-driven measurements (overlays replace the target for their
  // interval but still consume it).
  std::optional<workload::TrafficTarget> target = overlay_;
  const bool modeled = traffic_ != nullptr && !traffic_->empty();
  if (!target.has_value() && modeled) {
    target = traffic_->target_at(
        static_cast<std::int64_t>(traffic_interval_), ctx_.mix);
  }
  if (traffic_ != nullptr) ++traffic_interval_;
  if (target.has_value()) {
    reg.counter("core.traffic.intervals").add(1);
    if (overlay_.has_value()) reg.counter("core.traffic.overlays").add(1);
    reg.gauge("core.traffic.concurrency_scale")
        .set(target->concurrency_scale);
    reg.gauge("core.traffic.think_scale").set(target->think_scale);
  }

  PerfSample sample = evaluate_target(
      configuration, target.has_value() ? &*target : nullptr, nullptr);
  if (opt_.noise_sigma > 0.0) {
    sample.response_ms *= rng_.lognormal_unit(opt_.noise_sigma);
    sample.throughput_rps *= rng_.lognormal_unit(opt_.noise_sigma * 0.5);
    reg.counter("env.analytic.noise_draws").add(2);
  }
  return sample;
}

PerfSample AnalyticEnv::measure_under(const workload::TrafficTarget& overlay,
                                      const Configuration& configuration) {
  overlay_ = overlay;
  PerfSample sample;
  try {
    sample = measure(configuration);
  } catch (...) {
    overlay_.reset();
    throw;
  }
  overlay_.reset();
  return sample;
}

void AnalyticEnv::set_traffic_model(
    std::shared_ptr<const workload::TrafficModel> model) {
  traffic_ = std::move(model);
  traffic_interval_ = 0;
}

PerfSample AnalyticEnv::evaluate(const Configuration& cfg,
                                 ModelDiagnostics* diagnostics) const {
  return evaluate_target(cfg, nullptr, diagnostics);
}

PerfSample AnalyticEnv::evaluate_under(const Configuration& cfg,
                                       const workload::TrafficTarget& target,
                                       ModelDiagnostics* diagnostics) const {
  return evaluate_target(cfg, &target, diagnostics);
}

PerfSample AnalyticEnv::evaluate_target(
    const Configuration& cfg, const workload::TrafficTarget* target,
    ModelDiagnostics* diagnostics) const {
  obs::Registry& reg = obs::registry_or_default(opt_.registry);
  reg.counter("env.analytic.evaluations").add(1);
  obs::Histogram& h_evaluate =
      reg.histogram("env.analytic.evaluate_us", obs::latency_us_bounds());
  const obs::ScopedTimer eval_timer(&h_evaluate);
  const tiersim::SystemParams& P = opt_.system;
  // With a traffic target: the blended workload at the scaled population.
  // A one-hot blend with unit scales reproduces the plain path bitwise
  // (0 * x accumulates as +0.0 and the division is by exactly 1.0), so a
  // model-free environment's digests are untouched by this layer.
  const workload::MixStats stats =
      target != nullptr ? workload::blend_mix_stats(target->mix_weights)
                        : workload::mix_stats(ctx_.mix);
  const workload::BrowserProfile profile =
      target != nullptr
          ? workload::blend_browser_profile(target->mix_weights,
                                            target->think_scale)
          : workload::browser_profile(ctx_.mix);
  const tiersim::VmSpec web_vm = web_vm_spec();
  const tiersim::VmSpec app_vm = vm_spec(ctx_.level);
  const int N =
      target != nullptr
          ? std::max(1, static_cast<int>(std::lround(
                            static_cast<double>(opt_.num_clients) *
                            target->concurrency_scale)))
          : opt_.num_clients;
  const double Z = profile.effective_think_mean_s();
  const double L = profile.session_length_mean;

  const GapDist gap{profile.think_time_mean_s, profile.pause_prob,
                    profile.pause_mean_s};

  // --- configuration-derived constants -----------------------------------
  const int max_clients = cfg.value(ParamId::kMaxClients);
  const int max_threads = cfg.value(ParamId::kMaxThreads);
  const double ka = static_cast<double>(cfg.value(ParamId::kKeepAliveTimeout));
  const double ts_s = 60.0 * static_cast<double>(cfg.value(ParamId::kSessionTimeout));
  const double min_spare_w = cfg.value(ParamId::kMinSpareServers);
  const double max_spare_w = cfg.value(ParamId::kMaxSpareServers);
  const double min_spare_t = cfg.value(ParamId::kMinSpareThreads);
  const double max_spare_t = cfg.value(ParamId::kMaxSpareThreads);

  // Keep-alive: only continuing (non-first-of-session) requests can find a
  // parked connection, and only when the think gap fits in the timeout.
  const double f_cont = (L - 1.0) / L;
  const double p_reuse = f_cont * (1.0 - gap.tail(ka));
  const double hold_s = f_cont * gap.mean_min(ka);

  // Sessions: a server-side session lives from first use until timeout
  // after its last use (Little's law on session objects). The container
  // bounds retained sessions (an LRU overflow store), so lingering expired
  // sessions cannot grow past twice the browser population.
  const double session_cycle_s = L * Z + profile.inter_session_gap_s;
  const double live_sessions =
      static_cast<double>(N) * std::min(2.0, (L * Z + ts_s) / session_cycle_s);
  // Session-database work: every first-of-session request builds a session,
  // and a mid-session gap longer than the timeout forces a rebuild.
  const double p_rebuild_mid = stats.session_fraction * f_cont * gap.tail(ts_s);
  const double rebuild_db_ms =
      (stats.session_fraction / L + p_rebuild_mid) * P.session_rebuild_ms;

  // Base demands (before congestion-dependent inflation), in seconds.
  const double d_app_s = stats.app_demand_ms * P.demand_scale_app / kMs;
  const double d_db_base_s =
      (stats.db_demand_ms * P.demand_scale_db + rebuild_db_ms) / kMs;
  const double working_set_mb = P.db_working_set_mb *
                                (stats.db_demand_ms * P.demand_scale_db) /
                                P.db_ws_reference_ms;

  const double spare_mid_w = 0.5 * (min_spare_w + std::max(min_spare_w, max_spare_w));
  const double spare_mid_t = 0.5 * (min_spare_t + std::max(min_spare_t, max_spare_t));

  // --- fixed point: throughput-coupled quantities <-> MVA -----------------
  double X = static_cast<double>(N) / (Z + 0.5);  // throughput guess
  double R = 0.5;                                  // response-time guess
  double r_appdb = 0.3;                            // app+db share of R
  double slot_wait = 0.0;                          // accept-queue wait

  ModelDiagnostics diag;
  for (int iter = 0; iter < opt_.fixed_point_iterations; ++iter) {
    // Parked keep-alive connections. When MaxClients is too small to park
    // the desired connections, the achievable reuse flow is capped by the
    // parked pool's turnover.
    const double held =
        std::min(X * hold_s, 0.9 * static_cast<double>(max_clients));
    const double q =
        hold_s <= 0.0 ? 0.0
                      : std::min(p_reuse, held / std::max(X * hold_s, 1e-9) *
                                              p_reuse);

    // Expected pool sizes (steady state: busy/held plus the spare window).
    const double web_workers =
        std::min(static_cast<double>(max_clients), held + X * R + spare_mid_w);
    const double app_threads = std::min(static_cast<double>(max_threads),
                                        X * r_appdb + spare_mid_t);

    // Memory model.
    const double web_used =
        P.os_base_mem_mb + web_workers * P.web_worker_mem_mb;
    const double web_swap = swap_factor(P, web_used, web_vm.mem_mb);
    const double app_used = P.os_base_mem_mb +
                            app_threads * P.app_thread_mem_mb +
                            live_sessions * P.session_mem_mb;
    const double app_swap = swap_factor(P, app_used, app_vm.mem_mb);
    const double buffer_mb =
        std::max(P.db_min_buffer_mb, app_vm.mem_mb - app_used);
    // Miss inflation is capped: past a point the database is disk-bound and
    // additional pool shrinkage no longer compounds.
    const double miss_mult =
        1.0 + P.db_miss_coeff *
                  std::min(8.0, std::max(0.0, working_set_mb / buffer_mb - 1.0));

    // Database write-lock contention (concurrent writers by Little's law).
    const double d_db_miss_s = d_db_base_s * miss_mult;
    const double writers = X * stats.write_fraction * d_db_miss_s;
    const double lock_mult = 1.0 + P.write_lock_coeff * writers;
    const double d_appdb_s = d_app_s + d_db_miss_s * lock_mult;

    // Pool churn: if the spare window is narrower than the natural
    // fluctuation of the busy count, the web pool forks/kills continuously;
    // the fork CPU lands on the web VM.
    const double fluctuation = std::sqrt(std::max(1.0, held + X * R));
    const double churn_forks_per_s =
        std::max(0.0, fluctuation - (max_spare_w - min_spare_w)) /
        P.maintenance_interval_s * 0.5;
    const double d_web_s =
        (stats.web_demand_ms * P.demand_scale_web +
         (1.0 - q) * P.conn_setup_ms) /
            kMs +
        churn_forks_per_s * (P.fork_cost_ms / kMs) / std::max(X, 1e-6);

    // Inner subnetwork: the two VMs serving an admitted request. A web
    // worker is held for the *whole* request (Apache prefork proxies the
    // app tier synchronously), so MaxClients caps the total in-flight
    // count -- modeled below via flow-equivalent aggregation. The networks
    // persist across iterations and evaluations; only the rate tables are
    // swapped (which resets their recursion caches but keeps the storage).
    {
      std::vector<double> web_rates;
      web_rates.reserve(static_cast<std::size_t>(N));
      for (int j = 1; j <= N; ++j) {
        const double slowdown = (1.0 + P.web_concurrency_ovh * j) * web_swap;
        web_rates.push_back(std::min(j, web_vm.vcpus) /
                            (d_web_s * slowdown));
      }
      subnet_.set_station_rates(0, std::move(web_rates));
    }
    {
      std::vector<double> app_rates;
      app_rates.reserve(static_cast<std::size_t>(N));
      for (int j = 1; j <= N; ++j) {
        const int served = std::min(j, max_threads);  // MaxThreads cap
        const double slowdown =
            (1.0 + P.app_concurrency_ovh * served) * app_swap;
        app_rates.push_back(std::min(served, app_vm.vcpus) /
                            (d_appdb_s * slowdown));
      }
      subnet_.set_station_rates(1, std::move(app_rates));
    }
    std::vector<double> x_sub = subnet_.throughput_curve(N);

    // Outer model: think delay + the flow-equivalent station. The
    // MaxClients admission constraint is handled separately below (slot
    // shortage / burst terms) because keep-alive reuse lets most of the
    // flow bypass the accept queue.
    outer_.set_think_time(Z);
    outer_.set_station_rates(0, std::move(x_sub));
    const auto mva = outer_.solve(N);
    // Slot shortage: by Little's law the browsers occupy X * (hold + R)
    // worker slots (parked plus in-service). If MaxClients provides fewer,
    // new connections wait for the pool to turn over; the wait scales with
    // the shortage ratio times the per-slot holding time. The wait slows
    // the browsers down (it extends their cycle), which is why it is part
    // of the fixed point rather than a post-hoc correction.
    const double need_now =
        mva.throughput * (hold_s + mva.response_time);
    const double shortage =
        std::max(0.0, need_now / static_cast<double>(max_clients) - 1.0);
    slot_wait = 0.5 * (hold_s + mva.response_time) * std::pow(shortage, 1.3);

    // Damped update for stable coupling; the slot wait extends the cycle.
    const double x_target =
        static_cast<double>(N) / (Z + mva.response_time + slot_wait);
    X = 0.5 * X + 0.5 * std::min(mva.throughput, x_target);
    R = 0.5 * R + 0.5 * mva.response_time;
    // App+db share of the response time, for the thread-pool estimate:
    // approximate by the demand ratio at the admitted operating point.
    r_appdb = R * d_appdb_s / (d_appdb_s + d_web_s);

    diag.throughput_rps = X;
    diag.response_s = R;
    diag.held_connections = held;
    diag.active_need = X * R;
    diag.effective_web_cap = std::max(0.0, max_clients - held);
    diag.connection_reuse = q;
    diag.live_sessions = live_sessions;
    diag.db_buffer_mb = buffer_mb;
    diag.db_miss_mult = miss_mult;
    diag.write_lock_mult = lock_mult;
    diag.web_workers = web_workers;
    diag.app_threads = app_threads;
    diag.web_demand_ms = d_web_s * kMs;
    diag.appdb_demand_ms = d_appdb_s * kMs;
    diag.app_swap_factor = app_swap;
    diag.web_swap_factor = web_swap;
  }

  // --- transients ----------------------------------------------------------
  // Fork wait: a request needing a fresh worker may find no idle spare and
  // wait out a fork; deeper spare pools make this exponentially rarer.
  const double sigma = std::sqrt(std::max(1.0, diag.held_connections + X * R));
  const double p_no_idle = std::exp(-min_spare_w / sigma);
  const double fork_wait_s =
      (1.0 - diag.connection_reuse) * p_no_idle * P.fork_latency_s;

  const double need = X * (hold_s + R);
  const double slot_wait_s = slot_wait;

  // Burst overload: pause-returns synchronize and momentarily fill every
  // worker slot MaxClients allows beyond the steady-state need; the burst
  // then drains through the app VM's cores ("the cost of processing time
  // because of the increased level of concurrency"). A tight admission cap
  // bounds the damage.
  const double admit_ceiling = std::min<double>(max_clients, N);
  const double over = std::max(0.0, admit_ceiling - need);
  const double burst_s = opt_.burst_prob * (over / static_cast<double>(N)) *
                         0.5 * over * (diag.appdb_demand_ms / kMs) /
                         static_cast<double>(app_vm.vcpus);

  diag.fork_wait_ms = fork_wait_s * kMs;
  diag.burst_penalty_ms = burst_s * kMs;
  diag.active_need = need;

  PerfSample sample;
  sample.response_ms = (R + fork_wait_s + slot_wait_s + burst_s) * kMs;
  sample.throughput_rps = X;
  if (diagnostics != nullptr) *diagnostics = diag;
  return sample;
}

}  // namespace rac::env
