// Environment backed by the discrete-event ThreeTierSystem.
//
// The system persists across measurement intervals: pools, sessions and
// connections carry over, exactly like the live testbed the paper's agent
// reconfigures in place. A context change reallocates the app VM and/or
// swaps the traffic mix (the latter restarts the browser population, as a
// traffic change at a load balancer would).
#pragma once

#include <cstdint>
#include <memory>

#include "env/environment.hpp"
#include "tiersim/web_system.hpp"

namespace rac::env {

struct SimEnvOptions {
  int num_clients = 400;
  double warmup_s = 60.0;    // settle time after a reconfiguration
  double measure_s = 240.0;  // observation window (paper: 5-minute interval)
  tiersim::SystemParams system{};
  std::uint64_t seed = 42;
  /// Metrics destination (also forwarded to the simulator); nullptr means
  /// the process-wide default registry.
  obs::Registry* registry = nullptr;
};

class SimEnv : public Environment {
 public:
  explicit SimEnv(const SystemContext& context, const SimEnvOptions& options = {});

  PerfSample measure(const config::Configuration& configuration) override;
  void set_context(const SystemContext& context) override;
  SystemContext context() const override { return ctx_; }

  /// Full simulator measurement of the most recent interval.
  const tiersim::Measurement& last_measurement() const noexcept {
    return last_;
  }

 private:
  SystemContext ctx_;
  SimEnvOptions opt_;
  std::uint64_t next_seed_;
  std::unique_ptr<tiersim::ThreeTierSystem> system_;
  tiersim::Measurement last_{};

  void rebuild(const config::Configuration& configuration);
};

}  // namespace rac::env
