// Environment backed by the discrete-event ThreeTierSystem.
//
// The system persists across measurement intervals: pools, sessions and
// connections carry over, exactly like the live testbed the paper's agent
// reconfigures in place. A context change reallocates the app VM and/or
// swaps the traffic mix (the latter restarts the browser population, as a
// traffic change at a load balancer would).
//
// With a traffic model installed (workload/dynamic.hpp), each measure()
// resolves the interval's TrafficTarget and rebuilds the simulator when
// the target changes -- a population change at the load balancer, just
// like a mix switch. An unchanged target (including the one-hot identity
// an empty model emits) keeps the live system, so static traffic is
// bitwise the legacy behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "env/environment.hpp"
#include "tiersim/web_system.hpp"
#include "workload/dynamic.hpp"

namespace rac::env {

struct SimEnvOptions {
  int num_clients = 400;
  double warmup_s = 60.0;    // settle time after a reconfiguration
  double measure_s = 240.0;  // observation window (paper: 5-minute interval)
  tiersim::SystemParams system{};
  std::uint64_t seed = 42;
  /// Metrics destination (also forwarded to the simulator); nullptr means
  /// the process-wide default registry.
  obs::Registry* registry = nullptr;
};

class SimEnv : public Environment {
 public:
  explicit SimEnv(const SystemContext& context, const SimEnvOptions& options = {});

  PerfSample measure(const config::Configuration& configuration) override;
  void set_context(const SystemContext& context) override;
  SystemContext context() const override { return ctx_; }

  // -- dynamic traffic (workload/dynamic.hpp) -----------------------------
  // The base-class measure_under (set_context swap around measure) is kept
  // deliberately: it reproduces the legacy surge rebuild-and-restore seed
  // sequence bit for bit.
  void set_traffic_model(
      std::shared_ptr<const workload::TrafficModel> model) override;
  std::shared_ptr<const workload::TrafficModel> traffic_model()
      const override {
    return traffic_;
  }
  std::uint64_t traffic_interval() const override { return traffic_interval_; }
  void seek_traffic(std::uint64_t interval) override {
    traffic_interval_ = interval;
  }

  /// Full simulator measurement of the most recent interval.
  const tiersim::Measurement& last_measurement() const noexcept {
    return last_;
  }

 private:
  SystemContext ctx_;
  SimEnvOptions opt_;
  std::uint64_t next_seed_;
  std::unique_ptr<tiersim::ThreeTierSystem> system_;
  tiersim::Measurement last_{};
  std::shared_ptr<const workload::TrafficModel> traffic_;
  std::uint64_t traffic_interval_ = 0;
  /// Target the live system_ was built under (nullopt: static legacy
  /// population). measure() rebuilds when the interval's target differs.
  std::optional<workload::TrafficTarget> applied_target_;

  void rebuild(const config::Configuration& configuration);
};

}  // namespace rac::env
