// System contexts: the combination of a TPC-W traffic mix and a VM
// resource level (paper Section 4.3 and Table 2).
//
// The paper defines three resource-provisioning levels for the VM hosting
// the application and database tiers (the web VM stays fixed):
//   Level-1: 4 virtual CPUs, 4 GB memory
//   Level-2: 3 virtual CPUs, 3 GB memory
//   Level-3: 2 virtual CPUs, 2 GB memory
// and six example contexts (Table 2) combining mixes with levels.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "tiersim/system_params.hpp"
#include "workload/tpcw.hpp"

namespace rac::env {

enum class VmLevel : int { kLevel1 = 1, kLevel2 = 2, kLevel3 = 3 };

inline constexpr std::array<VmLevel, 3> kAllLevels = {
    VmLevel::kLevel1, VmLevel::kLevel2, VmLevel::kLevel3};

/// Resources of the app+db VM at a provisioning level.
tiersim::VmSpec vm_spec(VmLevel level) noexcept;

/// The fixed web-tier VM.
tiersim::VmSpec web_vm_spec() noexcept;

std::string level_name(VmLevel level);

struct SystemContext {
  workload::MixType mix = workload::MixType::kShopping;
  VmLevel level = VmLevel::kLevel1;

  bool operator==(const SystemContext&) const noexcept = default;
  std::string name() const;
};

/// Whitespace-free token identifying a context ("shopping/Level-1");
/// identical to SystemContext::name(), usable in line-oriented files.
std::string context_token(const SystemContext& context);

/// Inverse of context_token. Throws std::invalid_argument for a token
/// that names no known mix/level combination.
SystemContext parse_context_token(std::string_view token);

/// Paper Table 2: the six example contexts.
inline constexpr std::array<SystemContext, 6> kTable2Contexts = {{
    {workload::MixType::kShopping, VmLevel::kLevel1},  // Context-1
    {workload::MixType::kOrdering, VmLevel::kLevel1},  // Context-2
    {workload::MixType::kOrdering, VmLevel::kLevel3},  // Context-3
    {workload::MixType::kShopping, VmLevel::kLevel2},  // Context-4
    {workload::MixType::kOrdering, VmLevel::kLevel2},  // Context-5
    {workload::MixType::kBrowsing, VmLevel::kLevel1},  // Context-6
}};

/// Context by its paper number (1-based).
SystemContext table2_context(int number);

}  // namespace rac::env
