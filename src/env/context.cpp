#include "env/context.hpp"

#include <stdexcept>

namespace rac::env {

tiersim::VmSpec vm_spec(VmLevel level) noexcept {
  switch (level) {
    case VmLevel::kLevel1: return {4, 4096.0};
    case VmLevel::kLevel2: return {3, 3072.0};
    case VmLevel::kLevel3: return {2, 2048.0};
  }
  return {4, 4096.0};
}

tiersim::VmSpec web_vm_spec() noexcept { return {2, 2048.0}; }

std::string level_name(VmLevel level) {
  return "Level-" + std::to_string(static_cast<int>(level));
}

std::string SystemContext::name() const {
  return std::string(workload::mix_name(mix)) + "/" + level_name(level);
}

SystemContext table2_context(int number) {
  if (number < 1 || number > static_cast<int>(kTable2Contexts.size())) {
    throw std::out_of_range("table2_context: contexts are numbered 1..6");
  }
  return kTable2Contexts[static_cast<std::size_t>(number - 1)];
}

}  // namespace rac::env
