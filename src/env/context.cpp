#include "env/context.hpp"

#include <stdexcept>

namespace rac::env {

tiersim::VmSpec vm_spec(VmLevel level) noexcept {
  switch (level) {
    case VmLevel::kLevel1: return {4, 4096.0};
    case VmLevel::kLevel2: return {3, 3072.0};
    case VmLevel::kLevel3: return {2, 2048.0};
  }
  return {4, 4096.0};
}

tiersim::VmSpec web_vm_spec() noexcept { return {2, 2048.0}; }

std::string level_name(VmLevel level) {
  return "Level-" + std::to_string(static_cast<int>(level));
}

std::string SystemContext::name() const {
  return std::string(workload::mix_name(mix)) + "/" + level_name(level);
}

std::string context_token(const SystemContext& context) {
  return context.name();
}

SystemContext parse_context_token(std::string_view token) {
  const std::size_t slash = token.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("parse_context_token: missing '/' in '" +
                                std::string(token) + "'");
  }
  SystemContext context;
  context.mix = workload::parse_mix_name(token.substr(0, slash));
  const std::string_view level = token.substr(slash + 1);
  for (VmLevel candidate : kAllLevels) {
    if (level == level_name(candidate)) {
      context.level = candidate;
      return context;
    }
  }
  throw std::invalid_argument("parse_context_token: unknown level '" +
                              std::string(level) + "'");
}

SystemContext table2_context(int number) {
  if (number < 1 || number > static_cast<int>(kTable2Contexts.size())) {
    throw std::out_of_range("table2_context: contexts are numbered 1..6");
  }
  return kTable2Contexts[static_cast<std::size_t>(number - 1)];
}

}  // namespace rac::env
