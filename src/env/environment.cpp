// Default traffic-hook implementations for environments that predate (or
// opt out of) the dynamic-traffic layer.
#include "env/environment.hpp"

#include <stdexcept>

#include "workload/dynamic.hpp"

namespace rac::env {

PerfSample Environment::measure_under(const workload::TrafficTarget& overlay,
                                      const config::Configuration& configuration) {
  // Legacy degradation: a transient overlay collapses to its dominant mix,
  // measured under a context swap -- bit-for-bit the surge-fault dance
  // this hook replaced (set_context is a no-op when the mix already
  // matches, and the scheduled context is restored unconditionally).
  const SystemContext scheduled = context();
  SystemContext transient = scheduled;
  transient.mix = workload::dominant_mix(overlay);
  set_context(transient);
  const PerfSample sample = measure(configuration);
  set_context(scheduled);
  return sample;
}

void Environment::set_traffic_model(
    std::shared_ptr<const workload::TrafficModel> model) {
  if (model != nullptr) {
    throw std::invalid_argument(
        "Environment::set_traffic_model: this environment does not support "
        "dynamic traffic models");
  }
}

void Environment::seek_traffic(std::uint64_t interval) {
  if (interval != 0) {
    throw std::invalid_argument(
        "Environment::seek_traffic: this environment has no traffic cursor");
  }
}

}  // namespace rac::env
