// The environment abstraction the RAC agent interacts with.
//
// The agent is non-intrusive: all it can do is push a configuration and
// observe application-level performance (response time / throughput) over
// a measurement interval -- exactly the interface of the paper's
// performance monitor + configuration controller. Two implementations:
//
//   * AnalyticEnv -- a fast queueing-model twin (exact MVA over the same
//     mechanism constants as the simulator); used for the long RL
//     experiment sweeps.
//   * SimEnv -- the discrete-event ThreeTierSystem; the ground-truth
//     substrate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "env/context.hpp"

namespace rac::workload {
class TrafficModel;
struct TrafficTarget;
}  // namespace rac::workload

namespace rac::env {

/// One measurement interval's application-level observation.
struct PerfSample {
  double response_ms = 0.0;    // mean end-to-end response time
  double throughput_rps = 0.0; // completed requests per second
};

class Environment {
 public:
  virtual ~Environment() = default;

  /// Apply `configuration` and measure one interval.
  virtual PerfSample measure(const config::Configuration& configuration) = 0;

  /// Fallible variant of measure(): returns std::nullopt when the
  /// measurement interval was lost (monitor timeout, dropped sample).
  /// The default adapter never fails; fault-injecting decorators override
  /// this, and the runner's retry wrapper consumes it.
  virtual std::optional<PerfSample> try_measure(
      const config::Configuration& configuration) {
    return measure(configuration);
  }

  /// Human-readable note describing any fault injected into the most
  /// recent measurement ("" when the interval was clean). Decorators
  /// override this so the runner can surface faults in decision traces
  /// without depending on the fault layer.
  virtual std::string last_fault_note() const { return {}; }

  /// Measure one interval under a transient traffic overlay (the dynamic
  /// workload the agent must ride out -- it is NOT told). The overlay
  /// replaces whatever the installed traffic model would have emitted for
  /// this interval; the scheduled context is untouched afterwards. The
  /// default degrades gracefully for environments without blend support:
  /// it measures under the overlay's dominant mix via a set_context swap
  /// (exactly the legacy surge-fault semantics).
  virtual PerfSample measure_under(const workload::TrafficTarget& overlay,
                                   const config::Configuration& configuration);

  /// Install (or clear, with nullptr) a dynamic traffic model: from then
  /// on each measured interval runs under model->target_at(cursor, mix)
  /// and the cursor advances per measurement. Installing resets the cursor
  /// to 0. The default implementation accepts only nullptr and throws
  /// std::invalid_argument otherwise (the environment cannot honor a
  /// model it would silently ignore).
  virtual void set_traffic_model(
      std::shared_ptr<const workload::TrafficModel> model);

  virtual std::shared_ptr<const workload::TrafficModel> traffic_model() const {
    return nullptr;
  }

  /// The traffic cursor: how many intervals this environment has measured
  /// against its model. Checkpoints persist it (rac-checkpoint v2 /
  /// rac-fleet-checkpoint v2) so a restored run resumes mid-day rather
  /// than at dawn. Note it counts *measurements*, not loop iterations --
  /// the runner's robustness retries each advance it.
  virtual std::uint64_t traffic_interval() const { return 0; }

  /// Reposition the traffic cursor (restore path). The default throws
  /// std::invalid_argument for a nonzero target.
  virtual void seek_traffic(std::uint64_t interval);

  /// Reallocate workload mix and/or VM resources (the external dynamics the
  /// agent must adapt to -- it is NOT told about this call).
  virtual void set_context(const SystemContext& context) = 0;

  virtual SystemContext context() const = 0;

  /// Reentrancy contract for the worker pool: true when `clone_with_seed`
  /// returns independent copies that may be measured concurrently from
  /// multiple threads. The fast model-based environments opt in; the
  /// discrete-event simulator (heavyweight mutable state) does not.
  virtual bool thread_safe() const { return false; }

  /// Independent copy of this environment (same context and mechanism
  /// constants) whose measurement-noise stream is reseeded from `seed`.
  /// Implementations advertising thread_safe() must return non-null;
  /// the default returns nullptr (cloning unsupported).
  virtual std::unique_ptr<Environment> clone_with_seed(
      std::uint64_t /*seed*/) const {
    return nullptr;
  }
};

}  // namespace rac::env
