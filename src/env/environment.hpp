// The environment abstraction the RAC agent interacts with.
//
// The agent is non-intrusive: all it can do is push a configuration and
// observe application-level performance (response time / throughput) over
// a measurement interval -- exactly the interface of the paper's
// performance monitor + configuration controller. Two implementations:
//
//   * AnalyticEnv -- a fast queueing-model twin (exact MVA over the same
//     mechanism constants as the simulator); used for the long RL
//     experiment sweeps.
//   * SimEnv -- the discrete-event ThreeTierSystem; the ground-truth
//     substrate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "env/context.hpp"

namespace rac::env {

/// One measurement interval's application-level observation.
struct PerfSample {
  double response_ms = 0.0;    // mean end-to-end response time
  double throughput_rps = 0.0; // completed requests per second
};

class Environment {
 public:
  virtual ~Environment() = default;

  /// Apply `configuration` and measure one interval.
  virtual PerfSample measure(const config::Configuration& configuration) = 0;

  /// Fallible variant of measure(): returns std::nullopt when the
  /// measurement interval was lost (monitor timeout, dropped sample).
  /// The default adapter never fails; fault-injecting decorators override
  /// this, and the runner's retry wrapper consumes it.
  virtual std::optional<PerfSample> try_measure(
      const config::Configuration& configuration) {
    return measure(configuration);
  }

  /// Human-readable note describing any fault injected into the most
  /// recent measurement ("" when the interval was clean). Decorators
  /// override this so the runner can surface faults in decision traces
  /// without depending on the fault layer.
  virtual std::string last_fault_note() const { return {}; }

  /// Reallocate workload mix and/or VM resources (the external dynamics the
  /// agent must adapt to -- it is NOT told about this call).
  virtual void set_context(const SystemContext& context) = 0;

  virtual SystemContext context() const = 0;

  /// Reentrancy contract for the worker pool: true when `clone_with_seed`
  /// returns independent copies that may be measured concurrently from
  /// multiple threads. The fast model-based environments opt in; the
  /// discrete-event simulator (heavyweight mutable state) does not.
  virtual bool thread_safe() const { return false; }

  /// Independent copy of this environment (same context and mechanism
  /// constants) whose measurement-noise stream is reseeded from `seed`.
  /// Implementations advertising thread_safe() must return non-null;
  /// the default returns nullptr (cloning unsupported).
  virtual std::unique_ptr<Environment> clone_with_seed(
      std::uint64_t /*seed*/) const {
    return nullptr;
  }
};

}  // namespace rac::env
