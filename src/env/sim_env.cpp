#include "env/sim_env.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rac::env {

SimEnv::SimEnv(const SystemContext& context, const SimEnvOptions& options)
    : ctx_(context), opt_(options), next_seed_(options.seed) {}

void SimEnv::rebuild(const config::Configuration& configuration) {
  tiersim::SimSetup setup;
  setup.configuration = configuration;
  setup.mix = ctx_.mix;
  setup.web_vm = web_vm_spec();
  setup.app_vm = vm_spec(ctx_.level);
  setup.num_clients = opt_.num_clients;
  setup.seed = next_seed_++;
  setup.registry = opt_.registry;
  system_ = std::make_unique<tiersim::ThreeTierSystem>(opt_.system, setup);
}

PerfSample SimEnv::measure(const config::Configuration& configuration) {
  // Resolved per call against the injected registry; function-local
  // statics here would pin the counters to the first caller's registry.
  obs::Registry& reg = obs::registry_or_default(opt_.registry);
  reg.counter("env.sim.measurements").add(1);
  obs::Histogram& h_measure =
      reg.histogram("env.sim.measure_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_measure);
  if (system_ == nullptr) {
    rebuild(configuration);
  } else if (!(system_->configuration() == configuration)) {
    system_->reconfigure(configuration);
  }
  last_ = system_->run(opt_.warmup_s, opt_.measure_s);
  PerfSample sample;
  sample.response_ms = last_.mean_response_ms;
  sample.throughput_rps = last_.throughput_rps;
  return sample;
}

void SimEnv::set_context(const SystemContext& context) {
  if (context == ctx_) return;
  const bool mix_changed = context.mix != ctx_.mix;
  ctx_ = context;
  if (system_ == nullptr) return;
  if (mix_changed) {
    // A traffic-mix change replaces the browser population: rebuild with
    // the current configuration (server-side state does not survive the
    // client switch in any meaningful way).
    rebuild(system_->configuration());
  } else {
    system_->set_app_vm(vm_spec(ctx_.level));
  }
}

}  // namespace rac::env
