#include "env/sim_env.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rac::env {

SimEnv::SimEnv(const SystemContext& context, const SimEnvOptions& options)
    : ctx_(context), opt_(options), next_seed_(options.seed) {}

void SimEnv::rebuild(const config::Configuration& configuration) {
  tiersim::SimSetup setup;
  setup.configuration = configuration;
  setup.mix = ctx_.mix;
  setup.web_vm = web_vm_spec();
  setup.app_vm = vm_spec(ctx_.level);
  setup.num_clients = opt_.num_clients;
  setup.seed = next_seed_++;
  setup.registry = opt_.registry;
  if (applied_target_.has_value()) {
    setup.mix = workload::dominant_mix(*applied_target_);
    setup.mix_weights = applied_target_->mix_weights;
    setup.think_scale = applied_target_->think_scale;
    setup.num_clients = std::max(
        1, static_cast<int>(std::lround(
               static_cast<double>(opt_.num_clients) *
               applied_target_->concurrency_scale)));
  }
  system_ = std::make_unique<tiersim::ThreeTierSystem>(opt_.system, setup);
}

PerfSample SimEnv::measure(const config::Configuration& configuration) {
  // Resolved per call against the injected registry; function-local
  // statics here would pin the counters to the first caller's registry.
  obs::Registry& reg = obs::registry_or_default(opt_.registry);
  reg.counter("env.sim.measurements").add(1);
  obs::Histogram& h_measure =
      reg.histogram("env.sim.measure_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_measure);

  std::optional<workload::TrafficTarget> target;
  if (traffic_ != nullptr && !traffic_->empty()) {
    target = traffic_->target_at(
        static_cast<std::int64_t>(traffic_interval_), ctx_.mix);
  }
  if (traffic_ != nullptr) ++traffic_interval_;
  if (target.has_value()) {
    reg.counter("core.traffic.intervals").add(1);
    reg.gauge("core.traffic.concurrency_scale").set(target->concurrency_scale);
    reg.gauge("core.traffic.think_scale").set(target->think_scale);
  }

  // A changed target replaces the browser population, like a mix switch at
  // the load balancer. An unchanged one (bit-for-bit, so the one-hot
  // identity always matches itself) keeps the live system's state.
  const bool target_changed =
      target.has_value() != applied_target_.has_value() ||
      (target.has_value() &&
       !workload::same_target(*target, *applied_target_));
  if (system_ == nullptr || target_changed) {
    applied_target_ = target;
    rebuild(configuration);
  } else if (!(system_->configuration() == configuration)) {
    system_->reconfigure(configuration);
  }
  last_ = system_->run(opt_.warmup_s, opt_.measure_s);
  PerfSample sample;
  sample.response_ms = last_.mean_response_ms;
  sample.throughput_rps = last_.throughput_rps;
  return sample;
}

void SimEnv::set_context(const SystemContext& context) {
  if (context == ctx_) return;
  const bool mix_changed = context.mix != ctx_.mix;
  ctx_ = context;
  if (system_ == nullptr) return;
  if (mix_changed) {
    // A traffic-mix change replaces the browser population: rebuild with
    // the current configuration (server-side state does not survive the
    // client switch in any meaningful way). With a target applied the
    // rebuild keeps the target's population; the next measure() resolves
    // the new base mix's target and rebuilds again if it differs.
    rebuild(system_->configuration());
  } else {
    system_->set_app_vm(vm_spec(ctx_.level));
  }
}

void SimEnv::set_traffic_model(
    std::shared_ptr<const workload::TrafficModel> model) {
  traffic_ = std::move(model);
  traffic_interval_ = 0;
}

}  // namespace rac::env
