#include "rl/serialization.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rac::rl {

namespace {
constexpr const char* kMagic = "rac-qtable";
constexpr int kVersion = 1;

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);  // hex float: exact round trip
  return buf;
}

double parse_double(const std::string& token) {
  std::size_t pos = 0;
  const double v = std::stod(token, &pos);
  if (pos != token.size()) {
    throw std::runtime_error("load_qtable: bad numeric token '" + token + "'");
  }
  return v;
}
}  // namespace

void save_qtable(std::ostream& os, const QTable& table) {
  os << kMagic << " v" << kVersion << "\n";
  os << "default_q " << format_double(table.default_q()) << "\n";
  const auto states = table.states();
  os << "states " << states.size() << "\n";
  for (const auto& state : states) {
    for (int v : state.values()) os << v << ' ';
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      os << format_double(table.q(state, config::Action(static_cast<int>(a))))
         << (a + 1 == config::kNumActions ? "" : " ");
    }
    os << "\n";
  }
  if (!os) throw std::ios_base::failure("save_qtable: write failed");
}

QTable load_qtable(std::istream& is) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_qtable: not a rac-qtable stream");
  }
  if (version != "v1") {
    throw std::runtime_error("load_qtable: unsupported version " + version);
  }
  std::string key;
  std::string token;
  if (!(is >> key >> token) || key != "default_q") {
    throw std::runtime_error("load_qtable: missing default_q");
  }
  QTable table;
  table.set_default_q(parse_double(token));

  std::size_t count = 0;
  if (!(is >> key >> count) || key != "states") {
    throw std::runtime_error("load_qtable: missing state count");
  }
  for (std::size_t row = 0; row < count; ++row) {
    std::array<int, config::kNumParams> values{};
    for (auto& v : values) {
      if (!(is >> v)) {
        throw std::runtime_error("load_qtable: truncated state row");
      }
    }
    const config::Configuration state(values);
    if (state.values() != values) {
      throw std::runtime_error("load_qtable: state outside parameter ranges");
    }
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      if (!(is >> token)) {
        throw std::runtime_error("load_qtable: truncated Q row");
      }
      table.set_q(state, config::Action(static_cast<int>(a)),
                  parse_double(token));
    }
  }
  return table;
}

void save_qtable_file(const std::string& path, const QTable& table) {
  std::ofstream os(path);
  if (!os) throw std::ios_base::failure("save_qtable_file: cannot open " + path);
  save_qtable(os, table);
}

QTable load_qtable_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::ios_base::failure("load_qtable_file: cannot open " + path);
  return load_qtable(is);
}

}  // namespace rac::rl
