#include "rl/serialization.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/profiler.hpp"
#include "util/lineio.hpp"

namespace rac::rl {

namespace {
constexpr const char* kMagic = "rac-qtable";

// v1 wrote doubles with printf "%a" / read them with std::stod, both of
// which obey the process locale -- a French locale turns "1.5" into "1,5"
// and breaks the round trip. v2 goes through util/lineio (to_chars /
// from_chars), adds an explicit "end" trailer so the table can be embedded
// in larger streams (agent snapshots, policy libraries), and rejects
// duplicate state rows instead of silently letting the last one win.
constexpr int kVersion = 2;
}  // namespace

void save_qtable(std::ostream& os, const QTable& table) {
  const obs::ProfileScope profile("rl.qtable.save");
  os << kMagic << " v" << kVersion << "\n";
  os << "default_q " << util::format_double(table.default_q()) << "\n";
  auto states = table.states();
  // Hash-map order is run-dependent; sorted rows keep the output a pure
  // function of the table contents (diffable, byte-stable across runs).
  std::sort(states.begin(), states.end(),
            [](const config::Configuration& a, const config::Configuration& b) {
              return a.values() < b.values();
            });
  os << "states " << util::format_u64(states.size()) << "\n";
  for (const auto& state : states) {
    for (int v : state.values()) os << util::format_i64(v) << ' ';
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      os << util::format_double(
                table.q(state, config::Action(static_cast<int>(a))))
         << (a + 1 == config::kNumActions ? "" : " ");
    }
    os << "\n";
  }
  os << "end\n";
  if (!os) throw std::ios_base::failure("save_qtable: write failed");
}

QTable load_qtable(std::istream& is) {
  const obs::ProfileScope profile("rl.qtable.load");
  const std::string magic = util::read_token(is, "load_qtable");
  const std::string version = util::read_token(is, "load_qtable");
  if (magic != kMagic) {
    throw std::runtime_error("load_qtable: not a rac-qtable stream");
  }
  if (version != "v1" && version != "v2") {
    throw std::runtime_error("load_qtable: unsupported version " + version);
  }
  util::expect_token(is, "default_q", "load_qtable");
  QTable table;
  table.set_default_q(
      util::parse_double(util::read_token(is, "load_qtable"), "load_qtable"));

  util::expect_token(is, "states", "load_qtable");
  const std::uint64_t count =
      util::parse_u64(util::read_token(is, "load_qtable"), "load_qtable");
  std::unordered_set<config::Configuration,  // rac-lint: allow(hot-path-alloc) load-time duplicate check, not in the training loop
                     config::ConfigurationHash>
      seen;
  seen.reserve(count);
  for (std::uint64_t row = 0; row < count; ++row) {
    std::array<int, config::kNumParams> values{};
    for (auto& v : values) {
      v = util::parse_int(util::read_token(is, "load_qtable state row"),
                          "load_qtable state row");
    }
    const config::Configuration state(values);
    if (state.values() != values) {
      throw std::runtime_error("load_qtable: state outside parameter ranges");
    }
    if (!seen.insert(state).second) {
      throw std::runtime_error(
          "load_qtable: duplicate state row (each state must appear once)");
    }
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      table.set_q(state, config::Action(static_cast<int>(a)),
                  util::parse_double(
                      util::read_token(is, "load_qtable Q row"),
                      "load_qtable Q row"));
    }
  }
  // v1 files simply end after the last row; v2 marks the end explicitly so
  // embedding callers know where the table stops and file callers can
  // reject trailing garbage.
  if (version == "v2") util::expect_token(is, "end", "load_qtable");
  return table;
}

void save_qtable_file(const std::string& path, const QTable& table) {
  std::ostringstream os;
  save_qtable(os, table);
  util::atomic_write_file(path, os.str());
}

QTable load_qtable_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::ios_base::failure("load_qtable_file: cannot open " + path);
  QTable table = load_qtable(is);
  std::string extra;
  if (is >> extra) {
    throw std::runtime_error("load_qtable_file: trailing garbage after table: '" +
                             extra + "'");
  }
  return table;
}

}  // namespace rac::rl
