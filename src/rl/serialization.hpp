// Persistence for learned policies.
//
// Offline policy initialization is the expensive step of RAC (the paper
// reports >10 hours of data collection per context on the real testbed);
// a deployment trains once per anticipated context and ships the result.
// The format is a line-oriented text format: versioned header, one row per
// state with the 8 parameter values followed by the 17 action values, and
// (since v2) an explicit "end" trailer so a table can be embedded inside a
// larger stream (agent snapshots, policy libraries). Text keeps the files
// diffable and platform-independent; round-trip precision uses hex floats
// written and parsed with std::to_chars/std::from_chars, which are immune
// to the process locale (v1 used printf "%a"/std::stod, which are not;
// the loader still reads v1 files).
#pragma once

#include <iosfwd>
#include <string>

#include "rl/qtable.hpp"

namespace rac::rl {

/// Serialize a Q-table. Throws std::ios_base::failure on stream errors.
void save_qtable(std::ostream& os, const QTable& table);

/// Parse a Q-table produced by save_qtable (v1 or v2). Throws
/// std::runtime_error on malformed input: bad magic, unsupported version,
/// truncated or malformed rows, and duplicate state rows (a duplicate
/// would silently shadow earlier values). Leaves the stream positioned
/// just past the table so callers can embed tables in larger formats.
QTable load_qtable(std::istream& is);

/// File-path convenience wrappers. Saving writes atomically (temp file +
/// rename); loading additionally rejects trailing garbage after the table.
void save_qtable_file(const std::string& path, const QTable& table);
QTable load_qtable_file(const std::string& path);

}  // namespace rac::rl
