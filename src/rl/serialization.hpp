// Persistence for learned policies.
//
// Offline policy initialization is the expensive step of RAC (the paper
// reports >10 hours of data collection per context on the real testbed);
// a deployment trains once per anticipated context and ships the result.
// The format is a line-oriented text format: versioned header, one row per
// state with the 8 parameter values followed by the 17 action values.
// Text keeps the files diffable and platform-independent; round-trip
// precision uses hex floats.
#pragma once

#include <iosfwd>
#include <string>

#include "rl/qtable.hpp"

namespace rac::rl {

/// Serialize a Q-table. Throws std::ios_base::failure on stream errors.
void save_qtable(std::ostream& os, const QTable& table);

/// Parse a Q-table produced by save_qtable. Throws std::runtime_error on
/// malformed input (bad magic, version, or row shape).
QTable load_qtable(std::istream& is);

/// File-path convenience wrappers.
void save_qtable_file(const std::string& path, const QTable& table);
QTable load_qtable_file(const std::string& path);

}  // namespace rac::rl
