// Action-selection policies over a Q-table.
#pragma once

#include "config/configuration.hpp"
#include "config/space.hpp"
#include "rl/qtable.hpp"
#include "util/rng.hpp"

namespace rac::rl {

/// A selection plus how it was made (decision tracing reports both).
struct Selection {
  config::Action action;
  bool explored = false;  // epsilon branch taken (vs greedy)
  double q_value = 0.0;   // Q(s, action) at selection time
};

/// epsilon-greedy: with probability epsilon pick a uniformly random action,
/// otherwise the greedy one.
class EpsilonGreedy {
 public:
  explicit EpsilonGreedy(double epsilon);

  double epsilon() const noexcept { return epsilon_; }
  void set_epsilon(double epsilon);

  config::Action select(const QTable& table, const config::Configuration& s,
                        util::Rng& rng) const;

  /// Like `select`, also reporting the explore/greedy branch and Q-value.
  Selection select_detailed(const QTable& table,
                            const config::Configuration& s,
                            util::Rng& rng) const;

 private:
  double epsilon_;
};

/// Always greedy (epsilon == 0).
config::Action greedy_action(const QTable& table,
                             const config::Configuration& s);

}  // namespace rac::rl
