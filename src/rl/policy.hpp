// Action-selection policies over a Q-table.
#pragma once

#include "config/configuration.hpp"
#include "config/space.hpp"
#include "rl/qtable.hpp"
#include "util/rng.hpp"

namespace rac::rl {

/// epsilon-greedy: with probability epsilon pick a uniformly random action,
/// otherwise the greedy one.
class EpsilonGreedy {
 public:
  explicit EpsilonGreedy(double epsilon);

  double epsilon() const noexcept { return epsilon_; }
  void set_epsilon(double epsilon);

  config::Action select(const QTable& table, const config::Configuration& s,
                        util::Rng& rng) const;

 private:
  double epsilon_;
};

/// Always greedy (epsilon == 0).
config::Action greedy_action(const QTable& table,
                             const config::Configuration& s);

}  // namespace rac::rl
