// Store of measured performance per visited configuration.
//
// The online agent retrains its Q-table every interval from remembered
// measurements: the current configuration's entry is refreshed with the new
// observation while older entries are kept (paper Section 4.2). Entries
// blend repeat observations with an EWMA so stale measurements fade.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "config/configuration.hpp"

namespace rac::rl {

struct Observation {
  double response_ms = 0.0;  // blended response time
  std::size_t count = 0;     // number of measurements folded in
};

class ExperienceStore {
 public:
  /// `blend` is the EWMA weight of a new measurement against the stored
  /// value (1.0 = keep only the latest).
  explicit ExperienceStore(double blend = 0.6);

  void record(const config::Configuration& configuration, double response_ms);

  std::optional<double> response_ms(
      const config::Configuration& configuration) const;

  std::size_t size() const noexcept { return store_.size(); }
  bool empty() const noexcept { return store_.empty(); }
  void clear() { store_.clear(); }

  std::vector<config::Configuration> configurations() const;

 private:
  double blend_;
  std::unordered_map<config::Configuration, Observation,
                     config::ConfigurationHash>
      store_;
};

}  // namespace rac::rl
