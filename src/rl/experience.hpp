// Store of measured performance per visited configuration.
//
// The online agent retrains its Q-table every interval from remembered
// measurements: the current configuration's entry is refreshed with the new
// observation while older entries are kept (paper Section 4.2). Entries
// blend repeat observations with an EWMA so stale measurements fade.
//
// Entries are kept in insertion order (first observation wins the slot) so
// that `configurations()`/`entries()` is a deterministic function of the
// recording history. Retraining iterates that list, so a checkpoint-restored
// store must replay it in the same order to continue bit-identically --
// hash-map iteration order would not survive a round trip. Lookups go
// through a flat open-addressing probe table (hash(config) -> entry index),
// and a canonically sorted copy of the configurations is maintained on
// insert so the per-retrain sort is amortized away.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "config/configuration.hpp"

namespace rac::rl {

struct Observation {
  double response_ms = 0.0;  // blended response time
  std::size_t count = 0;     // number of measurements folded in
};

struct ExperienceEntry {
  config::Configuration configuration;
  Observation observation;
};

class ExperienceStore {
 public:
  /// `blend` is the EWMA weight of a new measurement against the stored
  /// value (1.0 = keep only the latest).
  explicit ExperienceStore(double blend = 0.6);

  void record(const config::Configuration& configuration, double response_ms);

  std::optional<double> response_ms(
      const config::Configuration& configuration) const;

  /// Best-known configuration: lowest blended response time, earliest
  /// observation winning ties. std::nullopt when the store is empty. Used
  /// by the agent's safe-fallback step (revert after repeated blowouts).
  std::optional<config::Configuration> best() const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear();

  double blend() const noexcept { return blend_; }

  /// Visited configurations in first-observation order.
  std::vector<config::Configuration> configurations() const;

  /// Visited configurations in canonical order (ascending parameter
  /// values), maintained incrementally on insert. Identical to sorting
  /// `configurations()` with values() < values(); the retrain sweep
  /// iterates this directly. Invalidated by record/restore/clear.
  std::span<const config::Configuration> sorted_configurations() const noexcept {
    return sorted_;
  }

  /// Full entries in first-observation order (for serialization).
  std::span<const ExperienceEntry> entries() const noexcept { return entries_; }

  /// Resume from serialized entries, preserving their order. Throws
  /// std::invalid_argument on duplicate configurations, zero counts, or
  /// non-finite/negative response times.
  void restore(std::vector<ExperienceEntry> entries);

 private:
  /// Probe slot for `configuration`: either empty (0) or holding
  /// entry index + 1. Requires a non-empty slot table.
  std::size_t probe(const config::Configuration& configuration) const;
  /// Index of the entry for `configuration`, or npos when absent.
  std::size_t find_index(const config::Configuration& configuration) const;
  void grow_slots();
  void insert_sorted(const config::Configuration& configuration);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  double blend_;
  std::vector<ExperienceEntry> entries_;
  std::vector<std::uint32_t> slots_;
  std::vector<config::Configuration> sorted_;
};

}  // namespace rac::rl
