#include "rl/policy.hpp"

#include <stdexcept>

namespace rac::rl {

EpsilonGreedy::EpsilonGreedy(double epsilon) : epsilon_(epsilon) {
  set_epsilon(epsilon);
}

void EpsilonGreedy::set_epsilon(double epsilon) {
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedy: epsilon outside [0, 1]");
  }
  epsilon_ = epsilon;
}

config::Action EpsilonGreedy::select(const QTable& table,
                                     const config::Configuration& s,
                                     util::Rng& rng) const {
  if (rng.bernoulli(epsilon_)) {
    return config::Action(
        rng.uniform_int(0, static_cast<int>(config::kNumActions) - 1));
  }
  return table.best_action(s);
}

config::Action greedy_action(const QTable& table,
                             const config::Configuration& s) {
  return table.best_action(s);
}

}  // namespace rac::rl
