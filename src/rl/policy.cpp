#include "rl/policy.hpp"

#include <stdexcept>

namespace rac::rl {

EpsilonGreedy::EpsilonGreedy(double epsilon) : epsilon_(epsilon) {
  set_epsilon(epsilon);
}

void EpsilonGreedy::set_epsilon(double epsilon) {
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedy: epsilon outside [0, 1]");
  }
  epsilon_ = epsilon;
}

config::Action EpsilonGreedy::select(const QTable& table,
                                     const config::Configuration& s,
                                     util::Rng& rng) const {
  if (rng.bernoulli(epsilon_)) {
    return config::Action(
        rng.uniform_int(0, static_cast<int>(config::kNumActions) - 1));
  }
  return table.best_action(s);
}

Selection EpsilonGreedy::select_detailed(const QTable& table,
                                         const config::Configuration& s,
                                         util::Rng& rng) const {
  Selection sel;
  if (rng.bernoulli(epsilon_)) {
    sel.explored = true;
    sel.action = config::Action(
        rng.uniform_int(0, static_cast<int>(config::kNumActions) - 1));
  } else {
    sel.action = table.best_action(s);
  }
  sel.q_value = table.q(s, sel.action);
  return sel;
}

config::Action greedy_action(const QTable& table,
                             const config::Configuration& s) {
  return table.best_action(s);
}

}  // namespace rac::rl
