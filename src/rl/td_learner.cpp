#include "rl/td_learner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "rl/policy.hpp"
#include "util/contracts.hpp"

namespace rac::rl {

TdResult batch_train(QTable& table,
                     std::span<const config::Configuration> start_states,
                     const RewardFn& reward, const TdParams& params,
                     util::Rng& rng, obs::Registry* registry) {
  if (!reward) throw std::invalid_argument("batch_train: empty reward fn");
  if (params.alpha <= 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("batch_train: alpha outside (0, 1]");
  }
  if (params.gamma < 0.0 || params.gamma >= 1.0) {
    throw std::invalid_argument("batch_train: gamma outside [0, 1)");
  }
  if (params.trajectory_limit < 1 || params.max_sweeps < 1) {
    throw std::invalid_argument("batch_train: non-positive budget");
  }

  const EpsilonGreedy policy(params.epsilon);
  TdResult result;
  if (start_states.empty()) {
    result.converged = true;
    return result;
  }
  const obs::ProfileScope profile("rl.batch_train");

  // The reward model is a pure function of the state for the duration of
  // one batch; memoize it (full backups revisit states heavily).
  std::unordered_map<config::Configuration, double, config::ConfigurationHash>
      reward_cache;
  const auto cached_reward = [&](const config::Configuration& c) {
    const auto it = reward_cache.find(c);
    if (it != reward_cache.end()) return it->second;
    const double r = reward(c);
    reward_cache.emplace(c, r);
    return r;
  };

  // Telemetry handles (resolved once per batch against the injected
  // registry) and local accumulators: the inner loop runs millions of
  // backups per experiment, so counts are folded into the registry once
  // per batch, not per update.
  obs::Registry& reg = obs::registry_or_default(registry);
  obs::Counter& c_runs = reg.counter("rl.td.runs");
  obs::Counter& c_sweeps = reg.counter("rl.td.sweeps");
  obs::Counter& c_backups = reg.counter("rl.td.backups");
  obs::Counter& c_converged = reg.counter("rl.td.converged");
  obs::Gauge& g_error = reg.gauge("rl.td.last_error");
  obs::Histogram& h_train =
      reg.histogram("rl.td.batch_train_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_train);
  std::uint64_t backups = 0;

  const auto actions = config::ConfigSpace::all_actions();
  for (int sweep = 0; sweep < params.max_sweeps; ++sweep) {
    double error = 0.0;
    for (const auto& start : start_states) {
      config::Configuration s = start;
      for (int step = 0; step < params.trajectory_limit; ++step) {
        // Full backup of every action at the visited state.
        for (const config::Action a : actions) {
          const config::Configuration next = config::ConfigSpace::apply(s, a);
          const double r = cached_reward(next);
          const double td =
              r + params.gamma * table.max_q(next) - table.q(s, a);
          const double delta = params.alpha * td;
          table.add_q(s, a, delta);
          error = std::max(error, std::abs(delta));
          ++backups;
        }
        // Walk on epsilon-greedily; the walk chooses which states the next
        // backups touch.
        s = config::ConfigSpace::apply(s, policy.select(table, s, rng));
      }
    }
    result.sweeps = sweep + 1;
    result.final_error = error;
    if (error < params.theta) {
      result.converged = true;
      break;
    }
  }

  c_runs.add(1);
  c_sweeps.add(static_cast<std::uint64_t>(result.sweeps));
  c_backups.add(backups);
  if (result.converged) c_converged.add(1);
  g_error.set(result.final_error);

  if constexpr (util::kAuditEnabled) {
    // A single NaN reward poisons every value it backs up into; scan the
    // whole table after the batch so the poisoning is caught at its source
    // experiment, not intervals later as a mysteriously frozen policy.
    for (const auto& state : table.states()) {
      for (const config::Action a : actions) {
        RAC_AUDIT(std::isfinite(table.q(state, a)),
                  "batch_train: non-finite Q value after batch");
      }
    }
    RAC_AUDIT(std::isfinite(result.final_error),
              "batch_train: non-finite TD error");
  }
  return result;
}

}  // namespace rac::rl
