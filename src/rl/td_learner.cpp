#include "rl/td_learner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "rl/policy.hpp"
#include "util/contracts.hpp"

namespace rac::rl {

TdResult batch_train(QTable& table,
                     std::span<const config::Configuration> start_states,
                     const RewardFn& reward, const TdParams& params,
                     util::Rng& rng, obs::Registry* registry) {
  if (!reward) throw std::invalid_argument("batch_train: empty reward fn");
  if (params.alpha <= 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("batch_train: alpha outside (0, 1]");
  }
  if (params.gamma < 0.0 || params.gamma >= 1.0) {
    throw std::invalid_argument("batch_train: gamma outside [0, 1)");
  }
  if (params.trajectory_limit < 1 || params.max_sweeps < 1) {
    throw std::invalid_argument("batch_train: non-positive budget");
  }

  const EpsilonGreedy policy(params.epsilon);
  TdResult result;
  if (start_states.empty()) {
    result.converged = true;
    return result;
  }
  const obs::ProfileScope profile("rl.batch_train");

  // The reward model is a pure function of the state for the duration of
  // one batch; memoize it per table row (full backups revisit states
  // heavily, and every state the loop touches gets a row below, so the
  // cache is a dense array indexed by row -- no second hash table). The
  // compute-on-first-encounter order is the same as a map-based cache
  // keyed by configuration, so reward functions with observable effects
  // (metrics counters) fire in the identical sequence.
  std::vector<double> reward_by_row;
  std::vector<std::uint8_t> reward_known;
  const auto cached_reward = [&](const config::Configuration& c,
                                 std::size_t row) {
    if (row >= reward_known.size()) {
      reward_known.resize(row + 1, 0);
      reward_by_row.resize(row + 1, 0.0);
    }
    if (reward_known[row]) return reward_by_row[row];
    const double r = reward(c);
    reward_known[row] = 1;
    reward_by_row[row] = r;
    return r;
  };

  // Telemetry handles (resolved once per batch against the injected
  // registry) and local accumulators: the inner loop runs millions of
  // backups per experiment, so counts are folded into the registry once
  // per batch, not per update.
  obs::Registry& reg = obs::registry_or_default(registry);
  obs::Counter& c_runs = reg.counter("rl.td.runs");
  obs::Counter& c_sweeps = reg.counter("rl.td.sweeps");
  obs::Counter& c_backups = reg.counter("rl.td.backups");
  obs::Counter& c_converged = reg.counter("rl.td.converged");
  obs::Gauge& g_error = reg.gauge("rl.td.last_error");
  obs::Histogram& h_train =
      reg.histogram("rl.td.batch_train_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_train);
  std::uint64_t backups = 0;

  // Neighbor map: row index of apply(s, a) for every action of every
  // visited row, filled the first time a state is visited and valid for
  // the whole batch (the MDP is static and row indices are stable). Later
  // visits -- the common case, since sweeps revisit the same states tens
  // of times -- skip configuration hashing entirely. Action id 0 is
  // "keep", whose neighbor is the row itself, so slot 0 doubles as the
  // filled flag.
  constexpr std::uint32_t kUnfilled = static_cast<std::uint32_t>(-1);
  std::array<std::uint32_t, config::kNumActions> unfilled_row;
  unfilled_row.fill(kUnfilled);
  std::vector<std::array<std::uint32_t, config::kNumActions>> neighbors;

  const auto actions = config::ConfigSpace::all_actions();
  for (int sweep = 0; sweep < params.max_sweeps; ++sweep) {
    double error = 0.0;
    for (const auto& start : start_states) {
      config::Configuration s = start;
      for (int step = 0; step < params.trajectory_limit; ++step) {
        // Full backup of every action at the visited state. The visited
        // state's row is resolved once for all kNumActions updates, and
        // each neighbor gets (or reuses) a warm row so its reward and
        // max-Q reads are one probe + dense indexing. Unwritten warm rows
        // hold only default values, so every read matches the absent-row
        // answer bit for bit (see qtable.hpp).
        const std::size_t s_row = table.ensure_row(s);
        if (neighbors.size() <= s_row) {
          neighbors.resize(s_row + 1, unfilled_row);
        }
        auto& nbr = neighbors[s_row];
        const bool filled = nbr[0] != kUnfilled;
        for (const config::Action a : actions) {
          const auto id = static_cast<std::size_t>(a.id());
          std::size_t next_row;
          double r;
          if (filled) {
            next_row = nbr[id];
            // The first visit's backup of this action computed the
            // neighbor's reward, so the cache always hits here.
            r = reward_by_row[next_row];
          } else {
            const config::Configuration next = config::ConfigSpace::apply(s, a);
            next_row = a.is_keep() ? s_row : table.ensure_row(next);
            nbr[id] = static_cast<std::uint32_t>(next_row);
            r = cached_reward(next, next_row);
          }
          const double td = r + params.gamma * table.max_q_at(next_row) -
                            table.q_at(s_row, a);
          const double delta = params.alpha * td;
          table.add_q_at(s_row, a, delta);
          error = std::max(error, std::abs(delta));
          ++backups;
        }
        // Walk on epsilon-greedily; the walk chooses which states the next
        // backups touch.
        s = config::ConfigSpace::apply(s, policy.select(table, s, rng));
      }
    }
    result.sweeps = sweep + 1;
    result.final_error = error;
    if (error < params.theta) {
      result.converged = true;
      break;
    }
  }

  c_runs.add(1);
  c_sweeps.add(static_cast<std::uint64_t>(result.sweeps));
  c_backups.add(backups);
  if (result.converged) c_converged.add(1);
  g_error.set(result.final_error);

  if constexpr (util::kAuditEnabled) {
    // A single NaN reward poisons every value it backs up into; scan the
    // whole table after the batch so the poisoning is caught at its source
    // experiment, not intervals later as a mysteriously frozen policy.
    for (const auto& state : table.states()) {
      for (const config::Action a : actions) {
        RAC_AUDIT(std::isfinite(table.q(state, a)),
                  "batch_train: non-finite Q value after batch");
      }
    }
    RAC_AUDIT(std::isfinite(result.final_error),
              "batch_train: non-finite TD error");
  }
  return result;
}

}  // namespace rac::rl
