#include "rl/qtable.hpp"

#include <algorithm>

namespace rac::rl {

static_assert(config::kNumActions <= 32,
              "QTable written mask packs one bit per action into uint32");

namespace {
// Initial probe-table size; must be a power of two. 64 slots cover the
// typical per-context table (a few hundred states) after a few doublings.
constexpr std::size_t kInitialSlots = 64;
}  // namespace

std::size_t QTable::probe(const config::Configuration& s) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = s.hash() & mask;
  while (slots_[i] != 0) {
    if (keys_[slots_[i] - 1] == s) return i;
    i = (i + 1) & mask;
  }
  return i;
}

void QTable::grow_slots() {
  // Double, but never below twice the row count: a rebuild over a table
  // smaller than the key list would probe forever looking for a free slot.
  std::size_t capacity = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  while (capacity < (keys_.size() + 1) * 2) capacity *= 2;
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t row = 0; row < keys_.size(); ++row) {
    std::size_t i = keys_[row].hash() & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<std::uint32_t>(row) + 1;
  }
}

std::size_t QTable::ensure_row(const config::Configuration& s) {
  // Keep the probe table under half full so probe chains stay short.
  if (slots_.size() < (keys_.size() + 1) * 2) grow_slots();
  const std::size_t slot = probe(s);
  if (slots_[slot] != 0) return slots_[slot] - 1;
  const std::size_t row = keys_.size();
  keys_.push_back(s);
  rows_.emplace_back();
  rows_.back().fill(default_q_);
  written_.push_back(0);
  slots_[slot] = static_cast<std::uint32_t>(row) + 1;
  return row;
}

std::size_t QTable::find_row(const config::Configuration& s) const {
  if (slots_.empty()) return npos;
  const std::size_t slot = probe(s);
  return slots_[slot] == 0 ? npos : slots_[slot] - 1;
}

double QTable::q(const config::Configuration& s, config::Action a) const {
  const std::size_t row = find_row(s);
  if (row == npos) return default_q_;
  return q_at(row, a);
}

void QTable::set_q(const config::Configuration& s, config::Action a,
                   double value) {
  const std::size_t row = ensure_row(s);
  const auto id = static_cast<std::size_t>(a.id());
  rows_[row][id] = value;
  mark_written(row, id);
}

void QTable::add_q(const config::Configuration& s, config::Action a,
                   double delta) {
  add_q_at(ensure_row(s), a, delta);
}

double QTable::max_q(const config::Configuration& s) const {
  const std::size_t row = find_row(s);
  if (row == npos) return default_q_;
  return max_q_at(row);
}

double QTable::max_q_at(std::size_t row) const {
  const ActionValues& values = rows_[row];
  return *std::max_element(values.begin(), values.end());
}

config::Action QTable::best_action(const config::Configuration& s) const {
  const std::size_t row = find_row(s);
  if (row == npos) return config::Action::keep();
  return best_action_at(row);
}

config::Action QTable::best_action_at(std::size_t row) const {
  const ActionValues& values = rows_[row];
  std::size_t best = 0;
  for (std::size_t a = 1; a < values.size(); ++a) {
    if (values[a] > values[best]) best = a;
  }
  return config::Action(static_cast<int>(best));
}

bool QTable::contains(const config::Configuration& s) const {
  const std::size_t row = find_row(s);
  return row != npos && written_[row] != 0;
}

void QTable::clear() {
  keys_.clear();
  rows_.clear();
  written_.clear();
  slots_.clear();
  num_written_ = 0;
}

std::vector<config::Configuration> QTable::states() const {
  std::vector<config::Configuration> out;
  out.reserve(num_written_);
  for (std::size_t row = 0; row < keys_.size(); ++row) {
    if (written_[row] != 0) out.push_back(keys_[row]);
  }
  return out;
}

void QTable::absorb(const QTable& other) {
  for (std::size_t src = 0; src < other.keys_.size(); ++src) {
    const std::uint32_t mask = other.written_[src];
    if (mask == 0) continue;
    const std::size_t dst = ensure_row(other.keys_[src]);
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      if ((mask >> a) & 1U) {
        rows_[dst][a] = other.rows_[src][a];
        mark_written(dst, a);
      }
    }
  }
}

}  // namespace rac::rl
