#include "rl/qtable.hpp"

#include <algorithm>

namespace rac::rl {

QTable::ActionValues& QTable::row(const config::Configuration& s) {
  auto it = table_.find(s);
  if (it == table_.end()) {
    ActionValues values;
    values.fill(default_q_);
    it = table_.emplace(s, values).first;
  }
  return it->second;
}

double QTable::q(const config::Configuration& s, config::Action a) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return default_q_;
  return it->second[static_cast<std::size_t>(a.id())];
}

void QTable::set_q(const config::Configuration& s, config::Action a,
                   double value) {
  row(s)[static_cast<std::size_t>(a.id())] = value;
}

void QTable::add_q(const config::Configuration& s, config::Action a,
                   double delta) {
  row(s)[static_cast<std::size_t>(a.id())] += delta;
}

double QTable::max_q(const config::Configuration& s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return default_q_;
  return *std::max_element(it->second.begin(), it->second.end());
}

config::Action QTable::best_action(const config::Configuration& s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return config::Action::keep();
  const auto& values = it->second;
  std::size_t best = 0;
  for (std::size_t a = 1; a < values.size(); ++a) {
    if (values[a] > values[best]) best = a;
  }
  return config::Action(static_cast<int>(best));
}

bool QTable::contains(const config::Configuration& s) const {
  return table_.find(s) != table_.end();
}

std::vector<config::Configuration> QTable::states() const {
  std::vector<config::Configuration> out;
  out.reserve(table_.size());
  for (const auto& [state, values] : table_) out.push_back(state);
  return out;
}

void QTable::absorb(const QTable& other) {
  for (const auto& [state, values] : other.table_) table_[state] = values;
}

}  // namespace rac::rl
