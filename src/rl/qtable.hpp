// Sparse tabular Q-value store over (configuration, action) pairs.
//
// The fine-grained joint configuration space is ~10^8 states; an agent
// trajectory touches a vanishing fraction of it, so the table is a hash
// map keyed by configuration. Unvisited states read as a caller-chosen
// default (0 by default; the policy initializer seeds them from the
// regression-predicted surface instead).
#pragma once

#include <array>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "config/configuration.hpp"
#include "config/space.hpp"

namespace rac::rl {

class QTable {
 public:
  using ActionValues = std::array<double, config::kNumActions>;

  QTable() = default;

  /// Q(s, a); returns `default_q` for never-written states.
  double q(const config::Configuration& s, config::Action a) const;

  void set_q(const config::Configuration& s, config::Action a, double value);

  /// Q(s, a) += delta (creates the row if absent).
  void add_q(const config::Configuration& s, config::Action a, double delta);

  /// max_a Q(s, a).
  double max_q(const config::Configuration& s) const;

  /// argmax_a Q(s, a); ties break toward the lowest action id
  /// (deterministically), which prefers "keep".
  config::Action best_action(const config::Configuration& s) const;

  bool contains(const config::Configuration& s) const;
  std::size_t size() const noexcept { return table_.size(); }
  bool empty() const noexcept { return table_.empty(); }
  void clear() { table_.clear(); }

  double default_q() const noexcept { return default_q_; }
  void set_default_q(double value) noexcept { default_q_ = value; }

  /// All states with at least one written action value.
  std::vector<config::Configuration> states() const;

  /// Copy every row of `other` into this table (overwrites collisions).
  void absorb(const QTable& other);

 private:
  std::unordered_map<config::Configuration, ActionValues,
                     config::ConfigurationHash>
      table_;
  double default_q_ = 0.0;

  ActionValues& row(const config::Configuration& s);
};

}  // namespace rac::rl
