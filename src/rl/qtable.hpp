// Sparse tabular Q-value store over (configuration, action) pairs.
//
// The fine-grained joint configuration space is ~10^8 states; an agent
// trajectory touches a vanishing fraction of it, so the table is a flat
// open-addressing hash index over dense row storage:
//
//   keys_[i]    the i-th distinct configuration, in first-touch order
//   rows_[i]    its kNumActions Q values, contiguous
//   written_[i] bitmask of actions ever set_q/add_q'ed on the row
//   slots_      power-of-two probe table mapping hash(config) -> i + 1
//
// Unvisited states read as a caller-chosen default (0 by default; the
// policy initializer seeds them from the regression-predicted surface
// instead). Rows whose written mask is zero are invisible to the public
// surface (size/states/contains/serialization): they are warm cache slots
// the TD inner loop creates for neighbor states so repeat lookups are one
// probe instead of repeated hashing, and every value they hold equals the
// default, so reads through them match the no-row answer bit for bit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "config/space.hpp"

namespace rac::rl {

class QTable {
 public:
  using ActionValues = std::array<double, config::kNumActions>;

  /// Sentinel returned by find_row for states with no row.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  QTable() = default;

  /// Q(s, a); returns `default_q` for never-written states.
  double q(const config::Configuration& s, config::Action a) const;

  void set_q(const config::Configuration& s, config::Action a, double value);

  /// Q(s, a) += delta (creates the row if absent).
  void add_q(const config::Configuration& s, config::Action a, double delta);

  /// max_a Q(s, a).
  double max_q(const config::Configuration& s) const;

  /// argmax_a Q(s, a); ties break toward the lowest action id
  /// (deterministically), which prefers "keep".
  config::Action best_action(const config::Configuration& s) const;

  bool contains(const config::Configuration& s) const;
  /// Number of states with at least one written action value.
  std::size_t size() const noexcept { return num_written_; }
  bool empty() const noexcept { return num_written_ == 0; }
  void clear();

  double default_q() const noexcept { return default_q_; }
  void set_default_q(double value) noexcept { default_q_ = value; }

  /// All states with at least one written action value, in first-touch
  /// order (deterministic: a pure function of the mutation history).
  std::vector<config::Configuration> states() const;

  /// Merge every written row of `other` into this table, action by action:
  /// a (state, action) the source wrote overwrites the target's value, and
  /// actions the source never wrote keep the target's value. (Whole-row
  /// overwrite would silently drop target-written actions on collision.)
  /// No caller in the library currently collides -- the parallel policy
  /// build trains disjoint per-context tables -- but the merge semantics
  /// are what that workload would need.
  void absorb(const QTable& other);

  // Hot-path row handles -----------------------------------------------
  //
  // The TD inner loop runs millions of backups per experiment and touches
  // the same few rows per visited state; these index-based accessors let
  // it hash each configuration once and then work on dense storage. Row
  // indices are stable for the life of the table (rows are never erased
  // or reordered); they are invalidated by clear().

  /// Index of s's row, creating a default-filled (unwritten) row if absent.
  std::size_t ensure_row(const config::Configuration& s);
  /// Index of s's row, or npos when the state has no row.
  std::size_t find_row(const config::Configuration& s) const;

  double q_at(std::size_t row, config::Action a) const {
    return rows_[row][static_cast<std::size_t>(a.id())];
  }
  void add_q_at(std::size_t row, config::Action a, double delta) {
    const auto id = static_cast<std::size_t>(a.id());
    rows_[row][id] += delta;
    mark_written(row, id);
  }
  double max_q_at(std::size_t row) const;
  config::Action best_action_at(std::size_t row) const;

 private:
  void mark_written(std::size_t row, std::size_t action) {
    const std::uint32_t bit = std::uint32_t{1} << action;
    if ((written_[row] & bit) == 0) {
      if (written_[row] == 0) ++num_written_;
      written_[row] |= bit;
    }
  }
  /// Probe slot whose value is either 0 (state absent; insert here) or
  /// the state's row index + 1.
  std::size_t probe(const config::Configuration& s) const;
  void grow_slots();

  std::vector<config::Configuration> keys_;
  std::vector<ActionValues> rows_;
  std::vector<std::uint32_t> written_;
  std::vector<std::uint32_t> slots_;
  std::size_t num_written_ = 0;
  double default_q_ = 0.0;
};

}  // namespace rac::rl
