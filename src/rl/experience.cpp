#include "rl/experience.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace rac::rl {

ExperienceStore::ExperienceStore(double blend) : blend_(blend) {
  if (blend <= 0.0 || blend > 1.0) {
    throw std::invalid_argument("ExperienceStore: blend outside (0, 1]");
  }
}

void ExperienceStore::record(const config::Configuration& configuration,
                             double response_ms) {
  RAC_EXPECT(std::isfinite(response_ms) && response_ms >= 0.0,
             "ExperienceStore::record: non-finite or negative response time");
  const auto [it, inserted] = index_.try_emplace(configuration, entries_.size());
  if (inserted) {
    entries_.push_back({configuration, Observation{response_ms, 1}});
  } else {
    Observation& obs = entries_[it->second].observation;
    obs.response_ms += blend_ * (response_ms - obs.response_ms);
    ++obs.count;
  }
  if constexpr (util::kAuditEnabled) {
    // Replay validity: every stored entry must stay a finite blend of real
    // measurements with a live observation count, and the index must agree
    // with the ordered list.
    RAC_AUDIT(index_.size() == entries_.size(),
              "ExperienceStore: index out of sync with entry list");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& entry = entries_[i];
      RAC_AUDIT(entry.observation.count >= 1,
                "ExperienceStore: entry with zero observation count");
      RAC_AUDIT(std::isfinite(entry.observation.response_ms) &&
                    entry.observation.response_ms >= 0.0,
                "ExperienceStore: stored response time went non-finite");
      const auto found = index_.find(entry.configuration);
      RAC_AUDIT(found != index_.end() && found->second == i,
                "ExperienceStore: index entry points at wrong slot");
    }
  }
}

std::optional<double> ExperienceStore::response_ms(
    const config::Configuration& configuration) const {
  const auto it = index_.find(configuration);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].observation.response_ms;
}

std::optional<config::Configuration> ExperienceStore::best() const {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    // Strict < keeps the earliest observation on ties, so the answer is a
    // deterministic function of the recording history.
    if (entries_[i].observation.response_ms <
        entries_[best].observation.response_ms) {
      best = i;
    }
  }
  return entries_[best].configuration;
}

void ExperienceStore::clear() {
  entries_.clear();
  index_.clear();
}

std::vector<config::Configuration> ExperienceStore::configurations() const {
  std::vector<config::Configuration> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.configuration);
  return out;
}

void ExperienceStore::restore(std::vector<ExperienceEntry> entries) {
  std::unordered_map<config::Configuration, std::size_t,
                     config::ConfigurationHash>
      index;
  index.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    if (entry.observation.count == 0) {
      throw std::invalid_argument(
          "ExperienceStore::restore: entry with zero observation count");
    }
    if (!std::isfinite(entry.observation.response_ms) ||
        entry.observation.response_ms < 0.0) {
      throw std::invalid_argument(
          "ExperienceStore::restore: non-finite or negative response time");
    }
    if (!index.try_emplace(entry.configuration, i).second) {
      throw std::invalid_argument(
          "ExperienceStore::restore: duplicate configuration");
    }
  }
  entries_ = std::move(entries);
  index_ = std::move(index);
}

}  // namespace rac::rl
