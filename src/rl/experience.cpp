#include "rl/experience.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::rl {

ExperienceStore::ExperienceStore(double blend) : blend_(blend) {
  if (blend <= 0.0 || blend > 1.0) {
    throw std::invalid_argument("ExperienceStore: blend outside (0, 1]");
  }
}

void ExperienceStore::record(const config::Configuration& configuration,
                             double response_ms) {
  RAC_EXPECT(std::isfinite(response_ms) && response_ms >= 0.0,
             "ExperienceStore::record: non-finite or negative response time");
  auto& obs = store_[configuration];
  if (obs.count == 0) {
    obs.response_ms = response_ms;
  } else {
    obs.response_ms += blend_ * (response_ms - obs.response_ms);
  }
  ++obs.count;
  if constexpr (util::kAuditEnabled) {
    // Replay validity: every stored entry must stay a finite blend of real
    // measurements with a live observation count.
    for (const auto& [cfg, entry] : store_) {
      RAC_AUDIT(entry.count >= 1,
                "ExperienceStore: entry with zero observation count");
      RAC_AUDIT(std::isfinite(entry.response_ms) && entry.response_ms >= 0.0,
                "ExperienceStore: stored response time went non-finite");
    }
  }
}

std::optional<double> ExperienceStore::response_ms(
    const config::Configuration& configuration) const {
  const auto it = store_.find(configuration);
  if (it == store_.end()) return std::nullopt;
  return it->second.response_ms;
}

std::vector<config::Configuration> ExperienceStore::configurations() const {
  std::vector<config::Configuration> out;
  out.reserve(store_.size());
  for (const auto& [configuration, obs] : store_) out.push_back(configuration);
  return out;
}

}  // namespace rac::rl
