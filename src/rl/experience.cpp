#include "rl/experience.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace rac::rl {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two

bool values_less(const config::Configuration& a,
                 const config::Configuration& b) {
  return a.values() < b.values();
}
}  // namespace

ExperienceStore::ExperienceStore(double blend) : blend_(blend) {
  if (blend <= 0.0 || blend > 1.0) {
    throw std::invalid_argument("ExperienceStore: blend outside (0, 1]");
  }
}

std::size_t ExperienceStore::probe(
    const config::Configuration& configuration) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = configuration.hash() & mask;
  while (slots_[i] != 0) {
    if (entries_[slots_[i] - 1].configuration == configuration) return i;
    i = (i + 1) & mask;
  }
  return i;
}

std::size_t ExperienceStore::find_index(
    const config::Configuration& configuration) const {
  if (slots_.empty()) return npos;
  const std::size_t slot = probe(configuration);
  return slots_[slot] == 0 ? npos : slots_[slot] - 1;
}

void ExperienceStore::grow_slots() {
  // Start from double the current size, but keep doubling until the load
  // factor bound holds: after a bulk restore() the entry list can be far
  // larger than any previous table, and re-inserting into a table smaller
  // than the entry count would probe forever.
  std::size_t capacity = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  while (capacity < (entries_.size() + 1) * 2) capacity *= 2;
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::size_t slot = entries_[i].configuration.hash() & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<std::uint32_t>(i) + 1;
  }
}

void ExperienceStore::insert_sorted(
    const config::Configuration& configuration) {
  const auto at =
      std::lower_bound(sorted_.begin(), sorted_.end(), configuration,
                       values_less);
  sorted_.insert(at, configuration);
}

void ExperienceStore::record(const config::Configuration& configuration,
                             double response_ms) {
  RAC_EXPECT(std::isfinite(response_ms) && response_ms >= 0.0,
             "ExperienceStore::record: non-finite or negative response time");
  if (slots_.size() < (entries_.size() + 1) * 2) grow_slots();
  const std::size_t slot = probe(configuration);
  if (slots_[slot] == 0) {
    slots_[slot] = static_cast<std::uint32_t>(entries_.size()) + 1;
    entries_.push_back({configuration, Observation{response_ms, 1}});
    insert_sorted(configuration);
  } else {
    Observation& obs = entries_[slots_[slot] - 1].observation;
    obs.response_ms += blend_ * (response_ms - obs.response_ms);
    ++obs.count;
  }
  if constexpr (util::kAuditEnabled) {
    // Replay validity: every stored entry must stay a finite blend of real
    // measurements with a live observation count, the probe table must
    // agree with the ordered list, and the canonical list must stay a
    // sorted permutation of it.
    RAC_AUDIT(sorted_.size() == entries_.size(),
              "ExperienceStore: sorted list out of sync with entry list");
    RAC_AUDIT(std::is_sorted(sorted_.begin(), sorted_.end(), values_less),
              "ExperienceStore: canonical list lost its order");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& entry = entries_[i];
      RAC_AUDIT(entry.observation.count >= 1,
                "ExperienceStore: entry with zero observation count");
      RAC_AUDIT(std::isfinite(entry.observation.response_ms) &&
                    entry.observation.response_ms >= 0.0,
                "ExperienceStore: stored response time went non-finite");
      RAC_AUDIT(find_index(entry.configuration) == i,
                "ExperienceStore: probe table points at wrong slot");
    }
  }
}

std::optional<double> ExperienceStore::response_ms(
    const config::Configuration& configuration) const {
  const std::size_t i = find_index(configuration);
  if (i == npos) return std::nullopt;
  return entries_[i].observation.response_ms;
}

std::optional<config::Configuration> ExperienceStore::best() const {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    // Strict < keeps the earliest observation on ties, so the answer is a
    // deterministic function of the recording history.
    if (entries_[i].observation.response_ms <
        entries_[best].observation.response_ms) {
      best = i;
    }
  }
  return entries_[best].configuration;
}

void ExperienceStore::clear() {
  entries_.clear();
  slots_.clear();
  sorted_.clear();
}

std::vector<config::Configuration> ExperienceStore::configurations() const {
  std::vector<config::Configuration> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.configuration);
  return out;
}

void ExperienceStore::restore(std::vector<ExperienceEntry> entries) {
  std::vector<config::Configuration> sorted;
  sorted.reserve(entries.size());
  for (const auto& entry : entries) {
    if (entry.observation.count == 0) {
      throw std::invalid_argument(
          "ExperienceStore::restore: entry with zero observation count");
    }
    if (!std::isfinite(entry.observation.response_ms) ||
        entry.observation.response_ms < 0.0) {
      throw std::invalid_argument(
          "ExperienceStore::restore: non-finite or negative response time");
    }
    sorted.push_back(entry.configuration);
  }
  std::sort(sorted.begin(), sorted.end(), values_less);
  // Configurations are exactly their value arrays, so canonical-order
  // neighbors catch every duplicate.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1] == sorted[i]) {
      throw std::invalid_argument(
          "ExperienceStore::restore: duplicate configuration");
    }
  }
  entries_ = std::move(entries);
  sorted_ = std::move(sorted);
  slots_.clear();
  grow_slots();
}

}  // namespace rac::rl
