// Batch temporal-difference learning (paper Algorithm 1).
//
// The learner sweeps a set of start states; from each it follows an
// epsilon-greedy trajectory of bounded length through the deterministic
// reconfiguration MDP (state = configuration, action = one-parameter
// inc/dec/keep). At every visited state it backs up ALL actions:
//
//   for each a:  Q(s, a) += alpha * (r(s') + gamma * max_a' Q(s', a') - Q(s, a))
//
// and repeats sweeps until the largest update falls below theta or the
// sweep budget is exhausted. Rewards come from a caller-supplied model of
// the next state's performance -- measured experience, regression
// predictions, or a blend (the paper's offline pre-learning and online
// batch retraining both instantiate this).
//
// Implementation note: the paper's pseudo-code updates only the single
// epsilon-greedy action per step. Because the reward here is model-based
// (no environment interaction is spent), a synchronous full-action backup
// at each visited state gives the same fixed point with orders-of-magnitude
// fewer sweeps; the epsilon-greedy walk still decides *which* states are
// swept, as in the paper.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "config/configuration.hpp"
#include "config/space.hpp"
#include "rl/qtable.hpp"
#include "util/rng.hpp"

namespace rac::obs {
class Registry;
}  // namespace rac::obs

namespace rac::rl {

/// Reward of *entering* a state (the paper's r = SLA - perf, normalized).
using RewardFn = std::function<double(const config::Configuration&)>;

struct TdParams {
  double alpha = 0.1;    // learning rate
  double gamma = 0.9;    // discount
  double epsilon = 0.1;  // exploration rate of the sweep policy
  double theta = 1e-3;   // convergence threshold on the max update
  int trajectory_limit = 10;  // LIMIT: steps per start state per sweep
  int max_sweeps = 200;       // hard bound on `repeat` iterations
};

struct TdResult {
  int sweeps = 0;
  double final_error = 0.0;
  bool converged = false;
};

/// Run Algorithm 1 over `start_states`, updating `table` in place.
/// `registry` receives the learner's rl.td.* telemetry; nullptr means
/// obs::default_registry(). Handles are resolved per call (the lookup is
/// mutex-guarded), so concurrent pool tasks may train against different
/// registries safely.
TdResult batch_train(QTable& table,
                     std::span<const config::Configuration> start_states,
                     const RewardFn& reward, const TdParams& params,
                     util::Rng& rng, obs::Registry* registry = nullptr);

}  // namespace rac::rl
