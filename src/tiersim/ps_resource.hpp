// A multi-core processor-sharing resource for the DES.
//
// Models one VM's CPU: `cores` processors shared by the active jobs.
// With n active jobs each job progresses at rate min(1, cores/n), further
// divided by a caller-supplied slowdown factor that models concurrency
// overhead (context switching, lock contention, memory pressure). The
// slowdown is re-evaluated whenever the active set changes.
//
// Implementation: virtual-work bookkeeping. On every state change the
// remaining work of all active jobs is advanced by elapsed * rate, then the
// next completion event is (re)scheduled. O(n) per state change.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tiersim/event_queue.hpp"

namespace rac::tiersim {

using JobId = std::uint64_t;

/// Extra service slowdown as a function of the number of active jobs.
/// Must return >= 1.0. Evaluated at every state change.
using SlowdownFn = std::function<double(int active_jobs)>;

class PsResource {
 public:
  /// `cores` > 0. A null `slowdown` means no overhead (always 1.0).
  PsResource(EventQueue& queue, int cores, SlowdownFn slowdown = nullptr);

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Submit a job with `demand` seconds of pure CPU work; `on_complete`
  /// fires from the event loop when the job finishes.
  JobId submit(double demand, EventFn on_complete);

  /// Change the core count at run time (VM reallocation). Active jobs keep
  /// their remaining work and continue at the new rate.
  void set_cores(int cores);

  int cores() const noexcept { return cores_; }
  int active_jobs() const noexcept { return static_cast<int>(jobs_.size()); }

  /// Total CPU-seconds of work completed (for utilization accounting).
  double work_done() const noexcept { return work_done_; }

  /// Jobs ever submitted to this resource (monotonic; the DES folds the
  /// per-interval delta into the metrics registry).
  std::uint64_t jobs_submitted() const noexcept { return next_id_ - 1; }

  /// Time-integral of the active job count (for mean-concurrency stats).
  double busy_job_seconds() const noexcept;

 private:
  struct Job {
    double remaining;  // seconds of work left at unit rate
    EventFn on_complete;
  };

  EventQueue& queue_;
  int cores_;
  SlowdownFn slowdown_;
  // Active jobs in submission order (flat storage: the advance loop is a
  // contiguous sweep, and completions fire oldest-submitted first, which
  // is deterministic where hash-map iteration order was merely stable).
  std::vector<Job> jobs_;
  JobId next_id_ = 1;
  double last_update_ = 0.0;
  double current_rate_ = 0.0;  // per-job progress rate
  EventHandle completion_event_;
  double work_done_ = 0.0;
  mutable double job_seconds_ = 0.0;

  double per_job_rate() const;
  void advance();
  void reschedule();
  void on_completion_timer();
};

}  // namespace rac::tiersim
