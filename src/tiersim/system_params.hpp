// Shared physical constants of the simulated three-tier deployment.
//
// Both the discrete-event simulator (tiersim::ThreeTierSystem) and the
// analytic environment model (env::AnalyticEnv) derive their behaviour from
// this one parameter set, so the two fidelities stay mutually consistent.
// Values are calibrated so the simulated testbed reproduces the qualitative
// phenomena the paper's evaluation rests on (see DESIGN.md section 2).
#pragma once

namespace rac::tiersim {

/// Resources of one virtual machine.
struct VmSpec {
  int vcpus = 4;
  double mem_mb = 4096.0;
};

struct SystemParams {
  // --- service demands ----------------------------------------------------
  /// Per-tier multipliers applied to the TPC-W interaction demand tables
  /// (the tables are normalized to a fast reference CPU; the simulated
  /// testbed's 2006-era Xeons and interpreted JSP/SQL stacks are slower).
  double demand_scale_web = 3.0;
  double demand_scale_app = 3.5;
  double demand_scale_db = 2.8;

  // --- memory footprint (MB) -------------------------------------------
  double os_base_mem_mb = 400.0;      // guest OS + services, per VM
  double web_worker_mem_mb = 3.0;     // one Apache prefork worker
  double app_thread_mem_mb = 2.2;     // one Tomcat request thread
  double session_mem_mb = 0.4;        // one live HTTP session
  double db_min_buffer_mb = 64.0;     // MySQL buffer pool floor

  // --- database behaviour ----------------------------------------------
  /// Hot working set (MB) at reference db intensity; the mix's scaled db
  /// demand relative to `db_ws_reference_ms` scales this (heavier query
  /// mixes touch more data).
  double db_working_set_mb = 1800.0;
  double db_ws_reference_ms = 50.0;
  /// Demand multiplier slope once the working set exceeds the buffer pool:
  /// demand *= 1 + miss_coeff * (ws/buffer - 1).
  double db_miss_coeff = 0.6;
  /// Extra demand per *additional* concurrent writer (lock contention).
  double write_lock_coeff = 0.10;

  // --- CPU concurrency overhead ----------------------------------------
  /// Slowdown per active job on the web VM (context switching).
  double web_concurrency_ovh = 0.0012;
  /// Slowdown per active job on the app+db VM.
  double app_concurrency_ovh = 0.0008;
  /// Quadratic swap slowdown: factor = 1 + coeff * overcommit_fraction^2.
  double swap_slowdown_coeff = 60.0;

  // --- connection & lifecycle costs (milliseconds) ----------------------
  double conn_setup_ms = 7.0;        // TCP accept + handshake on web VM
  double session_rebuild_ms = 40.0;  // db work to recreate an expired session
  double fork_cost_ms = 4.0;         // web CPU burned per forked worker
  double fork_latency_s = 0.25;      // time before a forked worker serves
  double thread_spawn_cost_ms = 2.0; // app CPU per new Tomcat thread

  // --- pool management ---------------------------------------------------
  double maintenance_interval_s = 1.0;  // spare-pool evaluation period
  int max_forks_per_interval = 32;      // Apache-style fork ramp cap
  int initial_workers = 32;             // web workers at simulator start
  int initial_threads = 24;             // app threads at simulator start
};

}  // namespace rac::tiersim
