#include "tiersim/web_system.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "util/contracts.hpp"
#include "workload/dynamic.hpp"

namespace rac::tiersim {

namespace {
using config::Configuration;
using config::ParamId;

constexpr double kMsPerSecond = 1000.0;

/// The setup's mix blend with the all-zero default resolved to one-hot on
/// the base mix (so downstream code always blends, and the one-hot blend
/// is bitwise the single-mix computation).
std::array<double, workload::kNumMixes> resolve_weights(
    const SimSetup& setup) {
  double total = 0.0;
  for (const double w : setup.mix_weights) {
    RAC_EXPECT(w >= 0.0, "SimSetup: negative mix weight");
    total += w;
  }
  if (total <= 0.0) {
    return workload::one_hot_target(setup.mix).mix_weights;
  }
  return setup.mix_weights;
}

/// Largest-remainder apportionment of `n` browsers to the mixes:
/// deterministic (ties break toward the lower enum index), exact for
/// one-hot weights, and off by at most one browser per mix otherwise.
std::array<int, workload::kNumMixes> apportion_browsers(
    int n, const std::array<double, workload::kNumMixes>& weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  std::array<int, workload::kNumMixes> counts{};
  std::array<double, workload::kNumMixes> remainders{};
  int assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double share = static_cast<double>(n) * weights[i] / total;
    counts[i] = static_cast<int>(std::floor(share));
    remainders[i] = share - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  while (assigned < n) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < weights.size(); ++i) {
      if (remainders[i] > remainders[best]) best = i;
    }
    ++counts[best];
    remainders[best] = -1.0;
    ++assigned;
  }
  return counts;
}
}  // namespace

struct ThreeTierSystem::Impl {
  // ---- immutable setup ----------------------------------------------------
  SystemParams P;
  workload::MixType mix;
  std::array<double, workload::kNumMixes> mix_weights{};
  double think_scale = 1.0;
  VmSpec web_vm;
  VmSpec app_vm;
  int num_clients;
  obs::Registry* registry;  // nullptr -> process default, resolved per use

  // ---- live configuration --------------------------------------------------
  Configuration cfg;

  // ---- simulation infrastructure -------------------------------------------
  EventQueue q;
  util::Rng rng;
  PsResource web_cpu;
  PsResource app_cpu;
  double web_swap_factor = 1.0;
  double app_swap_factor = 1.0;

  // ---- one in-flight request ------------------------------------------------
  struct Request {
    int browser = -1;
    const workload::InteractionSpec* spec = nullptr;
    double issued_at = 0.0;
    double accept_enqueued_at = 0.0;
    double app_enqueued_at = 0.0;
    double accept_wait_s = 0.0;
    double app_wait_s = 0.0;
    bool reused_connection = false;
    bool rebuilt_session = false;
    bool spawned_thread = false;
    bool counted_as_writer = false;
    bool new_session = false;
    // Database demand computed by the app phase, parked here so the app
    // completion lambda captures only [this, req] -- a third capture would
    // push std::function past its small-buffer size and heap-allocate on
    // every request.
    double pending_db_ms = 0.0;
  };

  // ---- per-browser state ----------------------------------------------------
  struct Browser {
    workload::SessionGenerator gen;
    workload::BrowserStep next_step{};
    bool has_connection = false;
    EventHandle keepalive_timer;
    bool session_live = false;
    double session_last_use = 0.0;

    explicit Browser(workload::SessionGenerator g) : gen(std::move(g)) {}
  };
  std::vector<Browser> browsers;

  // Request arena: all Request objects are owned here; completed requests
  // go on a free list for reuse, and in-flight ones are reclaimed when the
  // simulator is destroyed.
  std::vector<std::unique_ptr<Request>> request_arena;
  std::vector<Request*> request_free_list;

  Request* alloc_request() {
    if (!request_free_list.empty()) {
      Request* req = request_free_list.back();
      request_free_list.pop_back();
      *req = Request{};
      return req;
    }
    request_arena.push_back(
        std::make_unique<Request>());  // rac-lint: allow(hot-path-alloc) arena growth, amortized by the free list
    return request_arena.back().get();
  }

  void free_request(Request* req) { request_free_list.push_back(req); }

  // ---- web tier (Apache prefork) --------------------------------------------
  int web_total = 0;      // live worker processes
  int web_busy = 0;       // serving a request
  int web_ka_held = 0;    // parked on an idle keep-alive connection
  int web_forking = 0;    // forked, not yet serving
  std::deque<Request*> accept_queue;

  // ---- app tier (Tomcat) ------------------------------------------------------
  int app_total = 0;  // live threads
  int app_busy = 0;
  std::deque<Request*> app_queue;

  // ---- database (MySQL, co-located on the app VM) ----------------------------
  int concurrent_writers = 0;
  double db_buffer_mb = 0.0;
  double db_miss_mult = 1.0;
  double db_working_set_mb = 0.0;

  // ---- measurement ------------------------------------------------------------
  bool measuring = false;
  std::vector<double> response_samples_ms;
  util::RunningStats accept_wait_ms;
  util::RunningStats app_wait_ms;
  std::uint64_t completed = 0;
  std::uint64_t reused = 0;
  std::uint64_t session_requests = 0;
  std::uint64_t session_rebuilds = 0;
  std::uint64_t forks = 0;
  util::RunningStats web_pool_size;
  util::RunningStats app_pool_size;
  util::RunningStats buffer_pool_mb;

  Impl(const SystemParams& params, const SimSetup& setup)
      : P(params),
        mix(setup.mix),
        mix_weights(resolve_weights(setup)),
        think_scale(setup.think_scale),
        web_vm(setup.web_vm),
        app_vm(setup.app_vm),
        num_clients(setup.num_clients),
        registry(setup.registry),
        cfg(setup.configuration),
        rng(setup.seed),
        web_cpu(q, setup.web_vm.vcpus,
                [this](int n) {
                  return (1.0 + P.web_concurrency_ovh * n) * web_swap_factor;
                }),
        app_cpu(q, setup.app_vm.vcpus, [this](int n) {
          return (1.0 + P.app_concurrency_ovh * n) * app_swap_factor;
        }) {
    if (setup.num_clients < 1) {
      throw std::invalid_argument("ThreeTierSystem: need at least one client");
    }
    RAC_EXPECT(setup.think_scale > 0.0, "SimSetup: think_scale must be > 0");
    web_total = std::min(P.initial_workers, cfg.value(ParamId::kMaxClients));
    app_total = std::min(P.initial_threads, cfg.value(ParamId::kMaxThreads));

    // Browsers are built in enum-order blocks per mix quota; under a
    // one-hot blend every browser gets `mix` with the same split sequence
    // as the single-mix population, so the legacy stream is reproduced
    // bitwise.
    const auto counts = apportion_browsers(num_clients, mix_weights);
    browsers.reserve(static_cast<std::size_t>(num_clients));
    for (std::size_t m = 0; m < counts.size(); ++m) {
      for (int i = 0; i < counts[m]; ++i) {
        browsers.emplace_back(workload::SessionGenerator(
            workload::kAllMixes[m], rng.split(), true, think_scale));
      }
    }
    db_working_set_mb = working_set_mb();
    update_memory_model();
    for (int i = 0; i < num_clients; ++i) schedule_browser(i);
    schedule_maintenance();
  }

  // ---- workload-derived quantities ------------------------------------------

  double working_set_mb() const {
    const auto stats = workload::blend_mix_stats(mix_weights);
    const double scaled_db = stats.db_demand_ms * P.demand_scale_db;
    return P.db_working_set_mb * scaled_db / P.db_ws_reference_ms;
  }

  // ---- browser loop -----------------------------------------------------------

  void schedule_browser(int b) {
    auto& browser = browsers[static_cast<std::size_t>(b)];
    browser.next_step = browser.gen.next();
    q.schedule_in(browser.next_step.think_time_s, [this, b] { issue_request(b); });
  }

  void issue_request(int b) {
    auto& browser = browsers[static_cast<std::size_t>(b)];
    Request* req = alloc_request();
    req->browser = b;
    req->spec = &workload::interaction(browser.next_step.interaction);
    req->issued_at = q.now();
    req->new_session = browser.next_step.new_session;

    if (browser.next_step.new_session) {
      // A fresh visit: the old session cookie is gone and the browser
      // opens a new TCP connection.
      browser.session_live = false;
      if (browser.has_connection) release_connection(b);
    }

    if (browser.has_connection) {
      // Reuse the kept-alive worker: no accept queue, no handshake.
      q.cancel(browser.keepalive_timer);
      browser.keepalive_timer = EventHandle{};
      browser.has_connection = false;
      --web_ka_held;
      ++web_busy;
      req->reused_connection = true;
      start_web_phase(req);
      return;
    }

    if (web_idle() > 0) {
      ++web_busy;
      start_web_phase(req);
    } else {
      req->accept_enqueued_at = q.now();
      accept_queue.push_back(req);
    }
  }

  int web_idle() const noexcept { return web_total - web_busy - web_ka_held; }
  int app_idle() const noexcept { return app_total - app_busy; }

  void release_connection(int b) {
    auto& browser = browsers[static_cast<std::size_t>(b)];
    RAC_INVARIANT(browser.has_connection,
                  "release_connection: browser holds no connection");
    q.cancel(browser.keepalive_timer);
    browser.keepalive_timer = EventHandle{};
    browser.has_connection = false;
    --web_ka_held;
    drain_accept_queue();
  }

  void drain_accept_queue() {
    while (!accept_queue.empty() && web_idle() > 0) {
      Request* req = accept_queue.front();
      accept_queue.pop_front();
      req->accept_wait_s = q.now() - req->accept_enqueued_at;
      ++web_busy;
      start_web_phase(req);
    }
  }

  // ---- web phase ---------------------------------------------------------------

  void start_web_phase(Request* req) {
    double demand_ms = req->spec->web_demand_ms * P.demand_scale_web;
    if (!req->reused_connection) demand_ms += P.conn_setup_ms;
    web_cpu.submit(demand_ms / kMsPerSecond, [this, req] { enter_app_tier(req); });
  }

  // ---- app phase ---------------------------------------------------------------

  void enter_app_tier(Request* req) {
    if (app_idle() > 0) {
      ++app_busy;
      start_app_phase(req);
    } else if (app_total < cfg.value(ParamId::kMaxThreads)) {
      // Tomcat grows the pool on demand up to MaxThreads.
      ++app_total;
      ++app_busy;
      req->spawned_thread = true;
      start_app_phase(req);
    } else {
      req->app_enqueued_at = q.now();
      app_queue.push_back(req);
    }
  }

  void start_app_phase(Request* req) {
    auto& browser = browsers[static_cast<std::size_t>(req->browser)];
    double extra_db_ms = 0.0;
    if (req->spec->uses_session) {
      if (measuring) ++session_requests;
      const double timeout_s =
          60.0 * static_cast<double>(cfg.value(ParamId::kSessionTimeout));
      const bool timed_out =
          browser.session_live &&
          (q.now() - browser.session_last_use) > timeout_s;
      if (timed_out || !browser.session_live) {
        // Rebuild (or create) the server-side session from the database.
        extra_db_ms += P.session_rebuild_ms;
        // A *rebuild* is a mid-session request whose session state is gone
        // (timed out here, or already reaped by the maintenance pass) --
        // the user is still shopping and eats the rebuild latency. First
        // requests of a fresh session are plain creates.
        if (!req->new_session) {
          req->rebuilt_session = true;
          if (measuring) ++session_rebuilds;
        }
      }
      browser.session_live = true;
      browser.session_last_use = q.now();
    }

    double demand_ms = req->spec->app_demand_ms * P.demand_scale_app;
    if (req->spawned_thread) demand_ms += P.thread_spawn_cost_ms;
    req->pending_db_ms =
        req->spec->db_demand_ms * P.demand_scale_db + extra_db_ms;
    app_cpu.submit(demand_ms / kMsPerSecond, [this, req] { start_db_phase(req); });
  }

  // ---- db phase -----------------------------------------------------------------

  void start_db_phase(Request* req) {
    double demand_ms = req->pending_db_ms * db_miss_mult;
    if (req->spec->is_write) {
      // Lock contention: each additional concurrent writer stretches the
      // critical sections.
      demand_ms *= 1.0 + P.write_lock_coeff * concurrent_writers;
      ++concurrent_writers;
      req->counted_as_writer = true;
    }
    app_cpu.submit(demand_ms / kMsPerSecond, [this, req] { finish_request(req); });
  }

  // ---- completion ------------------------------------------------------------------

  void finish_request(Request* req) {
    if (req->counted_as_writer) --concurrent_writers;

    // Release the app thread.
    --app_busy;
    if (!app_queue.empty()) {
      Request* next = app_queue.front();
      app_queue.pop_front();
      next->app_wait_s = q.now() - next->app_enqueued_at;
      ++app_busy;
      start_app_phase(next);
    }

    // Record the measurement.
    if (measuring) {
      const double rt_ms = (q.now() - req->issued_at) * kMsPerSecond;
      response_samples_ms.push_back(rt_ms);
      accept_wait_ms.add(req->accept_wait_s * kMsPerSecond);
      app_wait_ms.add(req->app_wait_s * kMsPerSecond);
      ++completed;
      if (req->reused_connection) ++reused;
    }

    // Decide the connection's fate, then let the browser think.
    const int b = req->browser;
    auto& browser = browsers[static_cast<std::size_t>(b)];
    --web_busy;
    browser.next_step = browser.gen.next();
    const int ka_timeout = cfg.value(ParamId::kKeepAliveTimeout);
    if (!browser.next_step.new_session && ka_timeout > 0) {
      // Park the worker on the idle connection.
      browser.has_connection = true;
      ++web_ka_held;
      browser.keepalive_timer = q.schedule_in(
          static_cast<double>(ka_timeout), [this, b] { keepalive_expired(b); });
    }

    q.schedule_in(browser.next_step.think_time_s, [this, b] { issue_request(b); });
    free_request(req);

    drain_accept_queue();
  }

  void keepalive_expired(int b) {
    auto& browser = browsers[static_cast<std::size_t>(b)];
    browser.keepalive_timer = EventHandle{};
    RAC_INVARIANT(browser.has_connection,
                  "keepalive_expired: browser holds no connection");
    browser.has_connection = false;
    --web_ka_held;
    drain_accept_queue();
  }

  // ---- pool maintenance & memory model --------------------------------------------

  void schedule_maintenance() {
    q.schedule_in(P.maintenance_interval_s, [this] {
      maintain_pools();
      update_memory_model();
      if (measuring) {
        web_pool_size.add(static_cast<double>(web_total));
        app_pool_size.add(static_cast<double>(app_total));
        buffer_pool_mb.add(db_buffer_mb);
      }
      schedule_maintenance();
    });
  }

  void maintain_pools() {
    const int max_clients = cfg.value(ParamId::kMaxClients);
    const int min_spare = cfg.value(ParamId::kMinSpareServers);
    const int max_spare = cfg.value(ParamId::kMaxSpareServers);

    // Enforce a shrunken MaxClients first (idle workers die immediately).
    if (web_total > max_clients) {
      const int excess = std::min(web_total - max_clients, web_idle());
      web_total -= excess;
    }

    const int idle = web_idle();
    if (idle < min_spare) {
      // Fork toward MinSpareServers, bounded by the ramp cap and MaxClients.
      int deficit = min_spare - idle;
      deficit = std::min(deficit, P.max_forks_per_interval);
      deficit = std::min(deficit, max_clients - web_total - web_forking);
      for (int i = 0; i < deficit; ++i) {
        ++web_forking;
        if (measuring) ++forks;
        // The fork burns CPU on the web VM...
        web_cpu.submit(P.fork_cost_ms / kMsPerSecond, [] {});
        // ...and the child serves only after the fork latency.
        q.schedule_in(P.fork_latency_s, [this] {
          --web_forking;
          ++web_total;
          drain_accept_queue();
        });
      }
    } else if (idle > max_spare) {
      // Apache kills one idle child per maintenance cycle.
      const int excess = std::min(idle - max_spare, idle);
      web_total -= std::min(excess, 1 + excess / 4);
    }

    // Tomcat thread pool: spares managed analogously (spawning is cheap and
    // immediate; the cost is charged when a request triggers the spawn).
    const int max_threads = cfg.value(ParamId::kMaxThreads);
    const int min_spare_t = cfg.value(ParamId::kMinSpareThreads);
    const int max_spare_t = cfg.value(ParamId::kMaxSpareThreads);
    if (app_total > max_threads) {
      app_total = std::max(app_busy, max_threads);
    }
    const int idle_t = app_idle();
    if (idle_t < min_spare_t && app_total < max_threads) {
      const int grow = std::min(min_spare_t - idle_t, max_threads - app_total);
      app_total += grow;
      app_cpu.submit(grow * P.thread_spawn_cost_ms / kMsPerSecond, [] {});
    } else if (idle_t > max_spare_t) {
      const int excess = idle_t - max_spare_t;
      app_total -= std::min(excess, 1 + excess / 4);
    }
  }

  void update_memory_model() {
    // Web VM: workers are the footprint.
    const double web_used =
        P.os_base_mem_mb +
        (web_total + web_forking) * P.web_worker_mem_mb;
    web_swap_factor = swap_factor(web_used, web_vm.mem_mb);

    // App VM: threads + live sessions; the database buffer pool gets the
    // remainder.
    int live_sessions = 0;
    const double timeout_s =
        60.0 * static_cast<double>(cfg.value(ParamId::kSessionTimeout));
    for (auto& browser : browsers) {
      if (browser.session_live &&
          (q.now() - browser.session_last_use) <= timeout_s) {
        ++live_sessions;
      } else {
        browser.session_live = false;
      }
    }
    const double app_used = P.os_base_mem_mb + app_total * P.app_thread_mem_mb +
                            live_sessions * P.session_mem_mb;
    app_swap_factor = swap_factor(app_used, app_vm.mem_mb);
    db_buffer_mb = std::max(P.db_min_buffer_mb, app_vm.mem_mb - app_used);
    db_miss_mult =
        1.0 +
        P.db_miss_coeff * std::max(0.0, db_working_set_mb / db_buffer_mb - 1.0);
  }

  double swap_factor(double used_mb, double total_mb) const {
    const double over = std::max(0.0, used_mb - total_mb) / total_mb;
    return 1.0 + P.swap_slowdown_coeff * over * over;
  }

  // ---- measurement window -----------------------------------------------------------

  void reset_window_stats() {
    response_samples_ms.clear();
    accept_wait_ms.reset();
    app_wait_ms.reset();
    completed = 0;
    reused = 0;
    session_requests = 0;
    session_rebuilds = 0;
    forks = 0;
    web_pool_size.reset();
    app_pool_size.reset();
    buffer_pool_mb.reset();
  }

  Measurement collect(double window_s) const {
    Measurement m;
    m.completed = completed;
    m.throughput_rps = static_cast<double>(completed) / window_s;
    if (!response_samples_ms.empty()) {
      m.mean_response_ms = util::mean_of(response_samples_ms);
      m.p95_response_ms = util::percentile(response_samples_ms, 95.0);
    }
    m.mean_accept_wait_ms = accept_wait_ms.mean();
    m.mean_app_wait_ms = app_wait_ms.mean();
    m.connection_reuse_rate =
        completed == 0 ? 0.0
                       : static_cast<double>(reused) / static_cast<double>(completed);
    m.session_rebuild_rate =
        session_requests == 0
            ? 0.0
            : static_cast<double>(session_rebuilds) /
                  static_cast<double>(session_requests);
    m.mean_web_workers = web_pool_size.mean();
    m.mean_app_threads = app_pool_size.mean();
    m.mean_db_buffer_mb = buffer_pool_mb.mean();
    m.forks = forks;
    return m;
  }
};

ThreeTierSystem::ThreeTierSystem(const SystemParams& params,
                                 const SimSetup& setup)
    : impl_(std::make_unique<Impl>(  // rac-lint: allow(hot-path-alloc) one-time pimpl construction
          params, setup)) {}

ThreeTierSystem::~ThreeTierSystem() = default;

Measurement ThreeTierSystem::run(double warmup_s, double measure_s) {
  if (warmup_s < 0.0 || measure_s <= 0.0) {
    throw std::invalid_argument("ThreeTierSystem::run: bad window");
  }
  // Handles are resolved per interval against the injected registry (an
  // interval simulates seconds of virtual time; the name lookup is noise).
  // Function-local statics here were the PR 2 metrics-routing bug class:
  // they pin the counters to whichever registry the first caller used.
  obs::Registry& registry = obs::registry_or_default(impl_->registry);
  obs::Counter& c_intervals = registry.counter("tiersim.measurement_intervals");
  obs::Counter& c_completed = registry.counter("tiersim.completed_requests");
  obs::Counter& c_forks = registry.counter("tiersim.forks");
  obs::Counter& c_ps_jobs = registry.counter("tiersim.ps_jobs_submitted");
  obs::Histogram& h_interval =
      registry.histogram("tiersim.interval_us", obs::latency_us_bounds());
  const obs::ScopedTimer timer(&h_interval);
  const obs::ProfileScope profile("tiersim.interval");

  const std::uint64_t ps_jobs_before =
      impl_->web_cpu.jobs_submitted() + impl_->app_cpu.jobs_submitted();
  impl_->measuring = false;
  impl_->q.run_until(impl_->q.now() + warmup_s);
  impl_->reset_window_stats();
  impl_->measuring = true;
  impl_->q.run_until(impl_->q.now() + measure_s);
  impl_->measuring = false;
  Measurement measurement = impl_->collect(measure_s);
  c_intervals.add(1);
  c_completed.add(measurement.completed);
  c_forks.add(measurement.forks);
  c_ps_jobs.add(impl_->web_cpu.jobs_submitted() +
                impl_->app_cpu.jobs_submitted() - ps_jobs_before);
  return measurement;
}

void ThreeTierSystem::reconfigure(const config::Configuration& configuration) {
  impl_->cfg = configuration;
  // Pool sizes adapt through the next maintenance cycles; the memory model
  // refreshes immediately so a pathological setting is felt promptly.
  impl_->update_memory_model();
}

void ThreeTierSystem::set_app_vm(const VmSpec& vm) {
  impl_->app_vm = vm;
  impl_->app_cpu.set_cores(vm.vcpus);
  impl_->update_memory_model();
}

const config::Configuration& ThreeTierSystem::configuration() const noexcept {
  return impl_->cfg;
}

double ThreeTierSystem::now() const noexcept { return impl_->q.now(); }

}  // namespace rac::tiersim
