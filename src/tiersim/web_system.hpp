// Discrete-event simulation of the paper's testbed: a three-tier
// Apache / Tomcat / MySQL website on two VMs, driven by TPC-W emulated
// browsers.
//
// VM 1 (fixed) hosts the Apache web tier; VM 2 (resizable -- the paper's
// Level-1/2/3 reallocation target) hosts Tomcat and MySQL. The simulator
// models the mechanisms the eight Table-1 parameters act through:
//
//   * MaxClients        -- cap on web workers; a browser needs a worker for
//                          the whole request, and keep-alive holds workers
//                          between requests. Too few => accept-queue waits;
//                          too many => concurrency overhead and memory.
//   * KeepAlive timeout -- how long an idle connection keeps its worker.
//                          Long enough to cover think times saves the
//                          connection-setup cost; longer only wastes slots.
//   * Min/MaxSpareServers - idle-worker pool bounds; forks cost CPU and
//                          latency, idle workers cost memory.
//   * MaxThreads        -- Tomcat request threads (queueing vs memory).
//   * Session timeout   -- expired sessions are rebuilt from the database;
//                          live sessions consume app-VM memory.
//   * min/maxSpareThreads - thread-pool churn vs idle memory.
//
// The database shares the app VM: its buffer pool is whatever memory the
// threads and sessions leave, and a shrinking pool inflates every database
// demand (cache misses). Write transactions add lock contention.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "config/configuration.hpp"
#include "tiersim/event_queue.hpp"
#include "tiersim/ps_resource.hpp"
#include "tiersim/system_params.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/session.hpp"
#include "workload/tpcw.hpp"

namespace rac::obs {
class Registry;
}

namespace rac::tiersim {

struct SimSetup {
  config::Configuration configuration;
  workload::MixType mix = workload::MixType::kShopping;
  VmSpec web_vm{2, 2048.0};
  VmSpec app_vm{4, 4096.0};
  int num_clients = 400;
  std::uint64_t seed = 1;
  /// Metrics destination; nullptr means the process-wide default registry.
  obs::Registry* registry = nullptr;
  /// Optional dynamic-traffic blend (weights over workload::kAllMixes in
  /// enum order). All-zero (the default) means every browser runs `mix`;
  /// otherwise browsers are apportioned to mixes by largest-remainder
  /// quotas in enum order -- deterministic, and a one-hot vector
  /// reproduces the single-mix population bitwise.
  std::array<double, 3> mix_weights{};
  /// Multiplier on every browser's think and pause means (> 0).
  double think_scale = 1.0;
};

/// Aggregate measurement over one observation window.
struct Measurement {
  double mean_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double throughput_rps = 0.0;
  std::uint64_t completed = 0;
  double mean_accept_wait_ms = 0.0;   // time spent waiting for a web worker
  double mean_app_wait_ms = 0.0;      // time spent waiting for an app thread
  double connection_reuse_rate = 0.0; // fraction of requests on a kept-alive
                                      // connection
  double session_rebuild_rate = 0.0;  // fraction of session requests that hit
                                      // an expired session
  double mean_web_workers = 0.0;      // average worker-pool size
  double mean_app_threads = 0.0;      // average thread-pool size
  double mean_db_buffer_mb = 0.0;     // average database buffer pool
  std::uint64_t forks = 0;            // workers forked during the window
};

class ThreeTierSystem {
 public:
  ThreeTierSystem(const SystemParams& params, const SimSetup& setup);
  ~ThreeTierSystem();

  ThreeTierSystem(const ThreeTierSystem&) = delete;
  ThreeTierSystem& operator=(const ThreeTierSystem&) = delete;

  /// Advance the simulation by `warmup_s` (statistics discarded), then by
  /// `measure_s` and return the window's measurement. Callable repeatedly;
  /// system state (pools, sessions, connections) persists across calls.
  Measurement run(double warmup_s, double measure_s);

  /// Online reconfiguration, as the RAC configuration controller performs
  /// between measurement intervals. Takes effect from the current virtual
  /// time (pools shrink/grow via the spare-pool maintenance rules).
  void reconfigure(const config::Configuration& configuration);

  /// VM resource reallocation (the paper's Level change on the app+db VM).
  void set_app_vm(const VmSpec& vm);

  const config::Configuration& configuration() const noexcept;
  double now() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rac::tiersim
