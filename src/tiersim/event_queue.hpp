// Discrete-event simulation core: a virtual clock and a cancellable
// future-event list.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a simulation is
// a pure function of its inputs and RNG seed.
//
// Storage: callbacks live in a slot arena recycled through a free list --
// scheduling an event is a vector push, not a hash-map node allocation.
// Handles encode (slot generation, slot index); the generation bumps when
// a slot fires or is cancelled, so stale handles and heap tombstones are
// recognized with two loads and no lookup.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rac::tiersim {

using EventFn = std::function<void()>;

/// Opaque handle for cancellation. Default-constructed handles are invalid.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class EventQueue {
 public:
  double now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute virtual time `at` (>= now).
  EventHandle schedule_at(double at, EventFn fn);

  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_in(double delay, EventFn fn);

  /// Cancel a scheduled event. Idempotent; cancelling an already-fired or
  /// invalid handle is a no-op. Returns true if the event was pending.
  bool cancel(EventHandle handle);

  bool empty() const noexcept { return pending_count_ == 0; }
  std::size_t pending() const noexcept { return pending_count_; }

  /// Run all events with time <= `until`, then advance the clock to
  /// exactly `until`. Returns the number of events executed.
  std::uint64_t run_until(double until);

  /// Execute the single next event, if any. Returns false when empty.
  bool step();

  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// One arena cell: the callback of the currently scheduled event (when
  /// live) and the generation stamped into its handle. A heap entry or
  /// user handle whose generation no longer matches is stale.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  static std::uint64_t encode(std::uint32_t gen, std::uint32_t index) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }
  /// Slot index of a live event id, or npos for stale/invalid ids.
  std::size_t live_slot(std::uint64_t id) const noexcept {
    const std::uint64_t low = id & 0xffffffffULL;
    if (low == 0) return npos;
    const std::size_t index = static_cast<std::size_t>(low) - 1;
    if (index >= slots_.size()) return npos;
    const Slot& slot = slots_[index];
    if (!slot.live || slot.gen != static_cast<std::uint32_t>(id >> 32)) {
      return npos;
    }
    return index;
  }
  /// Take the callback out of a live slot and recycle it.
  EventFn release(std::size_t index);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace rac::tiersim
