// Discrete-event simulation core: a virtual clock and a cancellable
// future-event list.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a simulation is
// a pure function of its inputs and RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace rac::tiersim {

using EventFn = std::function<void()>;

/// Opaque handle for cancellation. Default-constructed handles are invalid.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class EventQueue {
 public:
  double now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute virtual time `at` (>= now).
  EventHandle schedule_at(double at, EventFn fn);

  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_in(double delay, EventFn fn);

  /// Cancel a scheduled event. Idempotent; cancelling an already-fired or
  /// invalid handle is a no-op. Returns true if the event was pending.
  bool cancel(EventHandle handle);

  bool empty() const noexcept { return pending_count_ == 0; }
  std::size_t pending() const noexcept { return pending_count_; }

  /// Run all events with time <= `until`, then advance the clock to
  /// exactly `until`. Returns the number of events executed.
  std::uint64_t run_until(double until);

  /// Execute the single next event, if any. Returns false when empty.
  bool step();

  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // id -> callback; erased on fire/cancel. Tombstones in the heap are
  // skipped when their id is no longer present.
  std::unordered_map<std::uint64_t, EventFn> callbacks_;
};

}  // namespace rac::tiersim
