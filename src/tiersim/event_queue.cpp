#include "tiersim/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "util/contracts.hpp"

namespace rac::tiersim {

EventHandle EventQueue::schedule_at(double at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty callback");
  }
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++pending_count_;
  return EventHandle{id};
}

EventHandle EventQueue::schedule_in(double delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const auto it = callbacks_.find(handle.id_);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --pending_count_;
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled tombstone
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    --pending_count_;
    RAC_INVARIANT(top.time >= now_, "EventQueue: virtual time went backwards");
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run_until(double until) {
  // One scope per drain, never per event: a measurement interval executes
  // tens of thousands of events and per-event clock reads would dominate.
  const obs::ProfileScope profile("tiersim.run_until");
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    // Peek past tombstones for the next live event time.
    const Entry top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > until) break;
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace rac::tiersim
