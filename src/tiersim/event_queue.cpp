#include "tiersim/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "util/contracts.hpp"

namespace rac::tiersim {

EventFn EventQueue::release(std::size_t index) {
  Slot& slot = slots_[index];
  EventFn fn = std::move(slot.fn);
  slot.fn = nullptr;
  slot.live = false;
  ++slot.gen;  // wrap is fine: stale handles this old no longer exist
  free_.push_back(static_cast<std::uint32_t>(index));
  --pending_count_;
  return fn;
}

EventHandle EventQueue::schedule_at(double at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty callback");
  }
  std::size_t index;
  if (free_.empty()) {
    index = slots_.size();
    slots_.emplace_back();
  } else {
    index = free_.back();
    free_.pop_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.live = true;
  const std::uint64_t id = encode(slot.gen, static_cast<std::uint32_t>(index));
  heap_.push(Entry{at, next_seq_++, id});
  ++pending_count_;
  return EventHandle{id};
}

EventHandle EventQueue::schedule_in(double delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventHandle handle) {
  const std::size_t index = live_slot(handle.id_);
  if (index == npos) return false;
  release(index);  // discard the callback; the heap entry goes stale
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const std::size_t index = live_slot(top.id);
    if (index == npos) continue;  // cancelled tombstone
    EventFn fn = release(index);
    RAC_INVARIANT(top.time >= now_, "EventQueue: virtual time went backwards");
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run_until(double until) {
  // One scope per drain, never per event: a measurement interval executes
  // tens of thousands of events and per-event clock reads would dominate.
  const obs::ProfileScope profile("tiersim.run_until");
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    // Peek past tombstones for the next live event time.
    const Entry top = heap_.top();
    if (live_slot(top.id) == npos) {
      heap_.pop();
      continue;
    }
    if (top.time > until) break;
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace rac::tiersim
