#include "tiersim/ps_resource.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::tiersim {

namespace {
// Completions within this many virtual seconds of each other are batched to
// avoid scheduling storms from floating-point near-ties.
constexpr double kTimeEps = 1e-12;
}  // namespace

PsResource::PsResource(EventQueue& queue, int cores, SlowdownFn slowdown)
    : queue_(queue), cores_(cores), slowdown_(std::move(slowdown)) {
  if (cores < 1) throw std::invalid_argument("PsResource: cores must be >= 1");
  last_update_ = queue_.now();
}

double PsResource::per_job_rate() const {
  const int n = static_cast<int>(jobs_.size());
  if (n == 0) return 0.0;
  double rate = std::min(1.0, static_cast<double>(cores_) / n);
  if (slowdown_) {
    const double s = slowdown_(n);
    RAC_EXPECT(s >= 1.0, "PsResource: slowdown factor below 1");
    rate /= s;
  }
  return rate;
}

void PsResource::advance() {
  const double now = queue_.now();
  const double elapsed = now - last_update_;
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double progress = elapsed * current_rate_;
    for (Job& job : jobs_) {
      job.remaining = std::max(0.0, job.remaining - progress);
    }
    work_done_ += progress * static_cast<double>(jobs_.size());
    job_seconds_ += elapsed * static_cast<double>(jobs_.size());
  }
  last_update_ = now;
}

void PsResource::reschedule() {
  queue_.cancel(completion_event_);
  completion_event_ = EventHandle{};
  current_rate_ = per_job_rate();
  if (jobs_.empty() || current_rate_ <= 0.0) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Job& job : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double delay = min_remaining / current_rate_;
  completion_event_ = queue_.schedule_in(delay, [this] { on_completion_timer(); });
}

void PsResource::on_completion_timer() {
  completion_event_ = EventHandle{};
  advance();
  // Collect everything that is (numerically) done, in submission order;
  // the survivors keep their relative order (remove_if is stable).
  std::vector<EventFn> done;
  const auto it = std::remove_if(jobs_.begin(), jobs_.end(), [&](Job& job) {
    if (job.remaining > kTimeEps) return false;
    done.push_back(std::move(job.on_complete));
    return true;
  });
  jobs_.erase(it, jobs_.end());
  reschedule();
  // Fire completions after internal state is consistent; a completion
  // handler may immediately submit new work to this resource.
  for (auto& fn : done) fn();
}

JobId PsResource::submit(double demand, EventFn on_complete) {
  if (demand < 0.0) throw std::invalid_argument("PsResource: negative demand");
  if (!on_complete) throw std::invalid_argument("PsResource: empty callback");
  advance();
  const JobId id = next_id_++;
  // Zero-demand jobs still take one trip through the event loop so that
  // callers observe uniform asynchronous behaviour.
  jobs_.push_back(Job{std::max(demand, kTimeEps), std::move(on_complete)});
  reschedule();
  return id;
}

void PsResource::set_cores(int cores) {
  if (cores < 1) throw std::invalid_argument("PsResource: cores must be >= 1");
  advance();
  cores_ = cores;
  reschedule();
}

double PsResource::busy_job_seconds() const noexcept {
  // Include the in-progress span since the last update.
  return job_seconds_ + (queue_.now() - last_update_) *
                            static_cast<double>(jobs_.size());
}

}  // namespace rac::tiersim
