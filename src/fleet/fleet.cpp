#include "fleet/fleet.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/reward.hpp"
#include "obs/pool.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rac::fleet {

namespace {

// Distinct from every tenant stream index (those stay below 2 * tenants +
// 2), so retraining never replays a tenant's env/agent seeds.
constexpr std::uint64_t kRetrainSalt = 0xF1EE7000000000ULL;

// RacAgent with the tenant id baked into its reported name, so the fleet's
// interleaved trace events stay attributable (and the order-insensitive
// digest distinguishes tenants with otherwise identical trajectories).
class TenantAgent final : public core::RacAgent {
 public:
  TenantAgent(int id, const core::RacOptions& options,
              core::InitialPolicyLibrary library,
              std::optional<std::size_t> initial_policy)
      : core::RacAgent(options, std::move(library), initial_policy) {
    // Built via append into reserved storage: GCC 12's -Wrestrict false
    // positive (PR 105329) fires on operator+ chains inlined this deep.
    const std::string id_text = std::to_string(id);
    const std::string base = core::RacAgent::name();
    name_.reserve(id_text.size() + base.size() + 2);
    name_.append("t").append(id_text).append("/").append(base);
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace

FleetManager::FleetManager(std::vector<TenantSpec> specs, FleetOptions options,
                           core::InitialPolicyLibrary library)
    : opt_(std::move(options)), library_(std::move(library)) {
  if (specs.empty()) {
    throw std::invalid_argument("FleetManager: empty tenant list");
  }
  if (opt_.shard_count == 0) {
    throw std::invalid_argument("FleetManager: shard_count must be >= 1");
  }
  if (opt_.retrain_every < 0) {
    throw std::invalid_argument("FleetManager: negative retrain_every");
  }
  std::unordered_set<int> ids;
  ids.reserve(specs.size());
  for (const TenantSpec& spec : specs) {
    if (spec.id < 0) {
      throw std::invalid_argument("FleetManager: negative tenant id");
    }
    if (!ids.insert(spec.id).second) {
      throw std::invalid_argument("FleetManager: duplicate tenant id " +
                                  std::to_string(spec.id));
    }
  }

  shard_count_ = std::min(opt_.shard_count, specs.size());
  shard_registries_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    shard_registries_.push_back(std::make_unique<obs::Registry>());
  }

  tenants_.resize(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    tenants_[t].spec = std::move(specs[t]);
  }

  // Construct the (environment, agent) pairs in parallel, one task per
  // shard. Seeds derive from the tenant id alone, so the build is a pure
  // function of (specs, options, library) at any thread count.
  const obs::ProfileScope profile("fleet.build");
  const std::vector<std::string> profile_path =
      obs::Profiler::default_profiler().capture_path();
  pool().parallel_for(shard_count_, [&](std::size_t s) {
    const obs::ProfileAnchor anchor(profile_path);
    obs::Registry* registry = shard_registries_[s].get();
    for (std::size_t t = shard_begin(s); t < shard_begin(s + 1); ++t) {
      Tenant& tenant = tenants_[t];
      const auto uid = static_cast<std::uint64_t>(tenant.spec.id);
      const env::SystemContext initial_context =
          tenant.spec.schedule.empty() ? env::SystemContext{}
                                       : tenant.spec.schedule.front().context;

      env::AnalyticEnvOptions env_options = opt_.env;
      env_options.seed = util::derive_seed(opt_.seed, 2 * uid);
      env_options.registry = registry;
      auto analytic =
          std::make_unique<env::AnalyticEnv>(initial_context, env_options);
      tenant.analytic = analytic.get();
      if (tenant.spec.traffic != nullptr) {
        analytic->set_traffic_model(tenant.spec.traffic);
      }
      if (tenant.spec.fault_profile.has_value() ||
          !tenant.spec.fault_schedule.empty()) {
        fault::FaultyEnvOptions fault_options;
        fault_options.schedule = tenant.spec.fault_schedule;
        fault_options.profile =
            tenant.spec.fault_profile.value_or(fault::FaultProfile{});
        fault_options.seed = util::derive_seed(opt_.fault_seed, uid);
        fault_options.registry = registry;
        auto faulty = std::make_unique<fault::FaultyEnv>(
            std::move(analytic), std::move(fault_options));
        tenant.faulty = faulty.get();
        tenant.env = std::move(faulty);
      } else {
        tenant.env = std::move(analytic);
      }

      core::RacOptions agent_options = opt_.agent;
      agent_options.seed = util::derive_seed(opt_.seed, 2 * uid + 1);
      agent_options.registry = registry;
      const std::optional<std::size_t> initial_policy =
          library_.empty() ? std::nullopt
                           : library_.find_context(initial_context);
      tenant.agent = std::make_unique<TenantAgent>(
          tenant.spec.id, agent_options, library_, initial_policy);
    }
  });
  obs::registry_or_default(opt_.registry)
      .gauge("fleet.tenants")
      .set(static_cast<double>(tenants_.size()));
}

std::size_t FleetManager::shard_begin(std::size_t s) const noexcept {
  const std::size_t per =
      (tenants_.size() + shard_count_ - 1) / shard_count_;
  return std::min(s * per, tenants_.size());
}

util::ThreadPool& FleetManager::pool() const {
  return opt_.pool != nullptr ? *opt_.pool : obs::shared_pool();
}

void FleetManager::run(int iterations) {
  if (iterations < 0) {
    throw std::invalid_argument("FleetManager::run: negative iterations");
  }
  const int target = completed_ + iterations;
  while (completed_ < target) {
    // Segment up to the next absolute retraining boundary: run(a); run(b)
    // crosses the same boundaries as run(a + b), so checkpoint cadence
    // cannot perturb retraining.
    int next = target;
    if (opt_.retrain_every > 0) {
      const int boundary =
          (completed_ / opt_.retrain_every + 1) * opt_.retrain_every;
      next = std::min(next, boundary);
    }
    run_segment(completed_, next);
    completed_ = next;
    if (opt_.retrain_every > 0 && completed_ % opt_.retrain_every == 0) {
      cross_tenant_retrain();
    }
  }
}

void FleetManager::run_segment(int from, int to) {
  const obs::ProfileScope profile("fleet.run_segment");
  const std::vector<std::string> profile_path =
      obs::Profiler::default_profiler().capture_path();
  pool().parallel_for(shard_count_, [&](std::size_t s) {
    const obs::ProfileAnchor anchor(profile_path);
    obs::Registry* registry = shard_registries_[s].get();
    for (std::size_t t = shard_begin(s); t < shard_begin(s + 1); ++t) {
      Tenant& tenant = tenants_[t];
      core::RunOptions run_options;
      run_options.sink = opt_.sink;
      run_options.registry = registry;
      run_options.start_iteration = from;
      const core::AgentTrace trace = core::run_agent(
          *tenant.env, *tenant.agent, tenant.spec.schedule, to, run_options);
      const auto count = static_cast<long long>(trace.records.size());
      tenant.stats.iterations += count;
      for (const core::IterationRecord& record : trace.records) {
        if (record.response_ms <= opt_.agent.sla.reference_response_ms) {
          ++tenant.stats.sla_hits;
        }
      }
      const double mean = trace.mean_response_ms();
      if (!std::isnan(mean)) {  // empty segments have no mean to fold in
        tenant.stats.response_sum_ms += mean * static_cast<double>(count);
        tenant.stats.measured_iterations += count;
      }
      tenant.stats.policy_switches = tenant.agent->policy_switches();
    }
  });
  obs::Registry& registry = obs::registry_or_default(opt_.registry);
  registry.counter("fleet.segments").add(1);
  registry.counter("fleet.tenant_intervals")
      .add(static_cast<std::uint64_t>(to - from) * tenants_.size());
}

void FleetManager::cross_tenant_retrain() {
  if (library_.empty()) return;
  const obs::ProfileScope profile("fleet.retrain");

  // Pool every tenant's experience by the library policy matching its
  // current context, weighted by observation count. The map keys sort the
  // configurations canonically and the outer loop walks tenants in fixed
  // order, so the accumulated doubles are bitwise reproducible.
  struct Cell {
    double weighted_ms = 0.0;
    double weight = 0.0;
  };
  using ConfigKey = std::array<int, config::kNumParams>;
  std::vector<std::map<ConfigKey, Cell>> grouped(library_.size());
  for (const Tenant& tenant : tenants_) {
    const std::optional<std::size_t> index =
        library_.find_context(tenant.env->context());
    if (!index.has_value()) continue;
    for (const rl::ExperienceEntry& entry :
         tenant.agent->experience().entries()) {
      Cell& cell = grouped[*index][entry.configuration.values()];
      const double weight = static_cast<double>(entry.observation.count);
      cell.weighted_ms += entry.observation.response_ms * weight;
      cell.weight += weight;
    }
  }

  // Retrain each policy that received data, one pool task per policy,
  // seeded per (round, policy) so successive rounds sweep fresh streams.
  const std::vector<std::string> profile_path =
      obs::Profiler::default_profiler().capture_path();
  std::vector<std::optional<rl::QTable>> retrained(library_.size());
  pool().parallel_for(library_.size(), [&](std::size_t i) {
    const obs::ProfileAnchor anchor(profile_path);
    if (grouped[i].empty()) return;
    const core::InitialPolicy& policy = library_.at(i);
    const std::map<ConfigKey, Cell>& group = grouped[i];
    std::vector<config::Configuration> starts;
    starts.reserve(group.size());
    for (const auto& [values, cell] : group) {
      starts.emplace_back(values);
    }
    // Measured states replay the fleet's pooled observations; everything
    // else falls back to the policy's offline regression surface, exactly
    // like the single-agent online retrain.
    const rl::RewardFn reward = [&](const config::Configuration& c) {
      const auto it = group.find(c.values());
      if (it != group.end() && it->second.weight > 0.0) {
        return core::reward_from_response(
            opt_.agent.sla, it->second.weighted_ms / it->second.weight);
      }
      return policy.predict_reward(c);
    };
    rl::QTable table = policy.table;
    util::Rng rng(util::derive_seed(
        opt_.seed,
        kRetrainSalt +
            static_cast<std::uint64_t>(retrain_rounds_) * library_.size() +
            i));
    rl::batch_train(table, starts, reward, opt_.retrain_td, rng,
                    opt_.registry);
    retrained[i] = std::move(table);
  });

  // Publish: build the refreshed library once, then hand every agent a COW
  // copy -- ten thousand rebases share the one new storage block.
  core::InitialPolicyLibrary refreshed;
  for (std::size_t i = 0; i < library_.size(); ++i) {
    core::InitialPolicy policy = library_.at(i);
    if (retrained[i].has_value()) policy.table = std::move(*retrained[i]);
    refreshed.add(std::move(policy));
  }
  library_ = std::move(refreshed);
  for (Tenant& tenant : tenants_) {
    tenant.agent->rebase_library(library_);
  }
  ++retrain_rounds_;
  obs::registry_or_default(opt_.registry).counter("fleet.retrain_rounds").add(1);
}

FleetReport FleetManager::report() const {
  FleetReport report;
  report.tenants = tenants_.size();
  report.retrain_rounds = retrain_rounds_;
  long long measured = 0;
  double response_sum = 0.0;
  long long sla_hits = 0;
  for (const Tenant& tenant : tenants_) {
    report.iterations += tenant.stats.iterations;
    sla_hits += tenant.stats.sla_hits;
    response_sum += tenant.stats.response_sum_ms;
    measured += tenant.stats.measured_iterations;
    report.policy_switches += tenant.stats.policy_switches;
  }
  if (report.iterations > 0) {
    report.sla_attainment = static_cast<double>(sla_hits) /
                            static_cast<double>(report.iterations);
  }
  if (measured > 0) {
    report.mean_response_ms = response_sum / static_cast<double>(measured);
  }
  return report;
}

obs::MetricsSnapshot FleetManager::shard_metrics() const {
  std::vector<obs::MetricsSnapshot> parts;
  parts.reserve(shard_registries_.size());
  for (const auto& registry : shard_registries_) {
    parts.push_back(registry->snapshot());
  }
  return obs::merge_snapshots(parts);
}

}  // namespace rac::fleet
