// Whole-fleet checkpoint/restore ("rac-fleet-checkpoint v2"; v1 files
// still load, with every traffic cursor at 0).
//
// One checkpoint captures everything a fleet needs to continue
// bit-identically: progress counters, the shared policy library (embedded
// via core::save_library), and per tenant the environment's noise-stream
// position, the dynamic-traffic cursor (the model itself is immutable run
// input carried by the TenantSpec, so only the position is state), the
// fault injector's state, and the full agent snapshot
// (embedded via core::save_agent_snapshot -- both embedded formats are
// self-delimiting, so no byte counts are needed). Stats registries are
// observability, not state, and are not captured.
//
// Same line-oriented persistence idiom as the rest of the repo: labeled
// tokens, util/lineio hex-float doubles (locale-immune, exact), an "end"
// trailer, atomic file replacement, and trailing-garbage rejection in the
// file loader.
#pragma once

#include <string>

#include "fleet/fleet.hpp"

namespace rac::fleet {

/// File wrappers over FleetManager::save_checkpoint /
/// restore_checkpoint. Saving writes atomically (temp file + rename);
/// restoring rejects trailing garbage after the "end" trailer and
/// validates the checkpoint against the live fleet's specs. Throws
/// std::ios_base::failure on I/O errors and std::runtime_error /
/// std::invalid_argument on malformed or mismatched contents.
void save_fleet_checkpoint_file(const std::string& path,
                                const FleetManager& fleet);
void restore_fleet_checkpoint_file(const std::string& path,
                                   FleetManager& fleet);

}  // namespace rac::fleet
