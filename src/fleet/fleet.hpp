// Fleet-scale control plane: shard thousands of independent tenant agents
// over the deterministic worker pool.
//
// The paper evaluates one agent reconfiguring one web system. A cloud
// provider runs the same loop for every hosted tenant, which adds three
// systems problems the single-tenant stack does not have:
//
//   * scale      -- tenants are partitioned into contiguous shards, one
//                   pool task per shard, so a fleet advances in parallel
//                   while staying bit-identical to a serial sweep at any
//                   thread count (per-shard ordering + per-tenant seed
//                   streams, the core::build_library recipe);
//   * sharing    -- every tenant consults the same offline policy library.
//                   The library is copy-on-write (one shared_ptr per
//                   agent, storage cloned only on mutation), so handing it
//                   to ten thousand agents costs ten thousand pointers;
//   * feedback   -- tenants in the same context learn from each other:
//                   cross-tenant retraining periodically folds every
//                   tenant's experience into per-context reward models,
//                   retrains the library's Q-tables in canonical order,
//                   and publishes the refreshed library back to every
//                   agent (again COW -- one clone total, not one per
//                   tenant).
//
// Determinism contract: a fleet's trajectory is a pure function of
// (specs, options, library). Thread count, shard scheduling order, and
// checkpoint/restore boundaries never change a single decision; the golden
// suite in tests/fleet proves digests and serialized snapshots bitwise
// equal across all three axes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy_library.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "fault/fault_env.hpp"
#include "workload/dynamic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rl/td_learner.hpp"

namespace rac::util {
class ThreadPool;
}  // namespace rac::util

namespace rac::fleet {

/// One hosted tenant: its context-change script plus an optional injected
/// fault model (a fleet slice always has a few tenants with flaky
/// monitoring; the golden tests exercise exactly that).
struct TenantSpec {
  int id = 0;
  core::ContextSchedule schedule;
  /// When set (or when `fault_schedule` is non-empty) the tenant's
  /// environment is wrapped in a fault::FaultyEnv seeded from
  /// (options.fault_seed, id).
  std::optional<fault::FaultProfile> fault_profile;
  fault::FaultSchedule fault_schedule;
  /// Optional dynamic-traffic model installed on the tenant's environment
  /// (workload/dynamic.hpp). Immutable run input, like the schedule: a
  /// fleet checkpoint persists only the per-tenant cursor, and a restore
  /// validates against the live specs' models.
  std::shared_ptr<const workload::TrafficModel> traffic;
};

/// Per-tenant rollup folded from the runner traces. Observability, not
/// state: it is NOT checkpointed, so after a restore it covers only the
/// intervals run since (the same contract as FaultyEnv::true_history).
struct TenantStats {
  long long iterations = 0;
  long long sla_hits = 0;        // intervals with response <= SLA reference
  double response_sum_ms = 0.0;  // over intervals with a defined mean
  long long measured_iterations = 0;
  int policy_switches = 0;
};

struct FleetOptions {
  /// Number of contiguous tenant shards (pool tasks per segment). The
  /// partition is a function of this count alone -- never of the pool's
  /// thread count -- so changing RAC_THREADS cannot move a tenant across
  /// shards. Clamped down to the tenant count.
  std::size_t shard_count = 8;
  /// Base of every tenant's seed streams: tenant `id` draws env seed
  /// derive_seed(seed, 2*id) and agent seed derive_seed(seed, 2*id+1).
  std::uint64_t seed = 101;
  /// Per-tenant agent options (seed and registry are overridden per
  /// tenant).
  core::RacOptions agent{};
  /// Per-tenant environment options (seed, registry, and the construction
  /// context are overridden per tenant).
  env::AnalyticEnvOptions env{};
  /// Base of the per-tenant fault-script seeds.
  std::uint64_t fault_seed = 17;
  /// Cross-tenant retraining cadence in intervals (0 = never). Boundaries
  /// are absolute multiples, so run(a); run(b) retrains exactly like
  /// run(a + b).
  int retrain_every = 0;
  /// Algorithm-1 constants of the cross-tenant retraining sweeps.
  rl::TdParams retrain_td{0.1, 0.9, 0.1, 1e-3, 8, 40};
  /// Pool the shards fan out on; nullptr means obs::shared_pool().
  util::ThreadPool* pool = nullptr;
  /// Registry receiving the fleet-level fleet.* metrics; nullptr means
  /// obs::default_registry(). Per-tenant telemetry lands in per-shard
  /// registries owned by the manager (rolled up via shard_metrics()).
  obs::Registry* registry = nullptr;
  /// Receives every tenant's per-interval TraceEvents. Shards emit
  /// concurrently, so the sink must be thread-safe and order-insensitive
  /// for cross-thread determinism (obs::DigestTraceSink is both); nullptr
  /// disables tracing.
  obs::TraceSink* sink = nullptr;
};

/// Fleet-wide aggregates derived from the per-tenant stats.
struct FleetReport {
  std::size_t tenants = 0;
  long long iterations = 0;      // total tenant-intervals advanced
  double sla_attainment = 0.0;   // fraction of intervals meeting the SLA
  double mean_response_ms = 0.0; // over intervals with a defined mean
  long long policy_switches = 0;
  int retrain_rounds = 0;
};

class FleetManager {
 public:
  /// Builds one (environment, agent) pair per spec, in parallel over
  /// shards. Throws std::invalid_argument for an empty spec list,
  /// duplicate or negative tenant ids, shard_count == 0, or a negative
  /// retrain_every.
  FleetManager(std::vector<TenantSpec> specs, FleetOptions options,
               core::InitialPolicyLibrary library);

  /// Advance every tenant by `iterations` intervals (absolute iteration
  /// numbers continue across calls), retraining at every multiple of
  /// retrain_every crossed. Bit-identical at any pool size.
  void run(int iterations);

  int completed() const noexcept { return completed_; }
  int retrain_rounds() const noexcept { return retrain_rounds_; }
  std::size_t tenant_count() const noexcept { return tenants_.size(); }
  std::size_t shard_count() const noexcept { return shard_count_; }

  const core::InitialPolicyLibrary& library() const noexcept {
    return library_;
  }
  const TenantStats& stats(std::size_t tenant_index) const {
    return tenants_.at(tenant_index).stats;
  }
  const core::RacAgent& agent(std::size_t tenant_index) const {
    return *tenants_.at(tenant_index).agent;
  }

  FleetReport report() const;

  /// Merged snapshot of every shard registry (per-tenant telemetry).
  obs::MetricsSnapshot shard_metrics() const;

  /// Replace the trace sink for subsequent run() calls (same thread-safety
  /// contract as FleetOptions::sink). The golden tests use this to digest
  /// each leg of a run separately.
  void set_sink(obs::TraceSink* sink) noexcept { opt_.sink = sink; }

  /// Serialize / adopt the complete fleet state ("rac-fleet-checkpoint
  /// v2"): progress, the shared library, and every tenant's environment
  /// noise stream, traffic cursor, fault position, and agent snapshot
  /// (v1 files still load, with every traffic cursor at 0). See fleet_io.hpp
  /// for the file-level wrappers. restore_checkpoint parses the whole
  /// stream and validates it against the live specs (tenant count, ids,
  /// fault topology, library shape) before adopting anything, throwing
  /// std::runtime_error / std::invalid_argument on mismatch; each tenant's
  /// snapshot is then adopted validate-then-commit, so discard the fleet
  /// if a restore throws (an exotic half-bad file can leave earlier
  /// tenants already restored).
  void save_checkpoint(std::ostream& os) const;
  void restore_checkpoint(std::istream& is);

 private:
  struct Tenant {
    TenantSpec spec;
    std::unique_ptr<env::Environment> env;    // what the runner drives
    env::AnalyticEnv* analytic = nullptr;     // inner model (owned via env)
    fault::FaultyEnv* faulty = nullptr;       // decorator, when faulted
    std::unique_ptr<core::RacAgent> agent;
    TenantStats stats;
  };

  /// Tenants of shard `s`: [shard_begin(s), shard_begin(s + 1)).
  std::size_t shard_begin(std::size_t s) const noexcept;
  util::ThreadPool& pool() const;
  void run_segment(int from, int to);
  void cross_tenant_retrain();

  FleetOptions opt_;
  core::InitialPolicyLibrary library_;
  std::vector<Tenant> tenants_;
  std::size_t shard_count_ = 1;
  std::vector<std::unique_ptr<obs::Registry>> shard_registries_;
  int completed_ = 0;
  int retrain_rounds_ = 0;
};

}  // namespace rac::fleet
