// FleetManager::save_checkpoint / restore_checkpoint plus the file
// wrappers (format notes in fleet_io.hpp).
#include "fleet/fleet_io.hpp"

#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/library_io.hpp"
#include "core/snapshot.hpp"
#include "env/context.hpp"
#include "util/lineio.hpp"
#include "util/rng.hpp"

namespace rac::fleet {

namespace {

constexpr const char* kFleetMagic = "rac-fleet-checkpoint";
// v2 added the per-tenant dynamic-traffic cursor ("traffic <n>" after the
// env_rng line); v1 checkpoints still load, with every cursor at 0 --
// exactly what every pre-v2 fleet (no traffic models) had.
constexpr int kFleetVersion = 2;

std::string bool_token(bool b) { return b ? "1" : "0"; }

bool read_bool(std::istream& is, std::string_view what) {
  const std::uint64_t v = util::parse_u64(util::read_token(is, what), what);
  if (v > 1) {
    throw std::runtime_error(std::string(what) + ": flag must be 0 or 1");
  }
  return v == 1;
}

void write_rng_state(std::ostream& os, const util::RngState& state) {
  os << "env_rng";
  for (const std::uint64_t word : state.words) {
    os << ' ' << util::format_u64(word);
  }
  os << ' ' << bool_token(state.has_cached_normal) << ' '
     << util::format_double(state.cached_normal) << "\n";
}

util::RngState read_rng_state(std::istream& is) {
  util::expect_token(is, "env_rng", "fleet checkpoint");
  util::RngState state;
  for (std::uint64_t& word : state.words) {
    word = util::parse_u64(util::read_token(is, "env_rng"), "env_rng");
  }
  state.has_cached_normal = read_bool(is, "env_rng");
  state.cached_normal =
      util::parse_double(util::read_token(is, "env_rng"), "env_rng");
  return state;
}

}  // namespace

void FleetManager::save_checkpoint(std::ostream& os) const {
  os << kFleetMagic << " v" << kFleetVersion << "\n";
  os << "seed " << util::format_u64(opt_.seed) << "\n";
  os << "fault_seed " << util::format_u64(opt_.fault_seed) << "\n";
  os << "completed " << util::format_i64(completed_) << "\n";
  os << "retrain_rounds " << util::format_i64(retrain_rounds_) << "\n";
  os << "library\n";
  core::save_library(os, library_);
  os << "tenants " << util::format_u64(tenants_.size()) << "\n";
  for (const Tenant& tenant : tenants_) {
    os << "tenant " << util::format_i64(tenant.spec.id) << "\n";
    write_rng_state(os, tenant.analytic->noise_state());
    os << "traffic " << util::format_u64(tenant.analytic->traffic_interval())
       << "\n";
    os << "fault " << bool_token(tenant.faulty != nullptr) << "\n";
    if (tenant.faulty != nullptr) {
      fault::save_faulty_env_state(os, tenant.faulty->state());
    }
    os << "agent\n";
    core::save_agent_snapshot(os, tenant.agent->snapshot());
  }
  os << "end\n";
  if (!os) {
    throw std::ios_base::failure("save_checkpoint: stream write failed");
  }
}

void FleetManager::restore_checkpoint(std::istream& is) {
  util::expect_token(is, kFleetMagic, "fleet checkpoint magic");
  const std::string version = util::read_token(is, "fleet checkpoint version");
  if (version != "v1" && version != "v2") {
    throw std::runtime_error("fleet checkpoint: unsupported version '" +
                             version + "'");
  }
  util::expect_token(is, "seed", "fleet checkpoint");
  const std::uint64_t seed =
      util::parse_u64(util::read_token(is, "seed"), "seed");
  util::expect_token(is, "fault_seed", "fleet checkpoint");
  const std::uint64_t fault_seed =
      util::parse_u64(util::read_token(is, "fault_seed"), "fault_seed");
  if (seed != opt_.seed || fault_seed != opt_.fault_seed) {
    throw std::runtime_error(
        "fleet checkpoint: seed mismatch (checkpoint belongs to a "
        "different fleet)");
  }
  util::expect_token(is, "completed", "fleet checkpoint");
  const int completed =
      util::parse_int(util::read_token(is, "completed"), "completed");
  util::expect_token(is, "retrain_rounds", "fleet checkpoint");
  const int retrain_rounds = util::parse_int(
      util::read_token(is, "retrain_rounds"), "retrain_rounds");
  if (completed < 0 || retrain_rounds < 0) {
    throw std::runtime_error("fleet checkpoint: negative progress counter");
  }
  util::expect_token(is, "library", "fleet checkpoint");
  core::InitialPolicyLibrary library = core::load_library(is);
  if (library.size() != library_.size()) {
    throw std::runtime_error(
        "fleet checkpoint: library size differs from the live fleet's");
  }
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (!(library.at(i).context == library_.at(i).context)) {
      throw std::runtime_error(
          "fleet checkpoint: library context mismatch at policy " +
          std::to_string(i));
    }
  }
  util::expect_token(is, "tenants", "fleet checkpoint");
  const std::uint64_t count =
      util::parse_u64(util::read_token(is, "tenants"), "tenants");
  if (count != tenants_.size()) {
    throw std::runtime_error(
        "fleet checkpoint: tenant count differs from the live fleet's");
  }

  // Parse and cross-check every tenant block before adopting anything.
  std::vector<util::RngState> rng_states;
  std::vector<std::uint64_t> traffic_cursors;
  std::vector<std::optional<fault::FaultyEnvState>> fault_states;
  std::vector<core::AgentSnapshot> snapshots;
  rng_states.reserve(tenants_.size());
  traffic_cursors.reserve(tenants_.size());
  fault_states.reserve(tenants_.size());
  snapshots.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) {
    util::expect_token(is, "tenant", "fleet checkpoint");
    const int id = util::parse_int(util::read_token(is, "tenant"), "tenant");
    if (id != tenant.spec.id) {
      throw std::runtime_error("fleet checkpoint: tenant id " +
                               std::to_string(id) +
                               " does not match the live fleet's " +
                               std::to_string(tenant.spec.id));
    }
    rng_states.push_back(read_rng_state(is));
    if (version == "v2") {
      util::expect_token(is, "traffic", "fleet checkpoint");
      traffic_cursors.push_back(
          util::parse_u64(util::read_token(is, "traffic"), "traffic"));
    } else {
      traffic_cursors.push_back(0);
    }
    util::expect_token(is, "fault", "fleet checkpoint");
    const bool has_fault = read_bool(is, "fault");
    if (has_fault != (tenant.faulty != nullptr)) {
      throw std::runtime_error(
          "fleet checkpoint: fault topology differs from the live fleet's "
          "at tenant " +
          std::to_string(id));
    }
    if (has_fault) {
      fault_states.push_back(fault::load_faulty_env_state(is));
    } else {
      fault_states.push_back(std::nullopt);
    }
    util::expect_token(is, "agent", "fleet checkpoint");
    snapshots.push_back(core::load_agent_snapshot(is));
  }
  util::expect_token(is, "end", "fleet checkpoint");

  // Commit. Per-agent adoption is validate-then-commit inside restore();
  // see the header note about discarding the fleet if this throws.
  library_ = std::move(library);
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    Tenant& tenant = tenants_[t];
    tenant.agent->rebase_library(library_);
    tenant.agent->restore(snapshots[t]);
    tenant.analytic->restore_noise_state(rng_states[t]);
    tenant.analytic->seek_traffic(traffic_cursors[t]);
    if (fault_states[t].has_value()) {
      tenant.faulty->restore(*fault_states[t]);
    }
  }
  completed_ = completed;
  retrain_rounds_ = retrain_rounds;
}

void save_fleet_checkpoint_file(const std::string& path,
                                const FleetManager& fleet) {
  std::ostringstream buffer;
  fleet.save_checkpoint(buffer);
  util::atomic_write_file(path, buffer.str());
}

void restore_fleet_checkpoint_file(const std::string& path,
                                   FleetManager& fleet) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::ios_base::failure("restore_fleet_checkpoint_file: cannot open " +
                                 path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::istringstream is(contents.str());
  fleet.restore_checkpoint(is);
  std::string extra;
  if (is >> extra) {
    throw std::runtime_error(
        "restore_fleet_checkpoint_file: trailing garbage after checkpoint");
  }
}

}  // namespace rac::fleet
