// Registry-backed instrumentation for util::ThreadPool, plus the
// process-wide shared pool.
//
// The pool itself lives in util (below obs in the layering); obs wires its
// telemetry callbacks into the metrics registry and owns the shared
// instance every higher layer (core, bench) fans out on.
#pragma once

#include "util/thread_pool.hpp"

namespace rac::obs {

class Registry;

/// Telemetry callbacks recording into `registry`:
///   util.pool.queue_depth  (gauge)     pending tasks after push/pop
///   util.pool.task_us      (histogram) per-task wall-clock latency
///   util.pool.tasks        (counter)   completed tasks
util::PoolTelemetry pool_telemetry(Registry& registry);

/// The process-wide worker pool: default_thread_count() threads (i.e. the
/// RAC_THREADS environment variable, hardware_concurrency when unset;
/// RAC_THREADS=1 spawns no workers and runs everything inline), telemetry
/// wired into the default registry, and `util.pool.threads` (gauge) set to
/// its size. Deliberately never destroyed: joining workers during static
/// destruction would race the teardown of the registry cells the telemetry
/// writes to.
util::ThreadPool& shared_pool();

}  // namespace rac::obs
