#include "obs/process_stats.hpp"

#include <sys/resource.h>

namespace rac::obs {

namespace detail {

namespace {
constinit AllocHookState g_alloc_hook_state;
}  // namespace

AllocHookState& alloc_hook_state() noexcept { return g_alloc_hook_state; }

}  // namespace detail

std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

void set_alloc_counting(bool enabled) noexcept {
  detail::alloc_hook_state().enabled.store(enabled,
                                           std::memory_order_relaxed);
}

bool alloc_hook_compiled() noexcept {
  return detail::alloc_hook_state().compiled.load(std::memory_order_relaxed);
}

ProcessStats process_stats() {
  const auto& state = detail::alloc_hook_state();
  ProcessStats stats;
  stats.peak_rss_bytes = peak_rss_bytes();
  stats.alloc_count = state.count.load(std::memory_order_relaxed);
  stats.alloc_bytes = state.bytes.load(std::memory_order_relaxed);
  stats.alloc_hook_compiled = state.compiled.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace rac::obs
