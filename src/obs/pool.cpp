#include "obs/pool.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rac::obs {

util::PoolTelemetry pool_telemetry(Registry& registry) {
  util::PoolTelemetry telemetry;
  telemetry.queue_depth = [&gauge = registry.gauge("util.pool.queue_depth")](
                              std::size_t depth) {
    gauge.set(static_cast<double>(depth));
  };
  telemetry.task_us = [&histogram = registry.histogram("util.pool.task_us",
                                                       latency_us_bounds()),
                       &tasks = registry.counter("util.pool.tasks")](
                          double us) {
    histogram.observe(us);
    tasks.add(1);
  };
  return telemetry;
}

util::ThreadPool& shared_pool() {
  static util::ThreadPool* pool = [] {
    auto* created =
        new util::ThreadPool(util::default_thread_count(),
                             pool_telemetry(default_registry()));
    default_registry()
        .gauge("util.pool.threads")
        .set(static_cast<double>(created->size()));
    return created;
  }();
  return *pool;
}

}  // namespace rac::obs
