#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rac::obs {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string to_json(const TraceEvent& e) {
  std::ostringstream os;
  os.precision(10);
  os << "{\"iteration\":" << e.iteration << ",\"agent\":";
  append_escaped(os, e.agent);
  os << ",\"state\":[";
  for (std::size_t i = 0; i < e.state.size(); ++i) {
    if (i > 0) os << ",";
    os << e.state[i];
  }
  os << "],\"action\":";
  append_escaped(os, e.action);
  os << ",\"explored\":" << bool_str(e.explored)
     << ",\"q_value\":" << e.q_value << ",\"response_ms\":" << e.response_ms
     << ",\"throughput_rps\":" << e.throughput_rps << ",\"reward\":" << e.reward
     << ",\"sla_margin_ms\":" << e.sla_margin_ms
     << ",\"active_policy\":" << e.active_policy
     << ",\"policy_switched\":" << bool_str(e.policy_switched)
     << ",\"violation\":" << bool_str(e.violation)
     << ",\"consecutive_violations\":" << e.consecutive_violations;
  // Fault fields only appear when set: clean-run JSONL stays byte-identical
  // to the pre-fault-layer format.
  if (e.measure_attempts != 1) {
    os << ",\"measure_attempts\":" << e.measure_attempts;
  }
  if (e.measurement_missing) {
    os << ",\"measurement_missing\":" << bool_str(e.measurement_missing);
  }
  if (e.safe_fallback) {
    os << ",\"safe_fallback\":" << bool_str(e.safe_fallback);
  }
  if (!e.fault_note.empty()) {
    os << ",\"fault_note\":";
    append_escaped(os, e.fault_note);
  }
  os << ",\"context\":";
  append_escaped(os, e.context);
  os << "}";
  return os.str();
}

void MemoryTraceSink::emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> MemoryTraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void MemoryTraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

struct JsonlTraceSink::Impl {
  std::ofstream out;
};

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : path_(path), impl_(new Impl) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

JsonlTraceSink::~JsonlTraceSink() = default;

void JsonlTraceSink::emit(const TraceEvent& event) {
  const std::string line = to_json(event);
  std::lock_guard<std::mutex> lock(mutex_);
  impl_->out << line << '\n';
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  impl_->out.flush();
}

void DigestTraceSink::emit(const TraceEvent& event) {
  const std::string line = to_json(event);
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
  for (const char c : line) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(h, std::memory_order_relaxed);
}

std::uint64_t DigestTraceSink::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::string DigestTraceSink::digest() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "c%llu-%llx",
                static_cast<unsigned long long>(
                    count_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    sum_.load(std::memory_order_relaxed)));
  return buf;
}

void DigestTraceSink::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

TeeTraceSink::TeeTraceSink(std::vector<TraceSink*> sinks)
    : sinks_(std::move(sinks)) {}

void TeeTraceSink::emit(const TraceEvent& event) {
  for (TraceSink* sink : sinks_) {
    if (sink != nullptr) sink->emit(event);
  }
}

void TeeTraceSink::flush() {
  for (TraceSink* sink : sinks_) {
    if (sink != nullptr) sink->flush();
  }
}

std::unique_ptr<TraceSink> sink_from_env(const char* var) {
  const char* path = std::getenv(var);
  if (path == nullptr || path[0] == '\0') return nullptr;
  return std::make_unique<JsonlTraceSink>(path);
}

}  // namespace rac::obs
