#include "obs/timer.hpp"

#include <atomic>

namespace rac::obs {

namespace {
std::atomic<bool> g_profiling{true};
}  // namespace

void set_profiling(bool enabled) noexcept {
  g_profiling.store(enabled, std::memory_order_relaxed);
}

bool profiling_enabled() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

std::vector<double> latency_us_bounds() {
  return Histogram::exponential_bounds(1.0, 2.0, 24);
}

}  // namespace rac::obs
