// Structured decision tracing for the online management loop.
//
// One TraceEvent per measurement interval records everything an operator
// needs to replay a decision: the state (configuration) the agent chose,
// whether the choice was greedy or exploratory and at what Q-value, the
// measured performance and reward, and the context-adaptation signals
// (violation streak, active initial policy, policy switches). Events flow
// into a TraceSink; the JSONL sink makes runs machine-diffable, the
// in-memory sink backs tests and example reports, and the null sink keeps
// the disabled-path cost at a virtual call.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rac::obs {

/// One management-loop iteration's decision record.
struct TraceEvent {
  int iteration = -1;
  std::string agent;
  std::vector<int> state;   // configuration parameter values, catalog order
  std::string action;       // e.g. "MaxClients+" / "keep"
  bool explored = false;    // epsilon branch taken (vs greedy)
  double q_value = 0.0;     // Q(s, a) of the chosen action at decision time
  double response_ms = 0.0;
  double throughput_rps = 0.0;
  double reward = 0.0;          // normalized SLA reward of the measurement
  double sla_margin_ms = 0.0;   // SLA reference minus measured response
  int active_policy = -1;       // initial-policy index, -1 = none
  bool policy_switched = false; // Section-V switch fired this iteration
  bool violation = false;       // this measurement violated pvar >= v_thr
  int consecutive_violations = 0;
  // Fault-visibility fields (PR 5). Rendered into the JSON only when they
  // differ from these defaults, so traces of clean runs stay byte-identical
  // to pre-fault-layer output.
  int measure_attempts = 1;          // try_measure calls this interval
  bool measurement_missing = false;  // interval lost after all retries
  bool safe_fallback = false;        // agent reverted to best-known config
  std::string fault_note;            // injected-fault description ("" = clean)
  std::string context;          // environment context name (ground truth)
};

/// Single-line JSON rendering (no trailing newline).
std::string to_json(const TraceEvent& event);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Swallows everything; install when tracing is off.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override {}
};

/// Collects events in memory (thread-safe); tests and reports read them.
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent& event) override;

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Appends one JSON object per line to a file.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Truncates `path`; throws std::runtime_error when it cannot be opened.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void emit(const TraceEvent& event) override;
  void flush() override;

  const std::string& path() const noexcept { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::mutex mutex_;
  std::unique_ptr<Impl> impl_;
};

/// Order-insensitive digest of the emitted event set: each event's JSON
/// line is hashed (FNV-1a 64) and the per-event hashes are combined by
/// modular sum plus an event count, so any interleaving of the same events
/// -- bench fan-out emits from several pool workers concurrently --
/// produces the same digest. Two runs digest equal iff they emitted the
/// same multiset of trace records; bench reports carry the digest so the
/// regression gate can fail hard on decision divergence.
class DigestTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent& event) override;

  std::uint64_t count() const noexcept;
  /// "c<count>-<combined hash, hex>"; "c0-0" when nothing was emitted.
  std::string digest() const;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Fans every event out to several sinks (none owned).
class TeeTraceSink final : public TraceSink {
 public:
  explicit TeeTraceSink(std::vector<TraceSink*> sinks);

  void emit(const TraceEvent& event) override;
  void flush() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// JSONL sink at the path named by environment variable `var`
/// (conventionally RAC_TRACE); nullptr when unset or empty.
std::unique_ptr<TraceSink> sink_from_env(const char* var = "RAC_TRACE");

}  // namespace rac::obs
