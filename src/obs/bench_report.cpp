#include "obs/bench_report.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <system_error>
#include <thread>

#include "util/lineio.hpp"

#ifndef RAC_BUILD_TYPE
#define RAC_BUILD_TYPE "unknown"
#endif
#ifndef RAC_COMPILER_ID
#define RAC_COMPILER_ID "unknown"
#endif
#ifndef RAC_SOURCE_DIR
#define RAC_SOURCE_DIR ""
#endif

namespace rac::obs {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool looks_like_sha(const std::string& s) {
  if (s.size() < 7 || s.size() > 64) return false;
  for (const char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string read_first_line(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  if (!is || !std::getline(is, line)) return "";
  return trimmed(line);
}

// Resolve a symbolic ref ("refs/heads/main") to a sha via the loose ref
// file or, failing that, .git/packed-refs.
std::string resolve_ref(const std::string& git_dir, const std::string& ref) {
  const std::string loose = read_first_line(git_dir + "/" + ref);
  if (looks_like_sha(loose)) return loose;
  std::ifstream packed(git_dir + "/packed-refs");
  std::string line;
  while (packed && std::getline(packed, line)) {
    line = trimmed(line);
    if (line.empty() || line[0] == '#' || line[0] == '^') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    if (line.substr(space + 1) == ref && looks_like_sha(line.substr(0, space))) {
      return line.substr(0, space);
    }
  }
  return "";
}

// Minimal JSON string escaping: quote, backslash, control characters.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string discover_git_sha(const std::string& source_dir) {
  const std::string root = source_dir.empty() ? RAC_SOURCE_DIR : source_dir;
  if (root.empty()) return "unknown";
  const std::string git_dir = root + "/.git";
  const std::string head = read_first_line(git_dir + "/HEAD");
  if (head.empty()) return "unknown";
  if (looks_like_sha(head)) return head;  // detached HEAD
  constexpr std::string_view kRefPrefix = "ref: ";
  if (head.rfind(kRefPrefix, 0) != 0) return "unknown";
  const std::string sha =
      resolve_ref(git_dir, trimmed(head.substr(kRefPrefix.size())));
  return sha.empty() ? "unknown" : sha;
}

void fill_host_metadata(BenchReport& report) {
  report.git_sha = discover_git_sha();
  char buf[256] = {};
  report.hostname =
      gethostname(buf, sizeof(buf) - 1) == 0 ? buf : "unknown";
  report.nproc = std::thread::hardware_concurrency();
  report.build_type = RAC_BUILD_TYPE;
  // An instrumented binary is a different "host" for wall-clock purposes:
  // tagging the fingerprint makes the trajectory gate skip its wall gates
  // (digest and exit-code checks still run) instead of failing on
  // sanitizer or audit slowdown measured against an uninstrumented
  // baseline.
#if defined(__SANITIZE_ADDRESS__)
#define RAC_HOST_ASAN 1
#elif defined(__SANITIZE_THREAD__)
#define RAC_HOST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RAC_HOST_ASAN 1
#elif __has_feature(thread_sanitizer)
#define RAC_HOST_TSAN 1
#endif
#endif
#if defined(RAC_HOST_ASAN)
  report.build_type += "+asan";
#elif defined(RAC_HOST_TSAN)
  report.build_type += "+tsan";
#endif
#if defined(RAC_AUDIT_ENABLED)
  report.build_type += "+audit";
#endif
  report.process = process_stats();
}

std::string run_id(const BenchReport& report) {
  return report.git_sha + "-" + report.bench + "-s" +
         util::format_u64(report.seed) + "-t" +
         util::format_u64(report.threads);
}

std::string to_json(const BenchReport& report) {
  std::string out;
  out += "{\"schema\":\"rac-bench-report v1\"";
  out += ",\"bench\":\"" + json_escape(report.bench) + "\"";
  out += ",\"run_id\":\"" + json_escape(run_id(report)) + "\"";
  out += ",\"git_sha\":\"" + json_escape(report.git_sha) + "\"";
  out += ",\"seed\":" + util::format_u64(report.seed);
  out += ",\"threads\":" + util::format_u64(report.threads);
  out += ",\"quick\":";
  out += report.quick ? "true" : "false";
  out += ",\"wall_ms\":" + util::format_double_decimal(report.wall_ms);
  out += ",\"trace_digest\":\"" + json_escape(report.trace_digest) + "\"";
  out += ",\"host\":{\"nproc\":" + util::format_u64(report.nproc);
  out += ",\"hostname\":\"" + json_escape(report.hostname) + "\"";
  out += ",\"build_type\":\"" + json_escape(report.build_type) + "\"";
  out += ",\"compiler\":\"" + json_escape(report.compiler) + "\"}";
  out += ",\"process\":{\"peak_rss_bytes\":" +
         util::format_u64(report.process.peak_rss_bytes);
  out += ",\"alloc_count\":" + util::format_u64(report.process.alloc_count);
  out += ",\"alloc_bytes\":" + util::format_u64(report.process.alloc_bytes);
  out += ",\"alloc_hook_compiled\":";
  out += report.process.alloc_hook_compiled ? "true" : "false";
  out += "}";
  out += ",\"phases\":" + obs::to_json(report.phases);
  out += ",\"metrics\":" + report.metrics.to_json();
  out += "}";
  return out;
}

void write_bench_report(const std::string& dir, const BenchReport& report) {
  // RAC_BENCH_REPORT may name a directory that does not exist yet;
  // create it (and parents) rather than failing the whole session.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  util::atomic_write_file(dir + "/" + report.bench + ".json",
                          to_json(report) + "\n");
}

}  // namespace rac::obs
