#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>

#include "util/lineio.hpp"

namespace rac::obs {

namespace {

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

struct Profiler::Node {
  explicit Node(std::string node_name) : name(std::move(node_name)) {}
  std::string name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::vector<std::unique_ptr<Node>> children;  // encounter order

  Node* find_or_add(std::string_view child_name) {
    for (const auto& child : children) {
      if (child->name == child_name) return child.get();
    }
    children.push_back(std::make_unique<Node>(std::string(child_name)));
    return children.back().get();
  }
};

struct Profiler::ThreadTree {
  ThreadTree() : root("") { stack.push_back(&root); }
  Node root;
  std::vector<Node*> stack;  // open frames; stack[0] is the root sentinel
};

namespace {

// Per-thread cache of (profiler, epoch) -> tree so a scope enter is a
// couple of relaxed loads plus a child lookup. Entries for destroyed or
// reset profilers simply never match again (ids are unique, epochs only
// grow).
struct TreeCacheEntry {
  std::uint64_t profiler_id = 0;
  std::uint64_t epoch = 0;
  Profiler::ThreadTree* tree = nullptr;
};
thread_local std::vector<TreeCacheEntry> t_tree_cache;

}  // namespace

Profiler::Profiler() : id_(next_profiler_id()) {}

Profiler::~Profiler() = default;

std::uint64_t Profiler::clock_now() const {
  const ClockFn clock = clock_.load(std::memory_order_relaxed);
  if (clock != nullptr) return clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::set_clock(ClockFn clock) noexcept {
  clock_.store(clock, std::memory_order_relaxed);
}

Profiler::ThreadTree& Profiler::local_tree() {
  const std::uint64_t current_epoch = epoch();
  for (auto& entry : t_tree_cache) {
    if (entry.profiler_id == id_ && entry.epoch == current_epoch) {
      return *entry.tree;
    }
  }
  auto tree = std::make_unique<ThreadTree>();
  ThreadTree* raw = tree.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    trees_.push_back(std::move(tree));
  }
  for (auto& entry : t_tree_cache) {
    if (entry.profiler_id == id_) {
      entry = {id_, current_epoch, raw};
      return *raw;
    }
  }
  t_tree_cache.push_back({id_, current_epoch, raw});
  return *raw;
}

Profiler::Node* Profiler::enter(const char* name) {
  ThreadTree& tree = local_tree();
  Node* node = tree.stack.back()->find_or_add(name);
  node->calls.fetch_add(1, std::memory_order_relaxed);
  tree.stack.push_back(node);
  return node;
}

void Profiler::exit(Node* node, std::uint64_t elapsed_ns) {
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  local_tree().stack.pop_back();
}

std::vector<std::string> Profiler::capture_path() const {
  std::vector<std::string> path;
  const std::uint64_t current_epoch = epoch();
  for (const auto& entry : t_tree_cache) {
    if (entry.profiler_id == id_ && entry.epoch == current_epoch) {
      const auto& stack = entry.tree->stack;
      path.reserve(stack.size() - 1);
      for (std::size_t i = 1; i < stack.size(); ++i) {
        path.push_back(stack[i]->name);
      }
      break;
    }
  }
  return path;
}

int Profiler::anchor_open(const std::vector<std::string>& path) {
  ThreadTree& tree = local_tree();
  // Skip the prefix already open on this thread: inline execution (pool
  // size 1 or nested-submit fallback) re-enters under the very frames the
  // path was captured from, and must not duplicate them.
  std::size_t k = 0;
  while (k < path.size() && k + 1 < tree.stack.size() &&
         tree.stack[k + 1]->name == path[k]) {
    ++k;
  }
  int opened = 0;
  for (std::size_t i = k; i < path.size(); ++i) {
    Node* node = tree.stack.back()->find_or_add(path[i]);
    tree.stack.push_back(node);  // pass-through: no call count, no timing
    ++opened;
  }
  return opened;
}

void Profiler::anchor_close(int opened) {
  ThreadTree& tree = local_tree();
  for (int i = 0; i < opened; ++i) tree.stack.pop_back();
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  trees_.clear();
}

namespace {

void accumulate(PhaseNode& out, const Profiler::Node& node);

PhaseNode& merged_child(PhaseNode& parent, const std::string& name) {
  for (auto& child : parent.children) {
    if (child.name == name) return child;
  }
  parent.children.emplace_back();
  parent.children.back().name = name;
  return parent.children.back();
}

void accumulate(PhaseNode& out, const Profiler::Node& node) {
  out.calls += node.calls.load(std::memory_order_relaxed);
  out.inclusive_us +=
      static_cast<double>(node.total_ns.load(std::memory_order_relaxed)) *
      1e-3;
  for (const auto& child : node.children) {
    accumulate(merged_child(out, child->name), *child);
  }
}

// Sort children by name, fill pass-through inclusive times bottom-up, and
// derive exclusive = inclusive - sum(children) clamped at zero (pooled
// children can sum past their parent's single-thread wall time).
void finalize(PhaseNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const PhaseNode& a, const PhaseNode& b) {
              return a.name < b.name;
            });
  double child_sum = 0.0;
  for (auto& child : node.children) {
    finalize(child);
    child_sum += child.inclusive_us;
  }
  if (node.calls == 0) node.inclusive_us = child_sum;
  node.exclusive_us = std::max(0.0, node.inclusive_us - child_sum);
}

}  // namespace

PhaseNode Profiler::snapshot() const {
  PhaseNode root;
  root.name = "root";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& tree : trees_) {
      for (const auto& top : tree->root.children) {
        accumulate(merged_child(root, top->name), *top);
      }
    }
  }
  finalize(root);
  return root;
}

Profiler& Profiler::default_profiler() {
  static Profiler* profiler = new Profiler();  // never destroyed: scopes in
  return *profiler;                            // atexit hooks must stay safe
}

ProfileScope::ProfileScope(const char* name, Profiler* profiler)
    : profiler_(profiling_enabled()
                    ? (profiler != nullptr ? profiler
                                           : &Profiler::default_profiler())
                    : nullptr) {
  if (profiler_ == nullptr) return;
  epoch_ = profiler_->epoch();
  node_ = profiler_->enter(name);
  start_ns_ = profiler_->clock_now();
}

ProfileScope::~ProfileScope() {
  if (profiler_ == nullptr) return;
  if (profiler_->epoch() != epoch_) return;  // reset() abandoned this frame
  const std::uint64_t end_ns = profiler_->clock_now();
  profiler_->exit(node_, end_ns - start_ns_);
}

ProfileAnchor::ProfileAnchor(const std::vector<std::string>& path,
                             Profiler* profiler)
    : profiler_(profiling_enabled()
                    ? (profiler != nullptr ? profiler
                                           : &Profiler::default_profiler())
                    : nullptr) {
  if (profiler_ == nullptr || path.empty()) {
    profiler_ = nullptr;
    return;
  }
  epoch_ = profiler_->epoch();
  opened_ = profiler_->anchor_open(path);
}

ProfileAnchor::~ProfileAnchor() {
  if (profiler_ == nullptr) return;
  if (profiler_->epoch() != epoch_) return;
  profiler_->anchor_close(opened_);
}

const PhaseNode* PhaseNode::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

const PhaseNode* PhaseNode::find(std::string_view path) const {
  const PhaseNode* node = this;
  while (node != nullptr && !path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view head =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    node = node->child(head);
    path = slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(slash + 1);
  }
  return node;
}

namespace {

void append_json(std::string& out, const PhaseNode& node) {
  out += "{\"name\":\"";
  out += node.name;
  out += "\",\"calls\":";
  out += util::format_u64(node.calls);
  out += ",\"inclusive_us\":";
  out += util::format_double_decimal(node.inclusive_us);
  out += ",\"exclusive_us\":";
  out += util::format_double_decimal(node.exclusive_us);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    append_json(out, node.children[i]);
  }
  out += "]}";
}

void append_text(std::string& out, const PhaseNode& node, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.name;
  out += "  calls=";
  out += util::format_u64(node.calls);
  out += " incl_ms=";
  out += util::format_double_decimal(node.inclusive_us / 1000.0);
  out += " excl_ms=";
  out += util::format_double_decimal(node.exclusive_us / 1000.0);
  out += "\n";
  for (const auto& child : node.children) {
    append_text(out, child, depth + 1);
  }
}

void append_signature(std::string& out, const PhaseNode& node) {
  out += node.name;
  out += ":";
  out += util::format_u64(node.calls);
  out += "{";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    append_signature(out, node.children[i]);
  }
  out += "}";
}

}  // namespace

std::string to_json(const PhaseNode& root) {
  std::string out;
  append_json(out, root);
  return out;
}

std::string to_text(const PhaseNode& root) {
  std::string out;
  append_text(out, root, 0);
  return out;
}

std::string structure_signature(const PhaseNode& root) {
  std::string out;
  append_signature(out, root);
  return out;
}

}  // namespace rac::obs
