// Scoped profiling timers recording into registry histograms.
//
// A ScopedTimer takes two steady_clock samples per scope -- cheap against
// the paths it wraps (an MVA solve, a TD retrain, a DES interval) but not
// free, so a process-global switch (`set_profiling`) turns the clock reads
// off entirely; a disabled or null-histogram timer does no work.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace rac::obs {

/// Whether ScopedTimer takes clock samples. Default: enabled.
void set_profiling(bool enabled) noexcept;
bool profiling_enabled() noexcept;

/// Records the scope's wall time, in microseconds, into `histogram` on
/// destruction. A nullptr histogram (or profiling disabled at
/// construction) makes the timer a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(profiling_enabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// Shared bucket layout for microsecond-scale latency histograms:
/// 1us .. ~8.6s in powers of 2.
std::vector<double> latency_us_bounds();

}  // namespace rac::obs
