// Hierarchical phase profiler: a call tree of named scopes on top of the
// flat ScopedTimer histograms.
//
// ProfileScope pushes a frame onto the calling thread's tree (creating the
// node on first entry) and records inclusive nanoseconds on exit; nesting
// scopes builds the phase hierarchy, and snapshot() merges every thread's
// tree into one deterministic PhaseNode tree (children sorted by name,
// per-phase calls summed across threads).
//
// Determinism across util::ThreadPool fan-out is the hard part: a pool
// worker has none of the submitting thread's frames open, so the same
// computation would profile under a different path at different thread
// counts. Call sites that fan out capture the submitter's open path with
// capture_path() and open a ProfileAnchor inside each task: the anchor
// re-opens the captured frames as pass-through nodes (no call counts, no
// timing) so the task's scopes attach at the same tree position whether
// the task runs inline (pool size 1 -- the anchor detects the frames are
// already open and does nothing) or on a worker. The merged tree therefore
// has identical structure and call counts at any thread count; only the
// timings differ, and structure_signature() strips those for golden
// comparisons.
//
// Scopes honor the process-global set_profiling switch: a scope built
// while profiling is disabled takes no clock samples and touches no tree.
// The clock is injectable (set_clock) so tests can prove that. reset() and
// snapshot() require quiescence -- call them only when no scopes are open
// on other threads (benches snapshot after the pool has joined).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timer.hpp"

namespace rac::obs {

/// One phase in a merged snapshot. `inclusive_us` is the summed wall time
/// of the phase across all threads (a phase fanned out to N workers can
/// exceed its parent's single-thread inclusive time; exclusive clamps at
/// zero). Pass-through anchor frames carry calls == 0 and inherit the sum
/// of their children as inclusive time.
struct PhaseNode {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_us = 0.0;
  double exclusive_us = 0.0;
  std::vector<PhaseNode> children;  // sorted by name

  /// Direct child by name; nullptr when absent.
  const PhaseNode* child(std::string_view child_name) const;
  /// Descendant by '/'-separated path ("core.policy_init/rl.batch_train").
  const PhaseNode* find(std::string_view path) const;
};

/// JSON rendering (lineio shortest-decimal numbers, keys sorted by the
/// deterministic child order).
std::string to_json(const PhaseNode& root);

/// Indented human-readable table (calls, inclusive/exclusive ms).
std::string to_text(const PhaseNode& root);

/// Timing-free rendering -- names, call counts and hierarchy only. Two
/// runs executing the same phases the same number of times produce
/// byte-identical signatures regardless of thread count or wall time.
std::string structure_signature(const PhaseNode& root);

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Merged tree across every thread that recorded scopes. Root is a
  /// synthetic "root" node whose children are the top-level phases.
  /// Requires quiescence (no scopes concurrently open).
  PhaseNode snapshot() const;

  /// Names of the calling thread's currently open frames, outermost
  /// first. Capture before fanning work out to a pool, then open a
  /// ProfileAnchor with the result inside each task.
  std::vector<std::string> capture_path() const;

  /// Drop all recorded trees. Requires quiescence; scopes still open in
  /// other threads are abandoned (their exit is ignored).
  void reset();

  /// Monotonic nanosecond clock override for tests; nullptr restores
  /// steady_clock.
  using ClockFn = std::uint64_t (*)();
  void set_clock(ClockFn clock) noexcept;

  /// The process-wide profiler ProfileScope records into by default.
  static Profiler& default_profiler();

  // Opaque internals (defined in profiler.cpp); public only so file-local
  // helpers there can name them.
  struct Node;
  struct ThreadTree;

 private:
  friend class ProfileScope;
  friend class ProfileAnchor;

  std::uint64_t clock_now() const;
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  ThreadTree& local_tree();
  Node* enter(const char* name);
  void exit(Node* node, std::uint64_t elapsed_ns);
  int anchor_open(const std::vector<std::string>& path);
  void anchor_close(int opened);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadTree>> trees_;
  std::atomic<ClockFn> clock_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
  const std::uint64_t id_;
};

/// RAII frame in the profiler's call tree. `name` must outlive the scope
/// (string literals in practice). A scope constructed while
/// profiling_enabled() is false is a complete no-op: no clock reads, no
/// tree access.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name, Profiler* profiler = nullptr);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  Profiler::Node* node_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t epoch_ = 0;
};

/// RAII pass-through frames re-opening a captured path inside a pooled
/// task (see file comment). Opens only the suffix of `path` not already on
/// the calling thread's stack, so inline execution is a no-op.
class ProfileAnchor {
 public:
  explicit ProfileAnchor(const std::vector<std::string>& path,
                         Profiler* profiler = nullptr);
  ~ProfileAnchor();
  ProfileAnchor(const ProfileAnchor&) = delete;
  ProfileAnchor& operator=(const ProfileAnchor&) = delete;

 private:
  Profiler* profiler_;
  int opened_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace rac::obs
