// Counting global operator new/delete, compiled only when the CMake
// option RAC_ALLOC_HOOK is ON (see process_stats.hpp for the opt-in
// contract). The replacements forward to malloc/free and bump relaxed
// atomics while counting is enabled; the unreplaced aligned/nothrow forms
// funnel through these per the standard's default definitions.
#include <cstdlib>
#include <new>

#include "obs/process_stats.hpp"

namespace {

using rac::obs::detail::alloc_hook_state;

void* counted_alloc(std::size_t size) {
  alloc_hook_state().record(size);
  // Zero-size new must return a unique pointer; malloc(0) may return null.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

struct MarkCompiled {
  MarkCompiled() noexcept {
    alloc_hook_state().compiled.store(true, std::memory_order_relaxed);
  }
} const g_mark_compiled;

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
