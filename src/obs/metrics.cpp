#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/lineio.hpp"

namespace rac::obs {

namespace {

void add_double(std::atomic<double>& cell, double delta) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

// Shortest-decimal via to_chars: locale-immune and exact, so the text and
// JSON exporters render the same bytes and the JSON parses back to the
// identical double (the setprecision(6) ostream formatting this replaced
// both truncated and honored the global locale's decimal point).
std::string fmt_double(double v) { return util::format_double_decimal(v); }

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must not be empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_double(sum_, v);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("Histogram: bad exponential bounds");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.emplace_back(new Counter(name));
  return *counters_.back();
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& g : gauges_) {
    if (g->name() == name) return *g;
  }
  gauges_.emplace_back(new Gauge(name));
  return *gauges_.back();
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& h : histograms_) {
    if (h->name() == name) return *h;
  }
  histograms_.emplace_back(new Histogram(name, std::move(bounds)));
  return *histograms_.back();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& c : counters_) {
      snap.counters.push_back({c->name(), c->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& g : gauges_) {
      snap.gauges.push_back({g->name(), g->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      HistogramSample s;
      s.name = h->name();
      s.count = h->count();
      s.sum = h->sum();
      s.mean = h->mean();
      s.bounds = h->bounds();
      s.bucket_counts.reserve(s.bounds.size() + 1);
      for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
        s.bucket_counts.push_back(h->bucket_count(i));
      }
      snap.histograms.push_back(std::move(s));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

std::string MetricsSnapshot::to_text() const {
  std::size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());

  std::ostringstream os;
  for (const auto& c : counters) {
    os << std::left << std::setw(static_cast<int>(width)) << c.name << "  "
       << c.value << "\n";
  }
  for (const auto& g : gauges) {
    os << std::left << std::setw(static_cast<int>(width)) << g.name << "  "
       << fmt_double(g.value) << "\n";
  }
  for (const auto& h : histograms) {
    os << std::left << std::setw(static_cast<int>(width)) << h.name
       << "  count=" << h.count << " mean=" << fmt_double(h.mean)
       << " sum=" << fmt_double(h.sum) << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << counters[i].name << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << gauges[i].name << "\":" << fmt_double(gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i > 0) os << ",";
    os << "\"" << h.name << "\":{\"count\":" << h.count
       << ",\"sum\":" << fmt_double(h.sum) << ",\"mean\":" << fmt_double(h.mean)
       << ",\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) os << ",";
      os << fmt_double(h.bounds[j]);
    }
    os << "],\"buckets\":[";
    for (std::size_t j = 0; j < h.bucket_counts.size(); ++j) {
      if (j > 0) os << ",";
      os << h.bucket_counts[j];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

const CounterSample* MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  // std::map keys keep the merged output sorted by name without a second
  // pass; this path is reporting-time only, never hot.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSample> histograms;
  std::map<std::string, bool> bounds_match;
  for (const MetricsSnapshot& part : parts) {
    for (const CounterSample& c : part.counters) counters[c.name] += c.value;
    for (const GaugeSample& g : part.gauges) gauges[g.name] += g.value;
    for (const HistogramSample& h : part.histograms) {
      auto [it, inserted] = histograms.emplace(h.name, h);
      if (inserted) {
        bounds_match[h.name] = true;
        continue;
      }
      HistogramSample& merged = it->second;
      merged.count += h.count;
      merged.sum += h.sum;
      bool& match = bounds_match[h.name];
      match = match && merged.bounds == h.bounds &&
              merged.bucket_counts.size() == h.bucket_counts.size();
      if (match) {
        for (std::size_t i = 0; i < merged.bucket_counts.size(); ++i) {
          merged.bucket_counts[i] += h.bucket_counts[i];
        }
      } else {
        merged.bounds.clear();
        merged.bucket_counts.clear();
      }
    }
  }
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) out.counters.push_back({name, value});
  out.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) out.gauges.push_back({name, value});
  out.histograms.reserve(histograms.size());
  for (auto& [name, merged] : histograms) {
    merged.mean = merged.count == 0
                      ? 0.0
                      : merged.sum / static_cast<double>(merged.count);
    out.histograms.push_back(std::move(merged));
  }
  return out;
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

Registry& registry_or_default(Registry* r) {
  return r != nullptr ? *r : default_registry();
}

}  // namespace rac::obs
