// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The hot paths of the RAC pipeline (TD sweeps, environment evaluations,
// MVA recursions) update metrics millions of times per experiment, so the
// update path is a single relaxed atomic operation on a handle obtained
// once; registration (name lookup) is mutex-guarded and meant to happen
// once per call site (function-local static handles). Snapshots are
// consistent enough for reporting -- each cell is read atomically, the set
// of cells is read under the registration mutex -- and export to an
// aligned text form and to JSON for machine consumption.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rac::obs {

/// Monotonic event count. Updates are relaxed atomic adds.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket counts the rest. Also tracks sum and count so means are
/// exact regardless of bucketing.
class Histogram {
 public:
  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);
  std::string name_;
  std::vector<double> bounds_;  // sorted ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// -- snapshots ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 entries
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Aligned "name value" text block (histograms as count/mean/buckets).
  std::string to_text() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;

  /// Lookup helpers for tests and reports; return nullptr when absent.
  const CounterSample* counter(const std::string& name) const;
  const GaugeSample* gauge(const std::string& name) const;
  const HistogramSample* histogram(const std::string& name) const;
};

/// Named metric store. Handles returned by `counter` / `gauge` /
/// `histogram` stay valid for the registry's lifetime; repeated calls with
/// one name return the same handle (a histogram's bounds are fixed by the
/// first registration).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Zero every metric (keeps registrations). Benches call this between
  /// phases so each phase reports its own activity.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// Fold several snapshots (e.g. one per fleet shard) into one aggregate,
/// sorted by name: counters and gauges sum per name; histograms sum count
/// and sum per name, and bucket counts are added when every contributing
/// histogram shares the first one's bounds (on a layout mismatch the
/// merged entry keeps count/sum/mean exact and drops the buckets --
/// summing unlike layouts would fabricate a distribution).
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

/// The process-wide registry every built-in instrumentation point uses.
Registry& default_registry();

/// Resolve an injectable registry pointer: `r` if non-null, else the
/// process-wide default. Library code outside src/obs/ must route every
/// fallback through this helper rather than naming default_registry()
/// directly (rac-lint rule `default-registry`): direct references are how
/// components end up pinned to the global registry and silently ignore an
/// injected one.
Registry& registry_or_default(Registry* r);

}  // namespace rac::obs
