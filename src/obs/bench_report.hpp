// Machine-readable bench reports: the `rac-bench-report v1` schema.
//
// Every bench binary (via bench::banner) fills a BenchReport at exit and
// writes it as one JSON file per bench into the directory named by
// $RAC_BENCH_REPORT. The schema is versioned and flat enough for
// dependency-free tooling (scripts/bench_trajectory.py) to aggregate:
//
//   { "schema": "rac-bench-report v1",
//     "bench": "...", "run_id": "<git_sha>-<bench>-s<seed>-t<threads>",
//     "git_sha": "...", "seed": N, "threads": N, "quick": bool,
//     "wall_ms": F, "trace_digest": "...",
//     "host": {"nproc": N, "hostname": "...", "build_type": "...",
//              "compiler": "..."},
//     "process": {"peak_rss_bytes": N, "alloc_count": N, "alloc_bytes": N,
//                 "alloc_hook_compiled": bool},
//     "phases": {profiler tree, see obs/profiler.hpp},
//     "metrics": {registry snapshot, see MetricsSnapshot::to_json} }
//
// All numbers go through util/lineio shortest-decimal formatting, so the
// files are locale-immune and byte-stable for identical inputs. Writes use
// util::atomic_write_file: readers never see a torn report.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/profiler.hpp"

namespace rac::obs {

struct BenchReport {
  std::string bench;         // binary name, e.g. "bench_fig5_policy_comparison"
  std::string git_sha;       // "unknown" when not discoverable
  std::uint64_t seed = 0;
  std::size_t threads = 1;
  bool quick = false;
  double wall_ms = 0.0;
  std::string trace_digest;  // "" when no digest sink was attached
  std::string hostname;
  unsigned nproc = 0;
  std::string build_type;
  std::string compiler;
  ProcessStats process;
  PhaseNode phases;
  MetricsSnapshot metrics;
};

/// "<git_sha>-<bench>-s<seed>-t<threads>".
std::string run_id(const BenchReport& report);

/// The full rac-bench-report v1 JSON document.
std::string to_json(const BenchReport& report);

/// Atomically write `to_json(report)` to `<dir>/<report.bench>.json`.
/// Throws std::ios_base::failure on I/O errors.
void write_bench_report(const std::string& dir, const BenchReport& report);

/// HEAD commit of the checkout this binary was built from, resolved at
/// call time by reading .git/HEAD (and the ref file or packed-refs it
/// points to). Returns "unknown" when undiscoverable. `source_dir`
/// defaults to the compiled-in project source directory.
std::string discover_git_sha(const std::string& source_dir = "");

/// Fills git_sha, hostname, nproc, build_type, compiler and process stats.
void fill_host_metadata(BenchReport& report);

}  // namespace rac::obs
