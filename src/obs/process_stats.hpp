// Whole-process resource counters for bench reports: peak RSS and (when
// compiled in) heap-allocation counts.
//
// Peak RSS comes from the kernel (getrusage ru_maxrss), so it needs no
// instrumentation. Allocation counting replaces global operator new/delete
// and is therefore opt-in twice over: the replacement is only compiled
// when CMake option RAC_ALLOC_HOOK is ON (it is OFF by default and forced
// off under sanitizers, whose interceptors own the allocator), and even
// then counts only while set_alloc_counting(true). Without the hook the
// counters read zero and alloc_hook_compiled() reports false, so reports
// can distinguish "no allocations counted" from "counting unavailable".
#pragma once

#include <atomic>
#include <cstdint>

namespace rac::obs {

struct ProcessStats {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  bool alloc_hook_compiled = false;
};

/// Snapshot of the counters above, taken now.
ProcessStats process_stats();

/// Peak resident set size of this process, in bytes (0 when unavailable).
std::uint64_t peak_rss_bytes();

/// Enable/disable allocation counting. No effect unless the counting
/// operator new replacement was compiled in (RAC_ALLOC_HOOK=ON).
void set_alloc_counting(bool enabled) noexcept;
bool alloc_hook_compiled() noexcept;

namespace detail {
// Shared state between process_stats.cpp and the optional alloc_hook.cpp
// translation unit. Constant-initialized so the operator new replacement
// can record during static initialization of other TUs. Not part of the
// public surface.
struct AllocHookState {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<bool> enabled{false};
  std::atomic<bool> compiled{false};

  void record(std::uint64_t size) noexcept {
    if (!enabled.load(std::memory_order_relaxed)) return;
    count.fetch_add(1, std::memory_order_relaxed);
    bytes.fetch_add(size, std::memory_order_relaxed);
  }
};
AllocHookState& alloc_hook_state() noexcept;
}  // namespace detail

}  // namespace rac::obs
