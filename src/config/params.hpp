// The tunable performance-critical parameters (paper Table 1).
//
// Eight runtime-configurable parameters across the web (Apache) and
// application (Tomcat) tiers. The database tier keeps its defaults, as in
// the paper. Ranges and defaults follow Table 1 of the paper (the published
// table: MaxClients [50,600] default 150, KeepAlive timeout [1,21] default
// 15, MinSpareServers [5,85] default 5, MaxSpareServers [15,95] default 15,
// MaxThreads [50,600] default 200, Session timeout [1,35] default 30,
// minSpareThreads [5,85] default 5, maxSpareThreads [15,95] default 50).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace rac::config {

enum class ParamId : int {
  kMaxClients = 0,        // web: max simultaneously served connections
  kKeepAliveTimeout = 1,  // web: seconds an idle keep-alive connection is held
  kMinSpareServers = 2,   // web: lower bound of the idle worker pool
  kMaxSpareServers = 3,   // web: upper bound of the idle worker pool
  kMaxThreads = 4,        // app: max request-processing threads
  kSessionTimeout = 5,    // app: minutes before an idle session expires
  kMinSpareThreads = 6,   // app: lower bound of the idle thread pool
  kMaxSpareThreads = 7,   // app: upper bound of the idle thread pool
};

inline constexpr std::size_t kNumParams = 8;

enum class Tier { kWeb, kApp };

/// The paper's parameter grouping (Section 4.1): parameters limited by the
/// same system property are tuned together during offline data collection.
enum class ParamGroup : int {
  kCapacity = 0,        // MaxClients, MaxThreads: limited by system capacity
  kConnectionLife = 1,  // KeepAlive timeout, Session timeout: multi-request
                        // connection/session lifetime
  kSpareLow = 2,        // MinSpareServers, minSpareThreads
  kSpareHigh = 3,       // MaxSpareServers, maxSpareThreads
};

inline constexpr std::size_t kNumGroups = 4;

struct ParamSpec {
  ParamId id;
  std::string_view name;
  Tier tier;
  int min;
  int max;
  int default_value;
  /// Grid step used during online learning (fine granularity).
  int fine_step;
  ParamGroup group;
};

/// The full Table-1 catalog, indexed by ParamId.
std::span<const ParamSpec, kNumParams> catalog() noexcept;

const ParamSpec& spec(ParamId id) noexcept;

constexpr std::size_t index(ParamId id) noexcept {
  return static_cast<std::size_t>(id);
}

std::string_view name(ParamId id) noexcept;
std::string_view tier_name(Tier tier) noexcept;
std::string_view group_name(ParamGroup group) noexcept;

/// Members of a group, in ParamId order.
std::array<ParamId, 2> group_members(ParamGroup group) noexcept;

inline constexpr std::array<ParamId, kNumParams> kAllParams = {
    ParamId::kMaxClients,      ParamId::kKeepAliveTimeout,
    ParamId::kMinSpareServers, ParamId::kMaxSpareServers,
    ParamId::kMaxThreads,      ParamId::kSessionTimeout,
    ParamId::kMinSpareThreads, ParamId::kMaxSpareThreads,
};

inline constexpr std::array<ParamGroup, kNumGroups> kAllGroups = {
    ParamGroup::kCapacity, ParamGroup::kConnectionLife, ParamGroup::kSpareLow,
    ParamGroup::kSpareHigh};

}  // namespace rac::config
