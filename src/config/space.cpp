#include "config/space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::config {

std::string Action::to_string() const {
  if (is_keep()) return "keep";
  std::ostringstream os;
  os << (direction() > 0 ? "inc " : "dec ") << name(param());
  return os.str();
}

ConfigSpace::ConfigSpace(int coarse_levels) : coarse_levels_(coarse_levels) {
  if (coarse_levels < 2) {
    throw std::invalid_argument("ConfigSpace: need at least 2 coarse levels");
  }
  if constexpr (util::kAuditEnabled) validate_catalog();
}

std::vector<Action> ConfigSpace::all_actions() {
  std::vector<Action> actions;
  actions.reserve(kNumActions);
  for (std::size_t id = 0; id < kNumActions; ++id) {
    actions.emplace_back(static_cast<int>(id));
  }
  return actions;
}

Configuration ConfigSpace::apply(const Configuration& c, Action a) noexcept {
  Configuration next = c;
  if (!a.is_keep()) next.step(a.param(), a.direction());
  return next;
}

bool ConfigSpace::changes(const Configuration& c, Action a) noexcept {
  if (a.is_keep()) return false;
  Configuration next = c;
  return next.step(a.param(), a.direction());
}

std::vector<Configuration> ConfigSpace::neighbors(const Configuration& c) {
  std::vector<Configuration> out;
  out.reserve(kNumActions);
  out.push_back(c);
  for (ParamId id : kAllParams) {
    for (int dir : {+1, -1}) {
      Configuration next = c;
      if (next.step(id, dir)) out.push_back(next);
    }
  }
  return out;
}

std::vector<int> ConfigSpace::fine_grid(ParamId id) {
  const auto& s = spec(id);
  std::vector<int> grid;
  for (int v = s.min; v < s.max; v += s.fine_step) grid.push_back(v);
  grid.push_back(s.max);
  return grid;
}

Configuration ConfigSpace::snap_to_fine(const Configuration& c) noexcept {
  Configuration out = c;
  for (ParamId id : kAllParams) {
    const auto& s = spec(id);
    const int v = c.value(id);
    const int steps = static_cast<int>(
        std::lround(static_cast<double>(v - s.min) / s.fine_step));
    out.set(id, std::min(s.min + steps * s.fine_step, s.max));
  }
  return out;
}

std::vector<double> ConfigSpace::coarse_fractions() const {
  std::vector<double> fr(static_cast<std::size_t>(coarse_levels_));
  for (int i = 0; i < coarse_levels_; ++i) {
    fr[static_cast<std::size_t>(i)] =
        static_cast<double>(i) / static_cast<double>(coarse_levels_ - 1);
  }
  return fr;
}

Configuration ConfigSpace::expand(const GroupFractions& fractions) noexcept {
  Configuration c;
  for (std::size_t g = 0; g < kNumGroups; ++g) {
    for (ParamId member : group_members(static_cast<ParamGroup>(g))) {
      c.set_normalized(member, fractions[g]);
    }
  }
  return snap_to_fine(c);
}

std::vector<Configuration> ConfigSpace::coarse_grid() const {
  const auto fractions = coarse_fractions();
  std::vector<Configuration> grid;
  grid.reserve(static_cast<std::size_t>(
      std::pow(static_cast<double>(coarse_levels_), kNumGroups)));
  std::array<std::size_t, kNumGroups> idx{};
  while (true) {
    GroupFractions f{};
    for (std::size_t g = 0; g < kNumGroups; ++g) f[g] = fractions[idx[g]];
    grid.push_back(expand(f));
    // Odometer increment.
    std::size_t g = 0;
    for (; g < kNumGroups; ++g) {
      if (++idx[g] < fractions.size()) break;
      idx[g] = 0;
    }
    if (g == kNumGroups) break;
  }
  return grid;
}

GroupFractions ConfigSpace::nearest_coarse_fractions(
    const Configuration& c) const {
  GroupFractions out{};
  for (std::size_t g = 0; g < kNumGroups; ++g) {
    const auto members = group_members(static_cast<ParamGroup>(g));
    double mean = 0.0;
    for (ParamId member : members) mean += c.normalized(member);
    mean /= static_cast<double>(members.size());
    // Snap to the nearest coarse level.
    const double scaled = mean * static_cast<double>(coarse_levels_ - 1);
    const double snapped =
        std::round(scaled) / static_cast<double>(coarse_levels_ - 1);
    out[g] = std::clamp(snapped, 0.0, 1.0);
  }
  return out;
}

Configuration ConfigSpace::nearest_coarse(const Configuration& c) const {
  return expand(nearest_coarse_fractions(c));
}

void validate_spec(const ParamSpec& spec) {
  RAC_EXPECT(spec.min < spec.max, "ParamSpec: inverted or empty bounds");
  RAC_EXPECT(spec.fine_step > 0, "ParamSpec: non-positive fine step");
  RAC_EXPECT(spec.fine_step <= spec.max - spec.min,
             "ParamSpec: fine step wider than the range");
  RAC_EXPECT(spec.default_value >= spec.min && spec.default_value <= spec.max,
             "ParamSpec: default outside bounds");
  RAC_EXPECT(!spec.name.empty(), "ParamSpec: empty name");
}

void validate_catalog() {
  for (const ParamSpec& s : catalog()) {
    validate_spec(s);
    RAC_EXPECT(&spec(s.id) == &s, "catalog: spec not indexed by its own id");
  }
  for (std::size_t g = 0; g < kNumGroups; ++g) {
    for (ParamId member : group_members(static_cast<ParamGroup>(g))) {
      RAC_EXPECT(spec(member).group == static_cast<ParamGroup>(g),
                 "catalog: group membership inconsistent with spec.group");
    }
  }
}

Configuration ConfigSpace::random_fine(util::Rng& rng) {
  Configuration c;
  for (ParamId id : kAllParams) {
    const auto grid = fine_grid(id);
    c.set(id, grid[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<int>(grid.size()) - 1))]);
  }
  return c;
}

}  // namespace rac::config
