// The configuration state/action space.
//
// Actions follow the paper (Section 3.2): for each parameter there are
// three basic actions -- increase, decrease, keep -- and one action touches
// one parameter per reconfiguration step. We encode the joint action set as
// 2 * kNumParams + 1 discrete actions (a global "keep" plus inc/dec per
// parameter), which is exactly the set of paper action vectors with one
// taken entry.
//
// Two granularities are exposed (Section 4.1):
//   * fine grid   -- the per-parameter `fine_step` used during online
//                    learning;
//   * coarse grid -- a few levels per parameter *group* used during offline
//                    training-data collection (parameter grouping: members
//                    of a group always move together, at the same
//                    normalized position in their respective ranges).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "config/params.hpp"
#include "util/rng.hpp"

namespace rac::config {

/// A discrete reconfiguration action.
class Action {
 public:
  static constexpr int kKeepId = 0;

  constexpr Action() noexcept : id_(kKeepId) {}
  constexpr explicit Action(int id) noexcept : id_(id) {}

  static constexpr Action keep() noexcept { return Action{kKeepId}; }
  static constexpr Action increase(ParamId p) noexcept {
    return Action{1 + 2 * static_cast<int>(p)};
  }
  static constexpr Action decrease(ParamId p) noexcept {
    return Action{2 + 2 * static_cast<int>(p)};
  }

  constexpr int id() const noexcept { return id_; }
  constexpr bool is_keep() const noexcept { return id_ == kKeepId; }
  /// Parameter touched; only valid when !is_keep().
  constexpr ParamId param() const noexcept {
    return static_cast<ParamId>((id_ - 1) / 2);
  }
  /// +1 for increase, -1 for decrease, 0 for keep.
  constexpr int direction() const noexcept {
    if (is_keep()) return 0;
    return (id_ % 2 == 1) ? +1 : -1;
  }

  std::string to_string() const;

  constexpr bool operator==(const Action&) const noexcept = default;

 private:
  int id_;
};

inline constexpr std::size_t kNumActions = 2 * kNumParams + 1;

/// Position of a parameter group on its coarse grid, as a normalized
/// fraction in [0, 1] of each member's range.
using GroupFractions = std::array<double, kNumGroups>;

class ConfigSpace {
 public:
  /// `coarse_levels` is the number of positions per group used for offline
  /// data collection (paper uses a coarse granularity; 4 levels per group
  /// gives 4^4 = 256 sampled configurations).
  explicit ConfigSpace(int coarse_levels = 4);

  int coarse_levels() const noexcept { return coarse_levels_; }

  // -- Actions ------------------------------------------------------------
  static std::size_t num_actions() noexcept { return kNumActions; }
  static std::vector<Action> all_actions();

  /// Apply an action on the fine grid; boundary moves clamp (the action
  /// becomes a no-op). Returns the successor configuration.
  static Configuration apply(const Configuration& c, Action a) noexcept;

  /// True if the action changes the configuration (i.e. not keep and not a
  /// clamped boundary move).
  static bool changes(const Configuration& c, Action a) noexcept;

  /// All distinct successor states of `c` (including `c` itself for keep).
  static std::vector<Configuration> neighbors(const Configuration& c);

  // -- Fine grid ----------------------------------------------------------
  /// All values of a parameter's fine grid: min, min+step, ..., max (the
  /// max is always included even if the last step is short).
  static std::vector<int> fine_grid(ParamId id);

  /// Snap each parameter to the nearest fine-grid value.
  static Configuration snap_to_fine(const Configuration& c) noexcept;

  // -- Coarse grid / grouping ----------------------------------------------
  /// The normalized positions of the coarse grid (size == coarse_levels).
  std::vector<double> coarse_fractions() const;

  /// Expand group positions into a full configuration: each member of a
  /// group is set to the same normalized position, snapped to its fine grid.
  static Configuration expand(const GroupFractions& fractions) noexcept;

  /// Enumerate the full coarse sample set (coarse_levels ^ kNumGroups
  /// configurations).
  std::vector<Configuration> coarse_grid() const;

  /// Group positions of the coarse configuration nearest to `c`
  /// (per-group mean of member fractions, snapped to the coarse levels).
  GroupFractions nearest_coarse_fractions(const Configuration& c) const;

  /// The coarse configuration nearest to `c`.
  Configuration nearest_coarse(const Configuration& c) const;

  /// Uniformly random configuration on the fine grid.
  static Configuration random_fine(util::Rng& rng);

 private:
  int coarse_levels_;
};

/// Contract-check one parameter spec: ordered bounds, positive step no
/// wider than the range, default inside the bounds. Fails via RAC_EXPECT.
void validate_spec(const ParamSpec& spec);

/// validate_spec over the whole catalog, plus group-membership consistency
/// (each member's group field matches the group it is listed under). Run
/// automatically at ConfigSpace construction in RAC_AUDIT builds; callable
/// directly by tests and tools in any build.
void validate_catalog();

}  // namespace rac::config
