// A configuration is the RL state: one value per Table-1 parameter.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <string>

#include "config/params.hpp"

namespace rac::config {

class Configuration {
 public:
  /// Default-constructed configurations hold the Table-1 defaults.
  Configuration() noexcept;

  /// Construct from raw values; each value is clamped into its range.
  explicit Configuration(const std::array<int, kNumParams>& values) noexcept;

  static Configuration defaults() noexcept { return Configuration{}; }

  int value(ParamId id) const noexcept { return values_[index(id)]; }

  /// Sets a value, clamping into the parameter's [min, max] range.
  void set(ParamId id, int value) noexcept;

  /// Parameter value mapped to [0, 1] over its range.
  double normalized(ParamId id) const noexcept;

  /// Set from a normalized position in [0, 1] (clamped), rounded to the
  /// nearest integer value in range.
  void set_normalized(ParamId id, double t) noexcept;

  /// Move the parameter by `steps` fine-grid steps (may be negative).
  /// Clamps at the range boundary. Returns true if the value changed.
  bool step(ParamId id, int steps) noexcept;

  const std::array<int, kNumParams>& values() const noexcept { return values_; }

  /// All 8 values as normalized doubles (regression feature vector).
  std::array<double, kNumParams> normalized_values() const noexcept;

  bool operator==(const Configuration&) const noexcept = default;

  /// Stable hash for use as a Q-table key.
  std::size_t hash() const noexcept;

  /// "MaxClients=150 KeepAlive timeout=15 ..." rendering.
  std::string to_string() const;

  /// Compact "150/15/5/15/200/30/5/50" rendering for tables.
  std::string compact() const;

 private:
  std::array<int, kNumParams> values_;
};

struct ConfigurationHash {
  std::size_t operator()(const Configuration& c) const noexcept {
    return c.hash();
  }
};

}  // namespace rac::config
