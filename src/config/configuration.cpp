#include "config/configuration.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rac::config {

namespace {
int clamp_to_range(const ParamSpec& s, int v) noexcept {
  return std::clamp(v, s.min, s.max);
}
}  // namespace

Configuration::Configuration() noexcept {
  for (const auto& s : catalog()) values_[index(s.id)] = s.default_value;
}

Configuration::Configuration(const std::array<int, kNumParams>& values) noexcept {
  for (const auto& s : catalog()) {
    values_[index(s.id)] = clamp_to_range(s, values[index(s.id)]);
  }
}

void Configuration::set(ParamId id, int value) noexcept {
  values_[index(id)] = clamp_to_range(spec(id), value);
}

double Configuration::normalized(ParamId id) const noexcept {
  const auto& s = spec(id);
  return static_cast<double>(value(id) - s.min) /
         static_cast<double>(s.max - s.min);
}

void Configuration::set_normalized(ParamId id, double t) noexcept {
  const auto& s = spec(id);
  t = std::clamp(t, 0.0, 1.0);
  const int v = s.min + static_cast<int>(std::lround(t * (s.max - s.min)));
  set(id, v);
}

bool Configuration::step(ParamId id, int steps) noexcept {
  const auto& s = spec(id);
  const int before = value(id);
  set(id, before + steps * s.fine_step);
  return value(id) != before;
}

std::array<double, kNumParams> Configuration::normalized_values() const noexcept {
  std::array<double, kNumParams> out{};
  for (ParamId id : kAllParams) out[index(id)] = normalized(id);
  return out;
}

std::size_t Configuration::hash() const noexcept {
  // FNV-1a over the packed values: stable across runs (unlike std::hash).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int v : values_) {
    auto u = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (u >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : catalog()) {
    if (!first) os << ' ';
    first = false;
    os << s.name << '=' << value(s.id);
  }
  return os.str();
}

std::string Configuration::compact() const {
  std::ostringstream os;
  bool first = true;
  for (int v : values_) {
    if (!first) os << '/';
    first = false;
    os << v;
  }
  return os.str();
}

}  // namespace rac::config
