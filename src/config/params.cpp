#include "config/params.hpp"

#include "util/contracts.hpp"

namespace rac::config {

namespace {
constexpr std::array<ParamSpec, kNumParams> kCatalog = {{
    {ParamId::kMaxClients, "MaxClients", Tier::kWeb, 50, 600, 150, 25,
     ParamGroup::kCapacity},
    {ParamId::kKeepAliveTimeout, "KeepAlive timeout", Tier::kWeb, 1, 21, 15, 2,
     ParamGroup::kConnectionLife},
    {ParamId::kMinSpareServers, "MinSpareServers", Tier::kWeb, 5, 85, 5, 10,
     ParamGroup::kSpareLow},
    {ParamId::kMaxSpareServers, "MaxSpareServers", Tier::kWeb, 15, 95, 15, 10,
     ParamGroup::kSpareHigh},
    {ParamId::kMaxThreads, "MaxThreads", Tier::kApp, 50, 600, 200, 25,
     ParamGroup::kCapacity},
    {ParamId::kSessionTimeout, "Session timeout", Tier::kApp, 1, 35, 30, 2,
     ParamGroup::kConnectionLife},
    {ParamId::kMinSpareThreads, "minSpareThreads", Tier::kApp, 5, 85, 5, 10,
     ParamGroup::kSpareLow},
    {ParamId::kMaxSpareThreads, "maxSpareThreads", Tier::kApp, 15, 95, 50, 10,
     ParamGroup::kSpareHigh},
}};
}  // namespace

std::span<const ParamSpec, kNumParams> catalog() noexcept { return kCatalog; }

const ParamSpec& spec(ParamId id) noexcept {
  return kCatalog[index(id)];
}

std::string_view name(ParamId id) noexcept { return spec(id).name; }

std::string_view tier_name(Tier tier) noexcept {
  return tier == Tier::kWeb ? "web" : "app";
}

std::string_view group_name(ParamGroup group) noexcept {
  switch (group) {
    case ParamGroup::kCapacity: return "capacity";
    case ParamGroup::kConnectionLife: return "connection-life";
    case ParamGroup::kSpareLow: return "spare-low";
    case ParamGroup::kSpareHigh: return "spare-high";
  }
  return "?";
}

std::array<ParamId, 2> group_members(ParamGroup group) noexcept {
  switch (group) {
    case ParamGroup::kCapacity:
      return {ParamId::kMaxClients, ParamId::kMaxThreads};
    case ParamGroup::kConnectionLife:
      return {ParamId::kKeepAliveTimeout, ParamId::kSessionTimeout};
    case ParamGroup::kSpareLow:
      return {ParamId::kMinSpareServers, ParamId::kMinSpareThreads};
    case ParamGroup::kSpareHigh:
      return {ParamId::kMaxSpareServers, ParamId::kMaxSpareThreads};
  }
  RAC_INVARIANT(false, "group_members: corrupt ParamGroup value");
  return {ParamId::kMaxClients, ParamId::kMaxThreads};
}

}  // namespace rac::config
