// Emulated-browser session generation.
//
// Each TPC-W emulated browser alternates: pick an interaction from the mix
// distribution, wait an exponential think time, repeat; after a geometric
// number of interactions the session ends and the browser idles for the
// inter-session gap before starting a fresh session (new session state,
// new TCP connection). The discrete-event simulator consumes this stream.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "workload/tpcw.hpp"

namespace rac::workload {

struct BrowserStep {
  Interaction interaction;
  /// Seconds the browser thinks *before* issuing this interaction.
  double think_time_s;
  /// True if this step begins a new session (previous session ended; the
  /// think time above is the inter-session gap).
  bool new_session;
};

/// Complete serializable state of a SessionGenerator: the RNG stream
/// position plus the in-session walk position. Restoring it into a
/// generator constructed with the same (mix, use_cbmg, think_scale)
/// continues the step stream bit-identically; the dynamic-traffic golden
/// tests rest on that.
struct SessionState {
  util::RngState rng;
  int remaining_in_session = 0;
  int last_interaction = 0;
  bool in_session = false;
  std::uint64_t steps = 0;
  std::uint64_t sessions = 0;
};

/// Stateful per-browser generator; deterministic given its RNG stream.
///
/// Navigation follows the mix's CBMG Markov chain (workload/cbmg.hpp):
/// each session starts from the chain's stationary page distribution
/// (entry_distribution) and walks the transition matrix, so forced pairs
/// (Search Request -> Search Results, Buy Request -> Buy Confirm, ...)
/// appear in order. Pass `use_cbmg = false` for independent draws from
/// the spec mix frequencies (useful for isolating navigation effects in
/// experiments).
///
/// `think_scale` multiplies the profile's think and pause means (the
/// dynamic-traffic layer's heavy-tailed think modulation); session length
/// and the inter-session gap are unaffected. 1.0 reproduces the
/// unmodulated stream bitwise.
class SessionGenerator {
 public:
  /// Throws ContractViolation (RAC_EXPECT) for a non-positive think_scale.
  SessionGenerator(MixType mix, util::Rng rng, bool use_cbmg = true,
                   double think_scale = 1.0);

  MixType mix() const noexcept { return mix_; }

  /// Generate the browser's next step.
  BrowserStep next();

  /// Number of interactions generated so far.
  std::uint64_t steps_generated() const noexcept { return steps_; }

  /// Number of sessions started so far.
  std::uint64_t sessions_started() const noexcept { return sessions_; }

  /// Snapshot / resume the generator mid-stream (see SessionState).
  /// restore throws std::invalid_argument for negative counters or an
  /// out-of-enum interaction; the RNG state is validated by Rng::restore.
  SessionState state() const;
  void restore(const SessionState& state);

 private:
  MixType mix_;
  util::Rng rng_;
  BrowserProfile profile_;
  bool use_cbmg_;
  int remaining_in_session_ = 0;
  Interaction last_ = Interaction::kHome;
  bool in_session_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t sessions_ = 0;

  int draw_session_length();
  Interaction draw_interaction();
};

}  // namespace rac::workload
