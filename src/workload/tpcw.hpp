// TPC-W workload model.
//
// TPC-W models an online bookstore with 14 web interactions and defines
// three traffic mixes -- browsing, shopping, and ordering -- that differ in
// the ratio of browse-type to order-type interactions (95/5, 80/20, 50/50).
// The paper drives its three-tier testbed with TPC-W emulated browsers; we
// reproduce the interaction set, the per-mix interaction frequencies from
// the TPC-W specification, exponential think times, and a session model.
//
// Each interaction carries per-tier CPU service demands (milliseconds at
// the web, application, and database tiers) calibrated to give the familiar
// TPC-W profile: best-seller/search/buy-confirm interactions are database
// heavy, ordering-mix traffic is write-heavy.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace rac::workload {

enum class Interaction : int {
  kHome = 0,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
};

inline constexpr std::size_t kNumInteractions = 14;

enum class MixType : int { kBrowsing = 0, kShopping = 1, kOrdering = 2 };

inline constexpr std::array<MixType, 3> kAllMixes = {
    MixType::kBrowsing, MixType::kShopping, MixType::kOrdering};

struct InteractionSpec {
  Interaction id;
  std::string_view name;
  double web_demand_ms;  // CPU demand at the web (Apache) tier
  double app_demand_ms;  // CPU demand at the application (Tomcat) tier
  double db_demand_ms;   // CPU + I/O demand at the database tier
  bool is_write;         // updates the database (cart/buy/admin-confirm)
  bool uses_session;     // requires server-side session state
};

std::span<const InteractionSpec, kNumInteractions> interactions() noexcept;
const InteractionSpec& interaction(Interaction id) noexcept;
std::string_view interaction_name(Interaction id) noexcept;
std::string_view mix_name(MixType mix) noexcept;

/// Inverse of mix_name (used when deserializing contexts). Throws
/// std::invalid_argument for an unknown name.
MixType parse_mix_name(std::string_view name);

/// Steady-state interaction frequencies of a mix (sums to 1); these follow
/// the TPC-W specification's per-mix web-interaction percentages.
std::span<const double, kNumInteractions> mix_frequencies(MixType mix) noexcept;

/// Closed-loop emulated-browser parameters for a mix.
struct BrowserProfile {
  double think_time_mean_s;     // exponential think time between requests
  double session_length_mean;   // geometric number of interactions/session
  double inter_session_gap_s;   // idle gap between sessions of one browser
  /// Real users occasionally stall mid-session (phone call, comparison
  /// shopping in another tab). With probability `pause_prob` a think time
  /// gains an additional exponential pause of mean `pause_mean_s`. These
  /// pauses are what make the KeepAlive and Session timeouts meaningful:
  /// a pause can outlive either timeout.
  double pause_prob;
  double pause_mean_s;

  /// Expected think time including pauses.
  double effective_think_mean_s() const noexcept {
    return think_time_mean_s + pause_prob * pause_mean_s;
  }
};

BrowserProfile browser_profile(MixType mix) noexcept;

/// Aggregate per-request statistics of a mix, derived from the frequencies
/// and interaction specs. These feed the analytic environment model.
struct MixStats {
  double web_demand_ms;     // expected web-tier demand per request
  double app_demand_ms;     // expected app-tier demand per request
  double db_demand_ms;      // expected db-tier demand per request
  double write_fraction;    // fraction of requests that write the database
  double session_fraction;  // fraction of requests needing session state
  double order_fraction;    // fraction of order-class interactions
  double think_time_mean_s;
  double session_length_mean;
};

MixStats mix_stats(MixType mix) noexcept;

}  // namespace rac::workload
