// Customer Behavior Model Graph (CBMG) for TPC-W navigation.
//
// TPC-W emulated browsers do not draw pages independently: a Search
// Request is followed by Search Results, a Buy Request by a Buy Confirm,
// and so on. The CBMG is the Markov chain over the 14 interactions. We
// construct each mix's transition matrix as a blend of the mix's
// steady-state frequencies (rank-one component: "where browsers spend
// time") and a structural affinity matrix ("which page follows which"),
// so the chain's stationary distribution stays close to the TPC-W
// specification's interaction percentages while successive requests show
// realistic navigation patterns. `stationary_distribution` (power
// iteration) recovers the chain's actual long-run frequencies for
// validation.
#pragma once

#include <array>

#include "workload/tpcw.hpp"

namespace rac::workload {

/// Row-stochastic: kTransition[i][j] = P(next = j | current = i).
using TransitionMatrix =
    std::array<std::array<double, kNumInteractions>, kNumInteractions>;

/// The mix's CBMG transition matrix.
const TransitionMatrix& cbmg_matrix(MixType mix);

/// Stationary distribution of a row-stochastic matrix (power iteration;
/// the CBMG chains are irreducible and aperiodic by construction).
std::array<double, kNumInteractions> stationary_distribution(
    const TransitionMatrix& matrix, int iterations = 200);

}  // namespace rac::workload
