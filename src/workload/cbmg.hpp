// Customer Behavior Model Graph (CBMG) for TPC-W navigation.
//
// TPC-W emulated browsers do not draw pages independently: a Search
// Request is followed by Search Results, a Buy Request by a Buy Confirm,
// and so on. The CBMG is the Markov chain over the 14 interactions. We
// construct each mix's transition matrix as a blend of the mix's
// steady-state frequencies (rank-one component: "where browsers spend
// time") and a structural affinity matrix ("which page follows which"),
// so the chain's stationary distribution stays close to the TPC-W
// specification's interaction percentages while successive requests show
// realistic navigation patterns. `stationary_distribution` (power
// iteration) recovers the chain's actual long-run frequencies for
// validation.
#pragma once

#include <array>

#include "workload/tpcw.hpp"

namespace rac::workload {

/// Row-stochastic: kTransition[i][j] = P(next = j | current = i).
using TransitionMatrix =
    std::array<std::array<double, kNumInteractions>, kNumInteractions>;

/// The mix's CBMG transition matrix. An out-of-enum MixType is a contract
/// violation (RAC_EXPECT) -- it used to fall back silently to the
/// shopping matrix, which hid exactly the caller bugs it should surface.
const TransitionMatrix& cbmg_matrix(MixType mix);

/// Stationary distribution of a row-stochastic matrix (power iteration;
/// the CBMG chains are irreducible and aperiodic by construction). A
/// matrix whose iterate loses all probability mass (e.g. all-zero rows)
/// is a contract violation rather than a silent NaN distribution.
std::array<double, kNumInteractions> stationary_distribution(
    const TransitionMatrix& matrix, int iterations = 200);

/// The distribution session entries are drawn from: the *chain's* actual
/// stationary distribution, cached per mix.
///
/// Design note: the blended transition matrix keeps its stationary
/// distribution *near* the TPC-W spec frequencies (the rank-one component
/// sees to that) but not exactly on them, because the structural
/// affinities redistribute a few percent of the mass along forced edges.
/// Session entries used to draw from mix_frequencies() directly, which
/// made a browser's long-run page mix a blend of two slightly different
/// distributions -- biased toward the spec and away from what the chain
/// itself visits. Entries now draw from this distribution, so every step
/// of a CBMG session (entry or navigation) follows one consistent chain;
/// the residual deviation from the spec frequencies is bounded by the
/// StationaryDistributionNearSpecFrequencies regression test.
const std::array<double, kNumInteractions>& entry_distribution(MixType mix);

}  // namespace rac::workload
