#include "workload/session.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"
#include "workload/cbmg.hpp"

namespace rac::workload {

SessionGenerator::SessionGenerator(MixType mix, util::Rng rng, bool use_cbmg,
                                   double think_scale)
    : mix_(mix), rng_(rng), profile_(browser_profile(mix)),
      use_cbmg_(use_cbmg) {
  RAC_EXPECT(think_scale > 0.0,
             "SessionGenerator: non-positive think_scale");
  profile_.think_time_mean_s *= think_scale;
  profile_.pause_mean_s *= think_scale;
}

int SessionGenerator::draw_session_length() {
  // Geometric with the profile's mean, at least 1 interaction. A single
  // inversion draw, where trial-by-trial sampling would consume one
  // uniform per interaction of every session the simulation starts.
  //
  // Convention audit: Rng::geometric(p) is the *trials* convention --
  // the number of bernoulli(p) trials up to and including the first
  // success, support {1, 2, ...}, E[X] = 1/p exactly -- not the
  // failures-before-success convention (support {0, 1, ...},
  // E[X] = (1-p)/p). geometric(1.0 / mean) therefore realizes the
  // profile's mean session length with no off-by-one; the
  // GeometricMeanIsOneOverP (util) and SessionLengthMatchesProfileMean
  // (workload) regression tests pin both halves of that claim.
  const double mean = profile_.session_length_mean;
  RAC_EXPECT(mean >= 1.0, "draw_session_length: mean below 1 interaction");
  return rng_.geometric(1.0 / mean);
}

Interaction SessionGenerator::draw_interaction() {
  if (!use_cbmg_) {
    // Independent mode: every draw follows the spec mix frequencies.
    const auto freq = mix_frequencies(mix_);
    return static_cast<Interaction>(rng_.categorical(freq));
  }
  if (!in_session_) {
    // Session entry: the chain's own stationary distribution, so entries
    // and in-session navigation follow one consistent chain (see the
    // design note on entry_distribution in cbmg.hpp).
    const auto& entry = entry_distribution(mix_);
    return static_cast<Interaction>(rng_.categorical(entry));
  }
  const auto& row =
      cbmg_matrix(mix_)[static_cast<std::size_t>(last_)];
  return static_cast<Interaction>(rng_.categorical(row));
}

BrowserStep SessionGenerator::next() {
  BrowserStep step{};
  if (remaining_in_session_ == 0) {
    remaining_in_session_ = draw_session_length();
    step.new_session = true;
    step.think_time_s =
        sessions_ == 0
            // Stagger initial arrivals over one think time to avoid a
            // synchronized thundering herd at simulation start.
            ? rng_.uniform(0.0, profile_.think_time_mean_s)
            : rng_.exponential(profile_.inter_session_gap_s);
    ++sessions_;
  } else {
    step.new_session = false;
    step.think_time_s = rng_.exponential(profile_.think_time_mean_s);
    if (rng_.bernoulli(profile_.pause_prob)) {
      step.think_time_s += rng_.exponential(profile_.pause_mean_s);
    }
  }
  if (step.new_session) in_session_ = false;
  step.interaction = draw_interaction();
  last_ = step.interaction;
  in_session_ = true;
  --remaining_in_session_;
  ++steps_;
  return step;
}

SessionState SessionGenerator::state() const {
  SessionState s;
  s.rng = rng_.state();
  s.remaining_in_session = remaining_in_session_;
  s.last_interaction = static_cast<int>(last_);
  s.in_session = in_session_;
  s.steps = steps_;
  s.sessions = sessions_;
  return s;
}

void SessionGenerator::restore(const SessionState& state) {
  if (state.remaining_in_session < 0) {
    throw std::invalid_argument(
        "SessionGenerator::restore: negative remaining_in_session");
  }
  if (state.last_interaction < 0 ||
      state.last_interaction >= static_cast<int>(kNumInteractions)) {
    throw std::invalid_argument(
        "SessionGenerator::restore: interaction outside the enum");
  }
  rng_.restore(state.rng);  // validates the word state before we commit
  remaining_in_session_ = state.remaining_in_session;
  last_ = static_cast<Interaction>(state.last_interaction);
  in_session_ = state.in_session;
  steps_ = state.steps;
  sessions_ = state.sessions;
}

}  // namespace rac::workload
