#include "workload/session.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "workload/cbmg.hpp"

namespace rac::workload {

SessionGenerator::SessionGenerator(MixType mix, util::Rng rng, bool use_cbmg)
    : mix_(mix), rng_(rng), profile_(browser_profile(mix)), use_cbmg_(use_cbmg) {}

int SessionGenerator::draw_session_length() {
  // Geometric with the profile's mean, at least 1 interaction. A single
  // inversion draw, where trial-by-trial sampling would consume one
  // uniform per interaction of every session the simulation starts.
  const double mean = profile_.session_length_mean;
  RAC_EXPECT(mean >= 1.0, "draw_session_length: mean below 1 interaction");
  return rng_.geometric(1.0 / mean);
}

Interaction SessionGenerator::draw_interaction() {
  if (!use_cbmg_ || !in_session_) {
    // Session entry (or independent mode): the steady-state distribution.
    const auto freq = mix_frequencies(mix_);
    return static_cast<Interaction>(rng_.categorical(freq));
  }
  const auto& row =
      cbmg_matrix(mix_)[static_cast<std::size_t>(last_)];
  return static_cast<Interaction>(rng_.categorical(row));
}

BrowserStep SessionGenerator::next() {
  BrowserStep step{};
  if (remaining_in_session_ == 0) {
    remaining_in_session_ = draw_session_length();
    step.new_session = true;
    step.think_time_s =
        sessions_ == 0
            // Stagger initial arrivals over one think time to avoid a
            // synchronized thundering herd at simulation start.
            ? rng_.uniform(0.0, profile_.think_time_mean_s)
            : rng_.exponential(profile_.inter_session_gap_s);
    ++sessions_;
  } else {
    step.new_session = false;
    step.think_time_s = rng_.exponential(profile_.think_time_mean_s);
    if (rng_.bernoulli(profile_.pause_prob)) {
      step.think_time_s += rng_.exponential(profile_.pause_mean_s);
    }
  }
  if (step.new_session) in_session_ = false;
  step.interaction = draw_interaction();
  last_ = step.interaction;
  in_session_ = true;
  --remaining_in_session_;
  ++steps_;
  return step;
}

}  // namespace rac::workload
