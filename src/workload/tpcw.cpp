#include "workload/tpcw.hpp"

#include <stdexcept>
#include <string>

namespace rac::workload {

namespace {

constexpr std::array<InteractionSpec, kNumInteractions> kInteractions = {{
    // id, name, web, app, db (ms), write, session
    {Interaction::kHome, "Home", 3.0, 6.0, 8.0, false, false},
    {Interaction::kNewProducts, "New Products", 3.0, 8.0, 18.0, false, false},
    {Interaction::kBestSellers, "Best Sellers", 3.0, 8.0, 30.0, false, false},
    {Interaction::kProductDetail, "Product Detail", 3.0, 5.0, 6.0, false, false},
    {Interaction::kSearchRequest, "Search Request", 2.0, 3.0, 1.0, false, false},
    {Interaction::kSearchResults, "Search Results", 3.0, 8.0, 22.0, false, false},
    {Interaction::kShoppingCart, "Shopping Cart", 3.0, 9.0, 12.0, true, true},
    {Interaction::kCustomerRegistration, "Customer Registration", 2.0, 5.0, 6.0,
     false, true},
    {Interaction::kBuyRequest, "Buy Request", 3.0, 10.0, 16.0, true, true},
    {Interaction::kBuyConfirm, "Buy Confirm", 3.0, 12.0, 28.0, true, true},
    {Interaction::kOrderInquiry, "Order Inquiry", 2.0, 4.0, 4.0, false, false},
    {Interaction::kOrderDisplay, "Order Display", 3.0, 6.0, 14.0, false, true},
    {Interaction::kAdminRequest, "Admin Request", 2.0, 4.0, 6.0, false, false},
    {Interaction::kAdminConfirm, "Admin Confirm", 3.0, 10.0, 24.0, true, false},
}};

// Web-interaction mix percentages from the TPC-W specification (clause
// 5.2.2): browsing 95/5, shopping 80/20, ordering 50/50 browse-to-order.
constexpr std::array<double, kNumInteractions> kBrowsingFreq = {
    0.2900, 0.1100, 0.1100, 0.2100, 0.1200, 0.1100, 0.0200,
    0.0082, 0.0075, 0.0069, 0.0030, 0.0025, 0.0010, 0.0009};

constexpr std::array<double, kNumInteractions> kShoppingFreq = {
    0.1600, 0.0500, 0.0500, 0.1700, 0.2000, 0.1700, 0.1160,
    0.0300, 0.0260, 0.0120, 0.0075, 0.0066, 0.0010, 0.0009};

constexpr std::array<double, kNumInteractions> kOrderingFreq = {
    0.0912, 0.0046, 0.0046, 0.1235, 0.1453, 0.1308, 0.1353,
    0.1286, 0.1273, 0.1018, 0.0025, 0.0022, 0.0012, 0.0011};

constexpr bool is_order_class(Interaction id) {
  switch (id) {
    case Interaction::kShoppingCart:
    case Interaction::kCustomerRegistration:
    case Interaction::kBuyRequest:
    case Interaction::kBuyConfirm:
    case Interaction::kOrderInquiry:
    case Interaction::kOrderDisplay:
    case Interaction::kAdminRequest:
    case Interaction::kAdminConfirm:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::span<const InteractionSpec, kNumInteractions> interactions() noexcept {
  return kInteractions;
}

const InteractionSpec& interaction(Interaction id) noexcept {
  return kInteractions[static_cast<std::size_t>(id)];
}

std::string_view interaction_name(Interaction id) noexcept {
  return interaction(id).name;
}

std::string_view mix_name(MixType mix) noexcept {
  switch (mix) {
    case MixType::kBrowsing: return "browsing";
    case MixType::kShopping: return "shopping";
    case MixType::kOrdering: return "ordering";
  }
  return "?";
}

MixType parse_mix_name(std::string_view name) {
  for (MixType mix : kAllMixes) {
    if (mix_name(mix) == name) return mix;
  }
  throw std::invalid_argument("parse_mix_name: unknown mix '" +
                              std::string(name) + "'");
}

std::span<const double, kNumInteractions> mix_frequencies(MixType mix) noexcept {
  switch (mix) {
    case MixType::kBrowsing: return kBrowsingFreq;
    case MixType::kShopping: return kShoppingFreq;
    case MixType::kOrdering: return kOrderingFreq;
  }
  return kBrowsingFreq;
}

BrowserProfile browser_profile(MixType mix) noexcept {
  // TPC-W think times are exponential with a 7 s mean for every mix; the
  // session shape differs: browsing sessions are long window-shopping
  // walks, ordering sessions are short, purposeful purchase paths.
  switch (mix) {
    case MixType::kBrowsing: return {7.0, 30.0, 30.0, 0.10, 90.0};
    case MixType::kShopping: return {7.0, 20.0, 30.0, 0.08, 90.0};
    case MixType::kOrdering: return {7.0, 12.0, 30.0, 0.05, 90.0};
  }
  return {7.0, 20.0, 30.0, 0.08, 90.0};
}

MixStats mix_stats(MixType mix) noexcept {
  const auto freq = mix_frequencies(mix);
  const auto profile = browser_profile(mix);
  MixStats s{};
  for (std::size_t i = 0; i < kNumInteractions; ++i) {
    const auto& spec = kInteractions[i];
    s.web_demand_ms += freq[i] * spec.web_demand_ms;
    s.app_demand_ms += freq[i] * spec.app_demand_ms;
    s.db_demand_ms += freq[i] * spec.db_demand_ms;
    if (spec.is_write) s.write_fraction += freq[i];
    if (spec.uses_session) s.session_fraction += freq[i];
    if (is_order_class(spec.id)) s.order_fraction += freq[i];
  }
  s.think_time_mean_s = profile.think_time_mean_s;
  s.session_length_mean = profile.session_length_mean;
  return s;
}

}  // namespace rac::workload
