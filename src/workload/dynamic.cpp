#include "workload/dynamic.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/lineio.hpp"
#include "util/rng.hpp"

namespace rac::workload {

namespace {

// Per-kind salts folded into the per-interval seed derivation so two
// stochastic shapes accidentally sharing a seed still draw independent
// scripts (the FaultyEnv per-(interval, kind) idiom).
constexpr std::uint64_t kFlashSalt = 0xF1A5'0000'0001ULL;
constexpr std::uint64_t kThinkSalt = 0xF1A5'0000'0003ULL;

// A practical ceiling on deserialized shape counts: a model is authored by
// hand or by a bench, never generated at scale, so a huge count is corrupt
// data rather than a real model.
constexpr std::uint64_t kMaxShapes = 4096;

constexpr std::size_t idx(MixType mix) {
  return static_cast<std::size_t>(static_cast<int>(mix));
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

util::Rng interval_rng(std::uint64_t seed, std::int64_t interval,
                       std::uint64_t salt) {
  return util::Rng(util::derive_seed(
      util::derive_seed(seed, static_cast<std::uint64_t>(interval)), salt));
}

double read_double(std::istream& is, std::string_view what) {
  return util::parse_double(util::read_token(is, what), what);
}

std::uint64_t read_u64(std::istream& is, std::string_view what) {
  return util::parse_u64(util::read_token(is, what), what);
}

int read_int(std::istream& is, std::string_view what) {
  return util::parse_int(util::read_token(is, what), what);
}

std::int64_t read_i64(std::istream& is, std::string_view what) {
  return util::parse_i64(util::read_token(is, what), what);
}

}  // namespace

TrafficTarget one_hot_target(MixType mix) {
  const std::size_t i = idx(mix);
  RAC_EXPECT(i < kNumMixes, "one_hot_target: mix outside the MixType enum");
  TrafficTarget target;
  target.mix_weights[i] = 1.0;
  return target;
}

MixType dominant_mix(const TrafficTarget& target) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kNumMixes; ++i) {
    if (target.mix_weights[i] > target.mix_weights[best]) best = i;
  }
  return kAllMixes[best];
}

bool same_target(const TrafficTarget& a, const TrafficTarget& b) {
  if (!same_bits(a.concurrency_scale, b.concurrency_scale)) return false;
  if (!same_bits(a.think_scale, b.think_scale)) return false;
  for (std::size_t i = 0; i < kNumMixes; ++i) {
    if (!same_bits(a.mix_weights[i], b.mix_weights[i])) return false;
  }
  return true;
}

MixStats blend_mix_stats(const std::array<double, kNumMixes>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    RAC_EXPECT(w >= 0.0, "blend_mix_stats: negative mix weight");
    total += w;
  }
  RAC_EXPECT(total > 0.0, "blend_mix_stats: zero-mass mix blend");
  MixStats out{};
  for (std::size_t i = 0; i < kNumMixes; ++i) {
    const MixStats s = mix_stats(kAllMixes[i]);
    const double w = weights[i];
    out.web_demand_ms += w * s.web_demand_ms;
    out.app_demand_ms += w * s.app_demand_ms;
    out.db_demand_ms += w * s.db_demand_ms;
    out.write_fraction += w * s.write_fraction;
    out.session_fraction += w * s.session_fraction;
    out.order_fraction += w * s.order_fraction;
    out.think_time_mean_s += w * s.think_time_mean_s;
    out.session_length_mean += w * s.session_length_mean;
  }
  out.web_demand_ms /= total;
  out.app_demand_ms /= total;
  out.db_demand_ms /= total;
  out.write_fraction /= total;
  out.session_fraction /= total;
  out.order_fraction /= total;
  out.think_time_mean_s /= total;
  out.session_length_mean /= total;
  return out;
}

BrowserProfile blend_browser_profile(
    const std::array<double, kNumMixes>& weights, double think_scale) {
  RAC_EXPECT(think_scale > 0.0,
             "blend_browser_profile: non-positive think_scale");
  double total = 0.0;
  for (const double w : weights) {
    RAC_EXPECT(w >= 0.0, "blend_browser_profile: negative mix weight");
    total += w;
  }
  RAC_EXPECT(total > 0.0, "blend_browser_profile: zero-mass mix blend");
  BrowserProfile out{};
  for (std::size_t i = 0; i < kNumMixes; ++i) {
    const BrowserProfile p = browser_profile(kAllMixes[i]);
    const double w = weights[i];
    out.think_time_mean_s += w * p.think_time_mean_s;
    out.session_length_mean += w * p.session_length_mean;
    out.inter_session_gap_s += w * p.inter_session_gap_s;
    out.pause_prob += w * p.pause_prob;
    out.pause_mean_s += w * p.pause_mean_s;
  }
  out.think_time_mean_s /= total;
  out.session_length_mean /= total;
  out.inter_session_gap_s /= total;
  out.pause_prob /= total;
  out.pause_mean_s /= total;
  out.think_time_mean_s *= think_scale;
  out.pause_mean_s *= think_scale;
  return out;
}

// ---- diurnal ---------------------------------------------------------------

DiurnalShape::DiurnalShape(const DiurnalParams& params) : params_(params) {
  if (!(params_.period_intervals > 0.0)) {
    throw std::invalid_argument("DiurnalShape: non-positive period");
  }
  if (!(params_.amplitude >= 0.0 && params_.amplitude < 1.0)) {
    throw std::invalid_argument("DiurnalShape: amplitude outside [0, 1)");
  }
}

void DiurnalShape::apply(std::int64_t interval, TrafficTarget& target) const {
  const double angle = 2.0 * std::numbers::pi_v<double> *
                       (static_cast<double>(interval) +
                        params_.phase_intervals) /
                       params_.period_intervals;
  target.concurrency_scale *= 1.0 + params_.amplitude * std::sin(angle);
}

void DiurnalShape::save(std::ostream& os) const {
  os << kind() << ' ' << util::format_double(params_.period_intervals) << ' '
     << util::format_double(params_.amplitude) << ' '
     << util::format_double(params_.phase_intervals) << "\n";
}

// ---- flash crowd -----------------------------------------------------------

FlashCrowdShape::FlashCrowdShape(const FlashCrowdParams& params)
    : params_(params) {
  if (!(params_.onset_prob >= 0.0 && params_.onset_prob <= 1.0)) {
    throw std::invalid_argument("FlashCrowdShape: onset_prob outside [0, 1]");
  }
  if (params_.ramp_intervals < 1) {
    throw std::invalid_argument("FlashCrowdShape: non-positive ramp");
  }
  if (params_.hold_intervals < 0) {
    throw std::invalid_argument("FlashCrowdShape: negative hold");
  }
  if (params_.decay_intervals < 1) {
    throw std::invalid_argument("FlashCrowdShape: non-positive decay");
  }
  if (!(params_.peak_scale > 1.0)) {
    throw std::invalid_argument("FlashCrowdShape: peak_scale must exceed 1");
  }
}

int flash_crowd_duration(const FlashCrowdParams& params) {
  return params.ramp_intervals + params.hold_intervals +
         params.decay_intervals;
}

bool flash_onset_at(const FlashCrowdParams& params, std::int64_t interval) {
  if (interval < 0 || params.onset_prob <= 0.0) return false;
  util::Rng rng = interval_rng(params.seed, interval, kFlashSalt);
  return rng.bernoulli(params.onset_prob);
}

double flash_scale_at(const FlashCrowdParams& params, std::int64_t interval) {
  // Scan the onset window that could still affect this interval; each
  // candidate onset is an independent per-interval draw, so the scan is
  // pure and O(duration) regardless of history.
  const int duration = flash_crowd_duration(params);
  double scale = 1.0;
  const std::int64_t first =
      std::max<std::int64_t>(0, interval - duration + 1);
  for (std::int64_t onset = first; onset <= interval; ++onset) {
    if (!flash_onset_at(params, onset)) continue;
    const std::int64_t elapsed = interval - onset;
    const double lift = params.peak_scale - 1.0;
    double factor = 1.0;
    if (elapsed < params.ramp_intervals) {
      factor = 1.0 + lift * static_cast<double>(elapsed + 1) /
                         static_cast<double>(params.ramp_intervals + 1);
    } else if (elapsed < params.ramp_intervals + params.hold_intervals) {
      factor = params.peak_scale;
    } else {
      const std::int64_t d =
          elapsed - params.ramp_intervals - params.hold_intervals;
      factor = 1.0 + lift * static_cast<double>(params.decay_intervals - d) /
                         static_cast<double>(params.decay_intervals + 1);
    }
    // Overlapping crowds peak together rather than stacking: the audience
    // is shared, not multiplied.
    scale = std::max(scale, factor);
  }
  return scale;
}

void FlashCrowdShape::apply(std::int64_t interval,
                            TrafficTarget& target) const {
  target.concurrency_scale *= flash_scale_at(params_, interval);
}

void FlashCrowdShape::save(std::ostream& os) const {
  os << kind() << ' ' << util::format_u64(params_.seed) << ' '
     << util::format_double(params_.onset_prob) << ' '
     << util::format_i64(params_.ramp_intervals) << ' '
     << util::format_i64(params_.hold_intervals) << ' '
     << util::format_i64(params_.decay_intervals) << ' '
     << util::format_double(params_.peak_scale) << "\n";
}

// ---- mix drift -------------------------------------------------------------

MixDriftShape::MixDriftShape(const MixDriftParams& params) : params_(params) {
  if (params_.start_interval < 0) {
    throw std::invalid_argument("MixDriftShape: negative start");
  }
  if (params_.duration_intervals < 1) {
    throw std::invalid_argument("MixDriftShape: non-positive duration");
  }
  const std::size_t from = idx(params_.from);
  const std::size_t to = idx(params_.to);
  if (from >= kNumMixes || to >= kNumMixes) {
    throw std::invalid_argument("MixDriftShape: mix outside the MixType enum");
  }
}

void MixDriftShape::apply(std::int64_t interval, TrafficTarget& target) const {
  // Fraction of the drift completed: exactly 0.0 before the window and
  // exactly 1.0 after it, so the endpoints are bitwise one-hot.
  double f = 0.0;
  if (interval > params_.start_interval) {
    f = std::min(1.0,
                 static_cast<double>(interval - params_.start_interval) /
                     static_cast<double>(params_.duration_intervals));
  }
  std::array<double, kNumMixes> weights{};
  weights[idx(params_.from)] += 1.0 - f;
  weights[idx(params_.to)] += f;
  // The drift pins the blend outright: blending an incoming blend with
  // another blend has no workload meaning.
  target.mix_weights = weights;
}

void MixDriftShape::save(std::ostream& os) const {
  os << kind() << ' ' << mix_name(params_.from) << ' '
     << mix_name(params_.to) << ' '
     << util::format_i64(params_.start_interval) << ' '
     << util::format_i64(params_.duration_intervals) << "\n";
}

// ---- think noise -----------------------------------------------------------

ThinkNoiseShape::ThinkNoiseShape(const ThinkNoiseParams& params)
    : params_(params) {
  if (!(params_.sigma >= 0.0)) {
    throw std::invalid_argument("ThinkNoiseShape: negative sigma");
  }
}

void ThinkNoiseShape::apply(std::int64_t interval,
                            TrafficTarget& target) const {
  if (params_.sigma <= 0.0) return;
  util::Rng rng = interval_rng(params_.seed, interval, kThinkSalt);
  target.think_scale *= rng.lognormal_unit(params_.sigma);
}

void ThinkNoiseShape::save(std::ostream& os) const {
  os << kind() << ' ' << util::format_u64(params_.seed) << ' '
     << util::format_double(params_.sigma) << "\n";
}

// ---- the model -------------------------------------------------------------

TrafficModel& TrafficModel::add(std::shared_ptr<const TrafficShape> shape) {
  RAC_EXPECT(shape != nullptr, "TrafficModel::add: null shape");
  shapes_.push_back(std::move(shape));
  return *this;
}

TrafficModel& TrafficModel::add_diurnal(const DiurnalParams& params) {
  return add(std::make_shared<const DiurnalShape>(params));
}

TrafficModel& TrafficModel::add_flash_crowd(const FlashCrowdParams& params) {
  return add(std::make_shared<const FlashCrowdShape>(params));
}

TrafficModel& TrafficModel::add_mix_drift(const MixDriftParams& params) {
  return add(std::make_shared<const MixDriftShape>(params));
}

TrafficModel& TrafficModel::add_think_noise(const ThinkNoiseParams& params) {
  return add(std::make_shared<const ThinkNoiseShape>(params));
}

TrafficTarget TrafficModel::target_at(std::int64_t interval,
                                      MixType base_mix) const {
  RAC_EXPECT(interval >= 0, "TrafficModel::target_at: negative interval");
  TrafficTarget target = one_hot_target(base_mix);
  for (const auto& shape : shapes_) {
    shape->apply(interval, target);
  }
  RAC_ENSURE(target.concurrency_scale > 0.0,
             "TrafficModel::target_at: non-positive concurrency scale");
  RAC_ENSURE(target.think_scale > 0.0,
             "TrafficModel::target_at: non-positive think scale");
  return target;
}

void TrafficModel::save(std::ostream& os) const {
  os << "traffic-model v1\n";
  os << "shapes " << util::format_u64(shapes_.size()) << "\n";
  for (const auto& shape : shapes_) {
    shape->save(os);
  }
  os << "end\n";
}

TrafficModel TrafficModel::load(std::istream& is) {
  constexpr const char* kWhat = "traffic-model";
  util::expect_token(is, "traffic-model", kWhat);
  const std::string version = util::read_token(is, kWhat);
  if (version != "v1") {
    throw std::runtime_error("traffic-model: unsupported version " + version);
  }
  util::expect_token(is, "shapes", kWhat);
  const std::uint64_t count = read_u64(is, kWhat);
  if (count > kMaxShapes) {
    throw std::runtime_error("traffic-model: implausible shape count");
  }
  TrafficModel model;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string kind = util::read_token(is, kWhat);
    if (kind == "diurnal") {
      DiurnalParams p;
      p.period_intervals = read_double(is, kWhat);
      p.amplitude = read_double(is, kWhat);
      p.phase_intervals = read_double(is, kWhat);
      model.add_diurnal(p);
    } else if (kind == "flash-crowd") {
      FlashCrowdParams p;
      p.seed = read_u64(is, kWhat);
      p.onset_prob = read_double(is, kWhat);
      p.ramp_intervals = read_int(is, kWhat);
      p.hold_intervals = read_int(is, kWhat);
      p.decay_intervals = read_int(is, kWhat);
      p.peak_scale = read_double(is, kWhat);
      model.add_flash_crowd(p);
    } else if (kind == "mix-drift") {
      MixDriftParams p;
      p.from = parse_mix_name(util::read_token(is, kWhat));
      p.to = parse_mix_name(util::read_token(is, kWhat));
      p.start_interval = read_i64(is, kWhat);
      p.duration_intervals = read_int(is, kWhat);
      model.add_mix_drift(p);
    } else if (kind == "think-noise") {
      ThinkNoiseParams p;
      p.seed = read_u64(is, kWhat);
      p.sigma = read_double(is, kWhat);
      model.add_think_noise(p);
    } else {
      throw std::runtime_error("traffic-model: unknown shape kind '" + kind +
                               "'");
    }
  }
  util::expect_token(is, "end", kWhat);
  return model;
}

}  // namespace rac::workload
