// Dynamic traffic: composable per-interval workload decorators.
//
// Every experiment so far drove one static TPC-W mix, while the paper's
// whole premise is adapting to workload *change*. A TrafficModel is an
// ordered stack of TrafficShape decorators over a base mix; for each
// measurement interval it emits a TrafficTarget -- a (concurrency scale,
// mix blend, think-time scale) triple -- that the environments consume
// through env::Environment::set_traffic_model. Four shapes:
//
//   * DiurnalShape    -- sinusoidal day/night concurrency cycle;
//   * FlashCrowdShape -- seeded random onsets that ramp to a peak load,
//                        hold it, and decay back (the slashdot effect);
//   * MixDriftShape   -- linear blend from one MixType to another over a
//                        window (browsing traffic turning into ordering);
//   * ThinkNoiseShape -- heavy-tailed (lognormal) per-interval think-time
//                        modulation.
//
// Determinism contract: target_at is a pure function of (shapes, interval,
// base mix). Stochastic shapes draw from one throwaway Rng seeded by
// util::derive_seed(shape seed, interval) plus a per-kind salt -- the
// fault::FaultyEnv::faults_at idiom -- never from a shared stream, so a
// target stream is bitwise identical at any RAC_THREADS, across
// clone_with_seed, and across a checkpoint/restore boundary (the
// environments persist only their interval cursor; the model itself is
// immutable and shared by const pointer).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workload/tpcw.hpp"

namespace rac::workload {

inline constexpr std::size_t kNumMixes = 3;
static_assert(kAllMixes.size() == kNumMixes);

/// One interval's workload target. The mix blend is a convex combination
/// over kAllMixes (in enum order); `concurrency_scale` multiplies the
/// environment's configured browser population and `think_scale`
/// multiplies the per-browser think and pause means.
struct TrafficTarget {
  double concurrency_scale = 1.0;
  std::array<double, kNumMixes> mix_weights{};
  double think_scale = 1.0;
};

/// The degenerate target: all weight on `mix`, unit scales. Blending with
/// a one-hot weight vector reproduces the plain mix bitwise (0.0 * x
/// contributes +0.0 for the non-negative blended fields), which is what
/// lets the traffic-aware measurement path coexist with golden digests
/// recorded before this layer existed.
TrafficTarget one_hot_target(MixType mix);

/// The mix carrying the largest weight (lowest enum index on ties).
/// Environments that cannot honor a fractional blend (or decorate one that
/// cannot) degrade to measuring under this mix.
MixType dominant_mix(const TrafficTarget& target);

/// Bitwise equality (doubles compared by representation, so a copied
/// target always matches and -0.0 != +0.0): the environments use this to
/// detect target changes without tripping float-eq tolerance questions.
bool same_target(const TrafficTarget& a, const TrafficTarget& b);

/// Weight-blended per-request statistics / browser profile. Weights must
/// be non-negative with a positive sum (contract); they are normalized
/// internally. blend_browser_profile additionally multiplies the think and
/// pause means by `think_scale` (> 0, contract). A one-hot blend with unit
/// think_scale is bitwise identical to the plain mix_stats(mix) /
/// browser_profile(mix).
MixStats blend_mix_stats(const std::array<double, kNumMixes>& weights);
BrowserProfile blend_browser_profile(
    const std::array<double, kNumMixes>& weights, double think_scale = 1.0);

/// One composable decorator. apply() must be a pure function of
/// (*this, interval): implementations hold only immutable parameters.
class TrafficShape {
 public:
  virtual ~TrafficShape() = default;

  /// Fold this shape's effect for `interval` (>= 0) into `target`.
  virtual void apply(std::int64_t interval, TrafficTarget& target) const = 0;

  /// Serialization tag ("diurnal", "flash-crowd", "mix-drift",
  /// "think-noise").
  virtual std::string kind() const = 0;

  /// Write the shape as one "<kind> <params...>\n" token line (the
  /// TrafficModel v1 format; numbers via util/lineio).
  virtual void save(std::ostream& os) const = 0;
};

// ---- diurnal sinusoid ------------------------------------------------------

struct DiurnalParams {
  /// Intervals per day (one full sinusoid cycle); > 0.
  double period_intervals = 96.0;
  /// Peak deviation of the concurrency multiplier from 1; in [0, 1).
  double amplitude = 0.4;
  /// Phase offset in intervals (the sinusoid starts rising at 0).
  double phase_intervals = 0.0;
};

/// concurrency *= 1 + amplitude * sin(2*pi * (interval + phase) / period).
class DiurnalShape final : public TrafficShape {
 public:
  /// Throws std::invalid_argument for a non-positive period or an
  /// amplitude outside [0, 1).
  explicit DiurnalShape(const DiurnalParams& params);

  void apply(std::int64_t interval, TrafficTarget& target) const override;
  std::string kind() const override { return "diurnal"; }
  void save(std::ostream& os) const override;

  const DiurnalParams& params() const noexcept { return params_; }

 private:
  DiurnalParams params_;
};

// ---- flash crowd -----------------------------------------------------------

struct FlashCrowdParams {
  /// Seed of the onset script (independent of everything else).
  std::uint64_t seed = 7;
  /// Per-interval probability that a crowd begins; in [0, 1].
  double onset_prob = 0.01;
  /// Intervals ramping up toward the peak (>= 1).
  int ramp_intervals = 2;
  /// Intervals held at the peak (>= 0).
  int hold_intervals = 4;
  /// Intervals decaying back to baseline (>= 1).
  int decay_intervals = 6;
  /// Concurrency multiplier at the peak (> 1).
  double peak_scale = 2.5;
};

/// Total footprint of one crowd in intervals (ramp + hold + decay).
int flash_crowd_duration(const FlashCrowdParams& params);

/// Pure per-interval onset decision: does a crowd begin at `interval`?
/// One throwaway Rng per interval -- usable by tests and benches to scan
/// for a seed whose day contains exactly the onsets they want.
bool flash_onset_at(const FlashCrowdParams& params, std::int64_t interval);

/// Concurrency multiplier contributed at `interval` (>= 1; overlapping
/// crowds take the max rather than stacking).
double flash_scale_at(const FlashCrowdParams& params, std::int64_t interval);

class FlashCrowdShape final : public TrafficShape {
 public:
  /// Throws std::invalid_argument for an onset probability outside [0, 1],
  /// non-positive ramp/decay, negative hold, or a peak_scale <= 1.
  explicit FlashCrowdShape(const FlashCrowdParams& params);

  void apply(std::int64_t interval, TrafficTarget& target) const override;
  std::string kind() const override { return "flash-crowd"; }
  void save(std::ostream& os) const override;

  const FlashCrowdParams& params() const noexcept { return params_; }

 private:
  FlashCrowdParams params_;
};

// ---- gradual mix drift -----------------------------------------------------

struct MixDriftParams {
  MixType from = MixType::kShopping;
  MixType to = MixType::kOrdering;
  /// First interval of the drift window.
  std::int64_t start_interval = 0;
  /// Window length (>= 1): the blend moves linearly from all-`from` at
  /// `start_interval` to all-`to` at `start_interval + duration`.
  int duration_intervals = 1;
};

/// Replaces the incoming blend outright (a blend of blends has no
/// workload meaning): before the window the target is one-hot `from`,
/// after it one-hot `to`, both bitwise exact.
class MixDriftShape final : public TrafficShape {
 public:
  /// Throws std::invalid_argument for a negative start or a non-positive
  /// duration.
  explicit MixDriftShape(const MixDriftParams& params);

  void apply(std::int64_t interval, TrafficTarget& target) const override;
  std::string kind() const override { return "mix-drift"; }
  void save(std::ostream& os) const override;

  const MixDriftParams& params() const noexcept { return params_; }

 private:
  MixDriftParams params_;
};

// ---- heavy-tailed think-time modulation ------------------------------------

struct ThinkNoiseParams {
  std::uint64_t seed = 11;
  /// Sigma of the lognormal think multiplier (E[X] = 1); >= 0.
  double sigma = 0.25;
};

class ThinkNoiseShape final : public TrafficShape {
 public:
  /// Throws std::invalid_argument for a negative sigma.
  explicit ThinkNoiseShape(const ThinkNoiseParams& params);

  void apply(std::int64_t interval, TrafficTarget& target) const override;
  std::string kind() const override { return "think-noise"; }
  void save(std::ostream& os) const override;

  const ThinkNoiseParams& params() const noexcept { return params_; }

 private:
  ThinkNoiseParams params_;
};

// ---- the model -------------------------------------------------------------

/// An immutable-once-built ordered stack of shapes. Shapes are held by
/// shared const pointer so a model can be handed to thousands of tenants
/// (the fleet does) for the price of the pointers.
class TrafficModel {
 public:
  TrafficModel() = default;

  TrafficModel& add(std::shared_ptr<const TrafficShape> shape);
  TrafficModel& add_diurnal(const DiurnalParams& params);
  TrafficModel& add_flash_crowd(const FlashCrowdParams& params);
  TrafficModel& add_mix_drift(const MixDriftParams& params);
  TrafficModel& add_think_noise(const ThinkNoiseParams& params);

  bool empty() const noexcept { return shapes_.empty(); }
  std::size_t size() const noexcept { return shapes_.size(); }
  const TrafficShape& shape(std::size_t i) const { return *shapes_.at(i); }

  /// The target for one interval: starts from one_hot_target(base_mix) and
  /// applies every shape in insertion order. Pure function of
  /// (shapes, interval, base_mix); interval must be >= 0 (contract).
  TrafficTarget target_at(std::int64_t interval, MixType base_mix) const;

  /// Token round-trip ("traffic-model v1" ... "end") in the snapshot
  /// idiom: locale-immune, hex-float doubles, embeddable in a larger
  /// stream (load leaves the stream just past the trailer). load throws
  /// std::runtime_error on malformed input (std::invalid_argument when a
  /// well-formed token carries an out-of-range parameter).
  void save(std::ostream& os) const;
  static TrafficModel load(std::istream& is);

 private:
  std::vector<std::shared_ptr<const TrafficShape>> shapes_;
};

}  // namespace rac::workload
