#include "workload/cbmg.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace rac::workload {

namespace {

constexpr std::size_t idx(Interaction i) { return static_cast<std::size_t>(i); }

/// Structural navigation affinities: multiplier applied to the target's
/// base frequency when coming from a given page. Mirrors the forced and
/// likely edges of the TPC-W site map.
struct Affinity {
  Interaction from;
  Interaction to;
  double boost;
};

constexpr Affinity kAffinities[] = {
    // Forced request/response pairs.
    {Interaction::kSearchRequest, Interaction::kSearchResults, 30.0},
    {Interaction::kBuyRequest, Interaction::kBuyConfirm, 25.0},
    {Interaction::kAdminRequest, Interaction::kAdminConfirm, 40.0},
    {Interaction::kOrderInquiry, Interaction::kOrderDisplay, 30.0},
    // The checkout funnel.
    {Interaction::kShoppingCart, Interaction::kCustomerRegistration, 6.0},
    {Interaction::kCustomerRegistration, Interaction::kBuyRequest, 10.0},
    // Browsing chains.
    {Interaction::kHome, Interaction::kNewProducts, 2.0},
    {Interaction::kHome, Interaction::kBestSellers, 2.0},
    {Interaction::kHome, Interaction::kSearchRequest, 2.0},
    {Interaction::kNewProducts, Interaction::kProductDetail, 3.0},
    {Interaction::kBestSellers, Interaction::kProductDetail, 3.0},
    {Interaction::kSearchResults, Interaction::kProductDetail, 3.0},
    {Interaction::kProductDetail, Interaction::kProductDetail, 2.0},
    {Interaction::kProductDetail, Interaction::kShoppingCart, 2.0},
};

/// Blend weight of the rank-one (frequency) component; the rest follows
/// the structural affinities. High enough that the stationary distribution
/// stays near the spec frequencies.
constexpr double kRankOneWeight = 0.72;

TransitionMatrix build_matrix(MixType mix) {
  const auto freq = mix_frequencies(mix);
  TransitionMatrix structural{};
  for (std::size_t i = 0; i < kNumInteractions; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < kNumInteractions; ++j) {
      double boost = 1.0;
      for (const auto& a : kAffinities) {
        if (idx(a.from) == i && idx(a.to) == j) boost = a.boost;
      }
      structural[i][j] = freq[j] * boost;
      row_sum += structural[i][j];
    }
    for (std::size_t j = 0; j < kNumInteractions; ++j) {
      structural[i][j] /= row_sum;
    }
  }
  TransitionMatrix out{};
  for (std::size_t i = 0; i < kNumInteractions; ++i) {
    for (std::size_t j = 0; j < kNumInteractions; ++j) {
      out[i][j] =
          kRankOneWeight * freq[j] + (1.0 - kRankOneWeight) * structural[i][j];
    }
  }
  return out;
}

}  // namespace

const TransitionMatrix& cbmg_matrix(MixType mix) {
  static const TransitionMatrix browsing = build_matrix(MixType::kBrowsing);
  static const TransitionMatrix shopping = build_matrix(MixType::kShopping);
  static const TransitionMatrix ordering = build_matrix(MixType::kOrdering);
  switch (mix) {
    case MixType::kBrowsing: return browsing;
    case MixType::kShopping: return shopping;
    case MixType::kOrdering: return ordering;
  }
  // An out-of-enum MixType is a caller bug (a cast from untrusted data),
  // not a mix to approximate: silently handing back the shopping matrix
  // here once masked exactly that.
  RAC_EXPECT(false, "cbmg_matrix: mix outside the MixType enum");
  return shopping;  // unreachable under every contract mode that returns
}

const std::array<double, kNumInteractions>& entry_distribution(MixType mix) {
  static const std::array<double, kNumInteractions> browsing =
      stationary_distribution(cbmg_matrix(MixType::kBrowsing));
  static const std::array<double, kNumInteractions> shopping =
      stationary_distribution(cbmg_matrix(MixType::kShopping));
  static const std::array<double, kNumInteractions> ordering =
      stationary_distribution(cbmg_matrix(MixType::kOrdering));
  switch (mix) {
    case MixType::kBrowsing: return browsing;
    case MixType::kShopping: return shopping;
    case MixType::kOrdering: return ordering;
  }
  RAC_EXPECT(false, "entry_distribution: mix outside the MixType enum");
  return shopping;  // unreachable under every contract mode that returns
}

std::array<double, kNumInteractions> stationary_distribution(
    const TransitionMatrix& matrix, int iterations) {
  std::array<double, kNumInteractions> pi{};
  pi.fill(1.0 / kNumInteractions);
  for (int it = 0; it < iterations; ++it) {
    std::array<double, kNumInteractions> next{};
    for (std::size_t i = 0; i < kNumInteractions; ++i) {
      for (std::size_t j = 0; j < kNumInteractions; ++j) {
        next[j] += pi[i] * matrix[i][j];
      }
    }
    pi = next;
  }
  // Normalize against accumulated rounding. A zero total means the input
  // was not row-stochastic (an all-zero matrix loses the whole mass), and
  // dividing by it would silently return an all-NaN "distribution".
  double total = 0.0;
  for (double p : pi) total += p;
  RAC_EXPECT(total > 0.0, "stationary_distribution: zero-mass distribution");
  for (double& p : pi) p /= total;
  return pi;
}

}  // namespace rac::workload
