// Quickstart: auto-configure a simulated TPC-W website with the RAC agent.
//
//   1. Pick a system context (traffic mix x VM resources).
//   2. Train an initial policy offline (Algorithm 2).
//   3. Let the agent tune the live system, one measurement interval at a
//      time, and watch the response time fall.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Set RAC_TRACE to also write the decision trace as JSONL, one record per
// interval:  RAC_TRACE=out.jsonl ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace rac;

  // The website serves the TPC-W shopping mix from a 4-vCPU / 4 GB VM.
  const env::SystemContext context{workload::MixType::kShopping,
                                   env::VmLevel::kLevel1};

  // The live system: measurements carry ~10% noise like a real 5-minute
  // observation window would.
  env::AnalyticEnvOptions live_options;
  live_options.seed = 2024;
  env::AnalyticEnv live(context, live_options);

  // Offline policy initialization (in production this runs on a staging
  // replica; here it runs on the same model with a different seed).
  std::cout << "training initial policy offline ..." << std::endl;
  env::AnalyticEnvOptions offline_options;
  offline_options.seed = 7;
  env::AnalyticEnv offline(context, offline_options);
  core::InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(offline));
  std::cout << "offline policy ready (regression R^2 = "
            << library.at(0).regression_r2 << ", "
            << library.at(0).table.size() << " seeded states)\n\n";

  // The agent: paper constants (SLA 1000 ms, epsilon 0.05, alpha 0.1,
  // gamma 0.9, violation window 10 / threshold 0.3 / 5 consecutive).
  core::RacOptions options;
  core::RacAgent agent(options, library, 0);

  // Management loop: 30 intervals, with the decision trace captured in
  // memory (and mirrored to $RAC_TRACE as JSONL when that is set).
  obs::MemoryTraceSink memory_sink;
  std::unique_ptr<obs::TraceSink> file_sink;
  try {
    file_sink = obs::sink_from_env();
  } catch (const std::exception& e) {
    std::cerr << "RAC_TRACE disabled: " << e.what() << "\n";
  }
  std::vector<obs::TraceSink*> sinks = {&memory_sink};
  if (file_sink) {
    sinks.push_back(file_sink.get());
    std::cout << "decision trace -> "
              << static_cast<obs::JsonlTraceSink*>(file_sink.get())->path()
              << " (JSONL)\n";
  }
  obs::TeeTraceSink tee(sinks);
  core::RunOptions run_options;
  run_options.sink = &tee;
  const auto trace = core::run_agent(live, agent, {}, 30, run_options);

  // The per-interval story comes straight from the decision trace: what
  // the agent did, whether it explored, and what it believed (Q-value).
  util::TextTable table({"interval", "configuration", "response (ms)",
                         "action", "explore", "Q(s,a)"});
  const std::vector<obs::TraceEvent> events = memory_sink.events();
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const auto& record = trace.records[i];
    const auto& event = events[i];
    table.add_row({std::to_string(record.iteration),
                   record.configuration.compact(),
                   util::fmt(record.response_ms, 1), event.action,
                   event.explored ? "yes" : "", util::fmt(event.q_value, 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "default-config response : "
            << util::fmt(trace.records.front().response_ms, 1) << " ms\n"
            << "tuned response (last 5) : "
            << util::fmt(trace.mean_response_ms(25, 30), 1) << " ms\n"
            << "final configuration     : "
            << trace.records.back().configuration.to_string() << "\n";

  // What the pipeline did under the hood, from the metrics registry.
  const auto snapshot = obs::default_registry().snapshot();
  const auto* decisions = snapshot.counter("core.rac.decisions");
  const auto* explores = snapshot.counter("core.rac.explore_actions");
  const auto* sweeps = snapshot.counter("rl.td.sweeps");
  const auto* backups = snapshot.counter("rl.td.backups");
  std::cout << "\ntelemetry: " << (decisions ? decisions->value : 0)
            << " decisions (" << (explores ? explores->value : 0)
            << " exploratory), " << (sweeps ? sweeps->value : 0)
            << " TD sweeps / " << (backups ? backups->value : 0)
            << " backups across offline + online training\n";
  return 0;
}
