// Quickstart: auto-configure a simulated TPC-W website with the RAC agent.
//
//   1. Pick a system context (traffic mix x VM resources).
//   2. Train an initial policy offline (Algorithm 2).
//   3. Let the agent tune the live system, one measurement interval at a
//      time, and watch the response time fall.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "util/table.hpp"

int main() {
  using namespace rac;

  // The website serves the TPC-W shopping mix from a 4-vCPU / 4 GB VM.
  const env::SystemContext context{workload::MixType::kShopping,
                                   env::VmLevel::kLevel1};

  // The live system: measurements carry ~10% noise like a real 5-minute
  // observation window would.
  env::AnalyticEnvOptions live_options;
  live_options.seed = 2024;
  env::AnalyticEnv live(context, live_options);

  // Offline policy initialization (in production this runs on a staging
  // replica; here it runs on the same model with a different seed).
  std::cout << "training initial policy offline ..." << std::endl;
  env::AnalyticEnvOptions offline_options;
  offline_options.seed = 7;
  env::AnalyticEnv offline(context, offline_options);
  core::InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(offline));
  std::cout << "offline policy ready (regression R^2 = "
            << library.at(0).regression_r2 << ", "
            << library.at(0).table.size() << " seeded states)\n\n";

  // The agent: paper constants (SLA 1000 ms, epsilon 0.05, alpha 0.1,
  // gamma 0.9, violation window 10 / threshold 0.3 / 5 consecutive).
  core::RacOptions options;
  core::RacAgent agent(options, library, 0);

  // Management loop: 30 intervals.
  const auto trace = core::run_agent(live, agent, {}, 30);

  util::TextTable table({"interval", "configuration", "response (ms)"});
  for (const auto& record : trace.records) {
    table.add_row({std::to_string(record.iteration),
                   record.configuration.compact(),
                   util::fmt(record.response_ms, 1)});
  }
  std::cout << table.str() << "\n";
  std::cout << "default-config response : "
            << util::fmt(trace.records.front().response_ms, 1) << " ms\n"
            << "tuned response (last 5) : "
            << util::fmt(trace.mean_response_ms(25, 30), 1) << " ms\n"
            << "final configuration     : "
            << trace.records.back().configuration.to_string() << "\n";
  return 0;
}
