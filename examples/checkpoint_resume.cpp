// Checkpoint/restore: kill the management station mid-run and resume the
// agent from its last checkpoint with nothing lost.
//
//   1. Train an initial policy and start the online agent with periodic
//      checkpointing (every 5 intervals, atomic write-rename).
//   2. "Crash" after 20 of 40 intervals: throw the agent away.
//   3. Build a fresh agent from the same options, restore the checkpoint,
//      and resume at the recorded iteration.
//   4. Compare against an uninterrupted 40-interval run: the resumed
//      trajectory is bit-identical -- same configurations, same response
//      times, same exploration draws.
//
// Build & run:  cmake --build build && ./build/examples/checkpoint_resume
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "core/snapshot.hpp"
#include "env/analytic_env.hpp"
#include "util/table.hpp"

int main() {
  using namespace rac;

  const env::SystemContext context{workload::MixType::kShopping,
                                   env::VmLevel::kLevel1};
  const std::string checkpoint_path = "checkpoint_resume.rac";
  constexpr int kTotal = 40;
  constexpr int kCrashAt = 20;

  std::cout << "training initial policy offline ..." << std::endl;
  env::AnalyticEnvOptions offline_options;
  offline_options.seed = 7;
  env::AnalyticEnv offline(context, offline_options);
  core::InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(offline));

  const core::RacOptions options;  // paper constants

  // --- the run that crashes ----------------------------------------------
  env::AnalyticEnvOptions live_options;
  live_options.seed = 2024;
  env::AnalyticEnv live(context, live_options);
  core::RacAgent agent(options, library, 0);

  core::RunOptions first_leg;
  first_leg.checkpoint_every = 5;
  first_leg.checkpoint_path = checkpoint_path;
  auto before = core::run_agent(live, agent, {}, kCrashAt, first_leg);
  std::cout << "\n... crash after interval " << kCrashAt - 1
            << " (agent lost; environment keeps serving traffic)\n";

  // --- restart: fresh agent, state from the checkpoint file ---------------
  const core::RunCheckpoint checkpoint =
      core::load_checkpoint_file(checkpoint_path);
  std::istringstream state(checkpoint.agent_state);
  core::RacAgent resumed_agent(options, library, 0);
  resumed_agent.restore(core::load_agent_snapshot(state));
  std::cout << "restored checkpoint: " << checkpoint.completed_iterations
            << " intervals completed, " << checkpoint.agent_state.size()
            << " bytes of learner state\n\n";

  core::RunOptions second_leg;
  second_leg.start_iteration =
      static_cast<int>(checkpoint.completed_iterations);
  second_leg.checkpoint_every = 5;
  second_leg.checkpoint_path = checkpoint_path;
  auto after = core::run_agent(live, resumed_agent, {}, kTotal, second_leg);

  // --- reference: the run that never crashed ------------------------------
  env::AnalyticEnv reference_env(context, live_options);
  core::RacAgent reference_agent(options, library, 0);
  auto reference = core::run_agent(reference_env, reference_agent, {}, kTotal);

  // Stitch the two legs together and compare with the reference, bitwise.
  auto stitched = before;
  stitched.records.insert(stitched.records.end(), after.records.begin(),
                          after.records.end());
  bool identical = stitched.records.size() == reference.records.size();
  for (std::size_t i = 0; identical && i < stitched.records.size(); ++i) {
    identical = stitched.records[i].response_ms ==
                    reference.records[i].response_ms &&
                stitched.records[i].configuration ==
                    reference.records[i].configuration;
  }

  util::TextTable table({"interval", "configuration", "response (ms)", "leg"});
  for (const auto& record : stitched.records) {
    table.add_row({std::to_string(record.iteration),
                   record.configuration.compact(),
                   util::fmt(record.response_ms, 1),
                   record.iteration < kCrashAt ? "before crash" : "resumed"});
  }
  std::cout << table.str() << "\n";
  std::cout << (identical
                    ? "resumed run is bit-identical to the uninterrupted run\n"
                    : "MISMATCH: resumed run diverged from the uninterrupted "
                      "run\n");
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}
