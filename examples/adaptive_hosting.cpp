// Adaptive hosting: a day in the life of a consolidated web host.
//
// The website's traffic mix shifts over the day (browsing overnight,
// shopping during the day, an ordering surge in the evening sale) while
// the data-center controller reallocates VM resources underneath it
// (shrinking the VM when a co-located tenant needs capacity). The RAC
// agent adapts the Apache/Tomcat configuration through every shift; a
// static default configuration is shown for contrast.
//
// This is the scenario the paper's introduction motivates: configuration
// management must react to BOTH workload dynamics and VM-level dynamics.
#include <iostream>
#include <memory>

#include "baselines/static_agent.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ascii_chart.hpp"
#include "util/table.hpp"

int main() {
  using namespace rac;
  using workload::MixType;

  // A day = 96 intervals of 15 simulated minutes.
  const core::ContextSchedule day = {
      {0, {MixType::kBrowsing, env::VmLevel::kLevel2}},   // night, small VM
      {24, {MixType::kShopping, env::VmLevel::kLevel1}},  // morning, upsized
      {48, {MixType::kOrdering, env::VmLevel::kLevel1}},  // evening sale
      {72, {MixType::kOrdering, env::VmLevel::kLevel3}},  // co-tenant squeeze
  };
  const int intervals = 96;

  std::cout << "training one initial policy per anticipated context ...\n";
  std::vector<env::SystemContext> contexts;
  for (const auto& entry : day) contexts.push_back(entry.context);
  const auto library = core::build_library(
      contexts,
      [](const env::SystemContext& ctx) {
        env::AnalyticEnvOptions opt;
        opt.seed = 7;
        return std::make_unique<env::AnalyticEnv>(ctx, opt);
      });

  auto make_live = [&] {
    env::AnalyticEnvOptions opt;
    opt.seed = 9001;
    return std::make_unique<env::AnalyticEnv>(day.front().context, opt);
  };

  // Capture the RAC agent's decision trace so the day can be audited
  // afterwards: every interval's action, reward, and violation state.
  obs::MemoryTraceSink day_log;
  core::RunOptions run_options;
  run_options.sink = &day_log;

  core::RacOptions options;
  options.seed = 17;
  core::RacAgent rac(options, library, 0);
  auto live1 = make_live();
  const auto rac_trace = core::run_agent(*live1, rac, day, intervals, run_options);

  baselines::StaticDefaultAgent untouched;
  auto live2 = make_live();
  const auto static_trace = core::run_agent(*live2, untouched, day, intervals);

  util::TextTable table({"period", "context", "RAC mean (ms)",
                         "static mean (ms)", "RAC gain"});
  const char* period_names[] = {"night", "morning", "evening sale",
                                "squeezed VM"};
  for (std::size_t p = 0; p < day.size(); ++p) {
    const int from = day[p].start_iteration;
    const int to = p + 1 < day.size() ? day[p + 1].start_iteration : intervals;
    const double rac_mean = rac_trace.mean_response_ms(from, to);
    const double static_mean = static_trace.mean_response_ms(from, to);
    table.add_row({period_names[p], day[p].context.name(),
                   util::fmt(rac_mean, 1), util::fmt(static_mean, 1),
                   util::fmt(static_mean / rac_mean, 2) + "x"});
  }
  std::cout << "\n" << table.str();

  util::AsciiChart chart(78, 18);
  chart.set_title("A day of auto-configuration: RAC (r) vs static default (s)");
  chart.set_x_label("interval (15 simulated minutes each)");
  chart.set_y_label("response time (ms)");
  util::Series rac_series{"RAC", 'r', {}, {}};
  util::Series static_series{"static", 's', {}, {}};
  for (int i = 0; i < intervals; ++i) {
    rac_series.xs.push_back(i);
    rac_series.ys.push_back(rac_trace.records[static_cast<std::size_t>(i)].response_ms);
    static_series.xs.push_back(i);
    static_series.ys.push_back(
        static_trace.records[static_cast<std::size_t>(i)].response_ms);
  }
  chart.add_series(rac_series);
  chart.add_series(static_series);
  std::cout << "\n" << chart.str();

  std::cout << "\ncontext changes detected & policies switched: "
            << rac.policy_switches() << "\n"
            << "overall: RAC " << util::fmt(rac_trace.mean_response_ms(), 1)
            << " ms vs static "
            << util::fmt(static_trace.mean_response_ms(), 1) << " ms ("
            << util::fmt(static_trace.mean_response_ms() /
                             rac_trace.mean_response_ms(),
                         2)
            << "x)\n";

  // Audit the day from the decision trace: when did the violation detector
  // fire, and how much of the tuning was exploratory?
  int explored = 0, violations = 0;
  std::vector<int> switch_intervals;
  for (const auto& event : day_log.events()) {
    explored += event.explored ? 1 : 0;
    violations += event.violation ? 1 : 0;
    if (event.policy_switched) switch_intervals.push_back(event.iteration);
  }
  std::cout << "\nday audit (from the decision trace): " << explored
            << " exploratory actions, " << violations
            << " SLA-violating intervals, policy switches at intervals [";
  for (std::size_t i = 0; i < switch_intervals.size(); ++i) {
    std::cout << (i ? " " : "") << switch_intervals[i];
  }
  std::cout << "]\n";

  const auto snapshot = obs::default_registry().snapshot();
  const auto* checks = snapshot.counter("core.violation.pvar_checks");
  const auto* retrains = snapshot.counter("core.rac.retrains");
  const auto* evals = snapshot.counter("env.analytic.evaluations");
  std::cout << "registry: " << (checks ? checks->value : 0)
            << " violation checks, " << (retrains ? retrains->value : 0)
            << " online retrains, " << (evals ? evals->value : 0)
            << " model evaluations\n";
  return 0;
}
