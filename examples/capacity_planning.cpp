// Capacity planning with the queueing substrate.
//
// The MVA library under the RAC model is useful on its own: here we ask
// "how many concurrent TPC-W customers can each VM level carry before the
// response time crosses the SLA?" by solving the closed network directly
// for a sweep of populations -- no simulation, milliseconds of compute.
//
// Demonstrates the public API of rac::queueing and the workload-derived
// service demands of rac::workload.
#include <iostream>

#include "queueing/mva.hpp"
#include "tiersim/system_params.hpp"
#include "env/context.hpp"
#include "util/ascii_chart.hpp"
#include "util/table.hpp"
#include "workload/tpcw.hpp"

int main() {
  using namespace rac;

  const tiersim::SystemParams params;
  const double sla_ms = 1000.0;
  const int max_population = 900;

  util::TextTable table({"VM level", "mix", "capacity @ SLA (customers)",
                         "throughput @ SLA (req/s)"});
  util::AsciiChart chart(78, 18);
  chart.set_title("Response time vs concurrent customers (shopping mix)");
  chart.set_x_label("concurrent emulated browsers");
  chart.set_y_label("response time (ms), clipped at 2.5s");
  const std::string symbols = "123";

  for (workload::MixType mix : workload::kAllMixes) {
    const auto stats = workload::mix_stats(mix);
    const auto profile = workload::browser_profile(mix);
    const double d_web_s = (stats.web_demand_ms * params.demand_scale_web +
                            params.conn_setup_ms * 0.3) /
                           1000.0;
    const double d_app_s = (stats.app_demand_ms * params.demand_scale_app +
                            stats.db_demand_ms * params.demand_scale_db) /
                           1000.0;

    for (std::size_t l = 0; l < env::kAllLevels.size(); ++l) {
      const auto level = env::kAllLevels[l];
      const auto web_vm = env::web_vm_spec();
      const auto app_vm = env::vm_spec(level);

      queueing::ClosedNetwork net(profile.effective_think_mean_s());
      net.add_station(queueing::make_multiserver_station(
          "web", web_vm.vcpus, 1.0 / d_web_s / web_vm.vcpus * web_vm.vcpus,
          max_population));
      net.add_station(queueing::make_multiserver_station(
          "appdb", app_vm.vcpus, 1.0 / d_app_s, max_population));

      int capacity = max_population;
      double throughput_at_capacity = 0.0;
      util::Series series{env::level_name(level), symbols[l], {}, {}};
      for (int n = 25; n <= max_population; n += 25) {
        const auto r = net.solve(n);
        const double rt_ms = r.response_time * 1000.0;
        if (mix == workload::MixType::kShopping) {
          series.xs.push_back(n);
          series.ys.push_back(std::min(rt_ms, 2500.0));
        }
        if (rt_ms <= sla_ms) {
          capacity = n;
          throughput_at_capacity = r.throughput;
        }
      }
      table.add_row({env::level_name(level),
                     std::string(workload::mix_name(mix)),
                     std::to_string(capacity),
                     util::fmt(throughput_at_capacity, 1)});
      if (mix == workload::MixType::kShopping) chart.add_series(std::move(series));
    }
  }

  std::cout << table.str() << "\n" << chart.str();
  std::cout << "\nNote: this is the raw CPU-bound capacity (no configuration "
               "effects);\nthe RAC agent's job is to keep the *configured* "
               "system near this envelope.\n";
  return 0;
}
