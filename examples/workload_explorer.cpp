// Workload explorer: inspect the TPC-W workload model and watch it run on
// the discrete-event three-tier simulator (the ground-truth substrate).
//
// Prints each mix's interaction frequencies and derived per-tier demands,
// then simulates every (mix, VM level) pair at the default configuration
// and reports simulator-level detail the analytic model cannot give you:
// connection-reuse rate, session rebuilds, worker forks, pool sizes.
#include <iostream>

#include "env/context.hpp"
#include "tiersim/web_system.hpp"
#include "util/table.hpp"
#include "workload/tpcw.hpp"

int main() {
  using namespace rac;

  // --- the three TPC-W mixes ------------------------------------------------
  util::TextTable freq_table({"interaction", "browsing", "shopping",
                              "ordering", "web ms", "app ms", "db ms",
                              "write", "session"});
  for (const auto& spec : workload::interactions()) {
    const auto idx = static_cast<std::size_t>(spec.id);
    freq_table.add_row(
        {std::string(spec.name),
         util::fmt(workload::mix_frequencies(workload::MixType::kBrowsing)[idx] * 100, 2) + "%",
         util::fmt(workload::mix_frequencies(workload::MixType::kShopping)[idx] * 100, 2) + "%",
         util::fmt(workload::mix_frequencies(workload::MixType::kOrdering)[idx] * 100, 2) + "%",
         util::fmt(spec.web_demand_ms, 1), util::fmt(spec.app_demand_ms, 1),
         util::fmt(spec.db_demand_ms, 1), spec.is_write ? "yes" : "-",
         spec.uses_session ? "yes" : "-"});
  }
  std::cout << "TPC-W interactions and mix frequencies\n"
            << freq_table.str() << "\n";

  util::TextTable mix_table({"mix", "order frac", "write frac", "session frac",
                             "web ms/req", "app ms/req", "db ms/req",
                             "think (s)", "session len"});
  for (workload::MixType mix : workload::kAllMixes) {
    const auto stats = workload::mix_stats(mix);
    mix_table.add_row({std::string(workload::mix_name(mix)),
                       util::fmt(stats.order_fraction, 3),
                       util::fmt(stats.write_fraction, 3),
                       util::fmt(stats.session_fraction, 3),
                       util::fmt(stats.web_demand_ms, 1),
                       util::fmt(stats.app_demand_ms, 1),
                       util::fmt(stats.db_demand_ms, 1),
                       util::fmt(workload::browser_profile(mix).effective_think_mean_s(), 1),
                       util::fmt(stats.session_length_mean, 0)});
  }
  std::cout << "derived per-mix statistics (raw table units, pre-scaling)\n"
            << mix_table.str() << "\n";

  // --- run each (mix, level) on the discrete-event simulator -----------------
  std::cout << "simulating 5 minutes of each (mix, VM level) at the default "
               "configuration (250 browsers) ...\n\n";
  util::TextTable sim_table({"mix", "VM level", "resp (ms)", "p95 (ms)",
                             "X (req/s)", "conn reuse", "sess rebuilds",
                             "forks", "web workers", "app threads",
                             "db buffer MB"});
  const tiersim::SystemParams params;
  for (workload::MixType mix : workload::kAllMixes) {
    for (env::VmLevel level : env::kAllLevels) {
      tiersim::SimSetup setup;
      setup.mix = mix;
      setup.web_vm = env::web_vm_spec();
      setup.app_vm = env::vm_spec(level);
      setup.num_clients = 250;
      setup.seed = 11;
      tiersim::ThreeTierSystem system(params, setup);
      const auto m = system.run(60.0, 300.0);
      sim_table.add_row({std::string(workload::mix_name(mix)),
                         env::level_name(level),
                         util::fmt(m.mean_response_ms, 1),
                         util::fmt(m.p95_response_ms, 1),
                         util::fmt(m.throughput_rps, 1),
                         util::fmt(m.connection_reuse_rate, 2),
                         util::fmt(m.session_rebuild_rate, 3),
                         std::to_string(m.forks),
                         util::fmt(m.mean_web_workers, 0),
                         util::fmt(m.mean_app_threads, 0),
                         util::fmt(m.mean_db_buffer_mb, 0)});
    }
  }
  std::cout << sim_table.str();
  return 0;
}
