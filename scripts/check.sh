#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build everything, run
# the full test suite. Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DRAC_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
