#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build everything, run
# rac-lint and rac-analyze over the source trees, then the full test
# suite.
# Usage: scripts/check.sh [build-dir]
#
# Optional phases (each builds its own <build-dir>-<suffix> tree):
#   RAC_TSAN=1  ThreadSanitizer (-DRAC_TSAN=ON); runs the suites labeled
#               `concurrency` (thread pool + parallel determinism goldens).
#   RAC_SAN=1   AddressSanitizer + UBSan (-DRAC_ASAN=ON -DRAC_UBSAN=ON);
#               runs the FULL test suite under both.
#   RAC_AUDIT=1 heavyweight invariant audits (-DRAC_AUDIT=ON); runs the
#               full suite with RAC_AUDIT blocks live.
#   RAC_FAULT_SAN=1 fault-injection suites under ASan+UBSan
#               (-DRAC_ASAN=ON -DRAC_UBSAN=ON); runs the tests labeled
#               `fault` -- a cheap focused pass for the injection decorator
#               and degradation paths when the full RAC_SAN sweep is too
#               slow for the pipeline.
#   RAC_FLEET_SMOKE=1 fleet smoke: run the fleet-scale bench in quick
#               mode (256 tenants through a mid-run context switch, serial
#               vs 4-thread). The binary exits non-zero when the two runs'
#               decision digests or fleet checkpoints differ, so this
#               phase is a fast standalone determinism gate for the
#               sharded control plane.
#   RAC_TRAFFIC_SMOKE=1 traffic smoke: run the dynamic-traffic bench in
#               quick mode (diurnal + flash crowd + mix drift day). The
#               binary exits non-zero when the RL-vs-static SLA gate or
#               any traffic determinism gate (serial-vs-pooled target
#               stream, 1-vs-4-thread training digest, checkpoint/resume
#               stitching) fails.
#   RAC_BENCH_SMOKE=1 bench smoke: run the gated bench suite in quick
#               mode with RAC_BENCH_REPORT on (scripts/bench_trajectory.py
#               sweep) and print the aggregated entry. Catches benches
#               that crash, stop emitting reports, or lose their
#               decision-trace digest without waiting for a full-size
#               sweep. (The regression *gate* already runs inside ctest
#               above as `bench_regression_check`.)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DRAC_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Static checks first: they are the cheapest phases and their findings are
# the easiest to act on. The same gates run as the `rac_lint` and
# `rac_analyze` ctests, so plain `ctest` catches violations too; running
# them here keeps the failure message at the top of a CI log. rac-analyze
# adds the token-level cross-file rules (layering manifest, determinism
# dataflow, parallel-capture safety) on top of rac-lint's line rules.
"$BUILD_DIR"/tools/lint/rac_lint --root . src tools bench examples
"$BUILD_DIR"/tools/analyze/rac_analyze --root . src tools bench examples

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${RAC_TSAN:-0}" == "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DRAC_WERROR=ON -DRAC_TSAN=ON
  cmake --build "$TSAN_DIR" -j "$(nproc)" --target concurrency_tests parallel_tests
  ctest --test-dir "$TSAN_DIR" --output-on-failure -L concurrency
fi

if [[ "${RAC_SAN:-0}" == "1" ]]; then
  SAN_DIR="${BUILD_DIR}-san"
  cmake -B "$SAN_DIR" -S . -DRAC_WERROR=ON -DRAC_ASAN=ON -DRAC_UBSAN=ON
  cmake --build "$SAN_DIR" -j "$(nproc)"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)"
fi

if [[ "${RAC_FAULT_SAN:-0}" == "1" ]]; then
  FAULT_SAN_DIR="${BUILD_DIR}-fault-san"
  cmake -B "$FAULT_SAN_DIR" -S . -DRAC_WERROR=ON -DRAC_ASAN=ON -DRAC_UBSAN=ON
  cmake --build "$FAULT_SAN_DIR" -j "$(nproc)" --target fault_tests
  ctest --test-dir "$FAULT_SAN_DIR" --output-on-failure -L fault
fi

if [[ "${RAC_FLEET_SMOKE:-0}" == "1" ]]; then
  RAC_BENCH_QUICK=1 "$BUILD_DIR"/bench/bench_fleet_scale
fi

if [[ "${RAC_TRAFFIC_SMOKE:-0}" == "1" ]]; then
  RAC_BENCH_QUICK=1 "$BUILD_DIR"/bench/bench_dynamic_traffic
fi

if [[ "${RAC_BENCH_SMOKE:-0}" == "1" ]]; then
  SMOKE_DIR="${BUILD_DIR}/bench-smoke-reports"
  rm -rf "$SMOKE_DIR"
  python3 scripts/bench_trajectory.py sweep \
      --build-dir "$BUILD_DIR" --reports "$SMOKE_DIR" --quick
  python3 scripts/bench_trajectory.py collect --reports "$SMOKE_DIR"
fi

if [[ "${RAC_AUDIT:-0}" == "1" ]]; then
  AUDIT_DIR="${BUILD_DIR}-audit"
  cmake -B "$AUDIT_DIR" -S . -DRAC_WERROR=ON -DRAC_AUDIT=ON
  cmake --build "$AUDIT_DIR" -j "$(nproc)"
  ctest --test-dir "$AUDIT_DIR" --output-on-failure -j "$(nproc)"
fi
