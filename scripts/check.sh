#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build everything, run
# the full test suite. Usage: scripts/check.sh [build-dir]
#
# Set RAC_TSAN=1 to additionally build a ThreadSanitizer configuration
# (-DRAC_TSAN=ON) in <build-dir>-tsan and run the concurrency suites
# (ThreadPool unit tests + the parallel determinism golden tests) under it.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DRAC_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${RAC_TSAN:-0}" == "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DRAC_WERROR=ON -DRAC_TSAN=ON
  cmake --build "$TSAN_DIR" -j "$(nproc)" --target util_tests parallel_tests
  ctest --test-dir "$TSAN_DIR" --output-on-failure -R 'ThreadPool|DeriveSeed|parallel_tests'
fi
