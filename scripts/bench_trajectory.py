#!/usr/bin/env python3
"""Bench-report aggregation and perf-trajectory regression gating.

Dependency-free (stdlib only). Drives the declared bench suite with
RAC_BENCH_REPORT set, aggregates the per-bench `rac-bench-report v1` JSON
files into one trajectory entry, and maintains the checked-in
BENCH_trajectory.json (schema `rac-bench-trajectory v1`, one entry per
PR/baseline refresh).

Subcommands:
  sweep    run the suite, collect reports + exit codes into --reports DIR
  collect  print the trajectory entry aggregated from --reports DIR
  append   append that entry to the trajectory file (the baseline refresh)
  report   render the trajectory as a table (one row per entry)
  check    sweep (quick) into a temp dir and gate against the last
           matching baseline entry; used by the `bench_regression_check`
           ctest

Gating rules (check):
  * a bench missing its report, or whose exit code regressed 0 -> nonzero
    relative to the baseline, always fails;
  * a decision-trace digest mismatch always fails -- the digest only moves
    when the benches' decisions changed, which a perf PR must not do
    silently (refresh the baseline with `append` when the change is
    intentional);
  * per-phase wall time is gated at +25% over baseline for phases costing
    >= 100 ms in the baseline, with up to 2 re-runs taking the minimum
    (noise robustness); phases absent from either side are skipped, so a
    warm library cache never trips the gate;
  * total wall_ms is recorded but not gated (too noisy across hosts and
    cache states) -- EXCEPT where the baseline entry carries a
    `speedup_floor` claim: `append --claim-speedup BENCH:RATIO` records
    the previous baseline's wall as the reference, and `check` then fails
    if the bench's current wall ever drops below RATIO x faster than that
    reference (re-runs taking the minimum, same noise policy as phases);
  * wall gates are skipped entirely when the host fingerprint (nproc,
    build type, compiler) differs from the baseline's.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA_REPORT = "rac-bench-report v1"
SCHEMA_TRAJECTORY = "rac-bench-trajectory v1"

# The gated suite. Order is run order; every name is a binary in
# <build-dir>/bench/.
SUITE = [
    "bench_fig5_policy_comparison",
    "bench_fig6_online_learning",
    "bench_micro",
    "bench_parallel_init",
    "bench_fault_robustness",
    "bench_fleet_scale",
    "bench_dynamic_traffic",
]

PHASE_GATE_RATIO = 1.25      # fail a gated phase at +25% over baseline
PHASE_GATE_FLOOR_US = 100_000.0  # only gate phases >= 100 ms in baseline
MAX_RERUNS = 2               # extra runs (min taken) before failing a phase


def log(msg):
    print(f"bench_trajectory: {msg}", flush=True)


def run_bench(build_dir, bench, reports_dir, quick, extra_env=None):
    """Run one bench with reporting on; returns its exit code."""
    exe = os.path.join(build_dir, "bench", bench)
    if not os.path.exists(exe):
        log(f"MISSING binary {exe}")
        return 127
    env = dict(os.environ)
    env["RAC_BENCH_REPORT"] = reports_dir
    if quick:
        env["RAC_BENCH_QUICK"] = "1"
    else:
        env.pop("RAC_BENCH_QUICK", None)
    if extra_env:
        env.update(extra_env)
    log_path = os.path.join(reports_dir, bench + ".log")
    with open(log_path, "w") as log_file:
        proc = subprocess.run(
            [exe], stdout=log_file, stderr=subprocess.STDOUT, env=env
        )
    return proc.returncode


def sweep(build_dir, reports_dir, quick, benches=None):
    """Run the suite; write exit codes to <reports>/sweep.json."""
    os.makedirs(reports_dir, exist_ok=True)
    exit_codes = {}
    for bench in benches or SUITE:
        log(f"running {bench} (quick={quick}) ...")
        exit_codes[bench] = run_bench(build_dir, bench, reports_dir, quick)
        log(f"  -> exit {exit_codes[bench]}")
    with open(os.path.join(reports_dir, "sweep.json"), "w") as out:
        json.dump({"quick": quick, "exit_codes": exit_codes}, out, indent=1)
    return exit_codes


def flatten_phases(node, prefix="", out=None):
    """'a/b' -> inclusive_us for every phase under the synthetic root."""
    if out is None:
        out = {}
    for child in node.get("children", []):
        path = f"{prefix}/{child['name']}" if prefix else child["name"]
        out[path] = child.get("inclusive_us", 0.0)
        flatten_phases(child, path, out)
    return out


def load_report(reports_dir, bench):
    path = os.path.join(reports_dir, bench + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != SCHEMA_REPORT:
        raise SystemExit(
            f"bench_trajectory: {path}: unsupported schema "
            f"{report.get('schema')!r} (want {SCHEMA_REPORT!r})"
        )
    return report


def collect(reports_dir):
    """Aggregate one sweep's reports into a trajectory entry."""
    sweep_path = os.path.join(reports_dir, "sweep.json")
    exit_codes = {}
    quick = None
    if os.path.exists(sweep_path):
        with open(sweep_path) as f:
            sweep_info = json.load(f)
        exit_codes = sweep_info.get("exit_codes", {})
        quick = sweep_info.get("quick")

    entry = {"git_sha": "unknown", "quick": quick, "host": {}, "benches": {}}
    for bench in SUITE:
        report = load_report(reports_dir, bench)
        record = {"exit_code": exit_codes.get(bench)}
        if report is not None:
            entry["git_sha"] = report.get("git_sha", entry["git_sha"])
            if quick is None:
                entry["quick"] = report.get("quick", False)
            host = report.get("host", {})
            entry["host"] = {
                "nproc": host.get("nproc"),
                "build_type": host.get("build_type"),
                "compiler": host.get("compiler"),
            }
            record.update(
                {
                    "run_id": report.get("run_id"),
                    "wall_ms": report.get("wall_ms"),
                    "trace_digest": report.get("trace_digest"),
                    "peak_rss_bytes": report.get("process", {}).get(
                        "peak_rss_bytes"
                    ),
                    "phases": flatten_phases(report.get("phases", {})),
                }
            )
        entry["benches"][bench] = record
    return entry


def load_trajectory(path):
    if not os.path.exists(path):
        return {"schema": SCHEMA_TRAJECTORY, "entries": []}
    with open(path) as f:
        trajectory = json.load(f)
    if trajectory.get("schema") != SCHEMA_TRAJECTORY:
        raise SystemExit(
            f"bench_trajectory: {path}: unsupported schema "
            f"{trajectory.get('schema')!r}"
        )
    return trajectory


def parse_speedup_claims(claims):
    """['bench:2.0', ...] -> {bench: ratio}; exits on malformed input."""
    parsed = {}
    for claim in claims or []:
        bench, sep, ratio = claim.partition(":")
        if not sep or bench not in SUITE:
            raise SystemExit(
                f"bench_trajectory: bad --claim-speedup {claim!r} "
                f"(want BENCH:RATIO with BENCH in {SUITE})"
            )
        try:
            parsed[bench] = float(ratio)
        except ValueError:
            raise SystemExit(
                f"bench_trajectory: bad ratio in --claim-speedup {claim!r}"
            )
        if parsed[bench] <= 1.0:
            raise SystemExit(
                f"bench_trajectory: --claim-speedup ratio must be > 1 "
                f"({claim!r})"
            )
    return parsed


def append(reports_dir, trajectory_path, label, claims=None):
    entry = collect(reports_dir)
    if label:
        entry["label"] = label
    trajectory = load_trajectory(trajectory_path)
    claims = parse_speedup_claims(claims)
    if claims:
        reference = find_baseline(trajectory, entry.get("quick"))
        if reference is None:
            raise SystemExit(
                "bench_trajectory: --claim-speedup needs a prior entry in "
                "the same mode to measure against"
            )
        floors = {}
        for bench, ratio in claims.items():
            ref_wall = (
                reference.get("benches", {}).get(bench, {}).get("wall_ms")
            )
            cur_wall = entry["benches"].get(bench, {}).get("wall_ms")
            if ref_wall is None or cur_wall is None:
                raise SystemExit(
                    f"bench_trajectory: --claim-speedup {bench}: wall_ms "
                    "missing from the reference or current entry"
                )
            achieved = ref_wall / cur_wall
            if achieved < ratio:
                raise SystemExit(
                    f"bench_trajectory: --claim-speedup {bench}: measured "
                    f"{achieved:.2f}x, below the claimed {ratio:.2f}x -- "
                    "refusing to record an unmet claim"
                )
            floors[bench] = {
                "min_ratio": ratio,
                "reference_wall_ms": ref_wall,
                "reference_git_sha": reference.get("git_sha", "unknown"),
            }
            log(
                f"speedup claim {bench}: {achieved:.2f}x measured vs "
                f"{ratio:.2f}x floor (reference "
                f"{floors[bench]['reference_git_sha'][:12]})"
            )
        entry["speedup_floor"] = floors
    trajectory["entries"].append(entry)
    tmp = trajectory_path + ".tmp"
    with open(tmp, "w") as out:
        json.dump(trajectory, out, indent=1)
        out.write("\n")
    os.replace(tmp, trajectory_path)
    log(
        f"appended entry {len(trajectory['entries'])} "
        f"({entry['git_sha'][:12]}, quick={entry['quick']}) "
        f"to {trajectory_path}"
    )


def report(trajectory_path, last):
    trajectory = load_trajectory(trajectory_path)
    entries = trajectory["entries"][-last:] if last else trajectory["entries"]
    if not entries:
        print("trajectory is empty")
        return
    header = ["#", "git_sha", "quick", "label"] + [
        b.replace("bench_", "") for b in SUITE
    ]
    rows = [header]
    base = len(trajectory["entries"]) - len(entries)
    for i, entry in enumerate(entries):
        row = [
            str(base + i + 1),
            str(entry.get("git_sha", "?"))[:12],
            str(entry.get("quick")),
            str(entry.get("label", ""))[:24],
        ]
        for bench in SUITE:
            record = entry.get("benches", {}).get(bench, {})
            wall = record.get("wall_ms")
            code = record.get("exit_code")
            cell = "-" if wall is None else f"{wall / 1000.0:.1f}s"
            if code not in (0, None):
                cell += f"!e{code}"
            row.append(cell)
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    for r in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def find_baseline(trajectory, quick):
    """Last entry recorded in the same mode; None when there is none."""
    for entry in reversed(trajectory["entries"]):
        if bool(entry.get("quick")) == bool(quick):
            return entry
    return None


def gated_phase_regressions(base_record, cur_record):
    """Phase paths over the +25% gate (baseline >= floor, present in both)."""
    over = []
    base_phases = base_record.get("phases") or {}
    cur_phases = cur_record.get("phases") or {}
    for path, base_us in base_phases.items():
        if base_us < PHASE_GATE_FLOOR_US or path not in cur_phases:
            continue
        if cur_phases[path] > base_us * PHASE_GATE_RATIO:
            over.append((path, base_us, cur_phases[path]))
    return over


def check(build_dir, trajectory_path, quick, keep_reports):
    trajectory = load_trajectory(trajectory_path)
    baseline = find_baseline(trajectory, quick)
    if baseline is None:
        log(
            f"no baseline entry (quick={quick}) in {trajectory_path}; "
            "nothing to gate -- PASS (bootstrap with "
            "`bench_trajectory.py sweep` + `append`)"
        )
        return 0

    tmp_dir = tempfile.mkdtemp(prefix="rac-bench-check-")
    sweep(build_dir, tmp_dir, quick)
    current = collect(tmp_dir)

    host_matches = current["host"] == baseline.get("host")
    if not host_matches:
        log(
            f"host fingerprint differs (baseline {baseline.get('host')}, "
            f"current {current['host']}); wall gates skipped"
        )

    failures = []
    for bench in SUITE:
        base_record = baseline.get("benches", {}).get(bench)
        cur_record = current["benches"].get(bench, {})
        if base_record is None:
            log(f"{bench}: not in baseline; skipped")
            continue

        base_code = base_record.get("exit_code")
        cur_code = cur_record.get("exit_code")
        if cur_record.get("run_id") is None:
            failures.append(f"{bench}: no report produced (exit {cur_code})")
            continue
        if base_code == 0 and cur_code != 0:
            failures.append(
                f"{bench}: exit code regressed 0 -> {cur_code} (see "
                f"{os.path.join(tmp_dir, bench + '.log')})"
            )
            continue

        base_digest = base_record.get("trace_digest")
        cur_digest = cur_record.get("trace_digest")
        if base_digest and cur_digest != base_digest:
            failures.append(
                f"{bench}: decision-trace digest diverged "
                f"({base_digest} -> {cur_digest}); the agents decided "
                "differently -- refresh the baseline only if intentional"
            )
            continue

        if not host_matches:
            continue
        over = gated_phase_regressions(base_record, cur_record)
        reruns = 0
        while over and reruns < MAX_RERUNS:
            reruns += 1
            log(
                f"{bench}: {len(over)} phase(s) over the wall gate; "
                f"re-run {reruns}/{MAX_RERUNS} to rule out noise"
            )
            run_bench(build_dir, bench, tmp_dir, quick)
            rerun = collect(tmp_dir)["benches"][bench]
            merged_phases = dict(cur_record.get("phases") or {})
            for path, us in (rerun.get("phases") or {}).items():
                if path in merged_phases:
                    merged_phases[path] = min(merged_phases[path], us)
                else:
                    merged_phases[path] = us
            cur_record = dict(rerun)
            cur_record["phases"] = merged_phases
            over = gated_phase_regressions(base_record, cur_record)
        for path, base_us, cur_us in over:
            failures.append(
                f"{bench}: phase {path} regressed "
                f"{base_us / 1000.0:.1f} ms -> {cur_us / 1000.0:.1f} ms "
                f"(gate +{(PHASE_GATE_RATIO - 1.0) * 100.0:.0f}%)"
            )

        floor = (baseline.get("speedup_floor") or {}).get(bench)
        if floor:
            ref_wall = floor["reference_wall_ms"]
            ratio = floor["min_ratio"]
            budget = ref_wall / ratio
            cur_wall = cur_record.get("wall_ms")
            reruns = 0
            while (
                cur_wall is None or cur_wall > budget
            ) and reruns < MAX_RERUNS:
                reruns += 1
                log(
                    f"{bench}: wall {cur_wall} ms over the "
                    f"{ratio:.2f}x speedup floor ({budget:.1f} ms); "
                    f"re-run {reruns}/{MAX_RERUNS} to rule out noise"
                )
                run_bench(build_dir, bench, tmp_dir, quick)
                rerun_wall = (
                    collect(tmp_dir)["benches"][bench].get("wall_ms")
                )
                if rerun_wall is not None:
                    cur_wall = (
                        rerun_wall
                        if cur_wall is None
                        else min(cur_wall, rerun_wall)
                    )
            if cur_wall is None or cur_wall > budget:
                failures.append(
                    f"{bench}: speedup claim regressed -- wall "
                    f"{cur_wall} ms exceeds {budget:.1f} ms "
                    f"(claimed >= {ratio:.2f}x vs reference "
                    f"{ref_wall:.1f} ms @ "
                    f"{floor.get('reference_git_sha', '?')[:12]})"
                )
        log(f"{bench}: OK (digest {cur_digest}, exit {cur_code})")

    if failures:
        for failure in failures:
            log(f"FAIL: {failure}")
        log(f"reports kept at {tmp_dir}")
        return 1
    log(f"all {len(SUITE)} benches within gates vs baseline "
        f"{baseline.get('git_sha', '?')[:12]}")
    if not keep_reports:
        for name in os.listdir(tmp_dir):
            os.unlink(os.path.join(tmp_dir, name))
        os.rmdir(tmp_dir)
    else:
        log(f"reports kept at {tmp_dir}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser("sweep", help="run the suite with reporting on")
    p_sweep.add_argument("--build-dir", required=True)
    p_sweep.add_argument("--reports", required=True)
    p_sweep.add_argument("--quick", action="store_true")

    p_collect = sub.add_parser("collect", help="print the aggregated entry")
    p_collect.add_argument("--reports", required=True)

    p_append = sub.add_parser("append", help="append the entry (baseline)")
    p_append.add_argument("--reports", required=True)
    p_append.add_argument("--trajectory", required=True)
    p_append.add_argument("--label", default="")
    p_append.add_argument(
        "--claim-speedup", action="append", metavar="BENCH:RATIO",
        help="record a wall-clock speedup floor vs the previous entry in "
        "the same mode; `check` fails if the bench later falls below it",
    )

    p_report = sub.add_parser("report", help="render the trajectory")
    p_report.add_argument("--trajectory", required=True)
    p_report.add_argument("--last", type=int, default=0)

    p_check = sub.add_parser("check", help="gate against the baseline")
    p_check.add_argument("--build-dir", required=True)
    p_check.add_argument("--trajectory", required=True)
    p_check.add_argument(
        "--full", action="store_true",
        help="gate the full-size suite instead of quick mode",
    )
    p_check.add_argument("--keep-reports", action="store_true")

    args = parser.parse_args()
    if args.command == "sweep":
        codes = sweep(args.build_dir, args.reports, args.quick)
        return 1 if any(c != 0 for c in codes.values()) else 0
    if args.command == "collect":
        print(json.dumps(collect(args.reports), indent=1))
        return 0
    if args.command == "append":
        append(args.reports, args.trajectory, args.label, args.claim_speedup)
        return 0
    if args.command == "report":
        report(args.trajectory, args.last)
        return 0
    if args.command == "check":
        return check(
            args.build_dir, args.trajectory, not args.full, args.keep_reports
        )
    return 2


if __name__ == "__main__":
    sys.exit(main())
