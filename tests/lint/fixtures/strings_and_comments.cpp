// Fixture: violations inside comments and string literals must NOT fire.
// std::rand() in a line comment, time(nullptr) too.
/* neither in a block comment: std::cout << std::rand(); */

/* a block comment that spans lines
   srand(1); std::random_device rd; assert(x == 1.0);
   still inside the comment */
const char* fixture_msg() {
  return "call std::rand() and assert(x == 1.0) at your peril";
}
