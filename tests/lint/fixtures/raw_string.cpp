// Fixture: raw string literal stripping. Everything inside the raw
// strings is data -- the rand/cout text there must never fire -- and the
// one-line raw string containing a lone quote must not desynchronize the
// stripper: the std::rand() after it is the only real finding.
// Never compiled; read by lint_tests.
#include <string>

const char* fixture_raw = R"(calls std::rand() and std::cout << "x")";

const char* fixture_raw_delim = R"delim(
  more std::rand() inside a multi-line raw string, with a quote " and
  a fake close )" that a naive stripper would treat as the end
)delim";

int fixture_after_raw() {
  std::string s = R"(")";
  return std::rand();  // the finding a quote-counting stripper loses
}
