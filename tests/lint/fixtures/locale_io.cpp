// Fixture: locale-sensitive numeric I/O. Never compiled; read by lint_tests.
// A comment mentioning std::stod or printf "%a" must not fire.
double fixture_stod(const char* s) { return std::stod(s); }

double fixture_strtod(const char* s) { return strtod(s, nullptr); }

double fixture_atof(const char* s) { return atof(s); }

void fixture_setlocale() { setlocale(LC_ALL, "C"); }

void fixture_print(char* buf, unsigned n, double v) {
  snprintf(buf, n, "%a", v);
}

void fixture_scan(const char* s, double* v) { sscanf(s, "%lf", v); }

void fixture_hex_is_fine(char* buf, unsigned n, unsigned c) {
  snprintf(buf, n, "\\u%04x", c);
}
