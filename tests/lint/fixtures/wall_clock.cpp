// Fixture: wall-clock reads. Never compiled; read by lint_tests.
#include <chrono>
#include <ctime>

long fixture_wall_clock() {
  const auto now = std::chrono::system_clock::now();
  const long stamp = time(nullptr);
  return stamp + std::chrono::duration_cast<std::chrono::seconds>(
                     now.time_since_epoch())
                     .count();
}
