// Fixture for the hot-path-alloc rule. Never compiled.
//
// Mentioning new or unordered_map in a comment must not fire, and neither
// must the include below (no '<' after the container name).
#include <unordered_map>

void bad_sites() {
  int* p = new int(7);                              // fires: operator new
  auto u = std::make_unique<int>(7);                // fires: make_unique
  auto s = std::make_shared<int>(7);                // fires: make_shared
  std::unordered_map<int, int> m;                   // fires: node container
  std::map<int, double> tree;                       // fires: node container
  std::list<int> chain;                             // fires: node container
  (void)p; (void)u; (void)s; (void)m; (void)tree; (void)chain;
}

void justified_cold_path() {
  // One-time arena growth outside the event loop.
  auto r = std::make_unique<int>(0);  // rac-lint: allow(hot-path-alloc) cold path
  (void)r;
}

void look_alikes() {
  int newest = 0;        // 'new' inside an identifier must not fire
  double renew_t = 0.0;  // nor as a suffix
  const char* msg = "allocate with new here";  // string literal stripped
  (void)newest; (void)renew_t; (void)msg;
}
