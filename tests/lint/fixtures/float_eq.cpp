// Fixture: exact float comparisons. Never compiled; read by lint_tests.
bool fixture_is_unit(double x) { return x == 1.0; }

bool fixture_is_nonzero(float y) { return 0.0f != y; }
