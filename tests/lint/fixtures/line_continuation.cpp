// Fixture: backslash line continuations. The // comment below continues
// onto the next physical line, so the std::rand() there is comment text;
// the continued string literal swallows its second line the same way.
// The final std::rand() is the only real finding.
// Never compiled; read by lint_tests.
int fixture_continued_comment() {
  int x = 0;  // this comment continues onto the next line \
  x = std::rand();
  return x;
}

const char* fixture_continued_string = "literal with a continued \
std::rand() inside the string body";

int fixture_real() {
  return std::rand();
}
