// Fixture: raw clock reads that bypass the profiler. Never compiled;
// read by lint_tests.
#include <chrono>

double fixture_untracked_timing() {
  const auto start = std::chrono::steady_clock::now();
  const auto mid = std::chrono::high_resolution_clock::now();
  const auto end =
      std::chrono::steady_clock::now();  // rac-lint: allow(untracked-timer)
  return std::chrono::duration<double>(end - mid).count() +
         std::chrono::duration<double>(mid - start).count();
}
