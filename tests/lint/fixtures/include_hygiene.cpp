// Fixture: path-traversing include. Never compiled; read by lint_tests.
#include "../util/stats.hpp"

int fixture_uses_relative_include() { return 0; }
