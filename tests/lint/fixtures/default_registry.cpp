// Fixture: metrics registry pinned to the global default. Never compiled.
#include "obs/metrics.hpp"

void fixture_touch_counter() {
  auto& reg = rac::obs::default_registry();
  reg.counter("fixture.touch").increment();
}
