// Fixture: suppression semantics. Never compiled; read by lint_tests.
bool fixture_exact_zero(double x) {
  return x == 0.0;  // rac-lint: allow(float-eq) exactness is the point here
}

bool fixture_wrong_rule(double x) {
  return x == 0.0;  // rac-lint: allow(rand) names the wrong rule, still fires
}
