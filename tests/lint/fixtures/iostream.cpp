// Fixture: direct console I/O. Never compiled; read by lint_tests.
#include <iostream>

void fixture_report(int value) {
  std::cout << "value=" << value << "\n";
  if (value < 0) std::cerr << "negative\n";
}
