// Fixture: a header that forgets #pragma once. Never compiled.

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
