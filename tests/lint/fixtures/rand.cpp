// Fixture: unseeded randomness. Never compiled; read by lint_tests.
#include <cstdlib>
#include <random>

int fixture_rand() {
  std::random_device rd;
  srand(42);
  return std::rand() + static_cast<int>(rd());
}
