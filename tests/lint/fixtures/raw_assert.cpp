// Fixture: raw assert in library code. Never compiled; read by lint_tests.
#include <cassert>

int fixture_checked_add(int a, int b) {
  assert(a >= 0);
  static_assert(sizeof(int) >= 2, "static_assert must not trip the rule");
  return a + b;
}
