// rac-lint fixture: direct Environment::measure() calls in the online
// management loop. Never compiled; only fed to the linter by lint_test.
void probe(Env& env, Env* remote, const Config& c) {
  auto a = env.measure(c);      // fires: dot call
  auto b = remote->measure(c);  // fires: arrow call
  auto ok = env.try_measure(c);   // clean: the checked API
  auto boot = env.measure(c);  // rac-lint: allow(unchecked-measure) probe
}
