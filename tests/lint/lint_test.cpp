// Exercises every rac-lint rule against known-bad fixture files (which are
// never compiled), plus the path scoping, suppression, and stripping
// machinery. The clean-tree guarantee for the real src/ is a separate
// ctest entry (`rac_lint`) that runs the linter binary itself.
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace {

using rac::lint::Finding;

std::filesystem::path fixture_path(const std::string& name) {
  return std::filesystem::path(RAC_LINT_FIXTURE_DIR) / name;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& relpath) {
  return rac::lint::lint_file(fixture_path(name), relpath);
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintRules, RandFiresOnEveryRandSource) {
  const auto findings = lint_fixture("rand.cpp", "src/core/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "rand"), 3);  // random_device, srand, rand
  for (const auto& f : findings) EXPECT_EQ(f.rule, "rand");
}

TEST(LintRules, RandExemptInsideRngImplementation) {
  const auto findings = lint_fixture("rand.cpp", "src/util/rng.cpp");
  EXPECT_EQ(count_rule(findings, "rand"), 0);
}

TEST(LintRules, WallClockFiresInSimulatedSubsystems) {
  for (const std::string dir :
       {"src/core/", "src/rl/", "src/env/", "src/tiersim/",
        "src/queueing/"}) {
    const auto findings =
        lint_fixture("wall_clock.cpp", dir + "fixture.cpp");
    EXPECT_EQ(count_rule(findings, "wall-clock"), 2) << dir;
  }
}

TEST(LintRules, WallClockIgnoredOutsideSimulatedSubsystems) {
  const auto findings =
      lint_fixture("wall_clock.cpp", "src/util/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "wall-clock"), 0);
}

TEST(LintRules, DefaultRegistryFiresOutsideObs) {
  const auto findings =
      lint_fixture("default_registry.cpp", "src/core/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "default-registry"), 1);
}

TEST(LintRules, DefaultRegistryExemptInsideObs) {
  const auto findings =
      lint_fixture("default_registry.cpp", "src/obs/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "default-registry"), 0);
}

TEST(LintRules, RawAssertFiresOnCallAndInclude) {
  const auto findings =
      lint_fixture("raw_assert.cpp", "src/rl/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "raw-assert"), 2);
}

TEST(LintRules, StaticAssertDoesNotTripRawAssert) {
  const auto findings = rac::lint::lint_text(
      "src/rl/fixture.cpp", "static_assert(1 + 1 == 2, \"arith\");\n");
  EXPECT_EQ(count_rule(findings, "raw-assert"), 0);
}

TEST(LintRules, IostreamFiresInLibraryCode) {
  const auto findings =
      lint_fixture("iostream.cpp", "src/env/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "iostream"), 2);  // cout, cerr
}

TEST(LintRules, IostreamExemptInLogImplementation) {
  const auto findings = lint_fixture("iostream.cpp", "src/util/log.cpp");
  EXPECT_EQ(count_rule(findings, "iostream"), 0);
}

TEST(LintRules, PragmaOnceMissingInHeader) {
  const auto findings =
      lint_fixture("missing_pragma_once.hpp", "src/util/fixture.hpp");
  ASSERT_EQ(count_rule(findings, "pragma-once"), 1);
  // Reported at the first code line, after the leading comment.
  EXPECT_EQ(findings.front().line, 3);
}

TEST(LintRules, PragmaOnceNotRequiredInSourceFiles) {
  const auto findings =
      lint_fixture("missing_pragma_once.hpp", "src/util/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "pragma-once"), 0);
}

TEST(LintRules, PragmaOncePresentHeaderIsClean) {
  const auto findings = rac::lint::lint_text(
      "src/util/fixture.hpp",
      "// A well-formed header.\n#pragma once\n\nnamespace rac {}\n");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintRules, IncludeHygieneFiresOnPathTraversal) {
  const auto findings =
      lint_fixture("include_hygiene.cpp", "src/core/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "include-hygiene"), 1);
}

TEST(LintRules, LocaleIoFiresOnParsersAndFloatFormats) {
  const auto findings =
      lint_fixture("locale_io.cpp", "src/rl/fixture.cpp");
  // stod, strtod, atof, setlocale (code rule) + snprintf "%a",
  // sscanf "%lf" (raw rule).
  EXPECT_EQ(count_rule(findings, "locale-io"), 6);
}

TEST(LintRules, LocaleIoIgnoresNonFloatConversions) {
  const auto findings = rac::lint::lint_text(
      "src/obs/fixture.cpp",
      "void f(char* b, unsigned c) {"
      " std::snprintf(b, 8, \"\\\\u%04x\", c); }\n");
  EXPECT_EQ(count_rule(findings, "locale-io"), 0);
}

TEST(LintRules, UncheckedMeasureFiresOnDotAndArrowCalls) {
  const auto findings =
      lint_fixture("unchecked_measure.cpp", "src/core/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unchecked-measure"), 2);  // . and ->
}

TEST(LintRules, UncheckedMeasureScopedToCoreOnly) {
  const auto findings =
      lint_fixture("unchecked_measure.cpp", "src/rl/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unchecked-measure"), 0);
}

TEST(LintRules, TryMeasureDoesNotTripUncheckedMeasure) {
  const auto findings = rac::lint::lint_text(
      "src/core/fixture.cpp",
      "void f(Env& e, const Config& c) { auto s = e.try_measure(c); }\n");
  EXPECT_EQ(count_rule(findings, "unchecked-measure"), 0);
}

TEST(LintRules, UntrackedTimerFiresInSrcOutsideObs) {
  const auto findings =
      lint_fixture("untracked_timer.cpp", "src/core/fixture.cpp");
  // steady_clock + high_resolution_clock fire; the suppressed read does not.
  EXPECT_EQ(count_rule(findings, "untracked-timer"), 2);
}

TEST(LintRules, UntrackedTimerExemptInsideObsAndOutsideSrc) {
  EXPECT_EQ(count_rule(lint_fixture("untracked_timer.cpp",
                                    "src/obs/fixture.cpp"),
                       "untracked-timer"),
            0);
  EXPECT_EQ(count_rule(lint_fixture("untracked_timer.cpp",
                                    "bench/fixture.cpp"),
                       "untracked-timer"),
            0);
}

TEST(LintRules, HotPathAllocFiresInHotSubsystems) {
  for (const std::string dir :
       {"src/queueing/", "src/tiersim/", "src/rl/"}) {
    const auto findings =
        lint_fixture("hot_path_alloc.cpp", dir + "fixture.cpp");
    // new, make_unique, make_shared, unordered_map, std::map, std::list;
    // the suppressed make_unique and the look-alikes do not fire.
    EXPECT_EQ(count_rule(findings, "hot-path-alloc"), 6) << dir;
  }
}

TEST(LintRules, HotPathAllocIgnoredOutsideHotSubsystems) {
  for (const std::string dir : {"src/core/", "src/util/", "src/env/"}) {
    const auto findings =
        lint_fixture("hot_path_alloc.cpp", dir + "fixture.cpp");
    EXPECT_EQ(count_rule(findings, "hot-path-alloc"), 0) << dir;
  }
}

TEST(LintRules, HotPathAllocIgnoresIncludesAndIdentifiers) {
  const auto findings = rac::lint::lint_text(
      "src/rl/fixture.cpp",
      "#include <unordered_map>\n"
      "#include <list>\n"
      "int renew_count(int newest) { return newest + 1; }\n");
  EXPECT_EQ(count_rule(findings, "hot-path-alloc"), 0);
}

TEST(LintRules, FloatEqFiresOnBothOperandOrders) {
  const auto findings =
      lint_fixture("float_eq.cpp", "src/queueing/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "float-eq"), 2);
}

TEST(LintSuppressions, SameLineAllowSilencesOnlyTheNamedRule) {
  const auto findings =
      lint_fixture("suppressed.cpp", "src/util/fixture.cpp");
  // The allow(float-eq) line is silenced; the allow(rand) line is not --
  // and since allow(rand) suppresses nothing, it is itself reported.
  ASSERT_EQ(count_rule(findings, "float-eq"), 1);
  EXPECT_EQ(findings.front().line, 7);
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1);
  EXPECT_EQ(findings.back().line, 7);
}

TEST(LintSuppressions, UsedSuppressionIsNotReportedAsUnused) {
  const auto findings = rac::lint::lint_text(
      "src/util/fixture.cpp",
      "bool f(double x) { return x == 0.0; }"
      "  // rac-lint: allow(float-eq) exactness intended\n");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintSuppressions, StaleAllowIsUnusedSuppression) {
  const auto findings = rac::lint::lint_text(
      "src/util/fixture.cpp",
      "int f();  // rac-lint: allow(rand) nothing to suppress here\n");
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1);
  EXPECT_EQ(findings.front().line, 1);
}

TEST(LintSuppressions, PlaceholderAllowInDocCommentsIsIgnored) {
  // Documentation like `allow(<rule>)` or allow(RULE) is not a
  // suppression attempt: no unused-suppression noise.
  const auto findings = rac::lint::lint_text(
      "src/util/fixture.cpp",
      "// The syntax is `// rac-lint: allow(<rule>)` on the finding line.\n"
      "int f();\n");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintSuppressions, AllowUnusedSuppressionExemptsTheLine) {
  const auto findings = rac::lint::lint_text(
      "src/util/fixture.cpp",
      "int f();  // rac-lint: allow(rand, unused-suppression)"
      " intentionally pre-placed\n");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintSuppressions, CommaListAllowsMultipleRules) {
  const auto findings = rac::lint::lint_text(
      "src/core/fixture.cpp",
      "bool f(double x) { return x == 1.0 && std::rand() > 0; }"
      "  // rac-lint: allow(float-eq, rand) fixture justification\n");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintSuppressions, AllowOnAdjacentLineDoesNotSuppress) {
  const auto findings = rac::lint::lint_text(
      "src/core/fixture.cpp",
      "// rac-lint: allow(float-eq) on the wrong line\n"
      "bool f(double x) { return x == 1.0; }\n");
  EXPECT_EQ(count_rule(findings, "float-eq"), 1);
}

TEST(LintStripping, CommentsAndStringsNeverFire) {
  const auto findings =
      lint_fixture("strings_and_comments.cpp", "src/core/fixture.cpp");
  EXPECT_TRUE(findings.empty()) << rac::lint::to_text(findings);
}

TEST(LintStripping, RawStringContentsNeverFireAndCodeAfterThemDoes) {
  const auto findings =
      lint_fixture("raw_string.cpp", "src/core/fixture.cpp");
  // All rand/cout text inside the raw strings is data; the single real
  // std::rand() after the quote-bearing one-line raw string fires.
  EXPECT_EQ(count_rule(findings, "iostream"), 0)
      << rac::lint::to_text(findings);
  ASSERT_EQ(count_rule(findings, "rand"), 1)
      << rac::lint::to_text(findings);
  EXPECT_EQ(findings.front().line, 17);
}

TEST(LintStripping, LineContinuationsExtendCommentsAndStrings) {
  const auto findings =
      lint_fixture("line_continuation.cpp", "src/core/fixture.cpp");
  // The rand() on the comment-continued and string-continued lines is
  // not code; only the last function's call is.
  ASSERT_EQ(count_rule(findings, "rand"), 1)
      << rac::lint::to_text(findings);
  EXPECT_EQ(findings.front().line, 16);
}

TEST(LintScoping, CliTreesAreExemptFromIostreamAndDefaultRegistry) {
  for (const std::string path :
       {"tools/bench/fixture.cpp", "bench/fixture.cpp",
        "examples/fixture.cpp"}) {
    EXPECT_EQ(count_rule(lint_fixture("iostream.cpp", path), "iostream"), 0)
        << path;
    EXPECT_EQ(count_rule(lint_fixture("default_registry.cpp", path),
                         "default-registry"),
              0)
        << path;
  }
}

TEST(LintRuleTable, IdsAreUniqueAndFindingsReferToThem) {
  std::set<std::string_view> ids;
  for (const auto& rule : rac::lint::rules()) ids.insert(rule.id);
  EXPECT_EQ(ids.size(), rac::lint::rules().size());
  EXPECT_EQ(ids.size(), 13u);
  for (const std::string fixture :
       {"rand.cpp", "wall_clock.cpp", "default_registry.cpp",
        "raw_assert.cpp", "iostream.cpp", "include_hygiene.cpp",
        "float_eq.cpp", "locale_io.cpp", "suppressed.cpp",
        "unchecked_measure.cpp", "untracked_timer.cpp",
        "hot_path_alloc.cpp"}) {
    for (const auto& f : lint_fixture(fixture, "src/core/fixture.cpp")) {
      EXPECT_TRUE(ids.count(f.rule)) << fixture << " -> " << f.rule;
    }
  }
}

TEST(LintReport, JsonCarriesCountAndEscapes) {
  const std::vector<Finding> findings = {
      {"src/a\"b.cpp", 7, "float-eq", "line1\nline2"}};
  const std::string json = rac::lint::to_json(findings);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("src/a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(LintTree, MissingSubdirThrows) {
  EXPECT_THROW(rac::lint::lint_tree(RAC_LINT_FIXTURE_DIR,
                                    {"no_such_subdir"}),
               std::runtime_error);
}

}  // namespace
