#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <clocale>
#include <thread>

#include "util/lineio.hpp"

namespace rac::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Registry registry;
  Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Registry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsObservations) {
  Registry registry;
  Histogram& h = registry.histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary counts down)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.mean(), 556.5 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("bad", {10.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
}

TEST(Registry, SameNameReturnsSameHandle) {
  Registry registry;
  Counter& a = registry.counter("dup");
  Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  Gauge& ga = registry.gauge("dup");  // separate namespace from counters
  Gauge& gb = registry.gauge("dup");
  EXPECT_EQ(&ga, &gb);
  Histogram& ha = registry.histogram("dup", {1.0, 2.0});
  Histogram& hb = registry.histogram("dup", {99.0});  // bounds fixed by first
  EXPECT_EQ(&ha, &hb);
  ASSERT_EQ(hb.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(hb.bounds()[0], 1.0);
}

TEST(Registry, SnapshotRoundTrip) {
  Registry registry;
  registry.counter("z.count").add(7);
  registry.counter("a.count").add(3);
  registry.gauge("g.last").set(-1.25);
  Histogram& h = registry.histogram("h.lat", {10.0, 100.0});
  h.observe(5.0);
  h.observe(250.0);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[1].name, "z.count");

  const CounterSample* c = snap.counter("z.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 7u);
  EXPECT_EQ(snap.counter("missing"), nullptr);

  const GaugeSample* g = snap.gauge("g.last");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, -1.25);

  const HistogramSample* hs = snap.histogram("h.lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_DOUBLE_EQ(hs->sum, 255.0);
  EXPECT_DOUBLE_EQ(hs->mean, 127.5);
  ASSERT_EQ(hs->bucket_counts.size(), 3u);
  EXPECT_EQ(hs->bucket_counts[0], 1u);
  EXPECT_EQ(hs->bucket_counts[1], 0u);
  EXPECT_EQ(hs->bucket_counts[2], 1u);

  // A snapshot is a copy: later updates must not affect it.
  registry.counter("z.count").add(100);
  EXPECT_EQ(snap.counter("z.count")->value, 7u);
}

TEST(Registry, ExportsTextAndJson) {
  Registry registry;
  registry.counter("runs").add(2);
  registry.gauge("error").set(0.5);
  registry.histogram("lat", {1.0}).observe(3.0);

  const MetricsSnapshot snap = registry.snapshot();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("runs"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  // Balanced braces/quotes (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(Registry, ResetZeroesEverythingKeepsRegistrations) {
  Registry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", {1.0});
  c.add(5);
  g.set(5.0);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Handles are still the registered ones.
  EXPECT_EQ(&registry.counter("c"), &c);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
}

TEST(Registry, ConcurrentUpdatesAreLossless) {
  Registry registry;
  Counter& c = registry.counter("hits");
  Histogram& h = registry.histogram("obs", {10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(static_cast<double>((t * kPerThread + i) % 200));
        // Registration from several threads must also be safe.
        registry.counter("hits").add(0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(DefaultRegistry, IsAProcessSingleton) {
  EXPECT_EQ(&default_registry(), &default_registry());
}

// -- histogram JSON export round-trip (regression) ---------------------------
//
// The exporter used to render doubles through an ostringstream at the
// default 6-significant-digit precision AND under the process locale:
// bounds like 1/3 came back truncated and a comma-decimal locale produced
// invalid JSON. Every number now routes through
// util::format_double_decimal (std::to_chars shortest decimal), so parsing
// the JSON back must reproduce each bound and bucket bit for bit.

// Comma-separated numeric tokens of the JSON array `"key":[...]` that
// follows `after` in `json`.
std::vector<std::string> json_array_tokens(const std::string& json,
                                           const std::string& after,
                                           const std::string& key) {
  const auto anchor = json.find(after);
  EXPECT_NE(anchor, std::string::npos) << json;
  const std::string marker = "\"" + key + "\":[";
  const auto open = json.find(marker, anchor);
  EXPECT_NE(open, std::string::npos) << json;
  const auto start = open + marker.size();
  const auto close = json.find(']', start);
  EXPECT_NE(close, std::string::npos) << json;
  std::vector<std::string> tokens;
  std::size_t pos = start;
  while (pos < close) {
    auto comma = json.find(',', pos);
    if (comma == std::string::npos || comma > close) comma = close;
    tokens.push_back(json.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return tokens;
}

void expect_histogram_json_round_trips(const std::string& json,
                                       const HistogramSample& expected) {
  const std::string anchor = "\"" + expected.name + "\":{";

  const auto bound_tokens = json_array_tokens(json, anchor, "bounds");
  ASSERT_EQ(bound_tokens.size(), expected.bounds.size());
  for (std::size_t i = 0; i < bound_tokens.size(); ++i) {
    const double parsed = util::parse_double(bound_tokens[i], "bound");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(expected.bounds[i]))
        << "bound " << i << " token " << bound_tokens[i];
  }

  const auto bucket_tokens = json_array_tokens(json, anchor, "buckets");
  ASSERT_EQ(bucket_tokens.size(), expected.bucket_counts.size());
  for (std::size_t i = 0; i < bucket_tokens.size(); ++i) {
    EXPECT_EQ(util::parse_u64(bucket_tokens[i], "bucket"),
              expected.bucket_counts[i])
        << "bucket " << i;
  }

  // sum and mean round-trip exactly too (both are doubles in the JSON).
  for (const char* key : {"sum", "mean"}) {
    const std::string marker = "\"" + std::string(key) + "\":";
    const auto open = json.find(marker, json.find(anchor));
    ASSERT_NE(open, std::string::npos);
    const auto start = open + marker.size();
    const auto end = json.find_first_of(",}", start);
    const double parsed =
        util::parse_double(json.substr(start, end - start), key);
    const double want =
        std::string(key) == "sum" ? expected.sum : expected.mean;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(want))
        << key;
  }
}

Registry& awkward_histogram_registry(Registry& registry) {
  // Bounds that 6-significant-digit %g formatting mangles: repeating
  // binary fractions, a magnitude needing 10 digits, and a subnormal-ish
  // small value.
  Histogram& h = registry.histogram(
      "rt.lat", {1e-7, 0.1, 1.0 / 3.0, 2.5000001, 1234567.891});
  h.observe(0.1);
  h.observe(0.1);
  h.observe(0.1);  // the partial sum 0.30000000000000004 needs 17 digits
  h.observe(0.25);
  h.observe(3.0);
  h.observe(2e9);  // overflow bucket
  return registry;
}

TEST(HistogramJsonExport, RoundTripsBitForBit) {
  Registry registry;
  awkward_histogram_registry(registry);
  const auto snap = registry.snapshot();
  const HistogramSample* h = snap.histogram("rt.lat");
  ASSERT_NE(h, nullptr);
  expect_histogram_json_round_trips(snap.to_json(), *h);
}

TEST(HistogramJsonExport, RoundTripsUnderCommaDecimalLocale) {
  // The regression this guards: a comma-decimal LC_NUMERIC used to leak
  // into the exported numbers. Skip only when the container genuinely has
  // no such locale installed.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const char* comma = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (comma == nullptr) comma = std::setlocale(LC_NUMERIC, "fr_FR.UTF-8");
  if (comma == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  Registry registry;
  awkward_histogram_registry(registry);
  const auto snap = registry.snapshot();
  const HistogramSample* h = snap.histogram("rt.lat");
  ASSERT_NE(h, nullptr);
  // Render the JSON while the comma-decimal locale is active, restore the
  // locale, then verify the rendered bytes still round-trip exactly.
  const std::string json = snap.to_json();
  std::setlocale(LC_NUMERIC, saved.c_str());
  expect_histogram_json_round_trips(json, *h);
}

}  // namespace
}  // namespace rac::obs
