// Hierarchical phase profiler: nesting arithmetic under a fake clock, the
// zero-overhead disabled path (provably no clock reads), anchor-based
// determinism across pool workers, reset semantics, and the acceptance
// check that profiling cannot perturb the decisions it observes.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rac::obs {
namespace {

// Injectable clock: ClockFn is a plain function pointer, so the test
// advances file-scope state instead of capturing locals.
std::atomic<std::uint64_t> g_fake_now{0};
std::atomic<std::uint64_t> g_clock_reads{0};

std::uint64_t fake_clock() {
  g_clock_reads.fetch_add(1, std::memory_order_relaxed);
  return g_fake_now.load(std::memory_order_relaxed);
}

void advance_us(std::uint64_t us) {
  g_fake_now.fetch_add(us * 1000, std::memory_order_relaxed);
}

// Every test runs with profiling globally enabled unless it flips the
// switch itself; restore both the switch and the fake clock on exit.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_profiling(true);
    g_fake_now.store(0);
    g_clock_reads.store(0);
    profiler_.set_clock(fake_clock);
  }
  void TearDown() override { set_profiling(true); }

  Profiler profiler_;
};

TEST_F(ProfilerTest, NestedScopesRecordInclusiveAndExclusive) {
  {
    ProfileScope outer("outer", &profiler_);
    advance_us(10);
    {
      ProfileScope inner("inner", &profiler_);
      advance_us(3);
    }
    advance_us(2);
  }

  const PhaseNode root = profiler_.snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  const PhaseNode* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_DOUBLE_EQ(outer->inclusive_us, 15.0);
  EXPECT_DOUBLE_EQ(outer->exclusive_us, 12.0);

  const PhaseNode* inner = root.find("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 1u);
  EXPECT_DOUBLE_EQ(inner->inclusive_us, 3.0);
  EXPECT_DOUBLE_EQ(inner->exclusive_us, 3.0);
}

TEST_F(ProfilerTest, RepeatedScopesAccumulateCallsAndTime) {
  for (int i = 0; i < 4; ++i) {
    ProfileScope scope("phase", &profiler_);
    advance_us(5);
  }
  const PhaseNode root = profiler_.snapshot();
  const PhaseNode* phase = root.child("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->calls, 4u);
  EXPECT_DOUBLE_EQ(phase->inclusive_us, 20.0);
}

TEST_F(ProfilerTest, DisabledProfilingTakesNoClockReadsAndTouchesNoTree) {
  set_profiling(false);
  g_clock_reads.store(0);
  {
    ProfileScope outer("outer", &profiler_);
    ProfileScope inner("inner", &profiler_);
    advance_us(5);
  }
  EXPECT_EQ(g_clock_reads.load(), 0u);
  EXPECT_TRUE(profiler_.snapshot().children.empty());

  // Re-enabling starts recording again in the same profiler.
  set_profiling(true);
  { ProfileScope scope("after", &profiler_); }
  const PhaseNode root = profiler_.snapshot();
  EXPECT_NE(root.child("after"), nullptr);
  EXPECT_GT(g_clock_reads.load(), 0u);
}

TEST_F(ProfilerTest, ChildrenMergeSortedByName) {
  {
    ProfileScope outer("outer", &profiler_);
    { ProfileScope b("zeta", &profiler_); }
    { ProfileScope a("alpha", &profiler_); }
    { ProfileScope c("mid", &profiler_); }
  }
  const PhaseNode root = profiler_.snapshot();
  const PhaseNode* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->children.size(), 3u);
  EXPECT_EQ(outer->children[0].name, "alpha");
  EXPECT_EQ(outer->children[1].name, "mid");
  EXPECT_EQ(outer->children[2].name, "zeta");
}

// The determinism contract: the same fan-out profiled inline (pool size 1)
// and on worker threads must merge to an identical structure signature,
// with the anchor frames pass-through (calls unchanged) in both.
TEST_F(ProfilerTest, AnchorAttachesWorkerScopesAtTheCapturedPath) {
  Profiler inline_profiler;
  inline_profiler.set_clock(fake_clock);
  {
    ProfileScope build("build", &inline_profiler);
    const auto path = inline_profiler.capture_path();
    ASSERT_EQ(path, std::vector<std::string>{"build"});
    for (int i = 0; i < 2; ++i) {
      // Inline: the anchor sees "build" already open and opens nothing.
      ProfileAnchor anchor(path, &inline_profiler);
      ProfileScope task("task", &inline_profiler);
      advance_us(1);
    }
  }

  {
    ProfileScope build("build", &profiler_);
    const auto path = profiler_.capture_path();
    for (int i = 0; i < 2; ++i) {
      std::thread worker([&] {
        // Worker: no frames open, the anchor re-opens "build" pass-through.
        ProfileAnchor anchor(path, &profiler_);
        ProfileScope task("task", &profiler_);
        advance_us(1);
      });
      worker.join();
    }
  }

  const PhaseNode inline_tree = inline_profiler.snapshot();
  const PhaseNode pooled_tree = profiler_.snapshot();
  EXPECT_EQ(structure_signature(inline_tree), structure_signature(pooled_tree));

  const PhaseNode* build = pooled_tree.child("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->calls, 1u);  // anchor frames add no calls
  const PhaseNode* task = pooled_tree.find("build/task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->calls, 2u);
}

TEST_F(ProfilerTest, PassThroughAnchorNodeInheritsChildSum) {
  // All scopes on a worker: the merged "fanout" frame exists only as an
  // anchor (calls == 0) and reports its children's summed time.
  const std::vector<std::string> path = {"fanout"};
  std::thread worker([&] {
    ProfileAnchor anchor(path, &profiler_);
    ProfileScope task("task", &profiler_);
    advance_us(7);
  });
  worker.join();

  const PhaseNode root = profiler_.snapshot();
  const PhaseNode* fanout = root.child("fanout");
  ASSERT_NE(fanout, nullptr);
  EXPECT_EQ(fanout->calls, 0u);
  EXPECT_DOUBLE_EQ(fanout->inclusive_us, 7.0);
  EXPECT_DOUBLE_EQ(fanout->exclusive_us, 0.0);
}

TEST_F(ProfilerTest, ResetDropsRecordedTreesAndAbandonsOpenScopes) {
  { ProfileScope scope("before", &profiler_); }
  auto open = std::make_unique<ProfileScope>("open", &profiler_);
  profiler_.reset();
  open.reset();  // exit after reset must be ignored, not crash or record
  EXPECT_TRUE(profiler_.snapshot().children.empty());

  { ProfileScope scope("after", &profiler_); }
  const PhaseNode root = profiler_.snapshot();
  EXPECT_EQ(root.children.size(), 1u);
  EXPECT_NE(root.child("after"), nullptr);
}

TEST_F(ProfilerTest, StructureSignatureIgnoresTimings) {
  Profiler other;
  other.set_clock(fake_clock);
  {
    ProfileScope a("a", &profiler_);
    advance_us(100);
    ProfileScope b("b", &profiler_);
    advance_us(1);
  }
  {
    ProfileScope a("a", &other);
    ProfileScope b("b", &other);
    advance_us(5000);
  }
  EXPECT_EQ(structure_signature(profiler_.snapshot()),
            structure_signature(other.snapshot()));
}

TEST_F(ProfilerTest, JsonAndTextRenderTheTree) {
  {
    ProfileScope outer("core.phase", &profiler_);
    advance_us(2);
    ProfileScope inner("rl.step", &profiler_);
    advance_us(1);
  }
  const PhaseNode root = profiler_.snapshot();
  const std::string json = to_json(root);
  EXPECT_NE(json.find("\"core.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"rl.step\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  const std::string text = to_text(root);
  EXPECT_NE(text.find("core.phase"), std::string::npos);
  EXPECT_NE(text.find("rl.step"), std::string::npos);
}

// Acceptance check: profiling must observe the management loop without
// perturbing it -- the decision trace is bit-identical with the profiler
// on and off.
TEST(ProfilerIntegration, DecisionTraceIdenticalWithProfilingOnAndOff) {
  const auto ctx = env::table2_context(1);
  core::PolicyInitOptions init;
  init.coarse_levels = 3;
  init.offline_td.max_sweeps = 40;

  const auto run_with_profiling = [&](bool enabled) {
    set_profiling(enabled);
    env::AnalyticEnvOptions opt;
    opt.seed = 11;
    env::AnalyticEnv offline_env(ctx, opt);
    core::InitialPolicyLibrary library;
    library.add(core::learn_initial_policy(offline_env, init));

    core::RacOptions rac_options;
    rac_options.seed = 5;
    core::RacAgent agent(rac_options, library, 0);
    env::AnalyticEnv env(ctx, opt);
    MemoryTraceSink sink;
    core::RunOptions options;
    options.sink = &sink;
    core::run_agent(env, agent, {}, 12, options);
    std::vector<std::string> lines;
    for (const auto& event : sink.events()) lines.push_back(to_json(event));
    return lines;
  };

  const auto traced_on = run_with_profiling(true);
  const auto traced_off = run_with_profiling(false);
  set_profiling(true);
  ASSERT_EQ(traced_on.size(), 12u);
  EXPECT_EQ(traced_on, traced_off);
}

}  // namespace
}  // namespace rac::obs
