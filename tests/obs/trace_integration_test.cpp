// End-to-end check of the decision trace contract the bench harness relies
// on (`RAC_TRACE=out.jsonl ./build/bench/bench_fig5_policy_comparison`):
// running several agents through one JSONL sink must yield exactly one
// well-formed record per iteration per agent, with the RL-specific fields
// populated for the RAC agent.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "baselines/static_agent.hpp"
#include "baselines/trial_and_error.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/trace.hpp"

namespace rac {
namespace {

constexpr int kIterations = 30;

std::unique_ptr<env::AnalyticEnv> make_env(const env::SystemContext& context) {
  env::AnalyticEnvOptions opt;
  opt.seed = 11;
  return std::make_unique<env::AnalyticEnv>(context, opt);
}

// One field="value-ish" probe: the tests below only need key presence and a
// few exact matches, not a full JSON parser.
bool has_key(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

TEST(TraceIntegration, OneWellFormedRecordPerIterationPerAgent) {
  const auto ctx1 = env::table2_context(1);
  const auto ctx2 = env::table2_context(2);
  const core::ContextSchedule schedule = {{0, ctx1}, {15, ctx2}};

  // Small offline library (the scenario of Figure 5, scaled down).
  core::PolicyInitOptions init;
  init.coarse_levels = 3;
  init.offline_td.max_sweeps = 60;
  core::InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(*make_env(ctx1), init));
  library.add(core::learn_initial_policy(*make_env(ctx2), init));

  const std::string path = ::testing::TempDir() + "rac_integration.jsonl";
  {
    obs::JsonlTraceSink sink(path);
    core::RunOptions options;
    options.sink = &sink;

    core::RacOptions rac_options;
    rac_options.seed = 5;
    core::RacAgent rac(rac_options, library, 0);
    auto env1 = make_env(ctx1);
    core::run_agent(*env1, rac, schedule, kIterations, options);

    baselines::StaticDefaultAgent static_agent;
    auto env2 = make_env(ctx1);
    core::run_agent(*env2, static_agent, schedule, kIterations, options);

    baselines::TrialAndErrorAgent tae;
    auto env3 = make_env(ctx1);
    core::run_agent(*env3, tae, schedule, kIterations, options);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::map<std::string, int> per_agent;
  std::map<std::string, int> next_iteration;
  int total = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    for (const char* key :
         {"iteration", "agent", "state", "action", "explored", "q_value",
          "response_ms", "throughput_rps", "reward", "sla_margin_ms",
          "active_policy", "policy_switched", "violation",
          "consecutive_violations", "context"}) {
      EXPECT_TRUE(has_key(line, key)) << "missing " << key << ": " << line;
    }

    const auto agent_pos = line.find("\"agent\":\"");
    ASSERT_NE(agent_pos, std::string::npos);
    const auto agent_start = agent_pos + 9;
    const std::string agent =
        line.substr(agent_start, line.find('"', agent_start) - agent_start);
    ++per_agent[agent];

    // Iterations must appear in order, 0..29, for every agent.
    const std::string expected =
        "\"iteration\":" + std::to_string(next_iteration[agent]) + ",";
    EXPECT_NE(line.find(expected), std::string::npos) << line;
    ++next_iteration[agent];

    // Both context segments of the schedule must show up as ground truth.
    EXPECT_TRUE(line.find("\"context\":\"" + ctx1.name() + "\"") !=
                    std::string::npos ||
                line.find("\"context\":\"" + ctx2.name() + "\"") !=
                    std::string::npos)
        << line;

    if (agent == "RAC") {
      // RL-specific enrichment: a real action string and an active policy.
      EXPECT_FALSE(line.find("\"action\":\"\"") != std::string::npos) << line;
      EXPECT_TRUE(line.find("\"active_policy\":0") != std::string::npos ||
                  line.find("\"active_policy\":1") != std::string::npos)
          << line;
    }
  }

  EXPECT_EQ(total, 3 * kIterations);
  ASSERT_EQ(per_agent.size(), 3u);
  EXPECT_EQ(per_agent["RAC"], kIterations);
  EXPECT_EQ(per_agent["static-default"], kIterations);
  EXPECT_EQ(per_agent["trial-and-error"], kIterations);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rac
