#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rac::obs {
namespace {

TraceEvent sample_event() {
  TraceEvent event;
  event.iteration = 3;
  event.agent = "RAC";
  event.state = {150, 15, 5};
  event.action = "inc MaxClients";
  event.explored = true;
  event.q_value = 8.25;
  event.response_ms = 432.1;
  event.throughput_rps = 25.5;
  event.reward = 0.5679;
  event.sla_margin_ms = 567.9;
  event.active_policy = 1;
  event.policy_switched = true;
  event.violation = true;
  event.consecutive_violations = 2;
  event.context = "shopping/Level-1";
  return event;
}

TEST(ToJson, RendersEveryField) {
  const std::string json = to_json(sample_event());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"iteration\":3"), std::string::npos);
  EXPECT_NE(json.find("\"agent\":\"RAC\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":[150,15,5]"), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"inc MaxClients\""), std::string::npos);
  EXPECT_NE(json.find("\"explored\":true"), std::string::npos);
  EXPECT_NE(json.find("\"q_value\":8.25"), std::string::npos);
  EXPECT_NE(json.find("\"active_policy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"policy_switched\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violation\":true"), std::string::npos);
  EXPECT_NE(json.find("\"consecutive_violations\":2"), std::string::npos);
  EXPECT_NE(json.find("\"context\":\"shopping/Level-1\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
}

TEST(ToJson, EscapesStrings) {
  TraceEvent event;
  event.agent = "a\"b\\c\n\td";
  const std::string json = to_json(event);
  EXPECT_NE(json.find("\"agent\":\"a\\\"b\\\\c\\n\\td\""), std::string::npos);
  // Control characters become \u00XX escapes.
  event.agent = std::string("x") + '\x01' + "y";
  EXPECT_NE(to_json(event).find("\"x\\u0001y\""), std::string::npos);
}

TEST(MemorySink, CollectsAndClears) {
  MemoryTraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
  sink.emit(sample_event());
  sink.emit(sample_event());
  EXPECT_EQ(sink.size(), 2u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].agent, "RAC");
  EXPECT_EQ(events[1].state, (std::vector<int>{150, 15, 5}));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(NullSink, SwallowsEverything) {
  NullTraceSink sink;
  sink.emit(sample_event());
  sink.flush();  // must be harmless
}

TEST(JsonlSink, WritesOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "rac_trace_test.jsonl";
  {
    JsonlTraceSink sink(path);
    EXPECT_EQ(sink.path(), path);
    sink.emit(sample_event());
    TraceEvent second = sample_event();
    second.iteration = 4;
    sink.emit(second);
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(JsonlSink, ThrowsWhenUnopenable) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/x/y/z.jsonl"),
               std::runtime_error);
}

TEST(TeeSink, FansOutToAllSinks) {
  MemoryTraceSink a;
  MemoryTraceSink b;
  TeeTraceSink tee({&a, &b});
  tee.emit(sample_event());
  tee.flush();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(SinkFromEnv, NullWhenUnsetJsonlWhenSet) {
  ::unsetenv("RAC_TRACE_TEST_VAR");
  EXPECT_EQ(sink_from_env("RAC_TRACE_TEST_VAR"), nullptr);
  ::setenv("RAC_TRACE_TEST_VAR", "", 1);
  EXPECT_EQ(sink_from_env("RAC_TRACE_TEST_VAR"), nullptr);

  const std::string path = ::testing::TempDir() + "rac_trace_env_test.jsonl";
  ::setenv("RAC_TRACE_TEST_VAR", path.c_str(), 1);
  auto sink = sink_from_env("RAC_TRACE_TEST_VAR");
  ASSERT_NE(sink, nullptr);
  auto* jsonl = dynamic_cast<JsonlTraceSink*>(sink.get());
  ASSERT_NE(jsonl, nullptr);
  EXPECT_EQ(jsonl->path(), path);
  sink.reset();
  std::remove(path.c_str());
  ::unsetenv("RAC_TRACE_TEST_VAR");
}

}  // namespace
}  // namespace rac::obs
