// rac-bench-report v1 writer and the order-insensitive trace digest.
#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace rac::obs {
namespace {

TraceEvent event_for(int iteration, const std::string& agent) {
  TraceEvent e;
  e.iteration = iteration;
  e.agent = agent;
  e.response_ms = 100.0 + iteration;
  return e;
}

TEST(DigestTraceSink, OrderInsensitiveOverTheSameEventMultiset) {
  DigestTraceSink forward;
  DigestTraceSink backward;
  for (int i = 0; i < 8; ++i) forward.emit(event_for(i, "RAC"));
  for (int i = 7; i >= 0; --i) backward.emit(event_for(i, "RAC"));
  EXPECT_EQ(forward.count(), 8u);
  EXPECT_EQ(forward.digest(), backward.digest());

  DigestTraceSink different;
  for (int i = 0; i < 8; ++i) different.emit(event_for(i, "static"));
  EXPECT_NE(forward.digest(), different.digest());
}

TEST(DigestTraceSink, EmptyAndResetDigests) {
  DigestTraceSink sink;
  EXPECT_EQ(sink.digest(), "c0-0");
  sink.emit(event_for(0, "RAC"));
  EXPECT_NE(sink.digest(), "c0-0");
  sink.reset();
  EXPECT_EQ(sink.digest(), "c0-0");
}

BenchReport sample_report() {
  BenchReport report;
  report.bench = "bench_unit_sample";
  report.git_sha = "abc123";
  report.seed = 42;
  report.threads = 4;
  report.quick = true;
  report.wall_ms = 1234.5;
  report.trace_digest = "c8-deadbeef";
  report.hostname = "host";
  report.nproc = 8;
  report.build_type = "RelWithDebInfo";
  report.compiler = "GNU-12";
  report.phases.name = "";
  PhaseNode child;
  child.name = "core.policy_init";
  child.calls = 1;
  child.inclusive_us = 10.5;
  child.exclusive_us = 10.5;
  report.phases.children.push_back(child);
  return report;
}

TEST(BenchReportJson, CarriesSchemaRunIdAndSections) {
  const BenchReport report = sample_report();
  EXPECT_EQ(run_id(report), "abc123-bench_unit_sample-s42-t4");

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\":\"rac-bench-report v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"run_id\":\"abc123-bench_unit_sample-s42-t4\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quick\":true"), std::string::npos);
  for (const char* key : {"bench", "git_sha", "seed", "threads", "wall_ms",
                          "trace_digest", "host", "process", "phases",
                          "metrics"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"), std::string::npos)
        << key;
  }
  EXPECT_NE(json.find("\"core.policy_init\""), std::string::npos);
  // Cheap well-formedness: balanced braces/brackets/quotes.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(BenchReportJson, ByteStableForIdenticalInputs) {
  EXPECT_EQ(to_json(sample_report()), to_json(sample_report()));
}

TEST(BenchReportWrite, WritesDirSlashBenchDotJson) {
  const std::string dir = ::testing::TempDir();
  const BenchReport report = sample_report();
  write_bench_report(dir, report);
  const std::string path = dir + "/bench_unit_sample.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_json(report) + "\n");  // one newline-terminated doc
  std::remove(path.c_str());
}

TEST(BenchReportWrite, CreatesTheReportDirectoryWhenMissing) {
  // RAC_BENCH_REPORT may point at a directory that does not exist yet.
  const std::string dir = ::testing::TempDir() + "/rac-nested/reports";
  const BenchReport report = sample_report();
  write_bench_report(dir, report);
  std::ifstream in(dir + "/bench_unit_sample.json");
  ASSERT_TRUE(in.good()) << dir;
  std::remove((dir + "/bench_unit_sample.json").c_str());
}

TEST(BenchReportGitSha, DiscoversTheCheckoutHead) {
  // The compiled-in source dir points at this repository; HEAD must
  // resolve to a 40-hex commit in any normal checkout. "unknown" is the
  // contract for exotic states, not an expected outcome here.
  const std::string sha = discover_git_sha();
  ASSERT_EQ(sha.size(), 40u) << sha;
  EXPECT_TRUE(std::all_of(sha.begin(), sha.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  })) << sha;
}

TEST(BenchReportGitSha, UnknownForNonRepositoryDirectory) {
  EXPECT_EQ(discover_git_sha("/nonexistent/definitely/not/a/repo"),
            "unknown");
}

}  // namespace
}  // namespace rac::obs
