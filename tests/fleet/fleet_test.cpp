// Fleet golden determinism suite.
//
// The fleet control plane's contract is that a fleet trajectory is a pure
// function of (specs, options, library): thread count, shard scheduling,
// and checkpoint/restore boundaries must not change one decision. These
// tests hold the same bar as the single-agent goldens
// (parallel/determinism_test, core/checkpoint_resume_test), fleet-wide:
// order-insensitive trace digests and serialized checkpoints compared
// bitwise between a serial run, a 4-thread run, and a stitched
// checkpoint/restore run -- with some tenants running behind an
// injected-fault environment.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy_init.hpp"
#include "core/policy_library.hpp"
#include "env/analytic_env.hpp"
#include "env/context.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "workload/dynamic.hpp"

namespace rac::fleet {
namespace {

using env::SystemContext;
using env::VmLevel;
using workload::MixType;

constexpr SystemContext kContextA{MixType::kShopping, VmLevel::kLevel1};
constexpr SystemContext kContextB{MixType::kOrdering, VmLevel::kLevel1};

// One offline library shared by every fleet in the suite (training is the
// expensive part; the fleets themselves are cheap).
const core::InitialPolicyLibrary& shared_library() {
  static const core::InitialPolicyLibrary library = [] {
    core::PolicyInitOptions init;
    init.coarse_levels = 3;
    init.offline_td.max_sweeps = 60;
    env::AnalyticEnvOptions offline;
    offline.noise_sigma = 0.0;
    core::InitialPolicyLibrary built;
    for (const SystemContext& context : {kContextA, kContextB}) {
      env::AnalyticEnv environment(context, offline);
      built.add(core::learn_initial_policy(environment, init));
    }
    return built;
  }();
  return library;
}

// `faulted` tenants get a stochastic drop/spike profile; every tenant gets
// a mid-run context switch at iteration 9.
std::vector<TenantSpec> make_specs(int tenants) {
  std::vector<TenantSpec> specs(static_cast<std::size_t>(tenants));
  for (int i = 0; i < tenants; ++i) {
    TenantSpec& spec = specs[static_cast<std::size_t>(i)];
    spec.id = i;
    const SystemContext first = (i % 2 == 0) ? kContextA : kContextB;
    const SystemContext second = (i % 2 == 0) ? kContextB : kContextA;
    spec.schedule = {{0, first}, {9, second}};
    if (i % 8 == 3) {
      fault::FaultProfile profile;
      profile.drop_prob = 0.10;
      profile.spike_prob = 0.10;
      profile.spike_multiplier = 20.0;
      spec.fault_profile = profile;
    }
  }
  return specs;
}

FleetOptions make_options(util::ThreadPool* pool, obs::TraceSink* sink,
                          obs::Registry* registry) {
  FleetOptions options;
  options.shard_count = 8;
  options.seed = 777;
  options.retrain_every = 7;
  options.pool = pool;
  options.sink = sink;
  options.registry = registry;
  return options;
}

std::string checkpoint_bytes(const FleetManager& fleet) {
  std::ostringstream os;
  fleet.save_checkpoint(os);
  return os.str();
}

TEST(Fleet, ParallelRunIsBitIdenticalToSerial) {
  obs::Registry registry;
  util::ThreadPool serial_pool(1);
  obs::DigestTraceSink serial_sink;
  FleetManager serial(make_specs(64),
                      make_options(&serial_pool, &serial_sink, &registry),
                      shared_library());
  serial.run(14);

  util::ThreadPool wide_pool(4);
  obs::DigestTraceSink wide_sink;
  FleetManager wide(make_specs(64),
                    make_options(&wide_pool, &wide_sink, &registry),
                    shared_library());
  wide.run(14);

  // Every decision of every tenant, bit for bit: the order-insensitive
  // digests match, the serialized whole-fleet checkpoints match, and the
  // derived report matches exactly (not approximately).
  EXPECT_EQ(serial_sink.count(), 64u * 14u);
  EXPECT_EQ(serial_sink.digest(), wide_sink.digest());
  EXPECT_EQ(checkpoint_bytes(serial), checkpoint_bytes(wide));

  const FleetReport serial_report = serial.report();
  const FleetReport wide_report = wide.report();
  EXPECT_EQ(serial_report.iterations, 64 * 14);
  EXPECT_EQ(serial_report.sla_attainment, wide_report.sla_attainment);
  EXPECT_EQ(serial_report.mean_response_ms, wide_report.mean_response_ms);
  EXPECT_EQ(serial_report.policy_switches, wide_report.policy_switches);
  EXPECT_EQ(serial_report.retrain_rounds, 2);
  EXPECT_EQ(wide_report.retrain_rounds, 2);
}

TEST(Fleet, CheckpointRestoreStitchesBitIdentically) {
  obs::Registry registry;
  const std::string path =
      ::testing::TempDir() + "/rac_fleet_checkpoint_test.rac";

  // Reference: uninterrupted 28 intervals, digested per leg via the sink
  // swap so each half can be compared on its own.
  util::ThreadPool reference_pool(4);
  obs::DigestTraceSink reference_first, reference_second;
  FleetManager reference(
      make_specs(64),
      make_options(&reference_pool, &reference_first, &registry),
      shared_library());
  reference.run(14);
  reference.set_sink(&reference_second);
  reference.run(14);

  // Live: run half, checkpoint to disk, restore into a FRESH fleet (new
  // environments, new agents), finish the run there.
  util::ThreadPool live_pool(4);
  obs::DigestTraceSink live_first;
  FleetManager live(make_specs(64),
                    make_options(&live_pool, &live_first, &registry),
                    shared_library());
  live.run(14);
  save_fleet_checkpoint_file(path, live);

  util::ThreadPool resumed_pool(4);
  obs::DigestTraceSink resumed_second;
  FleetManager resumed(make_specs(64),
                       make_options(&resumed_pool, &resumed_second, &registry),
                       shared_library());
  restore_fleet_checkpoint_file(path, resumed);
  EXPECT_EQ(resumed.completed(), 14);
  EXPECT_EQ(resumed.retrain_rounds(), 2);
  resumed.run(14);

  EXPECT_EQ(live_first.digest(), reference_first.digest());
  EXPECT_EQ(resumed_second.digest(), reference_second.digest());
  EXPECT_EQ(checkpoint_bytes(resumed), checkpoint_bytes(reference));

  std::remove(path.c_str());
}

// Dynamic traffic (workload/dynamic.hpp): phase-staggered diurnal days so
// tenants disagree about where in the day they are.
std::shared_ptr<const workload::TrafficModel> tenant_traffic(int i) {
  auto model = std::make_shared<workload::TrafficModel>();
  model->add_diurnal({16.0, 0.3, static_cast<double>(i % 4)})
      .add_think_noise({static_cast<std::uint64_t>(100 + i), 0.2});
  return model;
}

std::vector<TenantSpec> make_traffic_specs(int tenants) {
  std::vector<TenantSpec> specs = make_specs(tenants);
  for (int i = 0; i < tenants; ++i) {
    if (i % 3 != 2) {  // leave some tenants on static traffic
      specs[static_cast<std::size_t>(i)].traffic = tenant_traffic(i);
    }
  }
  return specs;
}

TEST(Fleet, TrafficTenantsCheckpointRestoreStitchesBitIdentically) {
  obs::Registry registry;
  const std::string path =
      ::testing::TempDir() + "/rac_fleet_traffic_checkpoint.rac";

  util::ThreadPool reference_pool(4);
  obs::DigestTraceSink reference_first, reference_second;
  FleetManager reference(
      make_traffic_specs(16),
      make_options(&reference_pool, &reference_first, &registry),
      shared_library());
  reference.run(8);
  reference.set_sink(&reference_second);
  reference.run(8);

  // Serial first half, checkpointed mid-day, restored into a fresh
  // 4-thread fleet: the traffic cursors must stitch like the noise Rngs.
  util::ThreadPool live_pool(1);
  obs::DigestTraceSink live_first;
  FleetManager live(make_traffic_specs(16),
                    make_options(&live_pool, &live_first, &registry),
                    shared_library());
  live.run(8);
  save_fleet_checkpoint_file(path, live);

  util::ThreadPool resumed_pool(4);
  obs::DigestTraceSink resumed_second;
  FleetManager resumed(make_traffic_specs(16),
                       make_options(&resumed_pool, &resumed_second, &registry),
                       shared_library());
  restore_fleet_checkpoint_file(path, resumed);
  EXPECT_EQ(resumed.completed(), 8);
  resumed.run(8);

  EXPECT_EQ(live_first.digest(), reference_first.digest());
  EXPECT_EQ(resumed_second.digest(), reference_second.digest());
  EXPECT_EQ(checkpoint_bytes(resumed), checkpoint_bytes(reference));

  // The file visibly carries mid-day cursors (v2 "traffic" lines).
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(bytes.find("\ntraffic 8\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Fleet, V1CheckpointLoadsWithZeroTrafficCursors) {
  // Forward compatibility with pre-traffic fleets: strip the v2 "traffic"
  // lines and relabel the header -- the result is a faithful v1 file,
  // which must restore with every cursor at 0. Re-saving it then yields
  // the original v2 bytes, because a traffic-less fleet's cursors are 0.
  obs::Registry registry;
  util::ThreadPool pool(1);
  FleetManager fleet(make_specs(8), make_options(&pool, nullptr, &registry),
                     shared_library());
  fleet.run(5);
  const std::string v2 = checkpoint_bytes(fleet);

  std::string v1;
  std::istringstream lines(v2);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("traffic ", 0) == 0) continue;
    if (line == "rac-fleet-checkpoint v2") line = "rac-fleet-checkpoint v1";
    v1 += line;
    v1 += '\n';
  }
  ASSERT_NE(v1, v2);

  FleetManager restored(make_specs(8), make_options(&pool, nullptr, &registry),
                        shared_library());
  std::istringstream is(v1);
  restored.restore_checkpoint(is);
  EXPECT_EQ(restored.completed(), 5);
  EXPECT_EQ(checkpoint_bytes(restored), v2);
}

TEST(Fleet, RestoreRejectsMismatchedFleets) {
  obs::Registry registry;
  util::ThreadPool pool(1);
  FleetManager fleet(make_specs(8), make_options(&pool, nullptr, &registry),
                     shared_library());
  fleet.run(3);
  const std::string bytes = checkpoint_bytes(fleet);

  // Tenant count mismatch.
  {
    FleetManager other(make_specs(4), make_options(&pool, nullptr, &registry),
                       shared_library());
    std::istringstream is(bytes);
    EXPECT_THROW(other.restore_checkpoint(is), std::runtime_error);
  }
  // Fault topology mismatch: same count, fault profile on a different
  // tenant.
  {
    std::vector<TenantSpec> specs = make_specs(8);
    specs[3].fault_profile.reset();
    fault::FaultProfile profile;
    profile.drop_prob = 0.10;
    specs[4].fault_profile = profile;
    FleetManager other(std::move(specs),
                       make_options(&pool, nullptr, &registry),
                       shared_library());
    std::istringstream is(bytes);
    EXPECT_THROW(other.restore_checkpoint(is), std::runtime_error);
  }
  // Seed mismatch (a checkpoint from some other fleet's stream family).
  {
    FleetOptions options = make_options(&pool, nullptr, &registry);
    options.seed = 778;
    FleetManager other(make_specs(8), options, shared_library());
    std::istringstream is(bytes);
    EXPECT_THROW(other.restore_checkpoint(is), std::runtime_error);
  }
  // Trailing garbage after the end trailer (file loader only).
  {
    const std::string path =
        ::testing::TempDir() + "/rac_fleet_garbage_test.rac";
    std::ostringstream contents;
    contents << bytes << "trailing-garbage\n";
    {
      std::ofstream out(path, std::ios::binary);
      out << contents.str();
    }
    FleetManager other(make_specs(8), make_options(&pool, nullptr, &registry),
                       shared_library());
    EXPECT_THROW(restore_fleet_checkpoint_file(path, other),
                 std::runtime_error);
    std::remove(path.c_str());
  }
}

TEST(Fleet, LibraryIsSharedCopyOnWriteAcrossTenants) {
  obs::Registry registry;
  util::ThreadPool pool(2);
  FleetManager fleet(make_specs(16), make_options(&pool, nullptr, &registry),
                     shared_library());

  // Construction hands every agent the one storage block.
  for (std::size_t t = 0; t < fleet.tenant_count(); ++t) {
    EXPECT_TRUE(fleet.agent(t).library().shares_storage_with(fleet.library()))
        << "tenant " << t;
  }
  // Retraining publishes ONE refreshed block, again shared by everyone
  // (and no longer the original storage).
  fleet.run(7);
  EXPECT_EQ(fleet.retrain_rounds(), 1);
  EXPECT_FALSE(fleet.library().shares_storage_with(shared_library()));
  for (std::size_t t = 0; t < fleet.tenant_count(); ++t) {
    EXPECT_TRUE(fleet.agent(t).library().shares_storage_with(fleet.library()))
        << "tenant " << t;
  }
}

TEST(Fleet, ShardMetricsRollUpPerTenantTelemetry) {
  obs::Registry registry;
  util::ThreadPool pool(4);
  FleetOptions options = make_options(&pool, nullptr, &registry);
  options.retrain_every = 0;
  FleetManager fleet(make_specs(16), options, shared_library());
  fleet.run(5);

  // The runner's per-iteration counter lands in per-shard registries; the
  // merged rollup must account for every tenant-interval exactly.
  const obs::MetricsSnapshot merged = fleet.shard_metrics();
  const obs::CounterSample* iterations =
      merged.counter("core.runner.iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->value, 16u * 5u);
  // And the fleet-level registry tracked the segment fan-out.
  const obs::MetricsSnapshot fleet_snap = registry.snapshot();
  const obs::CounterSample* intervals =
      fleet_snap.counter("fleet.tenant_intervals");
  ASSERT_NE(intervals, nullptr);
  EXPECT_EQ(intervals->value, 16u * 5u);
}

TEST(Fleet, RunSplitsAreInvisibleAtRetrainBoundaries) {
  // run(4); run(10); run(14) crosses the same absolute retrain boundaries
  // as run(28), so the chopped fleet finishes bit-identical to the
  // straight-through one.
  obs::Registry registry;
  util::ThreadPool pool(2);
  FleetManager chopped(make_specs(16), make_options(&pool, nullptr, &registry),
                       shared_library());
  chopped.run(4);
  chopped.run(10);
  chopped.run(14);

  FleetManager straight(make_specs(16),
                        make_options(&pool, nullptr, &registry),
                        shared_library());
  straight.run(28);

  EXPECT_EQ(chopped.completed(), 28);
  EXPECT_EQ(chopped.retrain_rounds(), straight.retrain_rounds());
  EXPECT_EQ(checkpoint_bytes(chopped), checkpoint_bytes(straight));
}

TEST(Fleet, ConstructorValidatesSpecsAndOptions) {
  obs::Registry registry;
  util::ThreadPool pool(1);
  const FleetOptions options = make_options(&pool, nullptr, &registry);

  EXPECT_THROW(FleetManager({}, options, shared_library()),
               std::invalid_argument);

  std::vector<TenantSpec> duplicate = make_specs(4);
  duplicate[3].id = duplicate[0].id;
  EXPECT_THROW(FleetManager(std::move(duplicate), options, shared_library()),
               std::invalid_argument);

  std::vector<TenantSpec> negative = make_specs(4);
  negative[0].id = -1;
  EXPECT_THROW(FleetManager(std::move(negative), options, shared_library()),
               std::invalid_argument);

  FleetOptions zero_shards = options;
  zero_shards.shard_count = 0;
  EXPECT_THROW(FleetManager(make_specs(4), zero_shards, shared_library()),
               std::invalid_argument);

  FleetOptions negative_retrain = options;
  negative_retrain.retrain_every = -1;
  EXPECT_THROW(
      FleetManager(make_specs(4), negative_retrain, shared_library()),
      std::invalid_argument);

  FleetManager fleet(make_specs(4), options, shared_library());
  EXPECT_THROW(fleet.run(-1), std::invalid_argument);
}

}  // namespace
}  // namespace rac::fleet
