#include "tiersim/web_system.hpp"

#include <gtest/gtest.h>

#include "config/space.hpp"

namespace rac::tiersim {
namespace {

using config::Configuration;
using config::ParamId;

SimSetup small_setup(std::uint64_t seed = 1) {
  SimSetup setup;
  setup.num_clients = 120;
  setup.seed = seed;
  return setup;
}

TEST(ThreeTierSystem, ProducesTrafficAndResponses) {
  SystemParams params;
  ThreeTierSystem sys(params, small_setup());
  const auto m = sys.run(30.0, 120.0);
  EXPECT_GT(m.completed, 100u);
  EXPECT_GT(m.mean_response_ms, 0.0);
  EXPECT_GE(m.p95_response_ms, m.mean_response_ms);
  EXPECT_GT(m.throughput_rps, 1.0);
}

TEST(ThreeTierSystem, DeterministicForSameSeed) {
  SystemParams params;
  ThreeTierSystem a(params, small_setup(9));
  ThreeTierSystem b(params, small_setup(9));
  const auto ma = a.run(20.0, 60.0);
  const auto mb = b.run(20.0, 60.0);
  EXPECT_EQ(ma.completed, mb.completed);
  EXPECT_DOUBLE_EQ(ma.mean_response_ms, mb.mean_response_ms);
}

TEST(ThreeTierSystem, ThroughputTracksOfferedLoad) {
  // In a non-saturated closed system X ~ N / (Z + R).
  SystemParams params;
  auto setup = small_setup(3);
  ThreeTierSystem sys(params, setup);
  const auto m = sys.run(60.0, 200.0);
  const auto profile = workload::browser_profile(setup.mix);
  const double cycle =
      profile.effective_think_mean_s() *
          profile.session_length_mean / (profile.session_length_mean - 1.0) +
      m.mean_response_ms / 1000.0;
  const double expected = setup.num_clients / cycle;
  EXPECT_NEAR(m.throughput_rps, expected, expected * 0.25);
}

TEST(ThreeTierSystem, KeepAliveEnablesConnectionReuse) {
  SystemParams params;
  auto setup = small_setup(5);
  setup.configuration.set(ParamId::kKeepAliveTimeout, 21);
  ThreeTierSystem with_ka(params, setup);
  const auto m_with = with_ka.run(30.0, 150.0);

  auto setup_short = small_setup(5);
  setup_short.configuration.set(ParamId::kKeepAliveTimeout, 1);
  ThreeTierSystem without_ka(params, setup_short);
  const auto m_without = without_ka.run(30.0, 150.0);

  EXPECT_GT(m_with.connection_reuse_rate, 0.5);
  EXPECT_LT(m_without.connection_reuse_rate, m_with.connection_reuse_rate);
}

TEST(ThreeTierSystem, StarvedMaxClientsDegradesResponseTime) {
  SystemParams params;
  auto tuned = small_setup(7);
  tuned.configuration.set(ParamId::kMaxClients, 300);
  ThreeTierSystem good(params, tuned);
  const auto m_good = good.run(40.0, 150.0);

  auto starved = small_setup(7);
  starved.configuration.set(ParamId::kMaxClients, 50);
  ThreeTierSystem bad(params, starved);
  const auto m_bad = bad.run(40.0, 150.0);

  EXPECT_GT(m_bad.mean_response_ms, 2.0 * m_good.mean_response_ms);
  EXPECT_GT(m_bad.mean_accept_wait_ms, m_good.mean_accept_wait_ms);
}

TEST(ThreeTierSystem, SmallerVmIsSlower) {
  SystemParams params;
  auto setup1 = small_setup(11);
  setup1.num_clients = 200;
  setup1.app_vm = {4, 4096.0};
  ThreeTierSystem big(params, setup1);
  const auto m_big = big.run(40.0, 150.0);

  auto setup3 = setup1;
  setup3.app_vm = {2, 2048.0};
  ThreeTierSystem small(params, setup3);
  const auto m_small = small.run(40.0, 150.0);

  EXPECT_GT(m_small.mean_response_ms, m_big.mean_response_ms);
}

TEST(ThreeTierSystem, ReconfigureTakesEffectInPlace) {
  SystemParams params;
  auto setup = small_setup(13);
  setup.configuration.set(ParamId::kMaxClients, 50);
  ThreeTierSystem sys(params, setup);
  const auto m_starved = sys.run(40.0, 100.0);

  Configuration better = setup.configuration;
  better.set(ParamId::kMaxClients, 300);
  sys.reconfigure(better);
  const auto m_better = sys.run(60.0, 100.0);  // let pools grow

  EXPECT_EQ(sys.configuration().value(ParamId::kMaxClients), 300);
  EXPECT_LT(m_better.mean_response_ms, m_starved.mean_response_ms);
}

TEST(ThreeTierSystem, VmReallocationAtRuntime) {
  SystemParams params;
  auto setup = small_setup(17);
  setup.num_clients = 220;
  ThreeTierSystem sys(params, setup);
  const auto before = sys.run(40.0, 100.0);
  sys.set_app_vm({1, 1024.0});
  const auto after = sys.run(40.0, 100.0);
  EXPECT_GT(after.mean_response_ms, before.mean_response_ms);
}

TEST(ThreeTierSystem, SessionRebuildsAppearWithTinyTimeout) {
  SystemParams params;
  auto setup = small_setup(19);
  setup.configuration.set(ParamId::kSessionTimeout, 1);
  ThreeTierSystem sys(params, setup);
  const auto m = sys.run(60.0, 400.0);
  EXPECT_GT(m.session_rebuild_rate, 0.0);
}

TEST(ThreeTierSystem, PoolsRespectConfiguredBounds) {
  SystemParams params;
  auto setup = small_setup(23);
  setup.configuration.set(ParamId::kMaxClients, 100);
  setup.configuration.set(ParamId::kMaxThreads, 60);
  ThreeTierSystem sys(params, setup);
  const auto m = sys.run(60.0, 200.0);
  EXPECT_LE(m.mean_web_workers, 100.0 + 1e-9);
  EXPECT_LE(m.mean_app_threads, 60.0 + 1e-9);
  EXPECT_GT(m.mean_web_workers, 0.0);
}

TEST(ThreeTierSystem, RejectsBadWindowsAndClients) {
  SystemParams params;
  auto setup = small_setup();
  ThreeTierSystem sys(params, setup);
  EXPECT_THROW(sys.run(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(sys.run(0.0, 0.0), std::invalid_argument);
  setup.num_clients = 0;
  EXPECT_THROW(ThreeTierSystem(params, setup), std::invalid_argument);
}

}  // namespace
}  // namespace rac::tiersim
