#include "tiersim/ps_resource.hpp"

#include <gtest/gtest.h>

namespace rac::tiersim {
namespace {

TEST(PsResource, SingleJobRunsAtFullSpeed) {
  EventQueue q;
  PsResource cpu(q, 1);
  double done_at = -1.0;
  cpu.submit(2.0, [&] { done_at = q.now(); });
  q.run_until(10.0);
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(PsResource, TwoEqualJobsShareOneCore) {
  EventQueue q;
  PsResource cpu(q, 1);
  double a = -1.0;
  double b = -1.0;
  cpu.submit(1.0, [&] { a = q.now(); });
  cpu.submit(1.0, [&] { b = q.now(); });
  q.run_until(10.0);
  // Each progresses at rate 1/2: both finish at t = 2.
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(PsResource, MultiCoreRunsJobsInParallel) {
  EventQueue q;
  PsResource cpu(q, 2);
  double a = -1.0;
  double b = -1.0;
  cpu.submit(1.0, [&] { a = q.now(); });
  cpu.submit(1.0, [&] { b = q.now(); });
  q.run_until(10.0);
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(b, 1.0, 1e-9);
}

TEST(PsResource, UnequalJobsFinishInDemandOrder) {
  EventQueue q;
  PsResource cpu(q, 1);
  double small = -1.0;
  double big = -1.0;
  cpu.submit(1.0, [&] { small = q.now(); });
  cpu.submit(3.0, [&] { big = q.now(); });
  q.run_until(100.0);
  // Shared until the small job completes at t=2 (each got rate 1/2),
  // then the big one finishes its remaining 2 units alone at t=4.
  EXPECT_NEAR(small, 2.0, 1e-9);
  EXPECT_NEAR(big, 4.0, 1e-9);
}

TEST(PsResource, LateArrivalSharesRemainingWork) {
  EventQueue q;
  PsResource cpu(q, 1);
  double first = -1.0;
  double second = -1.0;
  cpu.submit(2.0, [&] { first = q.now(); });
  q.schedule_at(1.0, [&] { cpu.submit(0.5, [&] { second = q.now(); }); });
  q.run_until(100.0);
  // t=1: first has 1.0 left; both share: second (0.5) completes at t=2,
  // first then has 0.5 left, completes at 2.5.
  EXPECT_NEAR(second, 2.0, 1e-9);
  EXPECT_NEAR(first, 2.5, 1e-9);
}

TEST(PsResource, SlowdownStretchesService) {
  EventQueue q;
  PsResource cpu(q, 1, [](int n) { return n >= 2 ? 2.0 : 1.0; });
  double a = -1.0;
  double b = -1.0;
  cpu.submit(1.0, [&] { a = q.now(); });
  cpu.submit(1.0, [&] { b = q.now(); });
  q.run_until(100.0);
  // Two jobs: rate 1/2 each, further halved by slowdown 2 -> finish at 4.
  EXPECT_NEAR(a, 4.0, 1e-9);
  EXPECT_NEAR(b, 4.0, 1e-9);
}

TEST(PsResource, SetCoresTakesEffectImmediately) {
  EventQueue q;
  PsResource cpu(q, 1);
  double a = -1.0;
  double b = -1.0;
  cpu.submit(2.0, [&] { a = q.now(); });
  cpu.submit(2.0, [&] { b = q.now(); });
  q.schedule_at(1.0, [&] { cpu.set_cores(2); });
  q.run_until(100.0);
  // Until t=1 each runs at 1/2 (0.5 done); after, each at full rate:
  // remaining 1.5 -> both done at 2.5.
  EXPECT_NEAR(a, 2.5, 1e-9);
  EXPECT_NEAR(b, 2.5, 1e-9);
}

TEST(PsResource, CompletionHandlerCanResubmit) {
  EventQueue q;
  PsResource cpu(q, 1);
  double second_done = -1.0;
  cpu.submit(1.0, [&] {
    cpu.submit(1.0, [&] { second_done = q.now(); });
  });
  q.run_until(100.0);
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(PsResource, WorkDoneAccounting) {
  EventQueue q;
  PsResource cpu(q, 4);
  cpu.submit(1.0, [] {});
  cpu.submit(2.0, [] {});
  q.run_until(100.0);
  EXPECT_NEAR(cpu.work_done(), 3.0, 1e-6);
  EXPECT_EQ(cpu.active_jobs(), 0);
}

TEST(PsResource, ZeroDemandJobStillCompletesAsynchronously) {
  EventQueue q;
  PsResource cpu(q, 1);
  bool done = false;
  cpu.submit(0.0, [&] { done = true; });
  EXPECT_FALSE(done);  // not synchronous
  q.run_until(1.0);
  EXPECT_TRUE(done);
}

TEST(PsResource, RejectsInvalidArguments) {
  EventQueue q;
  EXPECT_THROW(PsResource(q, 0), std::invalid_argument);
  PsResource cpu(q, 1);
  EXPECT_THROW(cpu.submit(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(cpu.submit(1.0, EventFn{}), std::invalid_argument);
  EXPECT_THROW(cpu.set_cores(0), std::invalid_argument);
}

}  // namespace
}  // namespace rac::tiersim
