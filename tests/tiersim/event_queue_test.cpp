#include "tiersim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rac::tiersim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(3); });
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInUsesRelativeDelay) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto handle = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(handle));
  q.run_until(2.0);
  EXPECT_FALSE(fired);
  // Cancelling again is a no-op.
  EXPECT_FALSE(q.cancel(handle));
}

TEST(EventQueue, CancelInvalidHandleIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(5.0, [&] { fired = true; });
  q.run_until(4.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
  q.run_until(6.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.events_executed(), 5u);
}

TEST(EventQueue, StepExecutesSingleEvent) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RejectsPastAndInvalid) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(6.0, EventFn{}), std::invalid_argument);
}

TEST(EventQueue, PendingCountTracksLifecycle) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  const auto h1 = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(3.0);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace rac::tiersim
