// Round-trips rac-analyze SARIF output through a minimal JSON parser and
// checks the structure external SARIF viewers rely on: schema version,
// the full rule table under tool.driver.rules, and one result per finding
// with ruleId/message/location intact.
#include "analyze_core.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace {

// --- a deliberately tiny JSON parser (objects, arrays, strings, numbers,
// booleans, null; enough for SARIF) --------------------------------------

struct JValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JValue> items;
  std::map<std::string, JValue> fields;

  const JValue& at(const std::string& key) const {
    static const JValue missing;
    const auto it = fields.find(key);
    return it == fields.end() ? missing : it->second;
  }
};

class JParser {
 public:
  explicit JParser(std::string text) : text_(std::move(text)) {}

  JValue parse() {
    JValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
    return v;
  }

  bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JValue value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      pos_ += 4;
      return JValue{};
    }
    return number();
  }

  JValue fail(const std::string& why) {
    ADD_FAILURE() << "JSON parse error at offset " << pos_ << ": " << why;
    ok_ = false;
    pos_ = text_.size();
    return JValue{};
  }

  JValue object() {
    JValue v;
    v.kind = JValue::kObject;
    eat('{');
    if (eat('}')) return v;
    do {
      skip_ws();
      JValue key = string_value();
      if (!ok_) return v;
      if (!eat(':')) return fail("expected ':'");
      v.fields[key.str] = value();
    } while (ok_ && eat(','));
    if (ok_ && !eat('}')) return fail("expected '}'");
    return v;
  }

  JValue array() {
    JValue v;
    v.kind = JValue::kArray;
    eat('[');
    if (eat(']')) return v;
    do {
      v.items.push_back(value());
    } while (ok_ && eat(','));
    if (ok_ && !eat(']')) return fail("expected ']'");
    return v;
  }

  JValue string_value() {
    JValue v;
    v.kind = JValue::kString;
    if (!eat('"')) return fail("expected '\"'");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            pos_ += 4;  // fixtures only use \u00xx control escapes
            c = '?';
            break;
          default: c = esc;
        }
      }
      v.str += c;
    }
    if (!eat('"')) return fail("unterminated string");
    return v;
  }

  JValue boolean() {
    JValue v;
    v.kind = JValue::kBool;
    v.boolean = text_[pos_] == 't';
    pos_ += v.boolean ? 4 : 5;
    return v;
  }

  JValue number() {
    JValue v;
    v.kind = JValue::kNumber;
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return fail("expected number");
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::vector<rac::analyze::Finding> sample_findings() {
  return {
      {"src/rl/qtable.cpp", 17, "unordered-iter",
       "range-for over unordered container 'values_' appends"},
      {"src/core/agent.cpp", 8, "clock-reachability",
       "call to 'stamp' reaches a wall-clock read with a \"quoted\" chain"},
  };
}

TEST(Sarif, RoundTripsVersionRulesAndResults) {
  const auto findings = sample_findings();
  const std::string sarif = rac::analyze::to_sarif(findings);
  JParser parser(sarif);
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok());

  EXPECT_EQ(root.at("version").str, "2.1.0");
  ASSERT_EQ(root.at("runs").items.size(), 1u);
  const JValue& run = root.at("runs").items[0];

  const JValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "rac-analyze");
  std::set<std::string> declared;
  for (const auto& rule : driver.at("rules").items) {
    declared.insert(rule.at("id").str);
    EXPECT_FALSE(rule.at("shortDescription").at("text").str.empty());
  }
  // The driver advertises the full --list-rules table.
  EXPECT_EQ(declared.size(), rac::analyze::rules().size());
  for (const auto& rule : rac::analyze::rules()) {
    EXPECT_TRUE(declared.count(std::string(rule.id))) << rule.id;
  }

  const auto& results = run.at("results").items;
  ASSERT_EQ(results.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(results[i].at("ruleId").str, findings[i].rule);
    EXPECT_EQ(results[i].at("message").at("text").str,
              findings[i].message);
    const auto& locs = results[i].at("locations").items;
    ASSERT_EQ(locs.size(), 1u);
    const JValue& phys = locs[0].at("physicalLocation");
    EXPECT_EQ(phys.at("artifactLocation").at("uri").str, findings[i].file);
    EXPECT_EQ(phys.at("region").at("startLine").number,
              static_cast<double>(findings[i].line));
  }
}

TEST(Sarif, EmptyFindingsStillCarryTheRuleTable) {
  JParser parser(rac::analyze::to_sarif({}));
  const JValue root = parser.parse();
  ASSERT_TRUE(parser.ok());
  const JValue& run = root.at("runs").items.at(0);
  EXPECT_TRUE(run.at("results").items.empty());
  EXPECT_EQ(run.at("tool").at("driver").at("rules").items.size(),
            rac::analyze::rules().size());
}

}  // namespace
