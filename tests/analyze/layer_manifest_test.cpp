// Golden test for tools/analyze/layers.manifest: regenerating the
// manifest from the real tree's observed include graph must reproduce the
// checked-in bytes exactly. Architectural drift (a new module edge, a
// removed one) therefore shows up as a failing test plus a one-line
// manifest diff, never as silent coupling growth.
#include "analyze_core.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using rac::analyze::Manifest;

std::string manifest_path() {
  return std::string(RAC_PROJECT_SOURCE_DIR) +
         "/tools/analyze/layers.manifest";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(LayerManifest, CheckedInManifestMatchesTheTree) {
  const std::string checked_in = read_file(manifest_path());
  const Manifest manifest = Manifest::parse(checked_in);
  const auto files =
      rac::analyze::load_tree(RAC_PROJECT_SOURCE_DIR, {"src"});
  const auto observed = rac::analyze::observed_module_deps(files);
  const std::string regenerated =
      rac::analyze::regenerate_manifest(manifest, observed);
  EXPECT_EQ(regenerated, checked_in)
      << "layers.manifest drifted from the tree; regenerate with\n"
         "  rac_analyze --root . --write-manifest > "
         "tools/analyze/layers.manifest";
}

TEST(LayerManifest, SerializeParseRoundTrips) {
  const Manifest manifest = Manifest::parse(read_file(manifest_path()));
  const Manifest reparsed = Manifest::parse(manifest.serialize());
  EXPECT_EQ(reparsed.layers, manifest.layers);
  EXPECT_EQ(reparsed.deps, manifest.deps);
  EXPECT_EQ(reparsed.serialize(), manifest.serialize());
}

TEST(LayerManifest, RealTreeHasNoLayerFindings) {
  const Manifest manifest = Manifest::parse(read_file(manifest_path()));
  const auto files =
      rac::analyze::load_tree(RAC_PROJECT_SOURCE_DIR, {"src"});
  const auto findings = rac::analyze::analyze_sources(files, &manifest);
  for (const auto& f : findings) {
    EXPECT_TRUE(f.rule.find("layer-") != 0 && f.rule != "include-cycle")
        << rac::analyze::to_text({f});
  }
}

}  // namespace
