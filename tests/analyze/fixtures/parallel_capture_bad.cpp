// Seeded parallel races: by-ref captured state written without indexing
// by the task index. TSan reports these only on schedules that happen to
// interleave the writes; the write shape is detectable statically.
// Never compiled.
#include <cstddef>
#include <vector>

void race_sum(const std::vector<double>& in, double& total) {
  parallel_for(in.size(), [&](std::size_t i) {
    total += in[i];  // racy read-modify-write on shared state
  });
}

void race_append(const std::vector<double>& in, std::vector<double>& out) {
  parallel_for(in.size(), [&out, &in](std::size_t i) {
    out.push_back(in[i] * 2.0);  // racy container mutation
  });
}

void race_last(const std::vector<double>& in, std::size_t& last_seen) {
  parallel_for(in.size(), [&](std::size_t i) {
    last_seen = i;  // racy last-writer-wins
  });
}
