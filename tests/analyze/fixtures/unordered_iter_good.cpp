// Order-independent twins of unordered_iter_bad.cpp: the rule must stay
// silent on every loop here. Never compiled.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> sorted_keys(
    const std::unordered_map<std::string, double>& m) {
  std::vector<std::string> keys;
  for (const auto& kv : m) {
    keys.push_back(kv.first);
  }
  std::sort(keys.begin(), keys.end());  // sorted before anyone reads it
  return keys;
}

std::map<std::string, double> rekeyed(
    const std::unordered_map<std::string, double>& m) {
  std::map<std::string, double> ordered;
  for (const auto& [key, value] : m) {
    ordered.insert({key, value});  // ordered target sorts by construction
  }
  return ordered;
}

double sum_sorted(const std::unordered_map<std::string, double>& m) {
  std::map<std::string, double> ordered(m.begin(), m.end());
  double total = 0.0;
  for (const auto& [key, value] : ordered) {
    total += value;  // iterating the ordered copy: stable fp sum
  }
  return total;
}

void zero_all(std::unordered_map<std::string, double>& m) {
  for (auto& [key, value] : m) {
    value = 0.0;  // per-element write, order-independent
  }
}
