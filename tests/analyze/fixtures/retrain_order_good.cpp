// The canonical fix for retrain_order_bad.cpp: collect the keys, sort
// them, then serialize in sorted order. The rule must stay silent.
// Never compiled.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct Snapshot {
  std::vector<std::string> lines;
};

class Table {
 public:
  Snapshot serialize() const {
    std::vector<std::string> states;
    for (const auto& [state, q] : values_) {
      states.push_back(state);
    }
    std::sort(states.begin(), states.end());
    Snapshot snap;
    for (const auto& state : states) {
      snap.lines.push_back(state + " " + std::to_string(values_.at(state)));
    }
    return snap;
  }

 private:
  std::unordered_map<std::string, double> values_;
};
