// Wall-clock and ambient-randomness wrappers. Defining these in util is
// not itself the bug (analyzed under a pretend src/util/ path that is NOT
// exempt); calling them from a reproducible subsystem is. Never compiled.
#include <chrono>
#include <cstdlib>

namespace rac::util {

long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

long stamp() {
  return now_ms();  // depth-2: taint must flow through this wrapper
}

int ambient_draw() {
  return std::rand();
}

}  // namespace rac::util
