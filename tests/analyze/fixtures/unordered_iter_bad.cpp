// Seeded bugs for the unordered-iter rule: every loop below does work
// whose result depends on hash-table iteration order. Never compiled;
// analyzed in-process by analyze_tests under a pretend src/ path.
#include <string>
#include <unordered_map>
#include <vector>

double sum_of(const std::unordered_map<std::string, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) {
    total += value;  // fp accumulation order follows bucket order
  }
  return total;
}

std::string last_key(const std::unordered_map<std::string, double>& m) {
  std::string winner;
  for (const auto& [key, value] : m) {
    winner = key;  // which element wins follows bucket order
  }
  return winner;
}

std::vector<std::string> keys_of(
    const std::unordered_map<std::string, double>& m) {
  std::vector<std::string> keys;
  for (const auto& kv : m) {
    keys.push_back(kv.first);  // appended (and later serialized) in bucket order
  }
  return keys;
}
