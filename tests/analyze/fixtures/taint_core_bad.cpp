// A reproducible subsystem reaching the wall clock and ambient
// randomness through the util wrappers in taint_util_bad.cpp. No line
// here reads a clock or rand() directly, so rac-lint cannot see it; the
// reachability rules must. Never compiled.
namespace rac::core {

long decide_epoch() {
  return util::stamp();  // clock-reachability (stamp -> now_ms -> system_clock)
}

int jitter() {
  return util::ambient_draw();  // rand-reachability
}

}  // namespace rac::core
