// The PR 4 retrain bug, reconstructed: the Q-table keys its states in an
// unordered_map, and serializing a snapshot by iterating it directly
// writes the library file in hash order -- two behaviorally identical
// agents produce different snapshot bytes. Never compiled.
#include <string>
#include <unordered_map>
#include <vector>

struct Snapshot {
  std::vector<std::string> lines;
};

class Table {
 public:
  Snapshot serialize() const {
    Snapshot snap;
    for (const auto& [state, q] : values_) {
      snap.lines.push_back(state + " " + std::to_string(q));
    }
    return snap;
  }

 private:
  std::unordered_map<std::string, double> values_;
};
