// Good twin of taint_core_bad.cpp: time arrives from the simulation
// clock as a parameter, randomness from the seeded Rng. The reachability
// rules must stay silent. Never compiled.
namespace rac::core {

long decide_epoch(long sim_now_ms) {
  return sim_now_ms;
}

int jitter(Rng& rng) {
  return rng.next_int();
}

}  // namespace rac::core
