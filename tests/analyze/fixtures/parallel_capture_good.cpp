// Safe twins of parallel_capture_bad.cpp: every write lands in a slot
// indexed by the task index or stays local to the task. The rule must
// stay silent. Never compiled.
#include <cstddef>
#include <vector>

void map_scaled(const std::vector<double>& in, std::vector<double>& out) {
  parallel_for(in.size(), [&](std::size_t i) {
    out[i] = in[i] * 2.0;  // disjoint per-task slot
  });
}

void local_then_slot(const std::vector<double>& in,
                     std::vector<double>& partial) {
  parallel_for(in.size(), [&](std::size_t i) {
    double scaled = in[i] * 2.0;
    scaled += 1.0;  // task-local accumulation
    partial[i] = scaled;
  });
}
