// Analyzed under the pretend path src/util/rng.cpp: the seeded RNG may
// touch std::random_device for default seeding -- that file is
// taint-exempt by design, so nothing may propagate from here.
// Never compiled.
#include <random>

namespace rac::util {

unsigned default_seed() {
  return std::random_device{}();
}

}  // namespace rac::util
