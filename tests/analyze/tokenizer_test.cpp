// Exercises the shared srcscan scanner: the stripping and token-stream
// behavior both rac-lint and rac-analyze depend on, in particular the raw
// string literal and line-continuation handling that per-line strippers
// get wrong.
#include "tokenizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using rac::srcscan::ScanResult;
using rac::srcscan::TokKind;
using rac::srcscan::Token;

std::vector<Token> tokens_of_kind(const ScanResult& r, TokKind kind) {
  std::vector<Token> out;
  for (const auto& t : r.tokens) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

TEST(Tokenizer, RawStringContentsAreBlankedFromCode) {
  const auto r = rac::srcscan::scan(
      "const char* s = R\"(calls std::rand() here)\";\n"
      "int x = 1;\n");
  EXPECT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.lines[0].code.find("rand"), std::string::npos);
  // Columns are preserved: the trailing ';' stays at its column.
  EXPECT_EQ(r.lines[0].code.size(), r.lines[0].code.rfind(';') + 1);
  const auto strings = tokens_of_kind(r, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "calls std::rand() here");
}

TEST(Tokenizer, RawStringCustomDelimiterSpansLines) {
  const auto r = rac::srcscan::scan(
      "const char* s = R\"delim(\n"
      "  a quote \" and a fake close )\" inside\n"
      ")delim\";\n"
      "int after = 1;\n");
  ASSERT_EQ(r.lines.size(), 4u);
  EXPECT_EQ(r.lines[1].code.find('"'), std::string::npos);
  // The identifier after the raw string is still tokenized, on the right
  // physical line.
  bool saw_after = false;
  for (const auto& t : r.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(Tokenizer, EncodingPrefixedRawStringIsNotSplit) {
  const auto r = rac::srcscan::scan("auto s = u8R\"(body)\";\n");
  const auto strings = tokens_of_kind(r, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "body");
}

TEST(Tokenizer, LineCommentContinuationSwallowsNextLine) {
  const auto r = rac::srcscan::scan(
      "int x = 0;  // continued comment \\\n"
      "x = std::rand();\n"
      "int y = 1;\n");
  ASSERT_EQ(r.lines.size(), 3u);
  EXPECT_EQ(r.lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(r.lines[2].code.find('y'), std::string::npos);
  // Comment text is captured for suppression parsing.
  EXPECT_NE(r.lines[0].comment.find("continued"), std::string::npos);
}

TEST(Tokenizer, StringContinuationSwallowsNextLine) {
  const auto r = rac::srcscan::scan(
      "const char* s = \"continued \\\n"
      "std::rand() in the string\";\n"
      "int z = 2;\n");
  ASSERT_EQ(r.lines.size(), 3u);
  EXPECT_EQ(r.lines[1].code.find("rand"), std::string::npos);
  const auto strings = tokens_of_kind(r, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("rand"), std::string::npos);
}

TEST(Tokenizer, DigitSeparatorIsANumberNotACharLiteral) {
  const auto r = rac::srcscan::scan("long n = 1'000'000;\n");
  const auto numbers = tokens_of_kind(r, TokKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1'000'000");
  EXPECT_TRUE(tokens_of_kind(r, TokKind::kCharLit).empty());
}

TEST(Tokenizer, MultiCharOperatorsAreSingleTokens) {
  const auto r = rac::srcscan::scan("a += b; c::d->e; x <<= 1;\n");
  std::vector<std::string> punct;
  for (const auto& t : r.tokens) {
    if (t.kind == TokKind::kPunct) punct.push_back(t.text);
  }
  EXPECT_NE(std::find(punct.begin(), punct.end(), "+="), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "::"), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "->"), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "<<="), punct.end());
}

TEST(Tokenizer, UnterminatedStringStopsAtEndOfLine) {
  const auto r = rac::srcscan::scan(
      "const char* s = \"never closed;\n"
      "int still_code = 1;\n");
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_NE(r.lines[1].code.find("still_code"), std::string::npos);
}

TEST(Tokenizer, ParseAllowExtractsCommaSeparatedIds) {
  const auto ids = rac::srcscan::parse_allow(
      " rac-lint: allow(float-eq, rand) justification text", "rac-lint:");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "float-eq");
  EXPECT_EQ(ids[1], "rand");
  EXPECT_TRUE(rac::srcscan::parse_allow("no marker here", "rac-lint:")
                  .empty());
  // The other checker's marker does not match.
  EXPECT_TRUE(rac::srcscan::parse_allow(" rac-analyze: allow(layer-edge)",
                                        "rac-lint:")
                  .empty());
}

TEST(Tokenizer, SuppressionSetTracksUse) {
  const auto r = rac::srcscan::scan(
      "int a;  // rac-analyze: allow(layer-edge) used below\n"
      "int b;  // rac-analyze: allow(unordered-iter) never used\n");
  rac::srcscan::SuppressionSet set(r.lines, "rac-analyze:");
  EXPECT_TRUE(set.allowed(1, "layer-edge"));
  EXPECT_FALSE(set.allowed(2, "layer-edge"));
  const auto unused = set.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].first, 2);
  EXPECT_EQ(unused[0].second, "unordered-iter");
}

}  // namespace
