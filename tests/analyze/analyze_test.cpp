// Exercises every rac-analyze rule against seeded-bug fixtures (never
// compiled) and their clean twins, plus path scoping, suppressions, and
// the manifest validation. The clean-tree guarantee for the real src/ is
// a separate ctest entry (`rac_analyze`) running the binary itself.
#include "analyze_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

using rac::analyze::Finding;
using rac::analyze::Manifest;
using rac::analyze::SourceFile;

std::string read_fixture(const std::string& name) {
  const auto path = std::filesystem::path(RAC_ANALYZE_FIXTURE_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& relpath) {
  return rac::analyze::analyze_sources({{relpath, read_fixture(name)}},
                                       nullptr);
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string render(const std::vector<Finding>& findings) {
  return rac::analyze::to_text(findings);
}

// --- unordered-iter -------------------------------------------------------

TEST(UnorderedIter, FiresOnAccumulateLastWinsAndAppend) {
  const auto findings =
      analyze_fixture("unordered_iter_bad.cpp", "src/rl/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 3) << render(findings);
}

TEST(UnorderedIter, SilentOnOrderIndependentTwin) {
  const auto findings =
      analyze_fixture("unordered_iter_good.cpp", "src/rl/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0) << render(findings);
}

TEST(UnorderedIter, ScopedToSrcAndBenchOnly) {
  // The same seeded bugs under tools/ are CLI convenience code: exempt.
  const auto findings =
      analyze_fixture("unordered_iter_bad.cpp", "tools/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0) << render(findings);
  const auto bench =
      analyze_fixture("unordered_iter_bad.cpp", "bench/fixture.cpp");
  EXPECT_EQ(count_rule(bench, "unordered-iter"), 3) << render(bench);
}

TEST(UnorderedIter, ReconstructsTheRetrainSerializationBug) {
  const auto findings =
      analyze_fixture("retrain_order_bad.cpp", "src/rl/qtable.cpp");
  ASSERT_EQ(count_rule(findings, "unordered-iter"), 1) << render(findings);
  EXPECT_NE(findings.front().message.find("hash-table iteration order"),
            std::string::npos);
}

TEST(UnorderedIter, SilentOnTheCanonicalSortedFix) {
  const auto findings =
      analyze_fixture("retrain_order_good.cpp", "src/rl/qtable.cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0) << render(findings);
}

// --- clock-reachability / rand-reachability -------------------------------

TEST(Reachability, FlagsWrappedClockAndRandAcrossFiles) {
  const auto findings = rac::analyze::analyze_sources(
      {{"src/core/agent.cpp", read_fixture("taint_core_bad.cpp")},
       {"src/util/timing.cpp", read_fixture("taint_util_bad.cpp")}},
      nullptr);
  ASSERT_EQ(count_rule(findings, "clock-reachability"), 1)
      << render(findings);
  ASSERT_EQ(count_rule(findings, "rand-reachability"), 1)
      << render(findings);
  for (const auto& f : findings) {
    EXPECT_EQ(f.file, "src/core/agent.cpp");
    if (f.rule == "clock-reachability") {
      // The witness chain names the depth-2 wrapper path.
      EXPECT_NE(f.message.find("now_ms"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("system_clock"), std::string::npos)
          << f.message;
    }
  }
}

TEST(Reachability, SilentWhenTimeAndRandomnessAreInjected) {
  const auto findings = rac::analyze::analyze_sources(
      {{"src/core/agent.cpp", read_fixture("taint_core_good.cpp")},
       {"src/util/rng.cpp", read_fixture("taint_util_good.cpp")}},
      nullptr);
  EXPECT_EQ(count_rule(findings, "clock-reachability"), 0)
      << render(findings);
  EXPECT_EQ(count_rule(findings, "rand-reachability"), 0)
      << render(findings);
}

TEST(Reachability, ObsAndRngFilesAreExemptTaintSources) {
  // The same wrappers under src/obs/ are instrumentation by design:
  // nothing propagates, so the same core caller is clean.
  const auto findings = rac::analyze::analyze_sources(
      {{"src/core/agent.cpp", read_fixture("taint_core_bad.cpp")},
       {"src/obs/timing.cpp", read_fixture("taint_util_bad.cpp")}},
      nullptr);
  EXPECT_EQ(count_rule(findings, "clock-reachability"), 0)
      << render(findings);
  EXPECT_EQ(count_rule(findings, "rand-reachability"), 0)
      << render(findings);
}

TEST(Reachability, WrapperDefinitionAloneIsNotReported) {
  // Defining the wrappers in util is lint's business (direct-read rules),
  // not a reachability finding; only reproducible-subsystem call sites are.
  const auto findings =
      analyze_fixture("taint_util_bad.cpp", "src/util/timing.cpp");
  EXPECT_EQ(count_rule(findings, "clock-reachability"), 0)
      << render(findings);
  EXPECT_EQ(count_rule(findings, "rand-reachability"), 0)
      << render(findings);
}

// --- parallel-ref-capture -------------------------------------------------

TEST(ParallelRefCapture, FiresOnSumAppendAndLastWins) {
  const auto findings = analyze_fixture("parallel_capture_bad.cpp",
                                        "src/util/thread_pool_use.cpp");
  EXPECT_EQ(count_rule(findings, "parallel-ref-capture"), 3)
      << render(findings);
}

TEST(ParallelRefCapture, SilentOnIndexedSlotsAndLocals) {
  const auto findings = analyze_fixture("parallel_capture_good.cpp",
                                        "src/util/thread_pool_use.cpp");
  EXPECT_EQ(count_rule(findings, "parallel-ref-capture"), 0)
      << render(findings);
}

TEST(ParallelRefCapture, AppliesOutsideSrcToo) {
  // Parallel races are races wherever they live, tools/ included.
  const auto findings =
      analyze_fixture("parallel_capture_bad.cpp", "tools/fixture.cpp");
  EXPECT_EQ(count_rule(findings, "parallel-ref-capture"), 3)
      << render(findings);
}

// --- include-cycle --------------------------------------------------------

TEST(IncludeGraph, DetectsIncludeCycles) {
  const auto findings = rac::analyze::analyze_sources(
      {{"src/x/a.hpp", "#pragma once\n#include \"x/b.hpp\"\n"},
       {"src/x/b.hpp", "#pragma once\n#include \"x/a.hpp\"\n"}},
      nullptr);
  EXPECT_GE(count_rule(findings, "include-cycle"), 1) << render(findings);
}

TEST(IncludeGraph, AcyclicIncludesAreClean) {
  const auto findings = rac::analyze::analyze_sources(
      {{"src/x/a.hpp", "#pragma once\n#include \"x/b.hpp\"\n"},
       {"src/x/b.hpp", "#pragma once\n"}},
      nullptr);
  EXPECT_EQ(count_rule(findings, "include-cycle"), 0) << render(findings);
}

// --- layer rules ----------------------------------------------------------

Manifest two_layer_manifest() {
  return Manifest::parse(
      "layer util\nlayer obs\ndep util:\ndep obs: util\n");
}

TEST(Layers, ConformingEdgeIsClean) {
  const Manifest m = two_layer_manifest();
  const auto findings = rac::analyze::analyze_sources(
      {{"src/obs/a.hpp", "#pragma once\n#include \"util/b.hpp\"\n"},
       {"src/util/b.hpp", "#pragma once\n"}},
      &m);
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(Layers, UpwardEdgeIsLayerOrder) {
  const Manifest m = two_layer_manifest();
  const auto findings = rac::analyze::analyze_sources(
      {{"src/obs/a.hpp", "#pragma once\n"},
       {"src/util/b.hpp", "#pragma once\n#include \"obs/a.hpp\"\n"}},
      &m);
  ASSERT_EQ(count_rule(findings, "layer-order"), 1) << render(findings);
  EXPECT_EQ(findings.front().file, "src/util/b.hpp");
  EXPECT_EQ(findings.front().line, 2);
}

TEST(Layers, UndeclaredEdgeIsLayerEdge) {
  const Manifest m = Manifest::parse(
      "layer util\nlayer obs\ndep util:\ndep obs:\n");
  const auto findings = rac::analyze::analyze_sources(
      {{"src/obs/a.hpp", "#pragma once\n#include \"util/b.hpp\"\n"},
       {"src/util/b.hpp", "#pragma once\n"}},
      &m);
  ASSERT_EQ(count_rule(findings, "layer-edge"), 1) << render(findings);
  EXPECT_NE(findings.front().message.find("obs -> util"),
            std::string::npos);
}

TEST(Layers, UndeclaredModuleIsLayerUnknown) {
  const Manifest m = two_layer_manifest();
  const auto findings = rac::analyze::analyze_sources(
      {{"src/zed/a.hpp", "#pragma once\n"}}, &m);
  ASSERT_EQ(count_rule(findings, "layer-unknown"), 1) << render(findings);
  EXPECT_NE(findings.front().message.find("'zed'"), std::string::npos);
}

TEST(Layers, SameLayerCycleIsLayerCycle) {
  // core <-> baselines cycles the module graph without the manifest ever
  // being able to bless it (parse rejects cyclic dep lines).
  const Manifest m = Manifest::parse(
      "layer core baselines\ndep core: baselines\ndep baselines:\n");
  const auto findings = rac::analyze::analyze_sources(
      {{"src/core/a.hpp", "#pragma once\n#include \"baselines/b.hpp\"\n"},
       {"src/baselines/b.hpp", "#pragma once\n#include \"core/a.hpp\"\n"}},
      &m);
  EXPECT_GE(count_rule(findings, "layer-cycle"), 1) << render(findings);
  EXPECT_GE(count_rule(findings, "include-cycle"), 1) << render(findings);
}

TEST(Layers, ManifestRejectsIllegalArchitectures) {
  // Duplicate module.
  EXPECT_THROW(Manifest::parse("layer util\nlayer util\n"),
               std::runtime_error);
  // Upward dep.
  EXPECT_THROW(
      Manifest::parse("layer util\nlayer obs\ndep util: obs\ndep obs:\n"),
      std::runtime_error);
  // Dep naming an unknown module.
  EXPECT_THROW(Manifest::parse("layer util\ndep util: ghost\n"),
               std::runtime_error);
  // Same-layer dep cycle.
  EXPECT_THROW(
      Manifest::parse("layer a b\ndep a: b\ndep b: a\n"),
      std::runtime_error);
  // Unrecognized directive.
  EXPECT_THROW(Manifest::parse("module util\n"), std::runtime_error);
}

// --- suppressions ---------------------------------------------------------

TEST(AnalyzeSuppressions, SameLineAllowSilencesTheFinding) {
  const std::string text =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void f(double& t) {\n"
      "  for (const auto& kv : m) {\n"
      "    t += kv.second;  // rac-analyze: allow(unordered-iter) fp order"
      " accepted here\n"
      "  }\n"
      "}\n";
  const auto findings =
      rac::analyze::analyze_sources({{"src/rl/x.cpp", text}}, nullptr);
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(AnalyzeSuppressions, StaleAllowIsUnusedSuppression) {
  const auto findings = rac::analyze::analyze_sources(
      {{"src/rl/x.cpp",
        "int x = 0;  // rac-analyze: allow(unordered-iter) stale\n"}},
      nullptr);
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1)
      << render(findings);
  EXPECT_EQ(findings.front().line, 1);
}

TEST(AnalyzeSuppressions, LintMarkerDoesNotSuppressAnalyzeFindings) {
  const std::string text =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void f(double& t) {\n"
      "  for (const auto& kv : m) {\n"
      "    t += kv.second;  // rac-lint: allow(unordered-iter) wrong tool\n"
      "  }\n"
      "}\n";
  const auto findings =
      rac::analyze::analyze_sources({{"src/rl/x.cpp", text}}, nullptr);
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1) << render(findings);
}

// --- plumbing -------------------------------------------------------------

TEST(AnalyzeRuleTable, IdsAreUniqueAndFindingsReferToThem) {
  std::set<std::string_view> ids;
  for (const auto& rule : rac::analyze::rules()) ids.insert(rule.id);
  EXPECT_EQ(ids.size(), rac::analyze::rules().size());
  EXPECT_EQ(ids.size(), 10u);
  for (const std::string fixture :
       {"unordered_iter_bad.cpp", "retrain_order_bad.cpp",
        "parallel_capture_bad.cpp"}) {
    for (const auto& f : analyze_fixture(fixture, "src/core/fixture.cpp")) {
      EXPECT_TRUE(ids.count(f.rule)) << fixture << " -> " << f.rule;
    }
  }
}

TEST(AnalyzeReport, JsonCarriesCountAndEscapes) {
  const std::vector<Finding> findings = {
      {"src/a\"b.cpp", 7, "unordered-iter", "line1\nline2"}};
  const std::string json = rac::analyze::to_json(findings);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("src/a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(AnalyzeTree, MissingSubdirThrows) {
  EXPECT_THROW(
      rac::analyze::load_tree(RAC_ANALYZE_FIXTURE_DIR, {"no_such_subdir"}),
      std::runtime_error);
}

TEST(AnalyzeTree, FindingsAreSortedDeterministically) {
  const auto findings =
      analyze_fixture("unordered_iter_bad.cpp", "src/rl/fixture.cpp");
  auto sorted = findings;
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].file, sorted[i].file);
    EXPECT_EQ(findings[i].line, sorted[i].line);
  }
}

}  // namespace
