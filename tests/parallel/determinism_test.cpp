// Golden determinism tests for the concurrency layer: parallel execution
// must be a pure rescheduling of the serial computation -- every learned
// policy, Q-value and trace record bit-identical at any thread count. The
// guarantees under test:
//   * learn_initial_policy measures each coarse sample on a private clone
//     reseeded from (environment seed, sample index);
//   * build_library trains contexts in independent tasks merged in input
//     order;
//   * bench-style multi-agent fan-out (one agent + environment per task)
//     reproduces the serial traces exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/policy_library.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "util/thread_pool.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;

AnalyticEnvOptions noisy_env(std::uint64_t seed) {
  AnalyticEnvOptions opt;
  opt.seed = seed;
  opt.noise_sigma = 0.10;  // noise ON: determinism must survive it
  return opt;
}

PolicyInitOptions fast_options(util::ThreadPool* pool) {
  PolicyInitOptions opt;
  opt.offline_td.max_sweeps = 80;
  opt.pool = pool;
  return opt;
}

const SystemContext kCtx{workload::MixType::kShopping, env::VmLevel::kLevel1};

TEST(ParallelDeterminism, LearnInitialPolicyIsThreadCountInvariant) {
  util::ThreadPool one(1);
  util::ThreadPool four(4);
  AnalyticEnv serial_env(kCtx, noisy_env(7));
  AnalyticEnv parallel_env(kCtx, noisy_env(7));
  const InitialPolicy serial =
      learn_initial_policy(serial_env, fast_options(&one));
  const InitialPolicy parallel =
      learn_initial_policy(parallel_env, fast_options(&four));
  EXPECT_TRUE(exactly_equal(serial, parallel));
}

TEST(ParallelDeterminism, LearnInitialPolicyIgnoresPriorDrawsOnCloneableEnv) {
  // The per-sample clone decomposition also makes training independent of
  // how many measurements the source environment served beforehand.
  util::ThreadPool one(1);
  AnalyticEnv fresh(kCtx, noisy_env(7));
  AnalyticEnv used(kCtx, noisy_env(7));
  for (int i = 0; i < 5; ++i) used.measure(Configuration::defaults());
  EXPECT_TRUE(exactly_equal(learn_initial_policy(fresh, fast_options(&one)),
                            learn_initial_policy(used, fast_options(&one))));
}

TEST(ParallelDeterminism, BuildLibraryBitIdenticalAcrossThreadCounts) {
  const std::vector<SystemContext> contexts = {
      env::table2_context(1), env::table2_context(2), env::table2_context(3),
      env::table2_context(4)};
  const auto make = [](const SystemContext& ctx) {
    return std::make_unique<AnalyticEnv>(ctx, noisy_env(7));
  };
  util::ThreadPool one(1);
  util::ThreadPool four(4);
  const auto serial = build_library(contexts, make, fast_options(&one));
  const auto parallel = build_library(contexts, make, fast_options(&four));
  ASSERT_EQ(serial.size(), contexts.size());
  ASSERT_EQ(parallel.size(), contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    EXPECT_TRUE(exactly_equal(serial.at(i), parallel.at(i))) << "context " << i;
    EXPECT_EQ(serial.at(i).context, contexts[i]);
  }
}

TEST(ParallelDeterminism, ProfilerTreeStructureIsThreadCountInvariant) {
  // The anchor-propagation contract end to end: profiling the same library
  // build serially and on a 4-thread pool must merge to byte-identical
  // structure signatures (names, hierarchy, call counts) -- only timings
  // may differ. Uses the default profiler because that is what the
  // instrumentation inside build_library records into.
  const std::vector<SystemContext> contexts = {env::table2_context(1),
                                               env::table2_context(2)};
  const auto make = [](const SystemContext& ctx) {
    return std::make_unique<AnalyticEnv>(ctx, noisy_env(7));
  };
  obs::set_profiling(true);
  obs::Profiler& profiler = obs::Profiler::default_profiler();

  const auto signature_of_build = [&](util::ThreadPool& pool) {
    profiler.reset();
    build_library(contexts, make, fast_options(&pool));
    return obs::structure_signature(profiler.snapshot());
  };

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  const std::string serial = signature_of_build(one);
  const std::string parallel = signature_of_build(four);
  EXPECT_EQ(serial, parallel);
  // Sanity: the signature actually contains the instrumented phases.
  EXPECT_NE(serial.find("core.build_library"), std::string::npos);
  EXPECT_NE(serial.find("policy_init.coarse_sample"), std::string::npos);
  profiler.reset();
}

TEST(ParallelDeterminism, ParallelAgentRunsMatchSerial) {
  // Fig5-style fan-out: each run owns its agent and environment, so pooled
  // execution must reproduce the serial traces record for record.
  util::ThreadPool one(1);
  AnalyticEnv train_env(kCtx, noisy_env(7));
  InitialPolicyLibrary library;
  library.add(learn_initial_policy(train_env, fast_options(&one)));

  const std::vector<std::uint64_t> seeds = {100, 101, 102};
  const auto run_one = [&](std::size_t i) {
    RacOptions opt;
    opt.seed = seeds[i];
    opt.online_td.max_sweeps = 20;
    RacAgent agent(opt, library, 0);
    AnalyticEnv env(kCtx, noisy_env(seeds[i]));
    return run_agent(env, agent, {}, 25);
  };

  std::vector<AgentTrace> serial;
  for (std::size_t i = 0; i < seeds.size(); ++i) serial.push_back(run_one(i));
  util::ThreadPool four(4);
  const std::vector<AgentTrace> parallel =
      four.parallel_map(seeds.size(), run_one);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    ASSERT_EQ(parallel[t].records.size(), serial[t].records.size());
    for (std::size_t i = 0; i < serial[t].records.size(); ++i) {
      const IterationRecord& s = serial[t].records[i];
      const IterationRecord& p = parallel[t].records[i];
      EXPECT_EQ(p.iteration, s.iteration);
      EXPECT_EQ(p.response_ms, s.response_ms) << "run " << t << " iter " << i;
      EXPECT_EQ(p.throughput_rps, s.throughput_rps);
      EXPECT_TRUE(p.configuration == s.configuration);
    }
  }
}

}  // namespace
}  // namespace rac::core
