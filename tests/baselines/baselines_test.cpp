#include "baselines/hill_climb.hpp"
#include "baselines/static_agent.hpp"
#include "baselines/trial_and_error.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "env/analytic_env.hpp"

namespace rac::baselines {
namespace {

using config::Configuration;
using config::ParamId;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::VmLevel;
using workload::MixType;

AnalyticEnvOptions env_options(double sigma = 0.05, std::uint64_t seed = 50) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = sigma;
  opt.seed = seed;
  return opt;
}

TEST(StaticDefaultAgent, NeverChangesConfiguration) {
  StaticDefaultAgent agent;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  for (int i = 0; i < 5; ++i) {
    const auto c = agent.decide();
    EXPECT_EQ(c, Configuration::defaults());
    agent.observe(c, env.measure(c));
  }
}

TEST(StaticDefaultAgent, CanHoldCustomConfiguration) {
  Configuration custom;
  custom.set(ParamId::kMaxClients, 400);
  StaticDefaultAgent agent(custom);
  EXPECT_EQ(agent.decide(), custom);
}

TEST(TrialAndError, SweepsEveryParameterThenHolds) {
  TrialAndErrorAgent agent;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  int iterations = 0;
  while (!agent.finished_sweep() && iterations < 100) {
    const auto c = agent.decide();
    agent.observe(c, env.measure(c));
    ++iterations;
  }
  EXPECT_TRUE(agent.finished_sweep());
  // 3 candidate values per parameter, 8 parameters.
  EXPECT_LE(iterations, 24);
  // Once done, the decision is stable.
  const auto held = agent.decide();
  agent.observe(held, env.measure(held));
  EXPECT_EQ(agent.decide(), held);
}

TEST(TrialAndError, ImprovesOnTheDefaultConfiguration) {
  TrialAndErrorAgent agent;
  AnalyticEnv env({MixType::kOrdering, VmLevel::kLevel1}, env_options());
  core::AgentTrace trace = core::run_agent(env, agent, {}, 40);
  AnalyticEnv truth({MixType::kOrdering, VmLevel::kLevel1}, env_options(0.0));
  const double default_rt =
      truth.evaluate(Configuration::defaults()).response_ms;
  EXPECT_LT(trace.mean_response_ms(30, 40), 0.7 * default_rt);
}

TEST(TrialAndError, CoarseSweepMissesTheFineOptimum) {
  // The paper's criticism: independent, coarse tuning lands on a local /
  // coarse optimum. The swept MaxClients values are {50, 325, 600}; the
  // true optimum for this context sits near 225-275, so the held setting
  // must be one of the coarse candidates, not the true optimum.
  TrialAndErrorAgent agent;
  AnalyticEnv env({MixType::kOrdering, VmLevel::kLevel1}, env_options());
  core::run_agent(env, agent, {}, 30);
  ASSERT_TRUE(agent.finished_sweep());
  const int chosen = agent.base().value(ParamId::kMaxClients);
  EXPECT_TRUE(chosen == 50 || chosen == 325 || chosen == 600) << chosen;
}

TEST(TrialAndError, RestartsAfterContextChange) {
  TrialAndErrorAgent agent;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const core::ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {30, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  core::run_agent(env, agent, schedule, 60);
  EXPECT_GE(agent.restarts(), 1);
}

TEST(TrialAndError, RejectsBadOptions) {
  TrialAndErrorOptions opt;
  opt.values_per_parameter = 1;
  EXPECT_THROW(TrialAndErrorAgent{opt}, std::invalid_argument);
}

TEST(HillClimb, WalksToNearLocalOptimum) {
  HillClimbAgent agent;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const auto trace = core::run_agent(env, agent, {}, 60);
  AnalyticEnv truth({MixType::kShopping, VmLevel::kLevel1}, env_options(0.0));
  const double default_rt =
      truth.evaluate(Configuration::defaults()).response_ms;
  EXPECT_LT(trace.mean_response_ms(45, 60), 0.5 * default_rt);
}

TEST(HillClimb, FineStepsBeatTheCoarseTrialAndError) {
  // The line search exploits the fine grid, so its stable state should be
  // at least as good as the coarse sweep's.
  AnalyticEnv env1({MixType::kOrdering, VmLevel::kLevel1}, env_options());
  HillClimbAgent hill;
  const auto hill_trace = core::run_agent(env1, hill, {}, 60);
  AnalyticEnv env2({MixType::kOrdering, VmLevel::kLevel1}, env_options());
  TrialAndErrorAgent sweep;
  const auto sweep_trace = core::run_agent(env2, sweep, {}, 60);
  EXPECT_LE(hill_trace.mean_response_ms(45, 60),
            1.1 * sweep_trace.mean_response_ms(45, 60));
}

TEST(HillClimb, RejectsBadOptions) {
  HillClimbOptions opt;
  opt.probe_step = 0;
  EXPECT_THROW(HillClimbAgent{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace rac::baselines
