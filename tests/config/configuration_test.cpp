#include "config/configuration.hpp"

#include <gtest/gtest.h>

namespace rac::config {
namespace {

TEST(Configuration, DefaultsMatchCatalog) {
  const Configuration c;
  for (const auto& s : catalog()) {
    EXPECT_EQ(c.value(s.id), s.default_value) << s.name;
  }
}

TEST(Configuration, SetClampsToRange) {
  Configuration c;
  c.set(ParamId::kMaxClients, 10000);
  EXPECT_EQ(c.value(ParamId::kMaxClients), 600);
  c.set(ParamId::kMaxClients, -5);
  EXPECT_EQ(c.value(ParamId::kMaxClients), 50);
}

TEST(Configuration, ConstructorClampsValues) {
  std::array<int, kNumParams> raw{};
  raw.fill(100000);
  const Configuration c(raw);
  for (const auto& s : catalog()) EXPECT_EQ(c.value(s.id), s.max);
}

TEST(Configuration, NormalizedRoundTrip) {
  Configuration c;
  c.set_normalized(ParamId::kMaxClients, 0.0);
  EXPECT_EQ(c.value(ParamId::kMaxClients), 50);
  EXPECT_DOUBLE_EQ(c.normalized(ParamId::kMaxClients), 0.0);
  c.set_normalized(ParamId::kMaxClients, 1.0);
  EXPECT_EQ(c.value(ParamId::kMaxClients), 600);
  EXPECT_DOUBLE_EQ(c.normalized(ParamId::kMaxClients), 1.0);
  c.set_normalized(ParamId::kMaxClients, 0.5);
  EXPECT_EQ(c.value(ParamId::kMaxClients), 325);
}

TEST(Configuration, SetNormalizedClampsInput) {
  Configuration c;
  c.set_normalized(ParamId::kKeepAliveTimeout, 2.5);
  EXPECT_EQ(c.value(ParamId::kKeepAliveTimeout), 21);
  c.set_normalized(ParamId::kKeepAliveTimeout, -1.0);
  EXPECT_EQ(c.value(ParamId::kKeepAliveTimeout), 1);
}

TEST(Configuration, StepMovesByFineStep) {
  Configuration c;
  EXPECT_TRUE(c.step(ParamId::kMaxClients, 1));
  EXPECT_EQ(c.value(ParamId::kMaxClients), 175);
  EXPECT_TRUE(c.step(ParamId::kMaxClients, -2));
  EXPECT_EQ(c.value(ParamId::kMaxClients), 125);
}

TEST(Configuration, StepClampsAtBoundaryAndReportsNoChange) {
  Configuration c;
  c.set(ParamId::kMaxClients, 600);
  EXPECT_FALSE(c.step(ParamId::kMaxClients, 1));
  EXPECT_EQ(c.value(ParamId::kMaxClients), 600);
  c.set(ParamId::kMaxClients, 590);
  // Partial step toward the boundary still changes the value.
  EXPECT_TRUE(c.step(ParamId::kMaxClients, 1));
  EXPECT_EQ(c.value(ParamId::kMaxClients), 600);
}

TEST(Configuration, EqualityAndHash) {
  Configuration a;
  Configuration b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(ParamId::kMaxThreads, 300);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Configuration, HashIsStableAcrossRuns) {
  // FNV-1a over fixed input: lock the value so Q-tables could be persisted.
  const Configuration c;
  EXPECT_EQ(c.hash(), Configuration().hash());
}

TEST(Configuration, NormalizedValuesVectorMatchesPerParam) {
  Configuration c;
  c.set(ParamId::kMinSpareServers, 45);
  const auto z = c.normalized_values();
  for (ParamId id : kAllParams) {
    EXPECT_DOUBLE_EQ(z[index(id)], c.normalized(id));
  }
}

TEST(Configuration, ToStringContainsAllNamesAndValues) {
  const Configuration c;
  const std::string s = c.to_string();
  for (const auto& spec : catalog()) {
    EXPECT_NE(s.find(spec.name), std::string::npos);
  }
  EXPECT_NE(s.find("MaxClients=150"), std::string::npos);
}

TEST(Configuration, CompactFormat) {
  const Configuration c;
  EXPECT_EQ(c.compact(), "150/15/5/15/200/30/5/50");
}

}  // namespace
}  // namespace rac::config
