#include "config/space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace rac::config {
namespace {

TEST(Action, EncodingRoundTrip) {
  EXPECT_TRUE(Action::keep().is_keep());
  EXPECT_EQ(Action::keep().direction(), 0);
  for (ParamId p : kAllParams) {
    const Action inc = Action::increase(p);
    const Action dec = Action::decrease(p);
    EXPECT_FALSE(inc.is_keep());
    EXPECT_EQ(inc.param(), p);
    EXPECT_EQ(inc.direction(), +1);
    EXPECT_EQ(dec.param(), p);
    EXPECT_EQ(dec.direction(), -1);
    EXPECT_NE(inc.id(), dec.id());
  }
}

TEST(Action, AllIdsDistinct) {
  std::set<int> ids;
  for (const Action a : ConfigSpace::all_actions()) ids.insert(a.id());
  EXPECT_EQ(ids.size(), kNumActions);
  EXPECT_EQ(kNumActions, 2 * kNumParams + 1);
}

TEST(Action, ToStringNamesParameter) {
  EXPECT_EQ(Action::keep().to_string(), "keep");
  EXPECT_EQ(Action::increase(ParamId::kMaxClients).to_string(),
            "inc MaxClients");
  EXPECT_EQ(Action::decrease(ParamId::kSessionTimeout).to_string(),
            "dec Session timeout");
}

TEST(ConfigSpace, ApplyMovesOneFineStep) {
  const Configuration c;
  const auto next = ConfigSpace::apply(c, Action::increase(ParamId::kMaxClients));
  EXPECT_EQ(next.value(ParamId::kMaxClients), 175);
  // All other parameters untouched.
  for (ParamId id : kAllParams) {
    if (id != ParamId::kMaxClients) {
      EXPECT_EQ(next.value(id), c.value(id));
    }
  }
}

TEST(ConfigSpace, ApplyKeepIsIdentity) {
  const Configuration c;
  EXPECT_EQ(ConfigSpace::apply(c, Action::keep()), c);
}

TEST(ConfigSpace, ChangesDetectsBoundaryClamp) {
  Configuration c;
  c.set(ParamId::kKeepAliveTimeout, 21);
  EXPECT_FALSE(
      ConfigSpace::changes(c, Action::increase(ParamId::kKeepAliveTimeout)));
  EXPECT_TRUE(
      ConfigSpace::changes(c, Action::decrease(ParamId::kKeepAliveTimeout)));
  EXPECT_FALSE(ConfigSpace::changes(c, Action::keep()));
}

TEST(ConfigSpace, NeighborsIncludeSelfAndDistinctStates) {
  Configuration c;
  for (ParamId id : kAllParams) c.set_normalized(id, 0.5);  // interior point
  const auto neighbors = ConfigSpace::neighbors(c);
  // Interior point: keep + 2 moves per parameter.
  EXPECT_EQ(neighbors.size(), 1 + 2 * kNumParams);
  std::set<std::size_t> hashes;
  for (const auto& n : neighbors) hashes.insert(n.hash());
  EXPECT_EQ(hashes.size(), neighbors.size());
}

TEST(ConfigSpace, NeighborsShrinkAtCorner) {
  Configuration c;
  for (ParamId id : kAllParams) c.set_normalized(id, 0.0);
  const auto neighbors = ConfigSpace::neighbors(c);
  // Only increases are possible.
  EXPECT_EQ(neighbors.size(), 1 + kNumParams);
}

TEST(ConfigSpace, FineGridCoversRange) {
  const auto grid = ConfigSpace::fine_grid(ParamId::kMaxClients);
  EXPECT_EQ(grid.front(), 50);
  EXPECT_EQ(grid.back(), 600);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
  EXPECT_EQ(grid.size(), 23u);  // 50, 75, ..., 600
}

TEST(ConfigSpace, SnapToFineIsIdempotent) {
  Configuration c;
  c.set(ParamId::kMaxClients, 163);  // nearest grid points: 150 and 175
  const auto snapped = ConfigSpace::snap_to_fine(c);
  EXPECT_EQ(snapped.value(ParamId::kMaxClients), 175);
  EXPECT_EQ(ConfigSpace::snap_to_fine(snapped), snapped);
}

TEST(ConfigSpace, CoarseFractionsEvenlySpaced) {
  const ConfigSpace space(4);
  const auto fr = space.coarse_fractions();
  ASSERT_EQ(fr.size(), 4u);
  EXPECT_DOUBLE_EQ(fr[0], 0.0);
  EXPECT_NEAR(fr[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(fr[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(fr[3], 1.0);
}

TEST(ConfigSpace, ExpandGivesGroupMembersSameFraction) {
  const GroupFractions f = {0.0, 1.0, 0.5, 0.5};
  const Configuration c = ConfigSpace::expand(f);
  // Capacity group at fraction 0.
  EXPECT_EQ(c.value(ParamId::kMaxClients), 50);
  EXPECT_EQ(c.value(ParamId::kMaxThreads), 50);
  // Connection-life group at fraction 1.
  EXPECT_EQ(c.value(ParamId::kKeepAliveTimeout), 21);
  EXPECT_EQ(c.value(ParamId::kSessionTimeout), 35);
}

TEST(ConfigSpace, CoarseGridHasLevelsToTheGroups) {
  const ConfigSpace space(4);
  const auto grid = space.coarse_grid();
  EXPECT_EQ(grid.size(), 256u);  // 4^4
  std::set<std::size_t> unique;
  for (const auto& c : grid) unique.insert(c.hash());
  EXPECT_EQ(unique.size(), grid.size());
}

TEST(ConfigSpace, CoarseGridWithThreeLevels) {
  const ConfigSpace space(3);
  EXPECT_EQ(space.coarse_grid().size(), 81u);  // 3^4
}

TEST(ConfigSpace, NearestCoarseSnapsToGridMember) {
  const ConfigSpace space(4);
  const auto grid = space.coarse_grid();
  Configuration c;
  c.set(ParamId::kMaxClients, 240);  // near fraction 1/3 (233)
  c.set(ParamId::kMaxThreads, 220);
  const auto nearest = space.nearest_coarse(c);
  bool found = false;
  for (const auto& g : grid) {
    if (g == nearest) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConfigSpace, NearestCoarseOfCoarsePointIsItself) {
  const ConfigSpace space(4);
  for (const auto& g : space.coarse_grid()) {
    EXPECT_EQ(space.nearest_coarse(g), g);
  }
}

TEST(ConfigSpace, RandomFineStaysOnGrid) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto c = ConfigSpace::random_fine(rng);
    EXPECT_EQ(ConfigSpace::snap_to_fine(c), c);
  }
}

TEST(ConfigSpace, RejectsTooFewCoarseLevels) {
  EXPECT_THROW(ConfigSpace(1), std::invalid_argument);
}

// Regression: the Table-1 catalog sanity checks migrated from ad-hoc
// asserts to contracts. validate_spec is callable in any build (the full
// validate_catalog additionally runs at ConfigSpace construction under
// RAC_AUDIT).
TEST(ConfigSpace, ValidateSpecAcceptsTheRealCatalog) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  EXPECT_NO_THROW(validate_catalog());
}

TEST(ConfigSpace, ValidateSpecRejectsInvertedBounds) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  ParamSpec bad = spec(ParamId::kMaxClients);
  bad.min = bad.max + 1;
  EXPECT_THROW(validate_spec(bad), util::ContractViolation);
}

TEST(ConfigSpace, ValidateSpecRejectsBadStepAndDefault) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  ParamSpec bad = spec(ParamId::kMaxThreads);
  bad.fine_step = 0;
  EXPECT_THROW(validate_spec(bad), util::ContractViolation);

  ParamSpec wide = spec(ParamId::kMaxThreads);
  wide.fine_step = wide.max - wide.min + 1;
  EXPECT_THROW(validate_spec(wide), util::ContractViolation);

  ParamSpec stray = spec(ParamId::kSessionTimeout);
  stray.default_value = stray.max + 10;
  EXPECT_THROW(validate_spec(stray), util::ContractViolation);
}

}  // namespace
}  // namespace rac::config
