#include "config/params.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rac::config {
namespace {

TEST(Params, CatalogMatchesPaperTable1) {
  EXPECT_EQ(kNumParams, 8u);
  const auto& mc = spec(ParamId::kMaxClients);
  EXPECT_EQ(mc.min, 50);
  EXPECT_EQ(mc.max, 600);
  EXPECT_EQ(mc.default_value, 150);
  EXPECT_EQ(mc.tier, Tier::kWeb);

  const auto& ka = spec(ParamId::kKeepAliveTimeout);
  EXPECT_EQ(ka.min, 1);
  EXPECT_EQ(ka.max, 21);
  EXPECT_EQ(ka.default_value, 15);

  const auto& mt = spec(ParamId::kMaxThreads);
  EXPECT_EQ(mt.min, 50);
  EXPECT_EQ(mt.max, 600);
  EXPECT_EQ(mt.default_value, 200);
  EXPECT_EQ(mt.tier, Tier::kApp);

  const auto& st = spec(ParamId::kSessionTimeout);
  EXPECT_EQ(st.min, 1);
  EXPECT_EQ(st.max, 35);
  EXPECT_EQ(st.default_value, 30);
}

TEST(Params, AllRangesAreValidAndDefaultsInRange) {
  for (const auto& s : catalog()) {
    EXPECT_LT(s.min, s.max) << s.name;
    EXPECT_GE(s.default_value, s.min) << s.name;
    EXPECT_LE(s.default_value, s.max) << s.name;
    EXPECT_GT(s.fine_step, 0) << s.name;
    EXPECT_LT(s.fine_step, s.max - s.min) << s.name;
  }
}

TEST(Params, CatalogIndexedByParamId) {
  for (const auto& s : catalog()) {
    EXPECT_EQ(&spec(s.id), &s);
  }
}

TEST(Params, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& s : catalog()) names.insert(s.name);
  EXPECT_EQ(names.size(), kNumParams);
}

TEST(Params, FourTierBalancedSplit) {
  int web = 0;
  int app = 0;
  for (const auto& s : catalog()) {
    (s.tier == Tier::kWeb ? web : app)++;
  }
  EXPECT_EQ(web, 4);
  EXPECT_EQ(app, 4);
}

TEST(Params, GroupsPairOneWebWithOneAppParameter) {
  for (ParamGroup g : kAllGroups) {
    const auto members = group_members(g);
    EXPECT_NE(spec(members[0]).tier, spec(members[1]).tier)
        << group_name(g);
    EXPECT_EQ(spec(members[0]).group, g);
    EXPECT_EQ(spec(members[1]).group, g);
  }
}

TEST(Params, EveryParameterBelongsToExactlyOneGroup) {
  std::set<ParamId> seen;
  for (ParamGroup g : kAllGroups) {
    for (ParamId p : group_members(g)) {
      EXPECT_TRUE(seen.insert(p).second) << name(p);
    }
  }
  EXPECT_EQ(seen.size(), kNumParams);
}

TEST(Params, CapacityGroupSharesRange) {
  const auto members = group_members(ParamGroup::kCapacity);
  EXPECT_EQ(spec(members[0]).min, spec(members[1]).min);
  EXPECT_EQ(spec(members[0]).max, spec(members[1]).max);
}

}  // namespace
}  // namespace rac::config
