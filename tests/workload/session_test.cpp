#include "workload/session.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "util/contracts.hpp"

namespace rac::workload {
namespace {

TEST(SessionGenerator, FirstStepStartsSession) {
  SessionGenerator gen(MixType::kShopping, util::Rng(1));
  const auto step = gen.next();
  EXPECT_TRUE(step.new_session);
  EXPECT_GE(step.think_time_s, 0.0);
  EXPECT_EQ(gen.sessions_started(), 1u);
}

TEST(SessionGenerator, SessionLengthMatchesProfileMean) {
  SessionGenerator gen(MixType::kOrdering, util::Rng(2));
  const int steps = 200000;
  int sessions = 0;
  for (int i = 0; i < steps; ++i) {
    if (gen.next().new_session) ++sessions;
  }
  const double mean_len = static_cast<double>(steps) / sessions;
  EXPECT_NEAR(mean_len, browser_profile(MixType::kOrdering).session_length_mean,
              0.5);
}

TEST(SessionGenerator, ThinkTimesMatchEffectiveMean) {
  SessionGenerator gen(MixType::kShopping, util::Rng(3));
  double total = 0.0;
  int count = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto step = gen.next();
    if (!step.new_session) {  // in-session gaps only
      total += step.think_time_s;
      ++count;
    }
  }
  const double expected =
      browser_profile(MixType::kShopping).effective_think_mean_s();
  EXPECT_NEAR(total / count, expected, expected * 0.05);
}

TEST(SessionGenerator, InteractionFrequenciesMatchMix) {
  SessionGenerator gen(MixType::kBrowsing, util::Rng(4));
  std::array<int, kNumInteractions> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(gen.next().interaction)];
  }
  const auto freq = mix_frequencies(MixType::kBrowsing);
  for (std::size_t i = 0; i < kNumInteractions; ++i) {
    // CBMG navigation keeps the long-run frequencies near (not exactly at)
    // the spec percentages; 0.03 absolute matches the stationary bound
    // asserted in cbmg_test.
    EXPECT_NEAR(counts[i] / static_cast<double>(n), freq[i], 0.03)
        << interaction_name(static_cast<Interaction>(i));
  }
}

TEST(SessionGenerator, DeterministicGivenSeed) {
  SessionGenerator a(MixType::kShopping, util::Rng(77));
  SessionGenerator b(MixType::kShopping, util::Rng(77));
  for (int i = 0; i < 1000; ++i) {
    const auto sa = a.next();
    const auto sb = b.next();
    EXPECT_EQ(sa.interaction, sb.interaction);
    EXPECT_DOUBLE_EQ(sa.think_time_s, sb.think_time_s);
    EXPECT_EQ(sa.new_session, sb.new_session);
  }
}

TEST(SessionGenerator, CountsSteps) {
  SessionGenerator gen(MixType::kOrdering, util::Rng(5));
  for (int i = 0; i < 10; ++i) gen.next();
  EXPECT_EQ(gen.steps_generated(), 10u);
}

TEST(SessionGenerator, UnitThinkScaleReproducesTheUnscaledStreamBitwise) {
  SessionGenerator plain(MixType::kShopping, util::Rng(21));
  SessionGenerator scaled(MixType::kShopping, util::Rng(21), true, 1.0);
  for (int i = 0; i < 2000; ++i) {
    const auto a = plain.next();
    const auto b = scaled.next();
    EXPECT_EQ(a.interaction, b.interaction);
    EXPECT_DOUBLE_EQ(a.think_time_s, b.think_time_s);
    EXPECT_EQ(a.new_session, b.new_session);
  }
}

TEST(SessionGenerator, ThinkScaleStretchesInSessionThinkTimes) {
  SessionGenerator gen(MixType::kShopping, util::Rng(22), true, 3.0);
  double total = 0.0;
  int count = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto step = gen.next();
    if (!step.new_session) {
      total += step.think_time_s;
      ++count;
    }
  }
  const auto profile = browser_profile(MixType::kShopping);
  const double expected =
      3.0 * profile.think_time_mean_s +
      profile.pause_prob * 3.0 * profile.pause_mean_s;
  EXPECT_NEAR(total / count, expected, expected * 0.05);
}

TEST(SessionGenerator, RejectsNonPositiveThinkScale) {
  EXPECT_THROW(SessionGenerator(MixType::kShopping, util::Rng(1), true, 0.0),
               util::ContractViolation);
}

TEST(SessionGenerator, RestoreRejectsCorruptState) {
  SessionGenerator gen(MixType::kShopping, util::Rng(23));
  for (int i = 0; i < 10; ++i) gen.next();
  SessionState bad = gen.state();
  bad.remaining_in_session = -1;
  EXPECT_THROW(gen.restore(bad), std::invalid_argument);
  bad = gen.state();
  bad.last_interaction = 999;
  EXPECT_THROW(gen.restore(bad), std::invalid_argument);
}

TEST(SessionGenerator, FirstArrivalStaggeredWithinThinkTime) {
  // The very first think time is uniform in [0, think mean): prevents a
  // synchronized thundering herd at simulation start.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    SessionGenerator gen(MixType::kShopping, util::Rng(seed));
    const auto step = gen.next();
    EXPECT_LT(step.think_time_s,
              browser_profile(MixType::kShopping).think_time_mean_s);
  }
}

}  // namespace
}  // namespace rac::workload
