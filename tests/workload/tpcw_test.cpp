#include "workload/tpcw.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rac::workload {
namespace {

TEST(Tpcw, FourteenInteractions) {
  EXPECT_EQ(kNumInteractions, 14u);
  EXPECT_EQ(interactions().size(), 14u);
}

TEST(Tpcw, InteractionSpecsIndexedById) {
  for (const auto& spec : interactions()) {
    EXPECT_EQ(&interaction(spec.id), &spec);
  }
}

TEST(Tpcw, DemandsArePositive) {
  for (const auto& spec : interactions()) {
    EXPECT_GT(spec.web_demand_ms, 0.0) << spec.name;
    EXPECT_GT(spec.app_demand_ms, 0.0) << spec.name;
    EXPECT_GT(spec.db_demand_ms, 0.0) << spec.name;
  }
}

TEST(Tpcw, MixFrequenciesSumToOne) {
  for (MixType mix : kAllMixes) {
    const auto freq = mix_frequencies(mix);
    double total = 0.0;
    for (double f : freq) {
      EXPECT_GT(f, 0.0);
      total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << mix_name(mix);
  }
}

TEST(Tpcw, OrderFractionFollowsMixDefinition) {
  // TPC-W: browsing 5%, shopping 20%, ordering 50% order-class traffic.
  const auto browsing = mix_stats(MixType::kBrowsing);
  const auto shopping = mix_stats(MixType::kShopping);
  const auto ordering = mix_stats(MixType::kOrdering);
  EXPECT_NEAR(browsing.order_fraction, 0.05, 0.01);
  EXPECT_NEAR(shopping.order_fraction, 0.20, 0.01);
  EXPECT_NEAR(ordering.order_fraction, 0.50, 0.01);
}

TEST(Tpcw, WriteFractionOrderedByMix) {
  const auto browsing = mix_stats(MixType::kBrowsing);
  const auto shopping = mix_stats(MixType::kShopping);
  const auto ordering = mix_stats(MixType::kOrdering);
  EXPECT_LT(browsing.write_fraction, shopping.write_fraction);
  EXPECT_LT(shopping.write_fraction, ordering.write_fraction);
  EXPECT_GT(ordering.write_fraction, 0.3);
}

TEST(Tpcw, SessionFractionOrderedByMix) {
  EXPECT_LT(mix_stats(MixType::kBrowsing).session_fraction,
            mix_stats(MixType::kOrdering).session_fraction);
}

TEST(Tpcw, AggregateDemandsPositiveAndBounded) {
  for (MixType mix : kAllMixes) {
    const auto stats = mix_stats(mix);
    EXPECT_GT(stats.web_demand_ms, 0.0);
    EXPECT_GT(stats.app_demand_ms, 0.0);
    EXPECT_GT(stats.db_demand_ms, 0.0);
    EXPECT_LT(stats.db_demand_ms, 30.0);  // raw table units, pre-scaling
  }
}

TEST(Tpcw, BrowserProfileSessionLengthsOrdered) {
  // Browsing sessions are long walks; ordering sessions are short.
  EXPECT_GT(browser_profile(MixType::kBrowsing).session_length_mean,
            browser_profile(MixType::kShopping).session_length_mean);
  EXPECT_GT(browser_profile(MixType::kShopping).session_length_mean,
            browser_profile(MixType::kOrdering).session_length_mean);
}

TEST(Tpcw, EffectiveThinkIncludesPauses) {
  for (MixType mix : kAllMixes) {
    const auto p = browser_profile(mix);
    EXPECT_GT(p.effective_think_mean_s(), p.think_time_mean_s);
    EXPECT_DOUBLE_EQ(p.effective_think_mean_s(),
                     p.think_time_mean_s + p.pause_prob * p.pause_mean_s);
  }
}

TEST(Tpcw, WriteInteractionsUseSessions) {
  // Cart and purchase interactions are session-bound in TPC-W.
  EXPECT_TRUE(interaction(Interaction::kShoppingCart).uses_session);
  EXPECT_TRUE(interaction(Interaction::kBuyConfirm).uses_session);
  EXPECT_TRUE(interaction(Interaction::kBuyRequest).is_write);
  EXPECT_FALSE(interaction(Interaction::kHome).is_write);
}

TEST(Tpcw, MixNames) {
  EXPECT_EQ(mix_name(MixType::kBrowsing), "browsing");
  EXPECT_EQ(mix_name(MixType::kShopping), "shopping");
  EXPECT_EQ(mix_name(MixType::kOrdering), "ordering");
}

TEST(Tpcw, ParseMixNameInvertsMixName) {
  for (MixType mix : kAllMixes) {
    EXPECT_EQ(parse_mix_name(mix_name(mix)), mix);
  }
  EXPECT_THROW(parse_mix_name("buying"), std::invalid_argument);
  EXPECT_THROW(parse_mix_name(""), std::invalid_argument);
  EXPECT_THROW(parse_mix_name("Shopping"), std::invalid_argument);
}

}  // namespace
}  // namespace rac::workload
