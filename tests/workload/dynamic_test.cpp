// Dynamic-traffic layer: shape purity/determinism, blend identities, the
// model's token round-trip, and the golden cross-thread target streams.
#include "workload/dynamic.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"
#include "workload/session.hpp"

namespace rac::workload {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_same(const TrafficTarget& a, const TrafficTarget& b) {
  EXPECT_EQ(bits(a.concurrency_scale), bits(b.concurrency_scale));
  EXPECT_EQ(bits(a.think_scale), bits(b.think_scale));
  for (std::size_t m = 0; m < kNumMixes; ++m) {
    EXPECT_EQ(bits(a.mix_weights[m]), bits(b.mix_weights[m])) << "mix " << m;
  }
  EXPECT_TRUE(same_target(a, b));
}

// ---- targets and blend helpers --------------------------------------------

TEST(TrafficTarget, OneHotIsUnitScalesWithAllWeightOnTheMix) {
  for (std::size_t m = 0; m < kNumMixes; ++m) {
    const TrafficTarget t = one_hot_target(kAllMixes[m]);
    EXPECT_EQ(t.concurrency_scale, 1.0);
    EXPECT_EQ(t.think_scale, 1.0);
    for (std::size_t j = 0; j < kNumMixes; ++j) {
      EXPECT_EQ(t.mix_weights[j], j == m ? 1.0 : 0.0);
    }
    EXPECT_EQ(dominant_mix(t), kAllMixes[m]);
  }
}

TEST(TrafficTarget, DominantMixBreaksTiesTowardTheLowerIndex) {
  TrafficTarget t;
  t.mix_weights = {0.5, 0.5, 0.0};
  EXPECT_EQ(dominant_mix(t), kAllMixes[0]);
  t.mix_weights = {0.2, 0.4, 0.4};
  EXPECT_EQ(dominant_mix(t), kAllMixes[1]);
}

TEST(TrafficTarget, SameTargetComparesBitwise) {
  const TrafficTarget a = one_hot_target(MixType::kShopping);
  TrafficTarget b = a;
  EXPECT_TRUE(same_target(a, b));
  b.think_scale = 1.0000000000000002;  // one ulp off
  EXPECT_FALSE(same_target(a, b));
}

TEST(TrafficBlend, OneHotBlendReproducesThePlainMixBitwise) {
  for (std::size_t m = 0; m < kNumMixes; ++m) {
    const MixType mix = kAllMixes[m];
    const TrafficTarget t = one_hot_target(mix);
    const MixStats plain = mix_stats(mix);
    const MixStats blended = blend_mix_stats(t.mix_weights);
    EXPECT_EQ(bits(plain.web_demand_ms), bits(blended.web_demand_ms));
    EXPECT_EQ(bits(plain.app_demand_ms), bits(blended.app_demand_ms));
    EXPECT_EQ(bits(plain.db_demand_ms), bits(blended.db_demand_ms));
    EXPECT_EQ(bits(plain.write_fraction), bits(blended.write_fraction));
    EXPECT_EQ(bits(plain.session_fraction), bits(blended.session_fraction));
    EXPECT_EQ(bits(plain.order_fraction), bits(blended.order_fraction));

    const BrowserProfile pp = browser_profile(mix);
    const BrowserProfile bp = blend_browser_profile(t.mix_weights, 1.0);
    EXPECT_EQ(bits(pp.think_time_mean_s), bits(bp.think_time_mean_s));
    EXPECT_EQ(bits(pp.session_length_mean), bits(bp.session_length_mean));
    EXPECT_EQ(bits(pp.pause_mean_s), bits(bp.pause_mean_s));
  }
}

TEST(TrafficBlend, ThinkScaleMultipliesOnlyThinkAndPauseMeans) {
  const TrafficTarget t = one_hot_target(MixType::kOrdering);
  const BrowserProfile base = blend_browser_profile(t.mix_weights, 1.0);
  const BrowserProfile scaled = blend_browser_profile(t.mix_weights, 2.0);
  EXPECT_DOUBLE_EQ(scaled.think_time_mean_s, 2.0 * base.think_time_mean_s);
  EXPECT_DOUBLE_EQ(scaled.pause_mean_s, 2.0 * base.pause_mean_s);
  EXPECT_EQ(bits(scaled.session_length_mean), bits(base.session_length_mean));
}

TEST(TrafficBlend, RejectsZeroMassAndNegativeWeights) {
  EXPECT_THROW(blend_mix_stats({0.0, 0.0, 0.0}), util::ContractViolation);
  EXPECT_THROW(blend_mix_stats({1.0, -0.5, 0.0}), util::ContractViolation);
  EXPECT_THROW(blend_browser_profile({1.0, 0.0, 0.0}, 0.0),
               util::ContractViolation);
}

// ---- shapes ---------------------------------------------------------------

TEST(DiurnalShape, OscillatesAroundUnityWithinAmplitude) {
  DiurnalParams p;
  p.period_intervals = 24.0;
  p.amplitude = 0.3;
  const DiurnalShape shape(p);
  double lo = 10.0;
  double hi = 0.0;
  for (std::int64_t i = 0; i < 24; ++i) {
    TrafficTarget t = one_hot_target(MixType::kShopping);
    shape.apply(i, t);
    lo = std::min(lo, t.concurrency_scale);
    hi = std::max(hi, t.concurrency_scale);
    EXPECT_GE(t.concurrency_scale, 1.0 - p.amplitude - 1e-12);
    EXPECT_LE(t.concurrency_scale, 1.0 + p.amplitude + 1e-12);
  }
  EXPECT_LT(lo, 0.8);  // the trough and crest are actually reached
  EXPECT_GT(hi, 1.2);
}

TEST(DiurnalShape, RejectsBadParams) {
  EXPECT_THROW(DiurnalShape({0.0, 0.4, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiurnalShape({96.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiurnalShape({96.0, -0.1, 0.0}), std::invalid_argument);
}

TEST(FlashCrowdShape, EnvelopeRampsHoldsAndDecays) {
  FlashCrowdParams p;
  p.onset_prob = 0.0;  // no stochastic onsets; drive the envelope directly
  p.ramp_intervals = 2;
  p.hold_intervals = 3;
  p.decay_intervals = 4;
  p.peak_scale = 3.0;
  EXPECT_EQ(flash_crowd_duration(p), 9);

  // Scan a seed whose interval-0 onset draw fires so the envelope is
  // observable through flash_scale_at.
  // A low onset probability makes an isolated interval-0 onset (no second
  // onset in 1..9) common enough that the scan always finds one.
  FlashCrowdParams armed = p;
  armed.onset_prob = 0.05;
  std::uint64_t seed = 0;
  for (; seed < 10000; ++seed) {
    armed.seed = seed;
    bool isolated = flash_onset_at(armed, 0);
    for (std::int64_t i = 1; i <= 9 && isolated; ++i) {
      isolated = !flash_onset_at(armed, i);
    }
    if (isolated) break;
  }
  ASSERT_LT(seed, 10000u) << "no isolating seed found";

  std::vector<double> envelope;
  for (std::int64_t i = 0; i < 10; ++i) {
    envelope.push_back(flash_scale_at(armed, i));
  }
  // Ramp strictly rises toward the peak...
  EXPECT_GT(envelope[0], 1.0);
  EXPECT_GT(envelope[1], envelope[0]);
  EXPECT_LT(envelope[1], p.peak_scale);
  // ...the hold sits at the peak...
  EXPECT_DOUBLE_EQ(envelope[2], p.peak_scale);
  EXPECT_DOUBLE_EQ(envelope[3], p.peak_scale);
  EXPECT_DOUBLE_EQ(envelope[4], p.peak_scale);
  // ...and the decay falls back to baseline.
  EXPECT_LT(envelope[5], p.peak_scale);
  EXPECT_GT(envelope[5], envelope[6]);
  EXPECT_GT(envelope[8], 1.0);
  EXPECT_DOUBLE_EQ(envelope[9], 1.0);  // past the crowd
}

TEST(FlashCrowdShape, OnsetDecisionsArePureAndSeedDependent) {
  FlashCrowdParams p;
  p.onset_prob = 0.3;
  p.seed = 42;
  std::vector<bool> first;
  for (std::int64_t i = 0; i < 64; ++i) first.push_back(flash_onset_at(p, i));
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(flash_onset_at(p, i), first[static_cast<std::size_t>(i)]);
  }
  p.seed = 43;
  std::vector<bool> other;
  for (std::int64_t i = 0; i < 64; ++i) other.push_back(flash_onset_at(p, i));
  EXPECT_NE(first, other);
}

TEST(FlashCrowdShape, RejectsBadParams) {
  FlashCrowdParams p;
  p.onset_prob = 1.5;
  EXPECT_THROW(FlashCrowdShape{p}, std::invalid_argument);
  p = {};
  p.ramp_intervals = 0;
  EXPECT_THROW(FlashCrowdShape{p}, std::invalid_argument);
  p = {};
  p.hold_intervals = -1;
  EXPECT_THROW(FlashCrowdShape{p}, std::invalid_argument);
  p = {};
  p.decay_intervals = 0;
  EXPECT_THROW(FlashCrowdShape{p}, std::invalid_argument);
  p = {};
  p.peak_scale = 1.0;
  EXPECT_THROW(FlashCrowdShape{p}, std::invalid_argument);
}

TEST(MixDriftShape, EndpointsAreBitwiseOneHot) {
  MixDriftParams p;
  p.from = MixType::kShopping;
  p.to = MixType::kOrdering;
  p.start_interval = 10;
  p.duration_intervals = 4;
  const MixDriftShape shape(p);

  TrafficTarget before = one_hot_target(MixType::kBrowsing);
  shape.apply(0, before);
  expect_same(before, one_hot_target(MixType::kShopping));

  TrafficTarget at_start = one_hot_target(MixType::kBrowsing);
  shape.apply(10, at_start);
  expect_same(at_start, one_hot_target(MixType::kShopping));

  TrafficTarget after = one_hot_target(MixType::kBrowsing);
  shape.apply(14, after);
  expect_same(after, one_hot_target(MixType::kOrdering));

  TrafficTarget mid = one_hot_target(MixType::kBrowsing);
  shape.apply(12, mid);
  EXPECT_DOUBLE_EQ(mid.mix_weights[static_cast<std::size_t>(MixType::kBrowsing)],
                   0.0);
  EXPECT_DOUBLE_EQ(mid.mix_weights[static_cast<std::size_t>(MixType::kShopping)],
                   0.5);
  EXPECT_DOUBLE_EQ(mid.mix_weights[static_cast<std::size_t>(MixType::kOrdering)],
                   0.5);
}

TEST(MixDriftShape, RejectsBadParams) {
  MixDriftParams p;
  p.start_interval = -1;
  EXPECT_THROW(MixDriftShape{p}, std::invalid_argument);
  p = {};
  p.duration_intervals = 0;
  EXPECT_THROW(MixDriftShape{p}, std::invalid_argument);
}

TEST(ThinkNoiseShape, ModulatesThinkScaleDeterministically) {
  ThinkNoiseParams p;
  p.seed = 9;
  p.sigma = 0.5;
  const ThinkNoiseShape shape(p);
  TrafficTarget a = one_hot_target(MixType::kShopping);
  TrafficTarget b = one_hot_target(MixType::kShopping);
  shape.apply(17, a);
  shape.apply(17, b);
  EXPECT_EQ(bits(a.think_scale), bits(b.think_scale));
  EXPECT_GT(a.think_scale, 0.0);
  EXPECT_NE(a.think_scale, 1.0);

  // sigma = 0 is the identity.
  const ThinkNoiseShape off({p.seed, 0.0});
  TrafficTarget c = one_hot_target(MixType::kShopping);
  off.apply(17, c);
  EXPECT_EQ(c.think_scale, 1.0);

  ThinkNoiseParams bad;
  bad.sigma = -0.1;
  EXPECT_THROW(ThinkNoiseShape{bad}, std::invalid_argument);
}

// ---- the model ------------------------------------------------------------

TrafficModel day_model() {
  TrafficModel model;
  model.add_diurnal({96.0, 0.4, 3.0})
      .add_flash_crowd({7, 0.02, 2, 4, 6, 2.5})
      .add_mix_drift({MixType::kShopping, MixType::kOrdering, 30, 20})
      .add_think_noise({11, 0.25});
  return model;
}

TEST(TrafficModel, EmptyModelEmitsTheOneHotIdentity) {
  const TrafficModel model;
  EXPECT_TRUE(model.empty());
  for (const MixType mix : kAllMixes) {
    expect_same(model.target_at(5, mix), one_hot_target(mix));
  }
}

TEST(TrafficModel, TargetAtIsPure) {
  const TrafficModel model = day_model();
  for (std::int64_t i : {0, 1, 17, 95, 1000}) {
    expect_same(model.target_at(i, MixType::kShopping),
                model.target_at(i, MixType::kShopping));
  }
  EXPECT_THROW(model.target_at(-1, MixType::kShopping),
               util::ContractViolation);
}

TEST(TrafficModel, TargetStreamIsBitwiseIdenticalAcrossThreadCounts) {
  const TrafficModel model = day_model();
  constexpr std::int64_t kIntervals = 96;
  std::vector<TrafficTarget> serial;
  for (std::int64_t i = 0; i < kIntervals; ++i) {
    serial.push_back(model.target_at(i, MixType::kShopping));
  }
  util::ThreadPool pool(4);
  std::vector<TrafficTarget> parallel(kIntervals);
  pool.parallel_for(kIntervals, [&](std::size_t i) {
    parallel[i] = model.target_at(static_cast<std::int64_t>(i),
                                  MixType::kShopping);
  });
  for (std::int64_t i = 0; i < kIntervals; ++i) {
    expect_same(serial[static_cast<std::size_t>(i)],
                parallel[static_cast<std::size_t>(i)]);
  }
}

TEST(TrafficModel, SaveLoadRoundTripsTheTargetStreamBitwise) {
  const TrafficModel model = day_model();
  std::stringstream stream;
  model.save(stream);
  stream << "sentinel\n";  // the loader must stop exactly at the trailer
  const TrafficModel loaded = TrafficModel::load(stream);
  ASSERT_EQ(loaded.size(), model.size());
  for (std::int64_t i = 0; i < 200; ++i) {
    expect_same(model.target_at(i, MixType::kBrowsing),
                loaded.target_at(i, MixType::kBrowsing));
  }
  std::string tail;
  stream >> tail;
  EXPECT_EQ(tail, "sentinel");
}

TEST(TrafficModel, LoadRejectsMalformedInput) {
  {
    std::istringstream is("not-a-model v1\nend\n");
    EXPECT_THROW(TrafficModel::load(is), std::runtime_error);
  }
  {
    std::istringstream is("traffic-model v9\nend\n");
    EXPECT_THROW(TrafficModel::load(is), std::runtime_error);
  }
  {
    std::istringstream is("traffic-model v1\nshapes 1\nwarp 1 2 3\nend\n");
    EXPECT_THROW(TrafficModel::load(is), std::runtime_error);
  }
}

// ---- session-generator streams under the layer ----------------------------

TEST(SessionGenerator, StateRoundTripContinuesTheStreamBitwise) {
  SessionGenerator gen(MixType::kShopping, util::Rng(11), true, 1.25);
  for (int i = 0; i < 137; ++i) gen.next();
  const SessionState mid = gen.state();

  SessionGenerator resumed(MixType::kShopping, util::Rng(999), true, 1.25);
  resumed.restore(mid);
  for (int i = 0; i < 500; ++i) {
    const BrowserStep a = gen.next();
    const BrowserStep b = resumed.next();
    EXPECT_EQ(a.interaction, b.interaction);
    EXPECT_EQ(bits(a.think_time_s), bits(b.think_time_s));
    EXPECT_EQ(a.new_session, b.new_session);
  }
  EXPECT_EQ(gen.steps_generated(), resumed.steps_generated());
  EXPECT_EQ(gen.sessions_started(), resumed.sessions_started());
}

}  // namespace
}  // namespace rac::workload
