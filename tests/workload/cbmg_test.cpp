#include "workload/cbmg.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/contracts.hpp"
#include "workload/session.hpp"

namespace rac::workload {
namespace {

TEST(Cbmg, RowsAreStochastic) {
  for (MixType mix : kAllMixes) {
    const auto& matrix = cbmg_matrix(mix);
    for (std::size_t i = 0; i < kNumInteractions; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < kNumInteractions; ++j) {
        EXPECT_GE(matrix[i][j], 0.0);
        row_sum += matrix[i][j];
      }
      EXPECT_NEAR(row_sum, 1.0, 1e-9) << mix_name(mix) << " row " << i;
    }
  }
}

TEST(Cbmg, StationaryDistributionNearSpecFrequencies) {
  for (MixType mix : kAllMixes) {
    const auto pi = stationary_distribution(cbmg_matrix(mix));
    const auto freq = mix_frequencies(mix);
    double total = 0.0;
    for (std::size_t i = 0; i < kNumInteractions; ++i) {
      EXPECT_NEAR(pi[i], freq[i], 0.03)
          << mix_name(mix) << " " << interaction_name(static_cast<Interaction>(i));
      total += pi[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Cbmg, ForcedPairsDominateTheirRows) {
  // Search Request -> Search Results must be the most likely transition
  // out of Search Request (and similarly for the other forced pairs).
  const auto check = [](MixType mix, Interaction from, Interaction to) {
    const auto& row = cbmg_matrix(mix)[static_cast<std::size_t>(from)];
    double best = 0.0;
    std::size_t arg = 0;
    for (std::size_t j = 0; j < kNumInteractions; ++j) {
      if (row[j] > best) {
        best = row[j];
        arg = j;
      }
    }
    EXPECT_EQ(arg, static_cast<std::size_t>(to))
        << mix_name(mix) << ": " << interaction_name(from);
  };
  for (MixType mix : kAllMixes) {
    check(mix, Interaction::kSearchRequest, Interaction::kSearchResults);
  }
  // Buy Confirm's base frequency is large enough to dominate only in the
  // ordering mix (1.2% base in shopping vs 10.2% in ordering); in lighter
  // mixes the blend keeps the row closer to the steady-state frequencies.
  check(MixType::kOrdering, Interaction::kBuyRequest, Interaction::kBuyConfirm);
}

TEST(Cbmg, NavigationRaisesConditionalProbabilities) {
  // P(SearchResults | SearchRequest) must be far above the base rate.
  const auto mix = MixType::kShopping;
  const auto& matrix = cbmg_matrix(mix);
  const auto freq = mix_frequencies(mix);
  const double conditional =
      matrix[static_cast<std::size_t>(Interaction::kSearchRequest)]
            [static_cast<std::size_t>(Interaction::kSearchResults)];
  EXPECT_GT(conditional,
            2.0 * freq[static_cast<std::size_t>(Interaction::kSearchResults)]);
}

TEST(Cbmg, GeneratorFollowsForcedPairs) {
  SessionGenerator gen(MixType::kOrdering, util::Rng(5));
  int buy_requests = 0;
  int followed_by_confirm = 0;
  Interaction prev = Interaction::kHome;
  bool have_prev = false;
  for (int i = 0; i < 200000; ++i) {
    const auto step = gen.next();
    if (have_prev && !step.new_session && prev == Interaction::kBuyRequest) {
      ++buy_requests;
      if (step.interaction == Interaction::kBuyConfirm) ++followed_by_confirm;
    }
    prev = step.interaction;
    have_prev = true;
  }
  ASSERT_GT(buy_requests, 100);
  // Far more often than the ~10% base frequency of Buy Confirm.
  EXPECT_GT(static_cast<double>(followed_by_confirm) / buy_requests, 0.20);
}

TEST(Cbmg, OutOfEnumMixIsAContractViolation) {
  // The old code silently fell back to the shopping matrix; out-of-enum
  // input is corrupt data and must trip the contract instead.
  const auto bad = static_cast<MixType>(99);
  EXPECT_THROW(cbmg_matrix(bad), util::ContractViolation);
  EXPECT_THROW(entry_distribution(bad), util::ContractViolation);
}

TEST(Cbmg, ZeroMassDistributionIsAContractViolation) {
  TransitionMatrix zero{};  // all-zero rows: stationary mass would be 0/0
  EXPECT_THROW(stationary_distribution(zero), util::ContractViolation);
}

TEST(Cbmg, EntryDistributionMatchesTheStationaryDistribution) {
  for (const MixType mix : kAllMixes) {
    const auto& entry = entry_distribution(mix);
    const auto pi = stationary_distribution(cbmg_matrix(mix));
    double total = 0.0;
    for (std::size_t i = 0; i < kNumInteractions; ++i) {
      EXPECT_DOUBLE_EQ(entry[i], pi[i])
          << mix_name(mix) << " "
          << interaction_name(static_cast<Interaction>(i));
      total += entry[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Cbmg, SessionEntriesFollowTheEntryDistribution) {
  // Satellite fix: session entries used to draw from the spec frequencies
  // while navigation followed the CBMG chain -- two inconsistent
  // distributions. Entries now draw from the chain's stationary
  // distribution; the long-run entry histogram must match it.
  SessionGenerator gen(MixType::kShopping, util::Rng(8));
  std::array<int, kNumInteractions> entries{};
  int sessions = 0;
  for (int i = 0; i < 400000; ++i) {
    const auto step = gen.next();
    if (step.new_session) {
      ++entries[static_cast<std::size_t>(step.interaction)];
      ++sessions;
    }
  }
  ASSERT_GT(sessions, 5000);
  const auto pi = stationary_distribution(cbmg_matrix(MixType::kShopping));
  for (std::size_t i = 0; i < kNumInteractions; ++i) {
    EXPECT_NEAR(entries[i] / static_cast<double>(sessions), pi[i], 0.02)
        << interaction_name(static_cast<Interaction>(i));
  }
}

TEST(Cbmg, IndependentModeIgnoresHistory) {
  SessionGenerator gen(MixType::kOrdering, util::Rng(6), /*use_cbmg=*/false);
  int buy_requests = 0;
  int followed_by_confirm = 0;
  Interaction prev = Interaction::kHome;
  for (int i = 0; i < 200000; ++i) {
    const auto step = gen.next();
    if (i > 0 && prev == Interaction::kBuyRequest) {
      ++buy_requests;
      if (step.interaction == Interaction::kBuyConfirm) ++followed_by_confirm;
    }
    prev = step.interaction;
  }
  ASSERT_GT(buy_requests, 100);
  const auto freq = mix_frequencies(MixType::kOrdering);
  EXPECT_NEAR(static_cast<double>(followed_by_confirm) / buy_requests,
              freq[static_cast<std::size_t>(Interaction::kBuyConfirm)], 0.03);
}

}  // namespace
}  // namespace rac::workload
