// End-to-end reproduction assertions: the paper's headline quantitative
// claims, checked on the Figure-5 scenario (contexts 1 -> 2 -> 3, switches
// every 30 iterations).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/static_agent.hpp"
#include "baselines/trial_and_error.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "env/sim_env.hpp"

namespace rac {
namespace {

using config::Configuration;
using core::AgentTrace;
using core::ContextSchedule;
using core::InitialPolicyLibrary;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr int kIterations = 90;

  static void SetUpTestSuite() {
    const std::vector<SystemContext> contexts = {
        env::table2_context(1), env::table2_context(2), env::table2_context(3)};
    core::PolicyInitOptions init;
    library_ = new InitialPolicyLibrary(core::build_library(
        contexts,
        [](const SystemContext& ctx) {
          AnalyticEnvOptions opt;
          opt.seed = 7;
          return std::make_unique<AnalyticEnv>(ctx, opt);
        },
        init));

    const ContextSchedule schedule = {
        {0, contexts[0]}, {30, contexts[1]}, {60, contexts[2]}};

    core::RacOptions rac_options;
    rac_options.seed = 100;
    auto rac = std::make_unique<core::RacAgent>(rac_options, *library_, 0);
    rac_trace_ = new AgentTrace(run(*rac, schedule));

    baselines::StaticDefaultAgent static_agent;
    static_trace_ = new AgentTrace(run(static_agent, schedule));

    baselines::TrialAndErrorAgent tae;
    tae_trace_ = new AgentTrace(run(tae, schedule));
  }

  static void TearDownTestSuite() {
    delete library_;
    delete rac_trace_;
    delete static_trace_;
    delete tae_trace_;
  }

  static AgentTrace run(core::ConfigAgent& agent,
                        const ContextSchedule& schedule) {
    AnalyticEnvOptions opt;
    opt.seed = 100;
    AnalyticEnv env(schedule.front().context, opt);
    return run_agent(env, agent, schedule, kIterations);
  }

  static InitialPolicyLibrary* library_;
  static AgentTrace* rac_trace_;
  static AgentTrace* static_trace_;
  static AgentTrace* tae_trace_;
};

InitialPolicyLibrary* EndToEndTest::library_ = nullptr;
AgentTrace* EndToEndTest::rac_trace_ = nullptr;
AgentTrace* EndToEndTest::static_trace_ = nullptr;
AgentTrace* EndToEndTest::tae_trace_ = nullptr;

TEST_F(EndToEndTest, RacBeatsStaticDefaultByPaperMargin) {
  // Paper: "overall performance was around ... 60% better than the static
  // default configuration". We require at least 40%.
  const double rac = rac_trace_->mean_response_ms();
  const double stat = static_trace_->mean_response_ms();
  EXPECT_LT(rac, 0.6 * stat) << "RAC " << rac << " vs static " << stat;
}

TEST_F(EndToEndTest, RacBeatsTrialAndError) {
  // Paper: "around 30% better than the trial-and-error agent". We require
  // at least 15% on the overall mean.
  const double rac = rac_trace_->mean_response_ms();
  const double tae = tae_trace_->mean_response_ms();
  EXPECT_LT(rac, 0.85 * tae) << "RAC " << rac << " vs T&E " << tae;
}

TEST_F(EndToEndTest, RacSettlesWithin25IterationsInEverySegment) {
  // Paper: "drive the system into a near-optimal configuration setting in
  // less than 25 trial-and-error iterations".
  for (int segment = 0; segment < 3; ++segment) {
    const int start = segment * 30;
    const int settled = rac_trace_->settled_iteration(start, start + 30, 5, 0.6);
    ASSERT_GE(settled, 0) << "segment " << segment;
    EXPECT_LT(settled - start, 25) << "segment " << segment;
  }
}

TEST_F(EndToEndTest, RacImprovesWithinEachSegment) {
  // Early-vs-late response time within each context segment: adaptation
  // must pay off (or at worst hold level for an easy segment).
  for (int segment = 0; segment < 3; ++segment) {
    const int start = segment * 30;
    const double early = rac_trace_->mean_response_ms(start, start + 8);
    const double late = rac_trace_->mean_response_ms(start + 22, start + 30);
    EXPECT_LT(late, 1.3 * early) << "segment " << segment;
  }
}

TEST_F(EndToEndTest, StaticDefaultDegradesAcrossContexts) {
  // Context-3 (ordering on the small VM) must be clearly the worst segment
  // for the untouched default configuration.
  const double seg1 = static_trace_->mean_response_ms(0, 30);
  const double seg3 = static_trace_->mean_response_ms(60, 90);
  EXPECT_GT(seg3, 2.0 * seg1);
}

TEST_F(EndToEndTest, EveryAgentRanTheFullSchedule) {
  EXPECT_EQ(rac_trace_->records.size(), 90u);
  EXPECT_EQ(static_trace_->records.size(), 90u);
  EXPECT_EQ(tae_trace_->records.size(), 90u);
  EXPECT_EQ(rac_trace_->records.back().context.level, VmLevel::kLevel3);
}

TEST(EndToEndSim, RacImprovesOnDefaultsOnTheDiscreteEventSubstrate) {
  // The full agent stack against the DES ground truth (shortened windows
  // keep the test fast). This is the "would it work on the real testbed"
  // check.
  // 250 browsers on the Level-1 VM: the default configuration is clearly
  // slot-starved, so there is headroom for the agent to demonstrate.
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  core::PolicyInitOptions init;
  init.offline_td.max_sweeps = 120;
  AnalyticEnvOptions offline_opt;
  offline_opt.seed = 7;
  offline_opt.num_clients = 250;
  AnalyticEnv offline_env(ctx, offline_opt);
  InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(offline_env, init));

  core::RacOptions rac_options;
  rac_options.seed = 5;
  core::RacAgent rac(rac_options, library, 0);

  env::SimEnvOptions sim_options;
  sim_options.num_clients = 250;
  sim_options.warmup_s = 30.0;
  sim_options.measure_s = 90.0;
  env::SimEnv sim(ctx, sim_options);

  const auto trace = core::run_agent(sim, rac, {}, 25);
  const double early = trace.records.front().response_ms;
  const double late = trace.mean_response_ms(18, 25);
  EXPECT_LT(late, 0.7 * early);
}

}  // namespace
}  // namespace rac
