// Failure-injection and robustness scenarios beyond the paper's
// experiments: what the agent does when the world misbehaves.
#include <gtest/gtest.h>

#include <memory>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"

namespace rac {
namespace {

using config::Configuration;
using core::InitialPolicyLibrary;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::PerfSample;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

InitialPolicyLibrary small_library(const SystemContext& ctx) {
  AnalyticEnvOptions opt;
  opt.seed = 7;
  AnalyticEnv env(ctx, opt);
  core::PolicyInitOptions init;
  init.offline_td.max_sweeps = 120;
  InitialPolicyLibrary library;
  library.add(core::learn_initial_policy(env, init));
  return library;
}

/// Environment decorator that injects measurement faults.
class FaultyEnv : public env::Environment {
 public:
  FaultyEnv(std::unique_ptr<env::Environment> inner, util::Rng rng,
            double outlier_prob, double outlier_scale)
      : inner_(std::move(inner)),
        rng_(rng),
        outlier_prob_(outlier_prob),
        outlier_scale_(outlier_scale) {}

  PerfSample measure(const Configuration& c) override {
    PerfSample sample = inner_->measure(c);
    if (rng_.bernoulli(outlier_prob_)) {
      // A garbage monitoring interval: GC pause, cron job, packet loss.
      sample.response_ms *= outlier_scale_;
    }
    return sample;
  }
  void set_context(const SystemContext& ctx) override {
    inner_->set_context(ctx);
  }
  SystemContext context() const override { return inner_->context(); }

 private:
  std::unique_ptr<env::Environment> inner_;
  util::Rng rng_;
  double outlier_prob_;
  double outlier_scale_;
};

TEST(Robustness, IsolatedMeasurementOutliersDoNotTriggerPolicySwitch) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  auto library = small_library(ctx);

  AnalyticEnvOptions opt;
  opt.seed = 30;
  auto inner = std::make_unique<AnalyticEnv>(ctx, opt);
  // 5% of intervals read 4x too slow -- but never 5 in a row.
  FaultyEnv env(std::move(inner), util::Rng(31), 0.05, 4.0);

  core::RacOptions rac_options;
  rac_options.seed = 32;
  core::RacAgent agent(rac_options, library, 0);
  core::run_agent(env, agent, {}, 60);
  EXPECT_EQ(agent.policy_switches(), 0);
}

TEST(Robustness, AgentSurvivesUnachievableSla) {
  // SLA of 1 ms: every reward is a penalty. The agent must still prefer
  // less-negative states, i.e. behave sanely under pure punishment.
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  auto library = small_library(ctx);
  core::RacOptions rac_options;
  rac_options.seed = 33;
  rac_options.sla.reference_response_ms = 1.0;
  core::RacAgent agent(rac_options, library, 0);
  AnalyticEnvOptions opt;
  opt.seed = 34;
  AnalyticEnv env(ctx, opt);
  const auto trace = core::run_agent(env, agent, {}, 30);
  AnalyticEnvOptions det = opt;
  det.noise_sigma = 0.0;
  AnalyticEnv truth(ctx, det);
  EXPECT_LT(trace.mean_response_ms(20, 30),
            truth.evaluate(Configuration::defaults()).response_ms);
}

TEST(Robustness, BackToBackContextFlipsDoNotWedgeTheAgent) {
  // Rapid flapping between two contexts (every 12 iterations, shorter
  // than the paper's 30): the agent must keep producing valid actions and
  // end in the final context at sane performance.
  const SystemContext a{MixType::kShopping, VmLevel::kLevel1};
  const SystemContext b{MixType::kOrdering, VmLevel::kLevel3};
  AnalyticEnvOptions offline;
  offline.seed = 7;
  core::PolicyInitOptions init;
  init.offline_td.max_sweeps = 120;
  InitialPolicyLibrary library;
  {
    AnalyticEnv ea(a, offline);
    library.add(core::learn_initial_policy(ea, init));
    AnalyticEnv eb(b, offline);
    library.add(core::learn_initial_policy(eb, init));
  }
  core::RacOptions rac_options;
  rac_options.seed = 35;
  core::RacAgent agent(rac_options, library, 0);
  AnalyticEnvOptions opt;
  opt.seed = 36;
  AnalyticEnv env(a, opt);
  const core::ContextSchedule schedule = {
      {0, a}, {12, b}, {24, a}, {36, b}, {48, a}};
  const auto trace = core::run_agent(env, agent, schedule, 60);
  EXPECT_EQ(trace.records.size(), 60u);
  // Final segment is context a again: performance must be in a's regime,
  // far below b's saturated multi-second response times.
  EXPECT_LT(trace.mean_response_ms(54, 60), 1000.0);
}

TEST(Robustness, NoInitAgentDegradesGracefullyNotCatastrophically) {
  // Even the cold agent must not end up worse than ~2x the static default
  // on average (it wanders, but the default is its anchor state).
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  core::RacOptions rac_options;
  rac_options.seed = 37;
  core::RacAgent agent(rac_options, InitialPolicyLibrary{});
  AnalyticEnvOptions opt;
  opt.seed = 38;
  AnalyticEnv env(ctx, opt);
  const auto trace = core::run_agent(env, agent, {}, 40);
  AnalyticEnvOptions det = opt;
  det.noise_sigma = 0.0;
  AnalyticEnv truth(ctx, det);
  const double default_rt =
      truth.evaluate(Configuration::defaults()).response_ms;
  EXPECT_LT(trace.mean_response_ms(), 2.0 * default_rt);
}

TEST(Robustness, ZeroNoiseEnvironmentIsFullyDeterministic) {
  const SystemContext ctx{MixType::kOrdering, VmLevel::kLevel2};
  auto run_once = [&] {
    auto library = small_library(ctx);
    core::RacOptions rac_options;
    rac_options.seed = 39;
    core::RacAgent agent(rac_options, library, 0);
    AnalyticEnvOptions opt;
    opt.seed = 40;
    opt.noise_sigma = 0.0;
    AnalyticEnv env(ctx, opt);
    return core::run_agent(env, agent, {}, 25);
  };
  const auto t1 = run_once();
  const auto t2 = run_once();
  for (std::size_t i = 0; i < t1.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.records[i].response_ms, t2.records[i].response_ms);
    EXPECT_EQ(t1.records[i].configuration, t2.records[i].configuration);
  }
}

}  // namespace
}  // namespace rac
