#include "rl/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/rng.hpp"

namespace rac::rl {
namespace {

QTable sample_table() {
  QTable table;
  table.set_default_q(-0.5);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto state = config::ConfigSpace::random_fine(rng);
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      table.set_q(state, config::Action(static_cast<int>(a)),
                  rng.normal(0.0, 3.0));
    }
  }
  return table;
}

TEST(Serialization, RoundTripIsExact) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const QTable loaded = load_qtable(stream);

  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.default_q(), original.default_q());
  for (const auto& state : original.states()) {
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      const config::Action action(static_cast<int>(a));
      EXPECT_DOUBLE_EQ(loaded.q(state, action), original.q(state, action));
    }
  }
}

TEST(Serialization, EmptyTableRoundTrips) {
  QTable empty;
  std::stringstream stream;
  save_qtable(stream, empty);
  const QTable loaded = load_qtable(stream);
  EXPECT_TRUE(loaded.empty());
}

TEST(Serialization, GreedyPolicySurvivesRoundTrip) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const QTable loaded = load_qtable(stream);
  for (const auto& state : original.states()) {
    EXPECT_EQ(loaded.best_action(state), original.best_action(state));
  }
}

TEST(Serialization, RejectsForeignStream) {
  std::stringstream stream("not-a-qtable v1\n");
  EXPECT_THROW(load_qtable(stream), std::runtime_error);
}

TEST(Serialization, RejectsUnsupportedVersion) {
  std::stringstream stream("rac-qtable v99\ndefault_q 0x0p+0\nstates 0\n");
  EXPECT_THROW(load_qtable(stream), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedRows) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  std::string text = stream.str();
  text.resize(text.size() * 2 / 3);
  std::stringstream truncated(text);
  EXPECT_THROW(load_qtable(truncated), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  const QTable original = sample_table();
  const std::string path = ::testing::TempDir() + "/rac_qtable_test.txt";
  save_qtable_file(path, original);
  const QTable loaded = load_qtable_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_qtable_file("/nonexistent/dir/qtable.txt"),
               std::ios_base::failure);
}

}  // namespace
}  // namespace rac::rl
