#include "rl/serialization.hpp"

#include <gtest/gtest.h>

#include <array>
#include <clocale>
#include <cstdio>
#include <fstream>
#include <locale>
#include <sstream>
#include <unordered_map>

#include "util/lineio.hpp"

#include "util/rng.hpp"

namespace rac::rl {
namespace {

QTable sample_table() {
  QTable table;
  table.set_default_q(-0.5);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto state = config::ConfigSpace::random_fine(rng);
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      table.set_q(state, config::Action(static_cast<int>(a)),
                  rng.normal(0.0, 3.0));
    }
  }
  return table;
}

TEST(Serialization, RoundTripIsExact) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const QTable loaded = load_qtable(stream);

  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.default_q(), original.default_q());
  for (const auto& state : original.states()) {
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      const config::Action action(static_cast<int>(a));
      EXPECT_DOUBLE_EQ(loaded.q(state, action), original.q(state, action));
    }
  }
}

TEST(Serialization, EmptyTableRoundTrips) {
  QTable empty;
  std::stringstream stream;
  save_qtable(stream, empty);
  const QTable loaded = load_qtable(stream);
  EXPECT_TRUE(loaded.empty());
}

TEST(Serialization, GreedyPolicySurvivesRoundTrip) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const QTable loaded = load_qtable(stream);
  for (const auto& state : original.states()) {
    EXPECT_EQ(loaded.best_action(state), original.best_action(state));
  }
}

TEST(Serialization, RejectsForeignStream) {
  std::stringstream stream("not-a-qtable v1\n");
  EXPECT_THROW(load_qtable(stream), std::runtime_error);
}

TEST(Serialization, RejectsUnsupportedVersion) {
  std::stringstream stream("rac-qtable v99\ndefault_q 0x0p+0\nstates 0\n");
  EXPECT_THROW(load_qtable(stream), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedRows) {
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  std::string text = stream.str();
  text.resize(text.size() * 2 / 3);
  std::stringstream truncated(text);
  EXPECT_THROW(load_qtable(truncated), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  const QTable original = sample_table();
  const std::string path = ::testing::TempDir() + "/rac_qtable_test.txt";
  save_qtable_file(path, original);
  const QTable loaded = load_qtable_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_qtable_file("/nonexistent/dir/qtable.txt"),
               std::ios_base::failure);
}

TEST(Serialization, WritesV2WithEndTrailer) {
  const QTable table = sample_table();
  std::stringstream stream;
  save_qtable(stream, table);
  const std::string text = stream.str();
  EXPECT_EQ(text.rfind("rac-qtable v2\n", 0), 0u);
  EXPECT_EQ(text.substr(text.size() - 4), "end\n");
}

TEST(Serialization, OutputIsByteStable) {
  // Sorted rows + canonical tokens: the serialized form is a pure function
  // of the table contents, not of hash-map iteration order.
  const QTable table = sample_table();
  std::stringstream first;
  std::stringstream second;
  save_qtable(first, table);
  save_qtable(second, table);
  EXPECT_EQ(first.str(), second.str());

  std::stringstream reload_stream(first.str());
  const QTable reloaded = load_qtable(reload_stream);
  std::stringstream third;
  save_qtable(third, reloaded);
  EXPECT_EQ(third.str(), first.str());
}

TEST(Serialization, TablesCanBeEmbeddedBackToBack) {
  const QTable table = sample_table();
  std::stringstream stream;
  save_qtable(stream, table);
  stream << "tail-token\n";
  const QTable loaded = load_qtable(stream);
  EXPECT_EQ(loaded.size(), table.size());
  // The loader stops exactly at "end"; the embedding caller sees the rest.
  std::string next;
  stream >> next;
  EXPECT_EQ(next, "tail-token");
}

TEST(Serialization, LoadsLegacyV1PrintfHexFloats) {
  // v1 files were written with printf "%a" (0x-prefixed hex floats) and
  // have no "end" trailer. Craft one by hand and check exact values.
  util::Rng rng(3);
  const auto state = config::ConfigSpace::random_fine(rng);
  std::ostringstream os;
  os << "rac-qtable v1\n";
  os << "default_q -0x1p-1\n";  // -0.5
  os << "states 1\n";
  for (int v : state.values()) os << v << ' ';
  for (std::size_t a = 0; a < config::kNumActions; ++a) {
    os << "0x1.8p+0" << (a + 1 == config::kNumActions ? "\n" : " ");
  }
  std::istringstream is(os.str());
  const QTable loaded = load_qtable(is);
  EXPECT_DOUBLE_EQ(loaded.default_q(), -0.5);
  ASSERT_EQ(loaded.size(), 1u);
  for (std::size_t a = 0; a < config::kNumActions; ++a) {
    EXPECT_DOUBLE_EQ(loaded.q(state, config::Action(static_cast<int>(a))),
                     1.5);
  }
}

TEST(Serialization, RejectsDuplicateStateRows) {
  // A duplicate row would silently shadow the earlier values.
  util::Rng rng(3);
  const auto state = config::ConfigSpace::random_fine(rng);
  std::ostringstream row;
  for (int v : state.values()) row << v << ' ';
  for (std::size_t a = 0; a < config::kNumActions; ++a) {
    row << "1p+0" << (a + 1 == config::kNumActions ? "\n" : " ");
  }
  std::stringstream stream;
  stream << "rac-qtable v2\ndefault_q 0p+0\nstates 2\n"
         << row.str() << row.str() << "end\n";
  EXPECT_THROW(load_qtable(stream), std::runtime_error);
}

TEST(Serialization, FileLoadRejectsTrailingGarbage) {
  const QTable table = sample_table();
  const std::string path = ::testing::TempDir() + "/rac_qtable_garbage.txt";
  save_qtable_file(path, table);
  {
    std::ofstream os(path, std::ios::app);
    os << "garbage-after-end\n";
  }
  EXPECT_THROW(load_qtable_file(path), std::runtime_error);
  std::remove(path.c_str());
}

// --- locale immunity (the PR-4 serialization bug class) ---------------------

TEST(Serialization, RoundTripSurvivesCommaDecimalCLocale) {
  // Under de_DE/fr_FR, printf("%a")-era code wrote "0x1,8p+0" and stod
  // read "1.5" as 1; to_chars/from_chars ignore the locale entirely.
  const char* candidates[] = {"de_DE.UTF-8", "fr_FR.UTF-8", "de_DE",
                              "fr_FR", "de_DE.utf8", "fr_FR.utf8"};
  const char* engaged_name = nullptr;
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      engaged_name = name;
      break;
    }
  }
  if (engaged_name == nullptr) {
    std::setlocale(LC_ALL, "C");
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const QTable loaded = load_qtable(stream);
  std::setlocale(LC_ALL, "C");
  ASSERT_EQ(loaded.size(), original.size());
  for (const auto& state : original.states()) {
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      const config::Action action(static_cast<int>(a));
      EXPECT_EQ(loaded.q(state, action), original.q(state, action));
    }
  }
}

// A numpunct facet that mimics a comma-decimal locale without needing one
// installed: '.'->',' plus thousands grouping. Installed as the GLOBAL C++
// locale, it poisons every default-constructed stream -- exactly what made
// the v1 "states 1500" header come out as "states 1.500" on some hosts.
class CommaNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class ScopedGlobalLocale {
 public:
  explicit ScopedGlobalLocale(const std::locale& loc) : saved_(loc) {}
  ~ScopedGlobalLocale() { std::locale::global(saved_); }

 private:
  std::locale saved_;
};

TEST(Serialization, RoundTripSurvivesCommaGlobalCppLocale) {
  ScopedGlobalLocale guard(std::locale::global(
      std::locale(std::locale::classic(), new CommaNumpunct)));
  // >1000 states so a locale-honoring count would serialize as "1.500".
  QTable original;
  original.set_default_q(0.25);
  util::Rng rng(5);
  while (original.size() < 1500) {
    const auto state = config::ConfigSpace::random_fine(rng);
    original.set_q(state, config::Action(0), rng.normal(0.0, 3.0));
  }
  std::stringstream stream;  // picks up the poisoned global locale
  save_qtable(stream, original);
  EXPECT_NE(stream.str().find("states 1500\n"), std::string::npos);
  const QTable loaded = load_qtable(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (const auto& state : original.states()) {
    EXPECT_EQ(loaded.q(state, config::Action(0)),
              original.q(state, config::Action(0)));
  }
}


TEST(Serialization, FlatTableMatchesMapBasedReferenceLoader) {
  // The flat open-addressing table replaced a node-based hash map; the
  // rac-qtable v2 format is unchanged. This reference loader parses the
  // stream the way the old map-backed implementation stored it and checks
  // the flat loader agrees value for value.
  const QTable original = sample_table();
  std::stringstream stream;
  save_qtable(stream, original);
  const std::string text = stream.str();

  std::stringstream reference(text);
  ASSERT_EQ(util::read_token(reference, "ref"), "rac-qtable");
  ASSERT_EQ(util::read_token(reference, "ref"), "v2");
  ASSERT_EQ(util::read_token(reference, "ref"), "default_q");
  const double default_q =
      util::parse_double(util::read_token(reference, "ref"), "ref");
  ASSERT_EQ(util::read_token(reference, "ref"), "states");
  const std::uint64_t count =
      util::parse_u64(util::read_token(reference, "ref"), "ref");
  std::unordered_map<config::Configuration,
                     std::array<double, config::kNumActions>,
                     config::ConfigurationHash>
      rows;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::array<int, config::kNumParams> values{};
    for (auto& v : values) {
      v = util::parse_int(util::read_token(reference, "ref"), "ref");
    }
    std::array<double, config::kNumActions> qs{};
    for (auto& q : qs) {
      q = util::parse_double(util::read_token(reference, "ref"), "ref");
    }
    ASSERT_TRUE(rows.emplace(config::Configuration(values), qs).second);
  }
  ASSERT_EQ(util::read_token(reference, "ref"), "end");

  std::stringstream reload(text);
  const QTable loaded = load_qtable(reload);
  EXPECT_EQ(loaded.size(), rows.size());
  EXPECT_EQ(loaded.default_q(), default_q);
  for (const auto& [state, qs] : rows) {
    ASSERT_TRUE(loaded.contains(state));
    for (std::size_t a = 0; a < config::kNumActions; ++a) {
      EXPECT_EQ(loaded.q(state, config::Action(static_cast<int>(a))), qs[a]);
    }
  }
}

TEST(Serialization, WarmRowsDoNotSerialize) {
  // Rows pre-created for the TD inner loop's neighbor lookups hold only
  // default values and must not leak into checkpoints: the stream has to
  // match what the map-based store (which had no such rows) would write.
  QTable table = sample_table();
  std::stringstream before;
  save_qtable(before, table);

  util::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const auto extra = config::ConfigSpace::random_fine(rng);
    if (table.contains(extra)) continue;
    table.ensure_row(extra);
  }
  std::stringstream after;
  save_qtable(after, table);
  EXPECT_EQ(after.str(), before.str());
}

}  // namespace
}  // namespace rac::rl
