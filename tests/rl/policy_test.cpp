#include "rl/policy.hpp"

#include <gtest/gtest.h>

namespace rac::rl {
namespace {

using config::Action;
using config::Configuration;
using config::ParamId;

TEST(EpsilonGreedy, ZeroEpsilonIsAlwaysGreedy) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::increase(ParamId::kMaxClients), 5.0);
  EpsilonGreedy policy(0.0);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(t, s, rng), Action::increase(ParamId::kMaxClients));
  }
}

TEST(EpsilonGreedy, FullEpsilonIsUniform) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::keep(), 100.0);  // greedy would always pick keep
  EpsilonGreedy policy(1.0);
  util::Rng rng(2);
  std::array<int, config::kNumActions> counts{};
  const int n = 17000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(t, s, rng).id())];
  }
  for (std::size_t a = 0; a < config::kNumActions; ++a) {
    EXPECT_NEAR(counts[a] / static_cast<double>(n), 1.0 / config::kNumActions,
                0.01);
  }
}

TEST(EpsilonGreedy, ExplorationRateRespected) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::keep(), 100.0);
  EpsilonGreedy policy(0.2);
  util::Rng rng(3);
  int non_greedy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!(policy.select(t, s, rng) == Action::keep())) ++non_greedy;
  }
  // Non-greedy fraction = eps * (k-1)/k.
  const double expected = 0.2 * (config::kNumActions - 1.0) / config::kNumActions;
  EXPECT_NEAR(non_greedy / static_cast<double>(n), expected, 0.01);
}

TEST(EpsilonGreedy, RejectsOutOfRangeEpsilon) {
  EXPECT_THROW(EpsilonGreedy(-0.1), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedy(1.1), std::invalid_argument);
  EpsilonGreedy p(0.5);
  EXPECT_THROW(p.set_epsilon(2.0), std::invalid_argument);
}

TEST(GreedyAction, MatchesBestAction) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::decrease(ParamId::kMaxThreads), 2.0);
  EXPECT_EQ(greedy_action(t, s), Action::decrease(ParamId::kMaxThreads));
}

}  // namespace
}  // namespace rac::rl
