#include "rl/experience.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/contracts.hpp"

namespace rac::rl {
namespace {

using config::Configuration;
using config::ParamId;

TEST(ExperienceStore, EmptyLookupIsNullopt) {
  const ExperienceStore store;
  EXPECT_FALSE(store.response_ms(Configuration{}).has_value());
  EXPECT_TRUE(store.empty());
}

TEST(ExperienceStore, FirstRecordStoresExactValue) {
  ExperienceStore store(0.5);
  const Configuration c;
  store.record(c, 250.0);
  ASSERT_TRUE(store.response_ms(c).has_value());
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 250.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ExperienceStore, RepeatRecordsBlendWithEwma) {
  ExperienceStore store(0.5);
  const Configuration c;
  store.record(c, 100.0);
  store.record(c, 200.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 150.0);
  store.record(c, 150.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 150.0);
}

TEST(ExperienceStore, BlendOneKeepsLatest) {
  ExperienceStore store(1.0);
  const Configuration c;
  store.record(c, 100.0);
  store.record(c, 300.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 300.0);
}

TEST(ExperienceStore, DistinctConfigurationsTrackedSeparately) {
  ExperienceStore store;
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  store.record(a, 100.0);
  store.record(b, 900.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(a), 100.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(b), 900.0);
  EXPECT_EQ(store.configurations().size(), 2u);
}

TEST(ExperienceStore, ClearForgetsEverything) {
  ExperienceStore store;
  store.record(Configuration{}, 1.0);
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.response_ms(Configuration{}).has_value());
}

TEST(ExperienceStore, RejectsBadBlend) {
  EXPECT_THROW(ExperienceStore(0.0), std::invalid_argument);
  EXPECT_THROW(ExperienceStore(1.5), std::invalid_argument);
}

// Regression for the contract migration: recording a NaN, infinite, or
// negative response would corrupt every future blend for that
// configuration. The RAC_EXPECT precondition fires in every build.
TEST(ExperienceStore, RejectsNonFiniteOrNegativeResponse) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  ExperienceStore store;
  EXPECT_THROW(
      store.record(Configuration{},
                   std::numeric_limits<double>::quiet_NaN()),
      util::ContractViolation);
  EXPECT_THROW(store.record(Configuration{},
                            std::numeric_limits<double>::infinity()),
               util::ContractViolation);
  EXPECT_THROW(store.record(Configuration{}, -1.0),
               util::ContractViolation);
  EXPECT_TRUE(store.empty());
}

}  // namespace
}  // namespace rac::rl
