#include "rl/experience.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "config/space.hpp"
#include "util/rng.hpp"

#include "util/contracts.hpp"

namespace rac::rl {
namespace {

using config::Configuration;
using config::ParamId;

TEST(ExperienceStore, EmptyLookupIsNullopt) {
  const ExperienceStore store;
  EXPECT_FALSE(store.response_ms(Configuration{}).has_value());
  EXPECT_TRUE(store.empty());
}

TEST(ExperienceStore, FirstRecordStoresExactValue) {
  ExperienceStore store(0.5);
  const Configuration c;
  store.record(c, 250.0);
  ASSERT_TRUE(store.response_ms(c).has_value());
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 250.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ExperienceStore, RepeatRecordsBlendWithEwma) {
  ExperienceStore store(0.5);
  const Configuration c;
  store.record(c, 100.0);
  store.record(c, 200.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 150.0);
  store.record(c, 150.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 150.0);
}

TEST(ExperienceStore, BlendOneKeepsLatest) {
  ExperienceStore store(1.0);
  const Configuration c;
  store.record(c, 100.0);
  store.record(c, 300.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(c), 300.0);
}

TEST(ExperienceStore, DistinctConfigurationsTrackedSeparately) {
  ExperienceStore store;
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  store.record(a, 100.0);
  store.record(b, 900.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(a), 100.0);
  EXPECT_DOUBLE_EQ(*store.response_ms(b), 900.0);
  EXPECT_EQ(store.configurations().size(), 2u);
}

TEST(ExperienceStore, ClearForgetsEverything) {
  ExperienceStore store;
  store.record(Configuration{}, 1.0);
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.response_ms(Configuration{}).has_value());
}

TEST(ExperienceStore, RejectsBadBlend) {
  EXPECT_THROW(ExperienceStore(0.0), std::invalid_argument);
  EXPECT_THROW(ExperienceStore(1.5), std::invalid_argument);
}

// Regression for the contract migration: recording a NaN, infinite, or
// negative response would corrupt every future blend for that
// configuration. The RAC_EXPECT precondition fires in every build.
TEST(ExperienceStore, RejectsNonFiniteOrNegativeResponse) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  ExperienceStore store;
  EXPECT_THROW(
      store.record(Configuration{},
                   std::numeric_limits<double>::quiet_NaN()),
      util::ContractViolation);
  EXPECT_THROW(store.record(Configuration{},
                            std::numeric_limits<double>::infinity()),
               util::ContractViolation);
  EXPECT_THROW(store.record(Configuration{}, -1.0),
               util::ContractViolation);
  EXPECT_TRUE(store.empty());
}

TEST(ExperienceStore, EntriesKeepFirstObservationOrder) {
  ExperienceStore store(0.5);
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  Configuration c;
  c.set(ParamId::kMaxClients, 250);
  store.record(b, 1.0);
  store.record(a, 2.0);
  store.record(c, 3.0);
  store.record(b, 5.0);  // repeat must not move b to the back

  const auto configs = store.configurations();
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0], b);
  EXPECT_EQ(configs[1], a);
  EXPECT_EQ(configs[2], c);
  const auto entries = store.entries();
  EXPECT_EQ(entries[0].observation.count, 2u);
  EXPECT_DOUBLE_EQ(entries[0].observation.response_ms, 3.0);
}

// best() backs the safe-fallback degradation path (PR 5): after repeated
// SLA blowouts the agent reverts to the best configuration it has ever
// measured, so the answer must be deterministic and blend-aware.
TEST(ExperienceStore, BestReturnsLowestBlendedResponse) {
  ExperienceStore store(0.5);
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  Configuration c;
  c.set(ParamId::kMaxClients, 250);
  store.record(a, 300.0);
  store.record(b, 100.0);
  store.record(c, 200.0);
  ASSERT_TRUE(store.best().has_value());
  EXPECT_EQ(*store.best(), b);
  // The winner tracks the BLENDED value: two bad samples drag b behind c.
  store.record(b, 700.0);  // blend -> 400
  EXPECT_EQ(*store.best(), c);
}

TEST(ExperienceStore, BestKeepsEarliestObservationOnTies) {
  ExperienceStore store;
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  store.record(b, 150.0);
  store.record(a, 150.0);
  EXPECT_EQ(*store.best(), b);  // first recorded wins the tie
}

TEST(ExperienceStore, BestOnEmptyStoreIsNullopt) {
  const ExperienceStore store;
  EXPECT_FALSE(store.best().has_value());
}

TEST(ExperienceStore, RestoreRoundTripsEntriesAndBlending) {
  ExperienceStore original(0.5);
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  original.record(a, 100.0);
  original.record(b, 300.0);
  original.record(a, 200.0);

  ExperienceStore resumed(0.5);
  resumed.restore({original.entries().begin(), original.entries().end()});
  EXPECT_EQ(resumed.size(), original.size());
  EXPECT_EQ(resumed.configurations(), original.configurations());
  EXPECT_DOUBLE_EQ(*resumed.response_ms(a), *original.response_ms(a));
  // Later blends continue identically (count and value both restored).
  original.record(a, 400.0);
  resumed.record(a, 400.0);
  EXPECT_DOUBLE_EQ(*resumed.response_ms(a), *original.response_ms(a));
}

TEST(ExperienceStore, RestoreRejectsCorruptEntries) {
  ExperienceStore store;
  Configuration a;
  ExperienceEntry good{a, {100.0, 1}};
  // Duplicate configuration.
  EXPECT_THROW(store.restore({good, good}), std::invalid_argument);
  // Zero observation count.
  ExperienceEntry zero_count{a, {100.0, 0}};
  EXPECT_THROW(store.restore({zero_count}), std::invalid_argument);
  // Non-finite / negative blended response.
  ExperienceEntry nan_entry{
      a, {std::numeric_limits<double>::quiet_NaN(), 1}};
  EXPECT_THROW(store.restore({nan_entry}), std::invalid_argument);
  ExperienceEntry negative{a, {-5.0, 1}};
  EXPECT_THROW(store.restore({negative}), std::invalid_argument);
  // A failed restore leaves the store usable.
  store.restore({good});
  EXPECT_EQ(store.size(), 1u);
}


TEST(ExperienceStore, SortedConfigurationsMatchSortedCopy) {
  // The canonical list is maintained incrementally on insert; it must be
  // exactly what sorting configurations() by values() would produce, both
  // after organic recording and after a restore round trip.
  ExperienceStore store;
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    store.record(config::ConfigSpace::random_fine(rng),
                 rng.uniform(10.0, 500.0));
  }
  auto expected = store.configurations();
  std::sort(expected.begin(), expected.end(),
            [](const config::Configuration& a, const config::Configuration& b) {
              return a.values() < b.values();
            });
  const auto sorted = store.sorted_configurations();
  ASSERT_EQ(sorted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sorted[i], expected[i]) << i;
  }

  ExperienceStore restored;
  restored.restore({store.entries().begin(), store.entries().end()});
  const auto resorted = restored.sorted_configurations();
  ASSERT_EQ(resorted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resorted[i], expected[i]) << i;
  }
}

}  // namespace
}  // namespace rac::rl
