#include "rl/td_learner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rl/policy.hpp"
#include "util/contracts.hpp"

namespace rac::rl {
namespace {

using config::Action;
using config::Configuration;
using config::ConfigSpace;
using config::ParamId;

// A reward model with a single best configuration: reward 0 at the target
// and increasingly negative with the L1 distance from it. Keeping rewards
// non-positive makes the zero-initialized Q-table optimistic, so the
// epsilon-greedy sweeps explore systematically (the production reward,
// (SLA - rt)/SLA, behaves the same way in the interesting slower-than-SLA
// region).
RewardFn distance_reward(const Configuration& target) {
  return [target](const Configuration& c) {
    double distance = 0.0;
    for (ParamId id : config::kAllParams) {
      distance += std::abs(c.normalized(id) - target.normalized(id));
    }
    return -distance;
  };
}

TEST(TdLearner, LearnsGreedyPathTowardRewardPeak) {
  Configuration target;
  target.set(ParamId::kMaxClients, 250);  // 4 fine steps above default
  QTable table;
  util::Rng rng(1);
  TdParams params;
  params.max_sweeps = 200;
  params.trajectory_limit = 8;
  const std::vector<Configuration> starts = {Configuration{}};
  const auto result =
      batch_train(table, starts, distance_reward(target), params, rng);
  EXPECT_GT(result.sweeps, 0);

  // Greedy walk from the default must reach the target.
  Configuration s;
  for (int i = 0; i < 10; ++i) {
    const Action a = table.best_action(s);
    if (a.is_keep()) break;
    s = ConfigSpace::apply(s, a);
  }
  EXPECT_EQ(s.value(ParamId::kMaxClients), 250);
}

TEST(TdLearner, GreedyPolicyStaysAtOptimum) {
  Configuration target;  // the default itself is optimal
  QTable table;
  util::Rng rng(2);
  TdParams params;
  params.max_sweeps = 150;
  const std::vector<Configuration> starts = {target};
  batch_train(table, starts, distance_reward(target), params, rng);
  EXPECT_TRUE(table.best_action(target).is_keep());
}

TEST(TdLearner, ConvergesBelowTheta) {
  QTable table;
  util::Rng rng(3);
  TdParams params;
  params.max_sweeps = 2000;
  params.theta = 1e-4;
  const std::vector<Configuration> starts = {Configuration{}};
  // Constant reward: Q converges to r/(1-gamma) everywhere reachable.
  const auto result = batch_train(
      table, starts, [](const Configuration&) { return 1.0; }, params, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.final_error, params.theta);
  EXPECT_NEAR(table.max_q(Configuration{}), 1.0 / (1.0 - params.gamma), 0.05);
}

TEST(TdLearner, EmptyStartStatesIsTriviallyConverged) {
  QTable table;
  util::Rng rng(4);
  const std::vector<Configuration> starts;
  const auto result = batch_train(
      table, starts, [](const Configuration&) { return 0.0; }, TdParams{},
      rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.sweeps, 0);
  EXPECT_TRUE(table.empty());
}

TEST(TdLearner, RespectsSweepBudget) {
  QTable table;
  util::Rng rng(5);
  TdParams params;
  params.max_sweeps = 3;
  params.theta = 0.0;  // never converges
  const std::vector<Configuration> starts = {Configuration{}};
  const auto result = batch_train(
      table, starts, [](const Configuration&) { return 1.0; }, params, rng);
  EXPECT_EQ(result.sweeps, 3);
  EXPECT_FALSE(result.converged);
}

TEST(TdLearner, HigherRewardNeighborGetsHigherQ) {
  Configuration target;
  target.set(ParamId::kSessionTimeout, 35);
  QTable table;
  util::Rng rng(6);
  TdParams params;
  params.max_sweeps = 120;
  const std::vector<Configuration> starts = {Configuration{}};
  batch_train(table, starts, distance_reward(target), params, rng);
  const Configuration s;
  EXPECT_GT(table.q(s, Action::increase(ParamId::kSessionTimeout)),
            table.q(s, Action::decrease(ParamId::kSessionTimeout)));
}

TEST(TdLearner, ValidatesParameters) {
  QTable table;
  util::Rng rng(7);
  const std::vector<Configuration> starts = {Configuration{}};
  const RewardFn r = [](const Configuration&) { return 0.0; };
  TdParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(batch_train(table, starts, r, bad, rng), std::invalid_argument);
  bad = TdParams{};
  bad.gamma = 1.0;
  EXPECT_THROW(batch_train(table, starts, r, bad, rng), std::invalid_argument);
  bad = TdParams{};
  bad.trajectory_limit = 0;
  EXPECT_THROW(batch_train(table, starts, r, bad, rng), std::invalid_argument);
  EXPECT_THROW(batch_train(table, starts, RewardFn{}, TdParams{}, rng),
               std::invalid_argument);
}

// Regression for the contract migration: a NaN reward silently poisons
// every Q-value it touches (NaN propagates through the backup and then
// wins every max comparison inconsistently). The post-batch RAC_AUDIT
// sweep catches it in audit builds; default builds run the same train
// unchecked, so this test asserts the audit fires exactly when enabled.
TEST(TdLearner, AuditCatchesNaNRewardPoisoning) {
  util::ScopedContractMode guard(util::ContractMode::kThrow);
  QTable table;
  util::Rng rng(8);
  TdParams params;
  params.max_sweeps = 2;
  const std::vector<Configuration> starts = {Configuration{}};
  const RewardFn nan_reward = [](const Configuration&) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  if (util::kAuditEnabled) {
    EXPECT_THROW(batch_train(table, starts, nan_reward, params, rng),
                 util::ContractViolation);
  } else {
    EXPECT_NO_THROW(batch_train(table, starts, nan_reward, params, rng));
  }
}

}  // namespace
}  // namespace rac::rl
