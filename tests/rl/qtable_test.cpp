#include "rl/qtable.hpp"

#include <gtest/gtest.h>

namespace rac::rl {
namespace {

using config::Action;
using config::Configuration;
using config::ParamId;

TEST(QTable, UnknownStateReadsDefault) {
  QTable t;
  const Configuration s;
  EXPECT_DOUBLE_EQ(t.q(s, Action::keep()), 0.0);
  t.set_default_q(2.5);
  EXPECT_DOUBLE_EQ(t.q(s, Action::keep()), 2.5);
  EXPECT_DOUBLE_EQ(t.max_q(s), 2.5);
  EXPECT_FALSE(t.contains(s));
}

TEST(QTable, SetAndGetRoundTrip) {
  QTable t;
  const Configuration s;
  const Action a = Action::increase(ParamId::kMaxClients);
  t.set_q(s, a, 3.0);
  EXPECT_DOUBLE_EQ(t.q(s, a), 3.0);
  EXPECT_TRUE(t.contains(s));
  EXPECT_EQ(t.size(), 1u);
}

TEST(QTable, AddAccumulates) {
  QTable t;
  const Configuration s;
  const Action a = Action::keep();
  t.add_q(s, a, 1.0);
  t.add_q(s, a, 0.5);
  EXPECT_DOUBLE_EQ(t.q(s, a), 1.5);
}

TEST(QTable, NewRowInheritsDefaultForOtherActions) {
  QTable t;
  t.set_default_q(-1.0);
  const Configuration s;
  t.set_q(s, Action::keep(), 5.0);
  EXPECT_DOUBLE_EQ(t.q(s, Action::increase(ParamId::kMaxThreads)), -1.0);
}

TEST(QTable, BestActionIsArgmax) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::increase(ParamId::kMaxClients), 1.0);
  t.set_q(s, Action::decrease(ParamId::kSessionTimeout), 4.0);
  EXPECT_EQ(t.best_action(s), Action::decrease(ParamId::kSessionTimeout));
  EXPECT_DOUBLE_EQ(t.max_q(s), 4.0);
}

TEST(QTable, BestActionTieBreaksTowardKeep) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::keep(), 1.0);
  t.set_q(s, Action::increase(ParamId::kMaxClients), 1.0);
  EXPECT_EQ(t.best_action(s), Action::keep());
}

TEST(QTable, BestActionOfUnknownStateIsKeep) {
  const QTable t;
  EXPECT_EQ(t.best_action(Configuration{}), Action::keep());
}

TEST(QTable, StatesEnumeratesRows) {
  QTable t;
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 300);
  t.set_q(a, Action::keep(), 1.0);
  t.set_q(b, Action::keep(), 2.0);
  const auto states = t.states();
  EXPECT_EQ(states.size(), 2u);
}

TEST(QTable, AbsorbOverwritesCollisions) {
  QTable a;
  QTable b;
  const Configuration s;
  a.set_q(s, Action::keep(), 1.0);
  b.set_q(s, Action::keep(), 9.0);
  Configuration other;
  other.set(ParamId::kMaxThreads, 500);
  b.set_q(other, Action::keep(), 3.0);
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.q(s, Action::keep()), 9.0);
  EXPECT_DOUBLE_EQ(a.q(other, Action::keep()), 3.0);
  EXPECT_EQ(a.size(), 2u);
}

TEST(QTable, ClearEmptiesTable) {
  QTable t;
  t.set_q(Configuration{}, Action::keep(), 1.0);
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace rac::rl
