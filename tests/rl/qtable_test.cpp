#include "rl/qtable.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace rac::rl {
namespace {

using config::Action;
using config::Configuration;
using config::ParamId;

TEST(QTable, UnknownStateReadsDefault) {
  QTable t;
  const Configuration s;
  EXPECT_DOUBLE_EQ(t.q(s, Action::keep()), 0.0);
  t.set_default_q(2.5);
  EXPECT_DOUBLE_EQ(t.q(s, Action::keep()), 2.5);
  EXPECT_DOUBLE_EQ(t.max_q(s), 2.5);
  EXPECT_FALSE(t.contains(s));
}

TEST(QTable, SetAndGetRoundTrip) {
  QTable t;
  const Configuration s;
  const Action a = Action::increase(ParamId::kMaxClients);
  t.set_q(s, a, 3.0);
  EXPECT_DOUBLE_EQ(t.q(s, a), 3.0);
  EXPECT_TRUE(t.contains(s));
  EXPECT_EQ(t.size(), 1u);
}

TEST(QTable, AddAccumulates) {
  QTable t;
  const Configuration s;
  const Action a = Action::keep();
  t.add_q(s, a, 1.0);
  t.add_q(s, a, 0.5);
  EXPECT_DOUBLE_EQ(t.q(s, a), 1.5);
}

TEST(QTable, NewRowInheritsDefaultForOtherActions) {
  QTable t;
  t.set_default_q(-1.0);
  const Configuration s;
  t.set_q(s, Action::keep(), 5.0);
  EXPECT_DOUBLE_EQ(t.q(s, Action::increase(ParamId::kMaxThreads)), -1.0);
}

TEST(QTable, BestActionIsArgmax) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::increase(ParamId::kMaxClients), 1.0);
  t.set_q(s, Action::decrease(ParamId::kSessionTimeout), 4.0);
  EXPECT_EQ(t.best_action(s), Action::decrease(ParamId::kSessionTimeout));
  EXPECT_DOUBLE_EQ(t.max_q(s), 4.0);
}

TEST(QTable, BestActionTieBreaksTowardKeep) {
  QTable t;
  const Configuration s;
  t.set_q(s, Action::keep(), 1.0);
  t.set_q(s, Action::increase(ParamId::kMaxClients), 1.0);
  EXPECT_EQ(t.best_action(s), Action::keep());
}

TEST(QTable, BestActionOfUnknownStateIsKeep) {
  const QTable t;
  EXPECT_EQ(t.best_action(Configuration{}), Action::keep());
}

TEST(QTable, StatesEnumeratesRows) {
  QTable t;
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 300);
  t.set_q(a, Action::keep(), 1.0);
  t.set_q(b, Action::keep(), 2.0);
  const auto states = t.states();
  EXPECT_EQ(states.size(), 2u);
}

TEST(QTable, AbsorbOverwritesCollisions) {
  QTable a;
  QTable b;
  const Configuration s;
  a.set_q(s, Action::keep(), 1.0);
  b.set_q(s, Action::keep(), 9.0);
  Configuration other;
  other.set(ParamId::kMaxThreads, 500);
  b.set_q(other, Action::keep(), 3.0);
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.q(s, Action::keep()), 9.0);
  EXPECT_DOUBLE_EQ(a.q(other, Action::keep()), 3.0);
  EXPECT_EQ(a.size(), 2u);
}

TEST(QTable, ClearEmptiesTable) {
  QTable t;
  t.set_q(Configuration{}, Action::keep(), 1.0);
  t.clear();
  EXPECT_TRUE(t.empty());
}


TEST(QTable, AbsorbMergesPerAction) {
  // Collision regression: the target wrote one action, the source another.
  // Whole-row overwrite would reset the target's action to the source's
  // default fill; per-action merge keeps both.
  QTable a;
  QTable b;
  const Configuration s;
  a.set_q(s, Action(3), 1.5);
  b.set_q(s, Action(5), -2.0);
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.q(s, Action(3)), 1.5);
  EXPECT_DOUBLE_EQ(a.q(s, Action(5)), -2.0);
  EXPECT_EQ(a.size(), 1u);
}

TEST(QTable, AbsorbSourceWinsOnSameAction) {
  QTable a;
  QTable b;
  const Configuration s;
  a.set_q(s, Action(3), 1.5);
  b.set_q(s, Action(3), 9.0);
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.q(s, Action(3)), 9.0);
}

TEST(QTable, AbsorbDisjointStatesIsUnion) {
  QTable a;
  QTable b;
  Configuration s1;
  Configuration s2;
  s2.set(ParamId::kMaxClients, s2.value(ParamId::kMaxClients) + 1);
  a.set_q(s1, Action::keep(), 1.0);
  b.set_q(s2, Action::keep(), 2.0);
  a.absorb(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.q(s1, Action::keep()), 1.0);
  EXPECT_DOUBLE_EQ(a.q(s2, Action::keep()), 2.0);
}

TEST(QTable, WarmRowsAreInvisible) {
  // ensure_row pre-creates a default-filled row without marking any action
  // written; the public surface must not distinguish it from an absent
  // state, and reads through its index must equal the default answers.
  QTable t;
  t.set_default_q(0.75);
  const Configuration s;
  const std::size_t row = t.ensure_row(s);
  EXPECT_FALSE(t.contains(s));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.states().empty());
  EXPECT_DOUBLE_EQ(t.q_at(row, Action::keep()), 0.75);
  EXPECT_DOUBLE_EQ(t.max_q_at(row), 0.75);
  EXPECT_DOUBLE_EQ(t.q(s, Action::keep()), 0.75);
  EXPECT_EQ(t.best_action_at(row), Action::keep());
  // Absorbing a table of warm rows imports nothing.
  QTable other;
  other.absorb(t);
  EXPECT_TRUE(other.empty());
  // First write makes the row public.
  t.add_q_at(row, Action(2), 0.5);
  EXPECT_TRUE(t.contains(s));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find_row(s), row);
}

TEST(QTable, ManyStatesSurviveProbeTableGrowth) {
  // Push well past the initial probe-table capacity and re-read everything.
  QTable t;
  util::Rng rng(7);
  std::vector<Configuration> states;
  for (int i = 0; i < 500; ++i) {
    const auto s = config::ConfigSpace::random_fine(rng);
    if (t.contains(s)) continue;
    t.set_q(s, Action::keep(), static_cast<double>(i));
    states.push_back(s);
  }
  EXPECT_EQ(t.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.q(states[i], Action::keep()), static_cast<double>(i));
  }
  EXPECT_EQ(t.states().size(), states.size());
}

}  // namespace
}  // namespace rac::rl
